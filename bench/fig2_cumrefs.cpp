// Reproduces Figure 2: percentage of the dynamic basic-block references
// captured by the N most popular static blocks. The paper reports 90% of
// references from the 1000 most popular blocks (0.7% of the static count)
// and 99% from 2500 blocks.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner(
      "Figure 2: cumulative dynamic references vs top-N blocks", env, setup);

  const auto& prof = setup.training_profile();
  const auto curve = profile::cumulative_reference_curve(prof);
  const std::uint64_t total_static = setup.image().num_blocks();

  auto runner = bench::make_runner("fig2_cumrefs", env, setup);
  const std::uint64_t sample_points[] = {1, 2, 5, 10, 20, 40, 80, 160, 320,
                                         640};
  std::vector<std::size_t> sample_jobs;
  for (const std::uint64_t n : sample_points) {
    if (n > curve.size()) break;
    sample_jobs.push_back(runner.add(
        "top-" + std::to_string(n), {{"top_n", std::to_string(n)}},
        [&curve, n, total_static] {
          ExperimentResult result;
          result.metric("static_pct", 100.0 * static_cast<double>(n) /
                                          static_cast<double>(total_static));
          result.metric("dynamic_refs_pct", 100.0 * curve[n - 1]);
          result.counters().add("blocks", n);
          return result;
        }));
  }
  const std::size_t headline_job = runner.add("coverage thresholds", [&] {
    ExperimentResult result;
    result.counters().add("blocks_for_90pct",
                          profile::blocks_for_fraction(curve, 0.90));
    result.counters().add("blocks_for_99pct",
                          profile::blocks_for_fraction(curve, 0.99));
    result.counters().add("executed_blocks", curve.size());
    result.counters().add("static_blocks", total_static);
    return result;
  });
  runner.run();

  TextTable table;
  table.header({"Top-N blocks", "% of static blocks", "% dynamic refs"});
  for (const std::size_t job : sample_jobs) {
    const auto& r = runner.result(job);
    table.row({fmt_count(r.counters().get("blocks")),
               fmt_percent(runner.metric_or(job, "static_pct") / 100.0),
               fmt_percent(runner.metric_or(job, "dynamic_refs_pct") / 100.0)});
  }
  std::fputs(table.render().c_str(), stdout);

  const auto& headline = runner.result(headline_job);
  const std::uint64_t n90 = headline.counters().get("blocks_for_90pct");
  const std::uint64_t n99 = headline.counters().get("blocks_for_99pct");
  std::printf(
      "\n90%% of references: %llu blocks (%.2f%% of static; paper: 1000 "
      "blocks = 0.7%%)\n"
      "99%% of references: %llu blocks (%.2f%% of static; paper: 2500 "
      "blocks = 2.0%%)\n",
      static_cast<unsigned long long>(n90),
      100.0 * static_cast<double>(n90) / static_cast<double>(total_static),
      static_cast<unsigned long long>(n99),
      100.0 * static_cast<double>(n99) / static_cast<double>(total_static));

  // ASCII rendering of the accumulation curve.
  std::printf("\n%% of dynamic references captured (x: executed blocks by "
              "popularity)\n");
  const std::size_t width = 60;
  for (int pct = 100; pct >= 20; pct -= 10) {
    std::string line = (pct % 20 == 0 ? std::to_string(pct) : "  ");
    while (line.size() < 4) line.insert(line.begin(), ' ');
    line += " |";
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t idx = x * curve.size() / width;
      line += curve[idx] * 100.0 >= pct ? '*' : ' ';
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("     +%s\n", std::string(width, '-').c_str());

  return bench::write_report(runner);
}
