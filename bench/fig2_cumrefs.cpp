// Reproduces Figure 2: percentage of the dynamic basic-block references
// captured by the N most popular static blocks. The paper reports 90% of
// references from the 1000 most popular blocks (0.7% of the static count)
// and 99% from 2500 blocks.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner(
      "Figure 2: cumulative dynamic references vs top-N blocks", env, setup);

  const auto& prof = setup.training_profile();
  const auto curve = profile::cumulative_reference_curve(prof);

  // Print the curve at exponentially spaced N (ASCII series of the figure).
  TextTable table;
  table.header({"Top-N blocks", "% of static blocks", "% dynamic refs"});
  const std::uint64_t total_static = setup.image().num_blocks();
  for (std::uint64_t n : {1u, 2u, 5u, 10u, 20u, 40u, 80u, 160u, 320u, 640u}) {
    if (n > curve.size()) break;
    table.row({fmt_count(n),
               fmt_percent(static_cast<double>(n) /
                           static_cast<double>(total_static)),
               fmt_percent(curve[n - 1])});
  }
  std::fputs(table.render().c_str(), stdout);

  const std::uint64_t n90 = profile::blocks_for_fraction(curve, 0.90);
  const std::uint64_t n99 = profile::blocks_for_fraction(curve, 0.99);
  std::printf(
      "\n90%% of references: %llu blocks (%.2f%% of static; paper: 1000 "
      "blocks = 0.7%%)\n"
      "99%% of references: %llu blocks (%.2f%% of static; paper: 2500 "
      "blocks = 2.0%%)\n",
      static_cast<unsigned long long>(n90),
      100.0 * static_cast<double>(n90) / static_cast<double>(total_static),
      static_cast<unsigned long long>(n99),
      100.0 * static_cast<double>(n99) / static_cast<double>(total_static));

  // ASCII rendering of the accumulation curve.
  std::printf("\n%% of dynamic references captured (x: executed blocks by "
              "popularity)\n");
  const std::size_t width = 60;
  for (int pct = 100; pct >= 20; pct -= 10) {
    std::string line = (pct % 20 == 0 ? std::to_string(pct) : "  ");
    while (line.size() < 4) line.insert(line.begin(), ' ');
    line += " |";
    for (std::size_t x = 0; x < width; ++x) {
      const std::size_t idx = x * curve.size() / width;
      line += curve[idx] * 100.0 >= pct ? '*' : ' ';
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("     +%s\n", std::string(width, '-').c_str());
  return 0;
}
