// Ablation: code replication (the paper's Section 8 future work).
//
// Shared routines called from many sites cap the sequentiality any static
// layout can achieve: only one call site can be laid out fall-through into
// the callee. Cloning hot small routines per dominant call site lifts that
// cap at the cost of code growth. This bench sweeps the growth budget and
// reports the resulting footprint, miss rate, sequentiality and fetch
// bandwidth with the STC ops layout rebuilt on the replicated program.
#include <cstdio>

#include "bench/common.h"
#include "core/replication.h"
#include "core/stc_layout.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: code replication (4K cache, 1K CFA)", env,
                      setup);

  const std::uint32_t cache = 4096;
  const std::uint32_t cfa = 1024;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};

  TextTable table;
  table.header({"growth cap", "clones", "code", "miss%", "IPC",
                "insn/taken"});

  // Baseline: no replication.
  {
    const auto& ops = setup.layout(core::LayoutKind::kStcOps, cache, cfa);
    const auto seq =
        trace::measure_sequentiality(setup.test_trace(), setup.image(), ops);
    table.row({"1.0x (off)", "0", fmt_size(setup.image().image_bytes()),
               fmt_fixed(bench::miss_pct(setup, ops, dm), 2),
               fmt_fixed(bench::seq3_ipc(setup, ops, dm), 2),
               fmt_fixed(seq.insns_between_taken_branches(), 1)});
  }

  struct Config {
    const char* label;
    double growth;
    double coverage;
    double min_weight;
  };
  const Config configs[] = {
      {"cover 80%", 1.50, 0.80, 0.002},
      {"cover 95%", 1.50, 0.95, 0.002},
      {"cover 99%", 1.50, 0.99, 0.002},
      {"cover 99%, warm", 2.00, 0.99, 0.0002},
  };
  for (const Config& config : configs) {
    core::ReplicationParams params;
    params.max_code_growth = config.growth;
    params.site_coverage = config.coverage;
    params.min_routine_weight = config.min_weight;
    params.max_clones_per_routine = 32;
    params.max_routine_bytes = 1024;
    const core::Replicator repl(setup.image(), setup.training_profile(),
                                params);

    // Re-profile the transformed training trace, rebuild the ops layout on
    // the replicated program, and replay the transformed test trace.
    const trace::BlockTrace training =
        repl.transform(setup.training_trace());
    const trace::BlockTrace test = repl.transform(setup.test_trace());
    profile::Profile prof(repl.image());
    prof.consume(training);
    const auto wcfg = profile::WeightedCFG::from_profile(prof);

    core::StcParams stc;
    stc.cache_bytes = cache;
    stc.cfa_bytes = cfa;
    const auto layout =
        core::stc_layout(wcfg, core::SeedKind::kOps, stc).layout;

    sim::ICache cache_model(dm);
    const auto miss = sim::run_missrate(test, repl.image(), layout, cache_model);
    sim::FetchParams fetch_params;
    sim::ICache cache_model2(dm);
    const auto fetch =
        sim::run_seq3(test, repl.image(), layout, fetch_params, &cache_model2);
    const auto seq = trace::measure_sequentiality(test, repl.image(), layout);

    table.row({config.label, fmt_count(repl.num_clones()),
               fmt_size(repl.image().image_bytes()),
               fmt_fixed(miss.misses_per_100_insns(), 2),
               fmt_fixed(fetch.ipc(), 2),
               fmt_fixed(seq.insns_between_taken_branches(), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReplication gives each dominant call site its own sequential copy\n"
      "of the callee: instructions between taken branches rise (~6%% here).\n"
      "At this kernel's scale the enlarged hot footprint costs slightly more\n"
      "fetch bandwidth than the sequentiality buys - evidence for the\n"
      "paper's caution that code expansion must keep \"the miss rate under\n"
      "control\" (Section 8).\n");
  return 0;
}
