// Ablation: code replication (the paper's Section 8 future work).
//
// Shared routines called from many sites cap the sequentiality any static
// layout can achieve: only one call site can be laid out fall-through into
// the callee. Cloning hot small routines per dominant call site lifts that
// cap at the cost of code growth. This bench sweeps the growth budget and
// reports the resulting footprint, miss rate, sequentiality and fetch
// bandwidth with the STC ops layout rebuilt on the replicated program.
#include <cstdio>

#include "bench/common.h"
#include "core/replication.h"
#include "core/stc_layout.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: code replication (4K cache, 1K CFA)", env,
                      setup);

  const std::uint32_t cache = 4096;
  const std::uint32_t cfa = 1024;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};

  auto runner = bench::make_runner("ablate_replication", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.meta("cfa_bytes", std::uint64_t{cfa});
  runner.time_phase("layouts", [&] {
    setup.layout(core::LayoutKind::kStcOps, cache, cfa);
  });

  // Baseline: no replication.
  const std::size_t baseline_job = runner.add(
      "1.0x (off)", {{"config", "off"}}, [&setup, &dm, cache, cfa] {
        const auto& ops = setup.layout(core::LayoutKind::kStcOps, cache, cfa);
        ExperimentResult result = bench::measure_miss(setup, ops, dm);
        const auto fetch = bench::measure_seq3(setup, ops, dm);
        result.metric("ipc", fetch.metric("ipc"));
        result.counters().merge(fetch.counters());
        const auto seq = bench::measure_seq(setup, ops);
        result.metric("insn_per_taken", seq.metric("insn_per_taken"));
        result.counters().add("clones", 0);
        result.counters().add("code_bytes", setup.image().image_bytes());
        return result;
      });

  struct Config {
    const char* label;
    double growth;
    double coverage;
    double min_weight;
  };
  const Config configs[] = {
      {"cover 80%", 1.50, 0.80, 0.002},
      {"cover 95%", 1.50, 0.95, 0.002},
      {"cover 99%", 1.50, 0.99, 0.002},
      {"cover 99%, warm", 2.00, 0.99, 0.0002},
  };
  std::vector<std::size_t> jobs{baseline_job};
  for (const Config& config : configs) {
    jobs.push_back(runner.add(
        config.label,
        {{"config", config.label},
         {"growth", fmt_fixed(config.growth, 2)},
         {"coverage", fmt_fixed(config.coverage, 2)}},
        [&setup, dm, cache, cfa, config] {
          core::ReplicationParams params;
          params.max_code_growth = config.growth;
          params.site_coverage = config.coverage;
          params.min_routine_weight = config.min_weight;
          params.max_clones_per_routine = 32;
          params.max_routine_bytes = 1024;
          const core::Replicator repl(setup.image(),
                                      setup.training_profile(), params);

          // Re-profile the transformed training trace, rebuild the ops
          // layout on the replicated program, and replay the transformed
          // test trace.
          const trace::BlockTrace training =
              repl.transform(setup.training_trace());
          const trace::BlockTrace test = repl.transform(setup.test_trace());
          profile::Profile prof(repl.image());
          prof.consume(training);
          const auto wcfg = profile::WeightedCFG::from_profile(prof);

          core::StcParams stc;
          stc.cache_bytes = cache;
          stc.cfa_bytes = cfa;
          const auto layout =
              core::stc_layout(wcfg, core::SeedKind::kOps, stc).layout;

          ExperimentResult result =
              bench::measure_miss(test, repl.image(), layout, dm);
          const auto fetch =
              bench::measure_seq3(test, repl.image(), layout, dm);
          result.metric("ipc", fetch.metric("ipc"));
          result.counters().merge(fetch.counters());
          const auto seq = bench::measure_seq(test, repl.image(), layout);
          result.metric("insn_per_taken", seq.metric("insn_per_taken"));
          result.counters().add("clones", repl.num_clones());
          result.counters().add("code_bytes", repl.image().image_bytes());
          return result;
        }));
  }
  runner.run();

  TextTable table;
  table.header({"growth cap", "clones", "code", "miss%", "IPC",
                "insn/taken"});
  const char* labels[] = {"1.0x (off)", "cover 80%", "cover 95%", "cover 99%",
                          "cover 99%, warm"};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = runner.result(jobs[i]);
    table.row({labels[i], fmt_count(r.counters().get("clones")),
               fmt_size(r.counters().get("code_bytes")),
               fmt_fixed(runner.metric_or(jobs[i], "miss_pct"), 2),
               fmt_fixed(runner.metric_or(jobs[i], "ipc"), 2),
               fmt_fixed(runner.metric_or(jobs[i], "insn_per_taken"), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReplication gives each dominant call site its own sequential copy\n"
      "of the callee: instructions between taken branches rise (~6%% here).\n"
      "At this kernel's scale the enlarged hot footprint costs slightly more\n"
      "fetch bandwidth than the sequentiality buys - evidence for the\n"
      "paper's caution that code expansion must keep \"the miss rate under\n"
      "control\" (Section 8).\n");

  return bench::write_report(runner);
}
