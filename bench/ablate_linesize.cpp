// Ablation: cache-line size sensitivity of the Table 3/4 results. The paper
// fixes the line size implicitly via the SEQ.3 fetch unit; this bench sweeps
// it to show the miss-rate / bandwidth trade-off is not an artifact of one
// geometry.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: cache line size (2K cache, 512B CFA)", env,
                      setup);

  const std::uint32_t cache = 2048;
  const std::uint32_t cfa = 512;

  TextTable table;
  table.header({"line", "orig miss%", "ops miss%", "orig IPC", "ops IPC"});
  for (std::uint32_t line : {16u, 32u, 64u, 128u}) {
    const sim::CacheGeometry dm{cache, line, 1};
    const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
    const auto& ops = setup.layout(LayoutKind::kStcOps, cache, cfa);
    table.row({fmt_size(line), fmt_fixed(bench::miss_pct(setup, orig, dm), 2),
               fmt_fixed(bench::miss_pct(setup, ops, dm), 2),
               fmt_fixed(bench::seq3_ipc(setup, orig, dm), 2),
               fmt_fixed(bench::seq3_ipc(setup, ops, dm), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nLarger lines prefetch more of a sequential layout (ops gains), but\n"
      "amplify conflict misses for the scattered original layout.\n");
  return 0;
}
