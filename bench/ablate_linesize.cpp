// Ablation: cache-line size sensitivity of the Table 3/4 results. The paper
// fixes the line size implicitly via the SEQ.3 fetch unit; this bench sweeps
// it to show the miss-rate / bandwidth trade-off is not an artifact of one
// geometry.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: cache line size (2K cache, 512B CFA)", env,
                      setup);

  const std::uint32_t cache = 2048;
  const std::uint32_t cfa = 512;

  auto runner = bench::make_runner("ablate_linesize", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.meta("cfa_bytes", std::uint64_t{cfa});
  runner.time_phase("layouts", [&] {
    setup.layout(LayoutKind::kOrig, 0, 0);
    setup.layout(LayoutKind::kStcOps, cache, cfa);
  });

  const std::uint32_t lines[] = {16, 32, 64, 128};
  struct Row {
    std::size_t orig_job;
    std::size_t ops_job;
  };
  std::vector<Row> rows;
  for (const std::uint32_t line : lines) {
    const sim::CacheGeometry dm{cache, line, 1};
    const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
    const auto& ops = setup.layout(LayoutKind::kStcOps, cache, cfa);
    Row row;
    // One job per (line, layout) measuring both the miss rate and the SEQ.3
    // bandwidth under that geometry.
    const auto both = [&setup, dm](const cfg::AddressMap& layout) {
      ExperimentResult result = bench::measure_miss(setup, layout, dm);
      const ExperimentResult fetch = bench::measure_seq3(setup, layout, dm);
      result.metric("ipc", fetch.metric("ipc"));
      result.counters().merge(fetch.counters());
      return result;
    };
    row.orig_job = runner.add(
        fmt_size(line) + " orig",
        {{"line_bytes", std::to_string(line)}, {"layout", "orig"}},
        [both, &orig] { return both(orig); });
    row.ops_job = runner.add(
        fmt_size(line) + " ops",
        {{"line_bytes", std::to_string(line)}, {"layout", "ops"}},
        [both, &ops] { return both(ops); });
    rows.push_back(row);
  }
  runner.run();

  TextTable table;
  table.header({"line", "orig miss%", "ops miss%", "orig IPC", "ops IPC"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t orig = rows[i].orig_job;
    const std::size_t ops = rows[i].ops_job;
    table.row({fmt_size(lines[i]),
               fmt_fixed(runner.metric_or(orig, "miss_pct"), 2),
               fmt_fixed(runner.metric_or(ops, "miss_pct"), 2),
               fmt_fixed(runner.metric_or(orig, "ipc"), 2),
               fmt_fixed(runner.metric_or(ops, "ipc"), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nLarger lines prefetch more of a sequential layout (ops gains), but\n"
      "amplify conflict misses for the scattered original layout.\n");

  return bench::write_report(runner);
}
