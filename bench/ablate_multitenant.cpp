// Extension bench: multi-tenant workload composition.
//
// The paper measures instruction fetch for one DSS query stream at a time,
// but the deployment setting serves many concurrent clients: the scheduler
// context-switches between sessions every quantum, and every switch lands
// the preempted tenant back on a cache another tenant just trampled. This
// bench composes N per-tenant streams (src/workload) into one trace and
// sweeps
//   layouts       x  tenant counts  x  scheduler quanta
// to answer two questions:
//   1. how much of the Table 3/4 single-stream layout gap survives
//      multiprogramming (per-layout degradation vs the 1-tenant baseline),
//   2. how much a tenant-partitioned CFA (core::stc_layout_partitioned,
//      one demand-weighted sub-window per distinct mix) recovers over the
//      shared-CFA ops layout.
//
// Knobs: STC_TENANTS (max tenant count), STC_QUANTUM (events per slice),
// STC_ARRIVAL (rr|poisson|bursty|diurnal), STC_TENANT_MIX (dss,oltp,...).
// Quantum 0 rows are the no-switch limit: each scheduled tenant runs to
// completion, so interleaving cost is isolated from stream content.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/stc_layout.h"
#include "support/check.h"
#include "support/env.h"
#include "verify/oracle.h"
#include "workload/composer.h"
#include "workload/streams.h"

namespace {

using namespace stc;

// One composed workload point in the grid.
struct Composition {
  std::uint32_t tenants;
  std::uint64_t quantum;
  workload::ComposedTrace composed;
};

// One layout variant; for "ops-part" the map depends on the tenant count,
// so each variant holds one map per tenant-count index.
struct Variant {
  const char* name;
  std::vector<const cfg::AddressMap*> map_for_count;  // by tenant-count index
};

double metric_of(const ExperimentRunner& runner, std::size_t job,
                 const char* name) {
  return runner.metric_or(job, name);
}

}  // namespace

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Extension: multi-tenant composition and partitioned CFA",
                      env, setup);

  const std::uint32_t cache = 1024;
  const std::uint32_t cfa = 512;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};
  const auto& image = setup.image();

  // Composer knobs (validated by Env::from_environment already).
  const std::uint32_t max_tenants = env::tenants().value_or(4);
  const std::uint64_t quantum = env::quantum().value_or(1000);
  const auto arrival = workload::parse_arrival(env::arrival().value_or("poisson"))
                           .value_or(workload::ArrivalKind::kPoisson);
  const auto mixes =
      workload::parse_mix_list(env::tenant_mix().value_or("dss,oltp"))
          .value_or({workload::MixKind::kDss, workload::MixKind::kOltp});

  // Tenant counts: 1 (baseline), 2, and STC_TENANTS; deduplicated.
  std::vector<std::uint32_t> tenant_counts{1, 2, max_tenants};
  std::sort(tenant_counts.begin(), tenant_counts.end());
  tenant_counts.erase(
      std::unique(tenant_counts.begin(), tenant_counts.end()),
      tenant_counts.end());
  // Quanta: 0 (no preemption), a 10x-finer slice, and STC_QUANTUM.
  std::vector<std::uint64_t> quanta{0};
  if (quantum > 0) {
    quanta.push_back(std::max<std::uint64_t>(1, quantum / 10));
    quanta.push_back(quantum);
    std::sort(quanta.begin(), quanta.end());
    quanta.erase(std::unique(quanta.begin(), quanta.end()), quanta.end());
  }

  auto runner = bench::make_runner("ablate_multitenant", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.meta("cfa_bytes", std::uint64_t{cfa});
  runner.meta("arrival", workload::to_string(arrival));
  runner.meta("max_tenants", std::uint64_t{max_tenants});
  runner.meta("quantum", quantum);

  // ---- per-tenant streams (recorded once, for the largest count) ---------
  std::vector<workload::TenantStream> streams;
  std::vector<profile::Profile> profiles;
  runner.time_phase("streams", [&] {
    streams = workload::make_tenant_streams(max_tenants, mixes, setup.btree(),
                                            setup.hash(), {}, image,
                                            &profiles);
  });
  std::printf("streams:");
  for (const auto& s : streams) {
    std::printf(" %s=%llu", s.name.c_str(),
                static_cast<unsigned long long>(s.trace.num_events()));
  }
  std::printf(" events\n\n");

  // ---- layouts ------------------------------------------------------------
  // orig and the shared-CFA DSS-trained ops layout come from the common
  // Setup cache; the partitioned variant is rebuilt per tenant count.
  // Partition groups are the *distinct mixes* among the first t tenants,
  // not raw tenant indices: same-mix tenants share one profile and one CFA
  // sub-window. (Per-tenant windows would leave the second dss tenant's
  // window nearly empty — its hot blocks are already claimed by the first —
  // while the spilled dss hot code loses protection entirely.)
  core::StcParams params;
  params.cache_bytes = cache;
  params.cfa_bytes = cfa;
  std::vector<core::StcResult> part_layouts(tenant_counts.size());
  std::vector<core::MappingProvenance> part_provs(tenant_counts.size());
  std::vector<profile::WeightedCFG> tenant_cfgs;
  std::vector<std::vector<profile::WeightedCFG>> group_cfgs(
      tenant_counts.size());
  runner.time_phase("layouts", [&] {
    setup.layout(core::LayoutKind::kOrig, 0, 0);
    setup.layout(core::LayoutKind::kStcOps, cache, cfa);
    tenant_cfgs.reserve(profiles.size());
    for (const auto& p : profiles) {
      tenant_cfgs.push_back(profile::WeightedCFG::from_profile(p));
    }
    for (std::size_t i = 0; i < tenant_counts.size(); ++i) {
      // Distinct mixes among tenants [0, t), in first-appearance order
      // (mirrors make_tenant_streams' round-robin mix assignment).
      std::vector<workload::MixKind> group_mix;
      std::vector<std::vector<const profile::WeightedCFG*>> members;
      for (std::uint32_t t = 0; t < tenant_counts[i]; ++t) {
        const workload::MixKind mix = mixes[t % mixes.size()];
        const auto pos = std::find(group_mix.begin(), group_mix.end(), mix);
        if (pos == group_mix.end()) {
          group_mix.push_back(mix);
          members.push_back({&tenant_cfgs[t]});
        } else {
          members[pos - group_mix.begin()].push_back(&tenant_cfgs[t]);
        }
      }
      for (const auto& m : members) {
        group_cfgs[i].push_back(profile::WeightedCFG::merge(m));
      }
      std::vector<const profile::WeightedCFG*> parts;
      for (const auto& g : group_cfgs[i]) parts.push_back(&g);
      part_layouts[i] = core::stc_layout_partitioned(
          parts, core::SeedKind::kOps, params, &part_provs[i]);
    }
  });
  const auto& orig = setup.layout(core::LayoutKind::kOrig, 0, 0);
  const auto& ops = setup.layout(core::LayoutKind::kStcOps, cache, cfa);

  Variant variants[] = {{"orig", {}}, {"ops", {}}, {"ops-part", {}}};
  for (std::size_t i = 0; i < tenant_counts.size(); ++i) {
    variants[0].map_for_count.push_back(&orig);
    variants[1].map_for_count.push_back(&ops);
    variants[2].map_for_count.push_back(&part_layouts[i].layout);
  }

  // ---- composed traces ----------------------------------------------------
  std::vector<std::unique_ptr<Composition>> grid;
  runner.time_phase("compose", [&] {
    for (std::uint32_t count : tenant_counts) {
      for (std::uint64_t q : quanta) {
        // A single tenant never switches: every quantum composes the same
        // trace, so only the no-preemption point is measured.
        if (count == 1 && q != 0) continue;
        std::vector<workload::TenantStream> subset;
        for (std::uint32_t t = 0; t < count; ++t) {
          workload::TenantStream s;
          s.name = streams[t].name;
          s.trace = streams[t].trace;
          subset.push_back(std::move(s));
        }
        workload::ComposeParams cp;
        cp.quantum_events = q;
        cp.arrival = arrival;
        cp.seed = env.seed;
        auto composed = workload::compose(subset, cp);
        STC_CHECK_MSG(composed.is_ok(), composed.status().to_string().c_str());
        auto cell = std::make_unique<Composition>();
        cell->tenants = count;
        cell->quantum = q;
        cell->composed = std::move(composed).take();
        grid.push_back(std::move(cell));
      }
    }
  });
  for (const auto& cell : grid) {
    const std::string key = "switches_t" + std::to_string(cell->tenants) +
                            "_q" + std::to_string(cell->quantum);
    runner.meta(key, cell->composed.context_switches);
  }

  // Under STC_VERIFY=1 the measurement cells already run the layout oracle,
  // but without provenance; the partitioned variants additionally get one
  // explicit check_tenant_partition pass here (VERIFY.md).
  if (env::verify().value_or(false)) {
    runner.time_phase("verify_partition", [&] {
      verify::OracleOptions options;
      options.simulators = false;
      options.geometry = dm;
      for (std::size_t i = 0; i < tenant_counts.size(); ++i) {
        const auto report = verify::verify_layout(
            setup.test_trace(), image, part_layouts[i].layout, &part_provs[i],
            options);
        if (!report.ok()) {
          std::fprintf(stderr, "STC_VERIFY: partitioned layout (%u tenants) "
                               "failed verification:\n%s",
                       tenant_counts[i], report.summary().c_str());
          STC_CHECK_MSG(false, "STC_VERIFY violation (see report above)");
        }
      }
    });
  }

  // ---- the grid ------------------------------------------------------------
  struct Cell {
    const Composition* comp;
    const Variant* variant;
    const cfg::AddressMap* map;
    std::size_t job;
  };
  std::vector<Cell> cells;
  for (const auto& comp : grid) {
    const std::size_t count_idx =
        std::find(tenant_counts.begin(), tenant_counts.end(), comp->tenants) -
        tenant_counts.begin();
    for (const Variant& variant : variants) {
      const cfg::AddressMap* map = variant.map_for_count[count_idx];
      const std::size_t job = runner.add(
          std::string(variant.name) + " T=" + std::to_string(comp->tenants) +
              " q=" + std::to_string(comp->quantum),
          {{"layout", variant.name},
           {"tenants", std::to_string(comp->tenants)},
           {"quantum", std::to_string(comp->quantum)},
           {"arrival", workload::to_string(arrival)}},
          [&image, dm, composed = &comp->composed, map] {
            ExperimentResult result =
                bench::measure_tenant_miss(*composed, image, *map, dm);
            const auto fetch =
                bench::measure_seq3(composed->trace, image, *map, dm);
            result.metric("ipc", fetch.metric("ipc"));
            result.counters().merge(fetch.counters());
            return result;
          });
      cells.push_back({comp.get(), &variant, map, job});
    }
  }
  runner.run();

  // ---- report --------------------------------------------------------------
  // d-miss%: degradation vs the same layout's single-tenant (T=1, q=0)
  // baseline. recover: ops miss% minus ops-part miss% in the same cell.
  auto baseline_miss = [&](const Variant* v) {
    for (const Cell& c : cells) {
      if (c.variant == v && c.comp->tenants == 1) {
        return metric_of(runner, c.job, "miss_pct");
      }
    }
    return 0.0;
  };
  auto cell_miss = [&](const Variant* v, const Composition* comp) {
    for (const Cell& c : cells) {
      if (c.variant == v && c.comp == comp) {
        return metric_of(runner, c.job, "miss_pct");
      }
    }
    return 0.0;
  };

  TextTable table;
  table.header({"layout", "tenants", "quantum", "switches", "miss%", "worst%",
                "IPC", "d-miss%"});
  for (const Cell& c : cells) {
    const double miss = metric_of(runner, c.job, "miss_pct");
    table.row({c.variant->name, std::to_string(c.comp->tenants),
               c.comp->quantum == 0 ? "inf" : std::to_string(c.comp->quantum),
               std::to_string(c.comp->composed.context_switches),
               fmt_fixed(miss, 2),
               fmt_fixed(metric_of(runner, c.job, "worst_miss_pct"), 2),
               fmt_fixed(metric_of(runner, c.job, "ipc"), 2),
               fmt_fixed(miss - baseline_miss(c.variant), 2)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Headline: how much of the paper's layout gap (orig miss% minus STC
  // miss%, Table 3) survives multiprogramming under each variant, and how
  // much of the erosion the per-mix-partitioned CFA claws back.
  double deg_orig = 0.0, deg_ops = 0.0, deg_part = 0.0;
  double gap_ops = 0.0, gap_part = 0.0, recover = 0.0;
  std::size_t multi = 0;
  for (const auto& comp : grid) {
    if (comp->tenants == 1) continue;
    ++multi;
    const double orig_miss = cell_miss(&variants[0], comp.get());
    const double ops_miss = cell_miss(&variants[1], comp.get());
    const double part_miss = cell_miss(&variants[2], comp.get());
    deg_orig += orig_miss - baseline_miss(&variants[0]);
    deg_ops += ops_miss - baseline_miss(&variants[1]);
    deg_part += part_miss - baseline_miss(&variants[2]);
    gap_ops += orig_miss - ops_miss;
    gap_part += orig_miss - part_miss;
    recover += ops_miss - part_miss;
  }
  if (multi > 0) {
    deg_orig /= multi;
    deg_ops /= multi;
    deg_part /= multi;
    gap_ops /= multi;
    gap_part /= multi;
    recover /= multi;
  }
  const double gap_single =
      baseline_miss(&variants[0]) - baseline_miss(&variants[1]);
  runner.meta("avg_degradation_orig", deg_orig);
  runner.meta("avg_degradation_ops", deg_ops);
  runner.meta("avg_degradation_ops_part", deg_part);
  runner.meta("gap_single_tenant", gap_single);
  runner.meta("avg_gap_ops", gap_ops);
  runner.meta("avg_gap_ops_part", gap_part);
  runner.meta("avg_recovery_ops_part", recover);
  std::printf(
      "\nLayout gap (orig - STC miss%%): %.2f single-tenant; under "
      "multiprogramming the\nshared ops layout keeps %.2f and the "
      "mix-partitioned CFA keeps %.2f —\npartitioning claws back %+.2f "
      "miss%% points of the eroded gap (avg over %zu\nmulti-tenant cells). "
      "Per-layout degradation vs 1 tenant: orig %+.2f, ops %+.2f,\n"
      "ops-part %+.2f. The worst%% column tracks the worst-off tenant: the "
      "sub-windows\nare demand-weighted, so the minority mix's guaranteed "
      "share is small.\n",
      gap_single, gap_ops, gap_part, recover, multi, deg_orig, deg_ops,
      deg_part);

  return bench::write_report(runner);
}
