// Extension bench: the paper's Section 8 question — does the Software Trace
// Cache help OLTP workloads, and does a layout trained on DSS carry over?
//
// Compares, for the DSS Test set and an OLTP transaction mix:
//   - the original layout,
//   - the ops layout trained on the DSS Training set (the paper's setup),
//   - the ops layout trained on the *matching* workload.
#include <cstdio>

#include "bench/common.h"
#include "core/stc_layout.h"
#include "db/tpcd/oltp.h"
#include "workload/streams.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Extension: OLTP workload and profile portability",
                      env, setup);

  const std::uint32_t cache = 2048;
  const std::uint32_t cfa = 512;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};
  const auto& image = setup.image();

  auto runner = bench::make_runner("oltp_compare", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.meta("cfa_bytes", std::uint64_t{cfa});

  // ---- record the OLTP trace (btree database, index-driven mix) ----------
  // The recording itself lives in src/workload/streams (shared with the
  // multi-tenant composer); this bench only picks the transaction count.
  trace::BlockTrace oltp_trace;
  profile::Profile oltp_profile(image);
  runner.time_phase("oltp_record", [&] {
    db::tpcd::OltpConfig config;
    config.transactions = 800;
    const auto stats = workload::record_oltp_stream(setup.btree(), config,
                                                    oltp_trace, &oltp_profile);
    std::printf("OLTP mix: %llu order-status, %llu stock-check, %llu "
                "new-order; %llu rows read, %llu inserted; %llu block "
                "events\n\n",
                static_cast<unsigned long long>(stats.order_status),
                static_cast<unsigned long long>(stats.stock_checks),
                static_cast<unsigned long long>(stats.new_orders),
                static_cast<unsigned long long>(stats.rows_read),
                static_cast<unsigned long long>(stats.rows_inserted),
                static_cast<unsigned long long>(oltp_trace.num_events()));
  });
  runner.meta("oltp_events", oltp_trace.num_events());

  // ---- layouts --------------------------------------------------------------
  cfg::AddressMap ops_oltp;
  runner.time_phase("layouts", [&] {
    setup.layout(core::LayoutKind::kOrig, 0, 0);
    setup.layout(core::LayoutKind::kStcOps, cache, cfa);
    core::StcParams params;
    params.cache_bytes = cache;
    params.cfa_bytes = cfa;
    ops_oltp =
        core::stc_layout(profile::WeightedCFG::from_profile(oltp_profile),
                         core::SeedKind::kOps, params)
            .layout;
  });
  const auto& orig = setup.layout(core::LayoutKind::kOrig, 0, 0);
  const auto& ops_dss = setup.layout(core::LayoutKind::kStcOps, cache, cfa);

  // One job per (workload, layout): miss rate, SEQ.3 bandwidth and
  // sequentiality over the same trace/layout pair.
  struct Row {
    const char* workload;
    const trace::BlockTrace* trace;
    const char* layout_name;
    const cfg::AddressMap* layout;
  };
  const Row rows[] = {
      {"DSS test", &setup.test_trace(), "orig", &orig},
      {"DSS test", &setup.test_trace(), "ops (DSS-trained)", &ops_dss},
      {"DSS test", &setup.test_trace(), "ops (OLTP-trained)", &ops_oltp},
      {"OLTP", &oltp_trace, "orig", &orig},
      {"OLTP", &oltp_trace, "ops (DSS-trained)", &ops_dss},
      {"OLTP", &oltp_trace, "ops (OLTP-trained)", &ops_oltp},
  };
  std::vector<std::size_t> jobs;
  for (const Row& row : rows) {
    jobs.push_back(runner.add(
        std::string(row.workload) + " / " + row.layout_name,
        {{"workload", row.workload}, {"layout", row.layout_name}},
        [&image, dm, trace = row.trace, layout = row.layout] {
          ExperimentResult result =
              bench::measure_miss(*trace, image, *layout, dm);
          const auto fetch = bench::measure_seq3(*trace, image, *layout, dm);
          result.metric("ipc", fetch.metric("ipc"));
          result.counters().merge(fetch.counters());
          const auto seq = bench::measure_seq(*trace, image, *layout);
          result.metric("insn_per_taken", seq.metric("insn_per_taken"));
          return result;
        }));
  }
  runner.run();

  TextTable table;
  table.header({"workload", "layout", "miss%", "IPC", "insn/taken"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    table.row({rows[i].workload, rows[i].layout_name,
               fmt_fixed(runner.metric_or(jobs[i], "miss_pct"), 2),
               fmt_fixed(runner.metric_or(jobs[i], "ipc"), 2),
               fmt_fixed(runner.metric_or(jobs[i], "insn_per_taken"), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nThe DSS-trained layout carries most of its benefit over to OLTP\n"
      "(the hot kernel below the Executor is shared); training on the\n"
      "matching workload closes the remaining gap.\n");

  return bench::write_report(runner);
}
