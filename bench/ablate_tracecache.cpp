// Ablation: trace-cache capacity sweep, original vs ops layout. The paper's
// observation: a Trace Cache alone cannot remember all executed sequences
// (52% of fetches fell back to sequential fetching), while the software
// layout uses the whole memory space as a trace store; hardware capacity
// therefore matters much less once the code is reordered.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: trace cache entries (4K i-cache)", env,
                      setup);

  const std::uint32_t cache = 4096;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};

  auto runner = bench::make_runner("ablate_tracecache", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.time_phase("layouts", [&] {
    setup.layout(LayoutKind::kOrig, 0, 0);
    setup.layout(LayoutKind::kStcOps, cache, cache / 4);
  });
  const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
  const auto& ops = setup.layout(LayoutKind::kStcOps, cache, cache / 4);

  const std::uint32_t entry_sweep[] = {16, 64, 256, 1024};
  struct Row {
    std::size_t orig_job;
    std::size_t ops_job;
    std::uint64_t tc_bytes;
  };
  std::vector<Row> rows;
  for (const std::uint32_t entries : entry_sweep) {
    sim::TraceCacheParams tc;
    tc.entries = entries;
    Row row;
    row.tc_bytes = tc.capacity_bytes();
    row.orig_job = runner.add(
        fmt_count(entries) + " orig",
        {{"tc_entries", std::to_string(entries)}, {"layout", "orig"}},
        [&setup, &orig, dm, tc] {
          return bench::measure_tc(setup, orig, dm, tc);
        });
    row.ops_job = runner.add(
        fmt_count(entries) + " ops",
        {{"tc_entries", std::to_string(entries)}, {"layout", "ops"}},
        [&setup, &ops, dm, tc] {
          return bench::measure_tc(setup, ops, dm, tc);
        });
    rows.push_back(row);
  }
  const std::size_t seq_job =
      runner.add("seq3 ops", {{"layout", "ops"}}, [&setup, &ops, dm] {
        return bench::measure_seq3(setup, ops, dm);
      });
  runner.run();

  TextTable table;
  table.header({"TC entries", "TC bytes", "orig IPC", "orig TC hit%",
                "ops IPC", "ops TC hit%"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t orig = rows[i].orig_job;
    const std::size_t ops = rows[i].ops_job;
    table.row({fmt_count(entry_sweep[i]), fmt_size(rows[i].tc_bytes),
               fmt_fixed(runner.metric_or(orig, "ipc"), 2),
               fmt_percent(runner.metric_or(orig, "tc_hit_pct") / 100.0),
               fmt_fixed(runner.metric_or(ops, "ipc"), 2),
               fmt_percent(runner.metric_or(ops, "tc_hit_pct") / 100.0)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nSEQ.3 alone on the ops layout: %.2f IPC - the software trace cache\n"
      "provides a strong back-up on trace-cache misses (Section 6).\n",
      runner.metric_or(seq_job, "ipc"));

  return bench::write_report(runner);
}
