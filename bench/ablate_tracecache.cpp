// Ablation: trace-cache capacity sweep, original vs ops layout. The paper's
// observation: a Trace Cache alone cannot remember all executed sequences
// (52% of fetches fell back to sequential fetching), while the software
// layout uses the whole memory space as a trace store; hardware capacity
// therefore matters much less once the code is reordered.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: trace cache entries (4K i-cache)", env,
                      setup);

  const std::uint32_t cache = 4096;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};
  const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
  const auto& ops = setup.layout(LayoutKind::kStcOps, cache, cache / 4);

  TextTable table;
  table.header({"TC entries", "TC bytes", "orig IPC", "orig TC hit%",
                "ops IPC", "ops TC hit%"});
  for (std::uint32_t entries : {16u, 64u, 256u, 1024u}) {
    sim::TraceCacheParams tc;
    tc.entries = entries;
    sim::FetchParams params;
    sim::ICache c1(dm);
    const auto r_orig = sim::run_trace_cache(setup.test_trace(), setup.image(),
                                             orig, params, tc, &c1);
    sim::ICache c2(dm);
    const auto r_ops = sim::run_trace_cache(setup.test_trace(), setup.image(),
                                            ops, params, tc, &c2);
    table.row({fmt_count(entries), fmt_size(tc.capacity_bytes()),
               fmt_fixed(r_orig.ipc(), 2),
               fmt_percent(r_orig.tc_hit_ratio()),
               fmt_fixed(r_ops.ipc(), 2), fmt_percent(r_ops.tc_hit_ratio())});
  }
  std::fputs(table.render().c_str(), stdout);

  sim::FetchParams params;
  sim::ICache c(dm);
  const double seq_ops =
      sim::run_seq3(setup.test_trace(), setup.image(), ops, params, &c).ipc();
  std::printf(
      "\nSEQ.3 alone on the ops layout: %.2f IPC - the software trace cache\n"
      "provides a strong back-up on trace-cache misses (Section 6).\n",
      seq_ops);
  return 0;
}
