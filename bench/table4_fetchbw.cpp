// Reproduces Table 4: fetch bandwidth (instructions per cycle) of the SEQ.3
// fetch unit with perfect branch prediction and a 5-cycle miss penalty, for
// every layout over the cache/CFA sweep; the Ideal row uses a perfect
// i-cache; the last two columns give the Trace Cache alone (orig layout) and
// combined with the ops layout.
//
// Headline paper numbers: orig 5.8 -> ops 10.6 at the largest cache;
// Trace Cache alone 8.6 -> 12.1 combined; instructions between taken
// branches 8.9 -> 22.4. Cells run as one ExperimentRunner grid.
#include <array>
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 4: SEQ.3 fetch bandwidth (Test set)", env, setup);

  sim::TraceCacheParams tc;
  tc.entries = 64;  // 64 x 16 insns x 4B = 4KB, scaled like the cache axis

  auto runner = bench::make_runner("table4_fetchbw", env, setup);

  // Prebuild layouts (the parallel phase must be read-only).
  const auto sweep = env.cfa_sweep();
  runner.time_phase("layouts", [&] {
    for (const bench::CfaPoint& point : sweep) {
      for (LayoutKind kind : {LayoutKind::kTorrellas, LayoutKind::kStcAuto,
                              LayoutKind::kStcOps}) {
        setup.layout(kind, point.cache_bytes, point.cfa_bytes);
      }
    }
    setup.layout(LayoutKind::kOrig, 0, 0);
    setup.layout(LayoutKind::kPettisHansen, 0, 0);
    setup.layout(LayoutKind::kStcAuto, 4096, 1024);
    setup.layout(LayoutKind::kStcOps, 4096, 1024);
  });

  // Columns: orig P&H Torr auto ops TC TC+ops.
  struct CellRef {
    std::size_t job;
    std::size_t row;  // 0 = Ideal, 1.. = sweep rows
    std::size_t column;
  };
  std::vector<CellRef> refs;
  std::vector<std::array<double, 7>> values(sweep.size() + 1);
  std::vector<bool> leads_cache(sweep.size() + 1, true);

  const auto add = [&](std::size_t row, std::size_t column, std::string name,
                       std::vector<std::pair<std::string, std::string>> params,
                       std::function<ExperimentResult()> job) {
    const std::size_t index =
        runner.add(std::move(name), std::move(params), std::move(job));
    refs.push_back({index, row, column});
  };

  // ---- Ideal row (perfect i-cache) ---------------------------------------
  {
    const sim::CacheGeometry any{8192, env.line_bytes, 1};
    const struct {
      LayoutKind kind;
      const char* label;
    } kinds[] = {{LayoutKind::kOrig, "orig"},
                 {LayoutKind::kPettisHansen, "ph"},
                 {LayoutKind::kTorrellas, "torr"},
                 {LayoutKind::kStcAuto, "auto"},
                 {LayoutKind::kStcOps, "ops"}};
    for (std::size_t k = 0; k < 5; ++k) {
      const auto& layout = setup.layout(kinds[k].kind, 4096, 1024);
      add(0, k, std::string("Ideal ") + kinds[k].label,
          {{"row", "ideal"}, {"layout", kinds[k].label}},
          [&setup, &layout, any] {
            return bench::measure_seq3(setup, layout, any, true);
          });
    }
    const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
    add(0, 5, "Ideal tc", {{"row", "ideal"}, {"layout", "tc"}},
        [&setup, &orig, any, tc] {
          return bench::measure_tc(setup, orig, any, tc, true);
        });
    const auto& ops = setup.layout(LayoutKind::kStcOps, 4096, 1024);
    add(0, 6, "Ideal tc+ops", {{"row", "ideal"}, {"layout", "tc+ops"}},
        [&setup, &ops, any, tc] {
          return bench::measure_tc(setup, ops, any, tc, true);
        });
  }

  // ---- realistic rows ------------------------------------------------------
  std::uint32_t last_cache = 0;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const bench::CfaPoint point = sweep[r];
    const sim::CacheGeometry dm{point.cache_bytes, env.line_bytes, 1};
    leads_cache[r + 1] = point.cache_bytes != last_cache;
    last_cache = point.cache_bytes;
    const std::string cell =
        fmt_size(point.cache_bytes) + "/" + fmt_size(point.cfa_bytes);
    const auto params = [&point](const char* layout) {
      return std::vector<std::pair<std::string, std::string>>{
          {"cache_bytes", std::to_string(point.cache_bytes)},
          {"cfa_bytes", std::to_string(point.cfa_bytes)},
          {"layout", layout}};
    };
    if (leads_cache[r + 1]) {
      const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
      add(r + 1, 0, cell + " orig", params("orig"), [&setup, &orig, dm] {
        return bench::measure_seq3(setup, orig, dm);
      });
      const auto& ph = setup.layout(LayoutKind::kPettisHansen, 0, 0);
      add(r + 1, 1, cell + " ph", params("ph"), [&setup, &ph, dm] {
        return bench::measure_seq3(setup, ph, dm);
      });
      add(r + 1, 5, cell + " tc", params("tc"), [&setup, &orig, dm, tc] {
        return bench::measure_tc(setup, orig, dm, tc);
      });
    }
    const struct {
      LayoutKind kind;
      const char* label;
    } kinds[] = {{LayoutKind::kTorrellas, "torr"},
                 {LayoutKind::kStcAuto, "auto"},
                 {LayoutKind::kStcOps, "ops"}};
    for (std::size_t k = 0; k < 3; ++k) {
      const auto& layout =
          setup.layout(kinds[k].kind, point.cache_bytes, point.cfa_bytes);
      add(r + 1, 2 + k, cell + " " + kinds[k].label, params(kinds[k].label),
          [&setup, &layout, dm] {
            return bench::measure_seq3(setup, layout, dm);
          });
    }
    const auto& ops =
        setup.layout(LayoutKind::kStcOps, point.cache_bytes, point.cfa_bytes);
    add(r + 1, 6, cell + " tc+ops", params("tc+ops"), [&setup, &ops, dm, tc] {
      return bench::measure_tc(setup, ops, dm, tc);
    });
  }

  // ---- headline cells ------------------------------------------------------
  const std::uint32_t big = env.cache_sizes().back();
  const sim::CacheGeometry big_dm{big, env.line_bytes, 1};
  const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
  const auto& big_ops = setup.layout(LayoutKind::kStcOps, big, big / 4);
  const std::size_t seq_orig_job =
      runner.add("headline seq orig", {{"layout", "orig"}},
                 [&] { return bench::measure_seq(setup, orig); });
  const std::size_t seq_ops_job =
      runner.add("headline seq ops", {{"layout", "ops"}},
                 [&] { return bench::measure_seq(setup, big_ops); });
  const std::size_t bw_orig_job =
      runner.add("headline seq3 orig", {{"layout", "orig"}},
                 [&] { return bench::measure_seq3(setup, orig, big_dm); });
  const std::size_t bw_ops_job =
      runner.add("headline seq3 ops", {{"layout", "ops"}},
                 [&] { return bench::measure_seq3(setup, big_ops, big_dm); });
  const std::size_t tc_orig_job =
      runner.add("headline tc orig", {{"layout", "orig"}},
                 [&] { return bench::measure_tc(setup, orig, big_dm, tc); });
  const std::size_t tc_ops_job =
      runner.add("headline tc ops", {{"layout", "ops"}}, [&] {
        return bench::measure_tc(setup, big_ops, big_dm, tc);
      });

  runner.run();
  for (const CellRef& ref : refs) {
    values[ref.row][ref.column] = runner.metric_or(ref.job, "ipc");
  }

  // ---- render ----------------------------------------------------------------
  TextTable table;
  table.header({"i-cache/CFA", "orig", "P&H", "Torr", "auto", "ops",
                "TC(" + fmt_size(tc.capacity_bytes()) + ")", "TC+ops"});
  {
    std::vector<std::string> cells{"Ideal"};
    for (std::size_t c = 0; c < 7; ++c) cells.push_back(fmt_fixed(values[0][c], 1));
    table.row(std::move(cells));
    table.separator();
  }
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const bench::CfaPoint point = sweep[r];
    std::vector<std::string> cells{fmt_size(point.cache_bytes) + "/" +
                                   fmt_size(point.cfa_bytes)};
    for (std::size_t c = 0; c < 7; ++c) {
      const bool geometry_free = c <= 1 || c == 5;
      if (geometry_free && !leads_cache[r + 1]) {
        cells.push_back("-");
      } else {
        cells.push_back(fmt_fixed(values[r + 1][c], 1));
      }
    }
    table.row(std::move(cells));
    if (point.cfa_bytes * 4 >= point.cache_bytes * 3) table.separator();
  }
  std::fputs(table.render().c_str(), stdout);

  // ---- headline metrics --------------------------------------------------------
  std::printf(
      "\ninstructions between taken branches: %.1f -> %.1f  (paper: 8.9 -> "
      "22.4)\n",
      runner.metric_or(seq_orig_job, "insn_per_taken"),
      runner.metric_or(seq_ops_job, "insn_per_taken"));
  std::printf("SEQ.3 fetch bandwidth at %s:      %.1f -> %.1f  (paper: 5.8 -> "
              "10.6)\n",
              fmt_size(big).c_str(), runner.metric_or(bw_orig_job, "ipc"),
              runner.metric_or(bw_ops_job, "ipc"));
  std::printf("Trace Cache alone vs TC + ops:      %.1f -> %.1f  (paper: 8.6 "
              "-> 12.1)\n",
              runner.metric_or(tc_orig_job, "ipc"),
              runner.metric_or(tc_ops_job, "ipc"));

  return bench::write_report(runner);
}
