// Reproduces Table 4: fetch bandwidth (instructions per cycle) of the SEQ.3
// fetch unit with perfect branch prediction and a 5-cycle miss penalty, for
// every layout over the cache/CFA sweep; the Ideal row uses a perfect
// i-cache; the last two columns give the Trace Cache alone (orig layout) and
// combined with the ops layout.
//
// Headline paper numbers: orig 5.8 -> ops 10.6 at the largest cache;
// Trace Cache alone 8.6 -> 12.1 combined; instructions between taken
// branches 8.9 -> 22.4. Independent cells run concurrently.
#include <cstdio>
#include <functional>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 4: SEQ.3 fetch bandwidth (Test set)", env, setup);

  sim::TraceCacheParams tc;
  tc.entries = 64;  // 64 x 16 insns x 4B = 4KB, scaled like the cache axis

  // Prebuild layouts (the parallel phase must be read-only).
  const auto sweep = env.cfa_sweep();
  for (const bench::CfaPoint& point : sweep) {
    for (LayoutKind kind :
         {LayoutKind::kTorrellas, LayoutKind::kStcAuto, LayoutKind::kStcOps}) {
      setup.layout(kind, point.cache_bytes, point.cfa_bytes);
    }
  }
  setup.layout(LayoutKind::kOrig, 0, 0);
  setup.layout(LayoutKind::kPettisHansen, 0, 0);
  setup.layout(LayoutKind::kStcAuto, 4096, 1024);
  setup.layout(LayoutKind::kStcOps, 4096, 1024);

  // Columns: orig P&H Torr auto ops TC TC+ops.
  std::vector<std::function<double()>> jobs;
  struct CellRef {
    std::size_t row;  // 0 = Ideal, 1.. = sweep rows
    std::size_t column;
  };
  std::vector<CellRef> refs;
  std::vector<std::array<double, 7>> values(sweep.size() + 1);
  std::vector<bool> leads_cache(sweep.size() + 1, true);

  const auto add = [&](std::size_t row, std::size_t column,
                       std::function<double()> job) {
    jobs.push_back(std::move(job));
    refs.push_back({row, column});
  };

  // ---- Ideal row (perfect i-cache) ---------------------------------------
  {
    const sim::CacheGeometry any{8192, env.line_bytes, 1};
    const LayoutKind kinds[] = {LayoutKind::kOrig, LayoutKind::kPettisHansen,
                                LayoutKind::kTorrellas, LayoutKind::kStcAuto,
                                LayoutKind::kStcOps};
    for (std::size_t k = 0; k < 5; ++k) {
      const auto& layout = setup.layout(kinds[k], 4096, 1024);
      add(0, k, [&setup, &layout, any] {
        return bench::seq3_ipc(setup, layout, any, true);
      });
    }
    const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
    add(0, 5, [&setup, &orig, any, tc] {
      return bench::tc_ipc(setup, orig, any, tc, true);
    });
    const auto& ops = setup.layout(LayoutKind::kStcOps, 4096, 1024);
    add(0, 6, [&setup, &ops, any, tc] {
      return bench::tc_ipc(setup, ops, any, tc, true);
    });
  }

  // ---- realistic rows ------------------------------------------------------
  std::uint32_t last_cache = 0;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const bench::CfaPoint point = sweep[r];
    const sim::CacheGeometry dm{point.cache_bytes, env.line_bytes, 1};
    leads_cache[r + 1] = point.cache_bytes != last_cache;
    last_cache = point.cache_bytes;
    if (leads_cache[r + 1]) {
      const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
      add(r + 1, 0,
          [&setup, &orig, dm] { return bench::seq3_ipc(setup, orig, dm); });
      const auto& ph = setup.layout(LayoutKind::kPettisHansen, 0, 0);
      add(r + 1, 1,
          [&setup, &ph, dm] { return bench::seq3_ipc(setup, ph, dm); });
      add(r + 1, 5, [&setup, &orig, dm, tc] {
        return bench::tc_ipc(setup, orig, dm, tc);
      });
    }
    const LayoutKind kinds[] = {LayoutKind::kTorrellas, LayoutKind::kStcAuto,
                                LayoutKind::kStcOps};
    for (std::size_t k = 0; k < 3; ++k) {
      const auto& layout =
          setup.layout(kinds[k], point.cache_bytes, point.cfa_bytes);
      add(r + 1, 2 + k,
          [&setup, &layout, dm] { return bench::seq3_ipc(setup, layout, dm); });
    }
    const auto& ops =
        setup.layout(LayoutKind::kStcOps, point.cache_bytes, point.cfa_bytes);
    add(r + 1, 6, [&setup, &ops, dm, tc] {
      return bench::tc_ipc(setup, ops, dm, tc);
    });
  }

  const std::vector<double> results = bench::parallel_cells(jobs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    values[refs[i].row][refs[i].column] = results[i];
  }

  // ---- render ----------------------------------------------------------------
  TextTable table;
  table.header({"i-cache/CFA", "orig", "P&H", "Torr", "auto", "ops",
                "TC(" + fmt_size(tc.capacity_bytes()) + ")", "TC+ops"});
  {
    std::vector<std::string> cells{"Ideal"};
    for (std::size_t c = 0; c < 7; ++c) cells.push_back(fmt_fixed(values[0][c], 1));
    table.row(std::move(cells));
    table.separator();
  }
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const bench::CfaPoint point = sweep[r];
    std::vector<std::string> cells{fmt_size(point.cache_bytes) + "/" +
                                   fmt_size(point.cfa_bytes)};
    for (std::size_t c = 0; c < 7; ++c) {
      const bool geometry_free = c <= 1 || c == 5;
      if (geometry_free && !leads_cache[r + 1]) {
        cells.push_back("-");
      } else {
        cells.push_back(fmt_fixed(values[r + 1][c], 1));
      }
    }
    table.row(std::move(cells));
    if (point.cfa_bytes * 4 >= point.cache_bytes * 3) table.separator();
  }
  std::fputs(table.render().c_str(), stdout);

  // ---- headline metrics --------------------------------------------------------
  const std::uint32_t big = env.cache_sizes().back();
  const auto& orig = setup.layout(LayoutKind::kOrig, 0, 0);
  const auto& ops = setup.layout(LayoutKind::kStcOps, big, big / 4);
  const auto seq_orig =
      trace::measure_sequentiality(setup.test_trace(), setup.image(), orig);
  const auto seq_ops =
      trace::measure_sequentiality(setup.test_trace(), setup.image(), ops);
  const sim::CacheGeometry dm{big, env.line_bytes, 1};
  std::printf(
      "\ninstructions between taken branches: %.1f -> %.1f  (paper: 8.9 -> "
      "22.4)\n",
      seq_orig.insns_between_taken_branches(),
      seq_ops.insns_between_taken_branches());
  std::printf("SEQ.3 fetch bandwidth at %s:      %.1f -> %.1f  (paper: 5.8 -> "
              "10.6)\n",
              fmt_size(big).c_str(), bench::seq3_ipc(setup, orig, dm),
              bench::seq3_ipc(setup, ops, dm));
  std::printf("Trace Cache alone vs TC + ops:      %.1f -> %.1f  (paper: 8.6 "
              "-> 12.1)\n",
              bench::tc_ipc(setup, orig, dm, tc),
              bench::tc_ipc(setup, ops, dm, tc));
  return 0;
}
