// Shared harness for the table/figure reproduction benches.
//
// Every bench binary rebuilds the paper's experimental setup: the Btree and
// Hash TPC-D databases, the Training-set profile (queries 3,4,5,6,9 on the
// Btree database) and the Test-set trace (queries 2,3,4,6,11,12,13,14,15,17
// on both databases). Environment knobs:
//   STC_SF        - TPC-D scale factor             (default 0.002)
//   STC_SEED      - generator seed                 (default 19990401)
//   STC_LINE      - cache line bytes               (default 32)
//   STC_THREADS   - experiment grid workers        (default hardware)
//   STC_BENCH_DIR - directory for BENCH_*.json     (default cwd)
//   STC_VERIFY    - 1 runs every cell under the layout-equivalence oracle
//                   (src/verify; see VERIFY.md) and aborts on any violation
//   STC_BPRED     - front-end predictor (perfect|always|bimodal|gshare|
//                   local; default perfect). A realistic kind routes every
//                   SEQ.3/trace-cache cell through the speculative front end
//                   (src/frontend) with FDIP prefetching enabled
//   STC_FTQ_DEPTH - fetch-target queue depth in lines (default 8);
//                   0 disables prefetching
//   STC_JOB_TIMEOUT - per-job deadline in seconds (default 0 = off); an
//                   overrunning job is recorded as timed_out, not aborted
//   STC_JOB_RETRIES - extra attempts per failed job (default 1)
//   STC_REPLAY    - trace replay engine: interp|batched|compiled|auto
//                   (default auto = compiled). Non-interp modes route every
//                   cell through a pre-built replay plan (src/sim/replay.h);
//                   counters stay bit-identical to the interpreter (the
//                   oracle's check_replay_modes proves it, and STC_VERIFY=1
//                   re-checks every planned cell in-process)
//   STC_BACKEND   - execution back end: off|inorder|ooo (default off).
//                   off keeps every bench byte-identical to the
//                   fetch-bandwidth baseline; inorder/ooo route every SEQ.3
//                   cell through the full pipeline (src/backend) and the
//                   "ipc" metric becomes retired-instructions-per-cycle
//                   under the unified fetch+execute clock
//   STC_IQ_DEPTH  - back-end issue-queue entries (default 16)
//   STC_ROB_DEPTH - back-end reorder-buffer entries (default 64)
//   STC_FAULT     - fault-injection spec, e.g. trace.load.chunk:3 (VERIFY.md)
//   STC_TENANTS   - multi-tenant composer: number of client streams
//                   (default 4; ablate_multitenant, replay_throughput)
//   STC_QUANTUM   - composer scheduler quantum in block events per slice
//                   (default 1000; 0 = run-to-completion)
//   STC_ARRIVAL   - composer arrival model: rr|poisson|bursty|diurnal
//                   (default poisson)
//   STC_TENANT_MIX- comma list of per-tenant mixes, assigned round-robin:
//                   dss|dss_train|oltp (default dss,oltp)
//   STC_SHARDS    - worker processes for the bench grid (default 1). With
//                   N > 1 the binary re-executes itself N times, each worker
//                   runs a modulo slice of the grid and writes a report
//                   fragment, and the parent merges them into one report
//                   byte-identical (outside timing fields) to STC_SHARDS=1
//   STC_MMAP      - 1 streams on-disk traces through mmap, 0 forces buffered
//                   reads (default 1; scale_sweep's streaming cells)
//   STC_PLAN_CACHE_DIR - directory for the on-disk compiled replay-plan
//                   cache (default unset = rebuild plans in-process)
//   STC_RESUME    - 1 resumes a killed/crashed run from BENCH_<name>.journal,
//                   re-running only the cells the journal does not cover; the
//                   finished report is byte-identical to an uninterrupted run
//                   (default 0 = start fresh, stale journals are discarded)
//   STC_HEARTBEAT - sharded runs: seconds a worker's journal may stall before
//                   the parent SIGKILLs it and reassigns its slice within the
//                   STC_JOB_RETRIES budget (default 0 = exit-status-only
//                   supervision)
//   STC_CRASH     - kill-injection spec, same grammar as STC_FAULT: SIGKILL
//                   the process at the Nth hit of a fault point, e.g.
//                   journal.append.write:3 (tools/crash_harness, VERIFY.md)
//   STC_ZERO_TIMINGS - 1 zeroes phase timings in the report so two runs of
//                   the same grid are byte-comparable (default 0)
// Every knob is validated up front (support/env): a malformed value exits 2
// with a structured error instead of silently defaulting.
// The paper's absolute cache sizes (8-64KB) are scaled to this kernel's
// executed footprint: the sweep uses 1-8KB caches, spanning the same ratio
// of hot-code size to cache size as the original (see EXPERIMENTS.md).
//
// Benches declare their measurement grid on an ExperimentRunner (built by
// make_runner), run it, render their ASCII table from the aggregated
// results, and emit the full grid as BENCH_<name>.json via write_report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/pipeline.h"
#include "core/layouts.h"
#include "db/tpcd/workload.h"
#include "frontend/front_end.h"
#include "profile/locality.h"
#include "profile/profile.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/replay.h"
#include "sim/trace_cache.h"
#include "support/experiment.h"
#include "support/table.h"
#include "workload/composer.h"

namespace stc::bench {

struct CfaPoint {
  std::uint32_t cache_bytes;
  std::uint32_t cfa_bytes;
};

struct Env {
  double scale_factor = 0.002;
  std::uint64_t seed = 19990401;
  std::uint32_t line_bytes = 32;

  // Cache sweep mirroring the paper's Table 3/4 rows (cache/CFA in bytes).
  std::vector<CfaPoint> cfa_sweep() const;
  std::vector<std::uint32_t> cache_sizes() const { return {1024, 2048, 4096, 8192}; }

  // Validates every STC_* knob up front (support/env): a malformed value
  // prints a structured error naming the knob and exits 2 before any work.
  static Env from_environment();
};

// The full experimental setup, built once per bench binary.
class Setup {
 public:
  explicit Setup(const Env& env);

  const Env& env() const { return env_; }
  const cfg::ProgramImage& image() const;
  db::Database& btree() { return *btree_; }
  db::Database& hash() { return *hash_; }
  const profile::Profile& training_profile() const { return *profile_; }
  const trace::BlockTrace& training_trace() const { return training_; }
  const trace::BlockTrace& test_trace() const { return test_; }
  const profile::WeightedCFG& wcfg() const { return *wcfg_; }

  // Wall-clock spent building the databases ("setup" phase) and recording
  // the training/test workload traces ("workload" phase).
  double setup_seconds() const { return setup_seconds_; }
  double workload_seconds() const { return workload_seconds_; }

  // Builds (and caches) a layout for the given kind and geometry.
  const cfg::AddressMap& layout(core::LayoutKind kind,
                                std::uint32_t cache_bytes,
                                std::uint32_t cfa_bytes);

 private:
  Env env_;
  std::unique_ptr<db::Database> btree_;
  std::unique_ptr<db::Database> hash_;
  std::unique_ptr<profile::Profile> profile_;
  trace::BlockTrace training_;
  trace::BlockTrace test_;
  std::unique_ptr<profile::WeightedCFG> wcfg_;
  double setup_seconds_ = 0.0;
  double workload_seconds_ = 0.0;
  struct CachedLayout {
    core::LayoutKind kind;
    std::uint32_t cache_bytes;
    std::uint32_t cfa_bytes;
    cfg::AddressMap map;
  };
  // unique_ptr elements keep returned references stable across growth.
  std::vector<std::unique_ptr<CachedLayout>> layouts_;
};

// ---- Measurement cells -----------------------------------------------------
//
// Each returns the cell's headline metric(s) plus the simulator's raw
// counters, ready to hand to ExperimentRunner jobs. Metric names:
//   measure_miss        -> "miss_pct"            (Table 3 metric)
//   measure_seq3        -> "ipc"                 (Table 4 metric)
//   measure_tc          -> "ipc", "tc_hit_pct"
//   measure_seq         -> "insn_per_taken"      (sequentiality headline)
//   measure_seq3_bpred  -> "ipc", "mpki"         (speculative front end)
//   measure_tc_bpred    -> "ipc", "tc_hit_pct", "mpki"
//   measure_seq3_backend-> "ipc" [, "mpki"]      (full execute pipeline)
// The generic overloads take any (trace, image, layout); the Setup overloads
// use the Test trace and kernel image.
//
// measure_seq3/measure_tc honor STC_BPRED (see frontend_params): a realistic
// predictor routes them through the speculative front end; the default
// (perfect) takes the exact baseline code path, keeping Table 3/4 outputs
// byte-identical. A *transparent* FrontEndParams handed to the _bpred cells
// likewise delegates to the baseline simulators, so their fetch counters
// equal the plain cells' and the front-end counters are all zero.
//
// measure_seq3 additionally honors STC_BACKEND (see backend_params): with a
// non-off kind it routes through measure_seq3_backend, whose "ipc" is
// retired instructions per unified-pipeline cycle. "mpki" appears only when
// the front end is realistic (non-transparent), matching the _bpred cells.

ExperimentResult measure_miss(const trace::BlockTrace& trace,
                              const cfg::ProgramImage& image,
                              const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              std::uint32_t victim_lines = 0);
ExperimentResult measure_seq3(const trace::BlockTrace& trace,
                              const cfg::ProgramImage& image,
                              const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              bool perfect = false);
ExperimentResult measure_tc(const trace::BlockTrace& trace,
                            const cfg::ProgramImage& image,
                            const cfg::AddressMap& layout,
                            const sim::CacheGeometry& geometry,
                            const sim::TraceCacheParams& tc,
                            bool perfect = false);
ExperimentResult measure_seq(const trace::BlockTrace& trace,
                             const cfg::ProgramImage& image,
                             const cfg::AddressMap& layout);
ExperimentResult measure_seq3_bpred(const trace::BlockTrace& trace,
                                    const cfg::ProgramImage& image,
                                    const cfg::AddressMap& layout,
                                    const sim::CacheGeometry& geometry,
                                    const frontend::FrontEndParams& fe,
                                    bool perfect = false);
ExperimentResult measure_tc_bpred(const trace::BlockTrace& trace,
                                  const cfg::ProgramImage& image,
                                  const cfg::AddressMap& layout,
                                  const sim::CacheGeometry& geometry,
                                  const sim::TraceCacheParams& tc,
                                  const frontend::FrontEndParams& fe,
                                  bool perfect = false);
ExperimentResult measure_seq3_backend(const trace::BlockTrace& trace,
                                      const cfg::ProgramImage& image,
                                      const cfg::AddressMap& layout,
                                      const sim::CacheGeometry& geometry,
                                      const frontend::FrontEndParams& fe,
                                      const backend::BackendParams& bp,
                                      bool perfect = false);

// Tenant-attributed miss rate over a composed multi-tenant trace
// (src/workload): one pass through a shared cache, attributing every line
// probe, miss and instruction to the tenant whose provenance segment covers
// the event. Metrics: "miss_pct" (aggregate, equal to measure_miss on the
// composed trace), "miss_pct_t<i>" per tenant, and "worst_miss_pct" (the
// highest per-tenant rate) — the fairness number the tenant-partitioned CFA
// targets. Under STC_VERIFY the per-tenant counters are re-summed against
// an independent run_missrate pass.
ExperimentResult measure_tenant_miss(const workload::ComposedTrace& composed,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     const sim::CacheGeometry& geometry);

ExperimentResult measure_miss(Setup& setup, const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              std::uint32_t victim_lines = 0);
ExperimentResult measure_seq3(Setup& setup, const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              bool perfect = false);
ExperimentResult measure_tc(Setup& setup, const cfg::AddressMap& layout,
                            const sim::CacheGeometry& geometry,
                            const sim::TraceCacheParams& tc,
                            bool perfect = false);
ExperimentResult measure_seq(Setup& setup, const cfg::AddressMap& layout);
ExperimentResult measure_seq3_bpred(Setup& setup, const cfg::AddressMap& layout,
                                    const sim::CacheGeometry& geometry,
                                    const frontend::FrontEndParams& fe,
                                    bool perfect = false);
ExperimentResult measure_tc_bpred(Setup& setup, const cfg::AddressMap& layout,
                                  const sim::CacheGeometry& geometry,
                                  const sim::TraceCacheParams& tc,
                                  const frontend::FrontEndParams& fe,
                                  bool perfect = false);
ExperimentResult measure_seq3_backend(Setup& setup,
                                      const cfg::AddressMap& layout,
                                      const sim::CacheGeometry& geometry,
                                      const frontend::FrontEndParams& fe,
                                      const backend::BackendParams& bp,
                                      bool perfect = false);

// The process-wide front-end configuration from STC_BPRED/STC_FTQ_DEPTH
// (read once). transparent() for the default environment.
const frontend::FrontEndParams& frontend_params();

// The process-wide back-end configuration from STC_BACKEND/STC_IQ_DEPTH/
// STC_ROB_DEPTH (read once). off() for the default environment.
const backend::BackendParams& backend_params();

// ---- Replay engine ---------------------------------------------------------

// The process-wide replay mode from STC_REPLAY (read once; "auto" resolves
// to the fastest oracle-identical engine, currently compiled).
sim::ReplayMode replay_mode();

// A memoized replay plan for the triple under replay_mode(), or nullptr when
// the mode is interp or the plan build failed (faultpoint replay.compile) —
// the cell then takes the interpreter path. `line_bytes` selects the
// compiled line tables; 0 builds a layout-only plan (sequentiality).
const sim::ReplayPlan* plan_for(const trace::BlockTrace& trace,
                                const cfg::ProgramImage& image,
                                const cfg::AddressMap& layout,
                                std::uint32_t line_bytes);

// As above, for back-end cells: compiled plans additionally carry per-block
// latency/register tables baked for `backend`, and the cache keys on the
// spec fingerprint so two back-end configurations never share a plan. The
// 4-argument overload is plan_for(..., sim::BackendSpec{}) — no tables.
const sim::ReplayPlan* plan_for(const trace::BlockTrace& trace,
                                const cfg::ProgramImage& image,
                                const cfg::AddressMap& layout,
                                std::uint32_t line_bytes,
                                const sim::BackendSpec& backend);

// One timed replay-throughput cell (bench/replay_throughput.cpp and the
// schema-lock test). Runs the selected simulator over the triple in the
// requested mode, timing the replay loop ("seconds", "events_per_sec") and —
// for plan-backed modes — the plan build ("plan_seconds"). The counters are
// always cross-checked against an untimed interpreter run; a divergence
// throws StatusError so the runner records the cell as failed.
enum class ReplaySimKind { kMissRate, kSequentiality, kSeq3, kTraceCache,
                           kBackend };
const char* to_string(ReplaySimKind kind);
ExperimentResult measure_replay_cell(const trace::BlockTrace& trace,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     const sim::CacheGeometry& geometry,
                                     ReplaySimKind sim_kind,
                                     sim::ReplayMode mode);

// Convenience wrappers extracting the single headline metric.
double miss_pct(Setup& setup, const cfg::AddressMap& layout,
                const sim::CacheGeometry& geometry,
                std::uint32_t victim_lines = 0);
double seq3_ipc(Setup& setup, const cfg::AddressMap& layout,
                const sim::CacheGeometry& geometry, bool perfect = false);
double tc_ipc(Setup& setup, const cfg::AddressMap& layout,
              const sim::CacheGeometry& geometry,
              const sim::TraceCacheParams& tc, bool perfect = false);

// ---- Reporting -------------------------------------------------------------

// Header banner shared by all benches.
void print_banner(const char* title, const Env& env, const Setup& setup);

// An ExperimentRunner named `name`, pre-populated with the environment
// metadata and the Setup's setup/workload phase timings.
ExperimentRunner make_runner(const char* name, const Env& env,
                             const Setup& setup);

// Writes BENCH_<name>.json atomically and prints a one-line confirmation
// footer (plus a failure summary when the grid degraded). Returns the bench
// process exit code: 0 clean, 3 when any job failed (the report records the
// failures), 1 when the report itself could not be written. Bench mains
// `return bench::write_report(runner);`.
int write_report(const ExperimentRunner& runner);

}  // namespace stc::bench
