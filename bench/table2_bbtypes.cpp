// Reproduces Table 2: basic blocks by kind (static and dynamic percentages
// of the executed code) and the fraction that behaves in a fixed way.
// Paper: fall-through 24.4/22.4/100, branch 42.4/50.2/59, call 8/13.7/100,
// return 25.2/13.7/100; ~80% of transitions overall are predictable.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 2: block kinds and execution determinism", env,
                      setup);

  const auto stats = profile::block_type_stats(setup.training_profile());
  TextTable table;
  table.header({"BB Type", "Static", "Dynamic", "Predictable", "(paper)"});
  const auto row = [&](cfg::BlockKind kind, const char* paper) {
    const auto& r = stats.by_kind[static_cast<int>(kind)];
    table.row({cfg::to_string(kind), fmt_percent(r.static_fraction),
               fmt_percent(r.dynamic_fraction), fmt_percent(r.predictable),
               paper});
  };
  row(cfg::BlockKind::kFallThrough, "24.4 / 22.4 / 100%");
  row(cfg::BlockKind::kBranch, "42.4 / 50.2 /  59%");
  row(cfg::BlockKind::kCall, " 8.0 / 13.7 / 100%");
  row(cfg::BlockKind::kReturn, "25.2 / 13.7 / 100%");
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nOverall, %.1f%% of the dynamic block transitions are predictable\n"
      "(paper: ~80%%): executed sequences are deterministic enough to build\n"
      "basic-block traces at compile time (Section 4.2).\n",
      100.0 * stats.overall_predictable);
  return 0;
}
