// Reproduces Table 2: basic blocks by kind (static and dynamic percentages
// of the executed code) and the fraction that behaves in a fixed way.
// Paper: fall-through 24.4/22.4/100, branch 42.4/50.2/59, call 8/13.7/100,
// return 25.2/13.7/100; ~80% of transitions overall are predictable.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 2: block kinds and execution determinism", env,
                      setup);

  const auto stats = profile::block_type_stats(setup.training_profile());

  auto runner = bench::make_runner("table2_bbtypes", env, setup);
  struct KindRow {
    cfg::BlockKind kind;
    const char* paper;
  };
  const KindRow kinds[] = {
      {cfg::BlockKind::kFallThrough, "24.4 / 22.4 / 100%"},
      {cfg::BlockKind::kBranch, "42.4 / 50.2 /  59%"},
      {cfg::BlockKind::kCall, " 8.0 / 13.7 / 100%"},
      {cfg::BlockKind::kReturn, "25.2 / 13.7 / 100%"},
  };
  std::vector<std::size_t> jobs;
  for (const KindRow& row : kinds) {
    jobs.push_back(runner.add(
        cfg::to_string(row.kind), {{"kind", cfg::to_string(row.kind)}},
        [&stats, row] {
          const auto& r = stats.by_kind[static_cast<int>(row.kind)];
          ExperimentResult result;
          result.metric("static_pct", 100.0 * r.static_fraction);
          result.metric("dynamic_pct", 100.0 * r.dynamic_fraction);
          result.metric("predictable_pct", 100.0 * r.predictable);
          return result;
        }));
  }
  const std::size_t overall_job = runner.add("overall", [&stats] {
    ExperimentResult result;
    result.metric("predictable_pct", 100.0 * stats.overall_predictable);
    return result;
  });
  runner.run();

  TextTable table;
  table.header({"BB Type", "Static", "Dynamic", "Predictable", "(paper)"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    table.row({cfg::to_string(kinds[i].kind),
               fmt_percent(runner.metric_or(jobs[i], "static_pct") / 100.0),
               fmt_percent(runner.metric_or(jobs[i], "dynamic_pct") / 100.0),
               fmt_percent(runner.metric_or(jobs[i], "predictable_pct") /
                           100.0),
               kinds[i].paper});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nOverall, %.1f%% of the dynamic block transitions are predictable\n"
      "(paper: ~80%%): executed sequences are deterministic enough to build\n"
      "basic-block traces at compile time (Section 4.2).\n",
      runner.metric_or(overall_job, "predictable_pct"));

  return bench::write_report(runner);
}
