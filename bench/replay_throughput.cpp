// Replay-engine throughput: events/second for every simulator — including
// the full back-end pipeline ("backend", fixed default-ooo machine) — under
// the interp, batched and compiled replay engines over the pinned Test
// trace.
//
// Every cell times its own replay loop (and, for plan-backed modes, the
// plan build) and then re-runs the interpreter untimed to prove the
// counters are bit-identical — a cell that diverges is recorded as a failed
// job, never as a throughput number. The grid runs on a single worker so
// the timings are not distorted by sibling cells.
//
// tools/perf_gate.py consumes this bench's BENCH_replay_throughput.json:
// it checks the batched/compiled speedup ratios over interp against
// bench/perf_baseline.json with a tolerance band, failing CI on a >15%
// throughput regression.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Replay-engine throughput (orig layout, 4K cache)", env,
                      setup);

  const std::uint32_t cache = 4096;
  const sim::CacheGeometry geometry{cache, env.line_bytes, 1};

  auto runner = bench::make_runner("replay_throughput", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.time_phase("layouts", [&] { setup.layout(LayoutKind::kOrig, 0, 0); });
  const cfg::AddressMap& layout = setup.layout(LayoutKind::kOrig, 0, 0);

  const sim::ReplayMode modes[] = {sim::ReplayMode::kInterp,
                                   sim::ReplayMode::kBatched,
                                   sim::ReplayMode::kCompiled};
  const bench::ReplaySimKind kinds[] = {bench::ReplaySimKind::kMissRate,
                                        bench::ReplaySimKind::kSequentiality,
                                        bench::ReplaySimKind::kSeq3,
                                        bench::ReplaySimKind::kTraceCache,
                                        bench::ReplaySimKind::kBackend};
  constexpr std::size_t kNumKinds = std::size(kinds);

  // jobs[kind][mode]
  std::size_t jobs[kNumKinds][3];
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    for (std::size_t m = 0; m < 3; ++m) {
      const bench::ReplaySimKind kind = kinds[k];
      const sim::ReplayMode mode = modes[m];
      jobs[k][m] = runner.add(
          std::string(bench::to_string(kind)) + " " + sim::to_string(mode),
          {{"sim", bench::to_string(kind)}, {"mode", sim::to_string(mode)}},
          [&setup, &layout, geometry, kind, mode] {
            return bench::measure_replay_cell(setup.test_trace(),
                                              setup.image(), layout, geometry,
                                              kind, mode);
          });
    }
  }
  // Single worker: the cells time themselves, so they must not compete for
  // cores with sibling jobs.
  runner.run(1);

  TextTable table;
  table.header({"simulator", "interp ev/s", "batched ev/s", "compiled ev/s",
                "batched x", "compiled x"});
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    const double interp = runner.metric_or(jobs[k][0], "events_per_sec");
    const double batched = runner.metric_or(jobs[k][1], "events_per_sec");
    const double compiled = runner.metric_or(jobs[k][2], "events_per_sec");
    table.row({bench::to_string(kinds[k]), fmt_fixed(interp, 0),
               fmt_fixed(batched, 0), fmt_fixed(compiled, 0),
               fmt_fixed(interp > 0 ? batched / interp : 0.0, 2),
               fmt_fixed(interp > 0 ? compiled / interp : 0.0, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nBatched replay decodes the trace once into a contiguous slab;\n"
      "compiled replay additionally pre-resolves per-block line indices.\n");

  return bench::write_report(runner);
}
