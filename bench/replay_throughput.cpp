// Replay-engine throughput: events/second for every simulator — including
// the full back-end pipeline ("backend", fixed default-ooo machine) — under
// the interp, batched and compiled replay engines over the pinned Test
// trace.
//
// Every cell times its own replay loop (and, for plan-backed modes, the
// plan build) and then re-runs the interpreter untimed to prove the
// counters are bit-identical — a cell that diverges is recorded as a failed
// job, never as a throughput number. The grid runs on a single worker so
// the timings are not distorted by sibling cells.
//
// tools/perf_gate.py consumes this bench's BENCH_replay_throughput.json:
// it checks the batched/compiled speedup ratios over interp against
// bench/perf_baseline.json with a tolerance band, failing CI on a >15%
// throughput regression. Two extra rows cover the multi-tenant composer
// (src/workload): "compose" replays a composed multi-tenant trace through
// the miss-rate simulator in all three modes (ratio-gated like any other
// sim), and "compose_build" times compose() itself — labelled interp so the
// gate records its events/sec without a ratio.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "support/check.h"
#include "support/env.h"
#include "workload/composer.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Replay-engine throughput (orig layout, 4K cache)", env,
                      setup);

  const std::uint32_t cache = 4096;
  const sim::CacheGeometry geometry{cache, env.line_bytes, 1};

  auto runner = bench::make_runner("replay_throughput", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.time_phase("layouts", [&] { setup.layout(LayoutKind::kOrig, 0, 0); });
  const cfg::AddressMap& layout = setup.layout(LayoutKind::kOrig, 0, 0);

  const sim::ReplayMode modes[] = {sim::ReplayMode::kInterp,
                                   sim::ReplayMode::kBatched,
                                   sim::ReplayMode::kCompiled};
  const bench::ReplaySimKind kinds[] = {bench::ReplaySimKind::kMissRate,
                                        bench::ReplaySimKind::kSequentiality,
                                        bench::ReplaySimKind::kSeq3,
                                        bench::ReplaySimKind::kTraceCache,
                                        bench::ReplaySimKind::kBackend};
  constexpr std::size_t kNumKinds = std::size(kinds);

  // jobs[kind][mode]
  std::size_t jobs[kNumKinds][3];
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    for (std::size_t m = 0; m < 3; ++m) {
      const bench::ReplaySimKind kind = kinds[k];
      const sim::ReplayMode mode = modes[m];
      jobs[k][m] = runner.add(
          std::string(bench::to_string(kind)) + " " + sim::to_string(mode),
          {{"sim", bench::to_string(kind)}, {"mode", sim::to_string(mode)}},
          [&setup, &layout, geometry, kind, mode] {
            return bench::measure_replay_cell(setup.test_trace(),
                                              setup.image(), layout, geometry,
                                              kind, mode);
          });
    }
  }

  // ---- composer rows -------------------------------------------------------
  // The composed trace splits the Test trace into STC_TENANTS contiguous
  // streams and re-interleaves them at STC_QUANTUM/STC_ARRIVAL — no database
  // work, so the rows time exactly the composer and the replay engines.
  const std::uint32_t tenants = env::tenants().value_or(4);
  const auto arrival = workload::parse_arrival(env::arrival().value_or(
                           "poisson"))
                           .value_or(workload::ArrivalKind::kPoisson);
  workload::ComposeParams compose_params;
  compose_params.quantum_events = env::quantum().value_or(1000);
  compose_params.arrival = arrival;
  compose_params.seed = env.seed;
  std::vector<workload::TenantStream> streams(tenants);
  {
    std::vector<cfg::BlockId> events;
    events.reserve(setup.test_trace().num_events());
    setup.test_trace().for_each([&](cfg::BlockId b) { events.push_back(b); });
    for (std::uint32_t t = 0; t < tenants; ++t) {
      streams[t].name = "span#" + std::to_string(t);
      const std::size_t lo = events.size() * t / tenants;
      const std::size_t hi = events.size() * (t + 1) / tenants;
      for (std::size_t i = lo; i < hi; ++i) streams[t].trace.append(events[i]);
    }
  }
  workload::ComposedTrace composed;
  runner.time_phase("compose", [&] {
    auto r = workload::compose(streams, compose_params);
    STC_CHECK_MSG(r.is_ok(), r.status().to_string().c_str());
    composed = std::move(r).take();
  });
  runner.meta("compose_tenants", std::uint64_t{tenants});
  runner.meta("compose_quantum", compose_params.quantum_events);
  runner.meta("compose_switches", composed.context_switches);

  const std::size_t build_job = runner.add(
      "compose build", {{"sim", "compose_build"}, {"mode", "interp"}},
      [&streams, compose_params] {
        const auto start = std::chrono::steady_clock::now();
        auto r = workload::compose(streams, compose_params);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        STC_CHECK_MSG(r.is_ok(), r.status().to_string().c_str());
        ExperimentResult result;
        result.metric("seconds", seconds);
        result.metric("events_per_sec",
                      seconds > 0 ? r.value().trace.num_events() / seconds
                                  : 0.0);
        result.counters().add("blocks", r.value().trace.num_events());
        return result;
      });
  std::size_t compose_jobs[3];
  for (std::size_t m = 0; m < 3; ++m) {
    const sim::ReplayMode mode = modes[m];
    compose_jobs[m] = runner.add(
        std::string("compose ") + sim::to_string(mode),
        {{"sim", "compose"}, {"mode", sim::to_string(mode)}},
        [&setup, &layout, geometry, &composed, mode] {
          return bench::measure_replay_cell(composed.trace, setup.image(),
                                            layout, geometry,
                                            bench::ReplaySimKind::kMissRate,
                                            mode);
        });
  }
  // Single worker: the cells time themselves, so they must not compete for
  // cores with sibling jobs.
  runner.run(1);

  TextTable table;
  table.header({"simulator", "interp ev/s", "batched ev/s", "compiled ev/s",
                "batched x", "compiled x"});
  for (std::size_t k = 0; k < kNumKinds; ++k) {
    const double interp = runner.metric_or(jobs[k][0], "events_per_sec");
    const double batched = runner.metric_or(jobs[k][1], "events_per_sec");
    const double compiled = runner.metric_or(jobs[k][2], "events_per_sec");
    table.row({bench::to_string(kinds[k]), fmt_fixed(interp, 0),
               fmt_fixed(batched, 0), fmt_fixed(compiled, 0),
               fmt_fixed(interp > 0 ? batched / interp : 0.0, 2),
               fmt_fixed(interp > 0 ? compiled / interp : 0.0, 2)});
  }
  {
    const double interp = runner.metric_or(compose_jobs[0], "events_per_sec");
    const double batched = runner.metric_or(compose_jobs[1], "events_per_sec");
    const double compiled = runner.metric_or(compose_jobs[2], "events_per_sec");
    table.row({"compose (missrate)", fmt_fixed(interp, 0),
               fmt_fixed(batched, 0), fmt_fixed(compiled, 0),
               fmt_fixed(interp > 0 ? batched / interp : 0.0, 2),
               fmt_fixed(interp > 0 ? compiled / interp : 0.0, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\ncompose() itself: %.0f events/sec over %llu tenants.\n"
      "Batched replay decodes the trace once into a contiguous slab;\n"
      "compiled replay additionally pre-resolves per-block line indices.\n",
      runner.metric_or(build_job, "events_per_sec"),
      static_cast<unsigned long long>(tenants));

  return bench::write_report(runner);
}
