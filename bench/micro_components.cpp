// Microbenchmarks of the core components: simulator throughput, layout
// construction cost, index operation latency, trace recording overhead.
// These measure the tooling itself, not the paper's results.
//
// Each job runs a fixed amount of work under a manual timing loop and
// reports nanoseconds per operation plus items/second. Timing jobs are
// serialized (runner.run(1)) so they never contend for cores.
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "cfg/builder.h"
#include "core/layouts.h"
#include "db/btree.h"
#include "db/hash_index.h"
#include "support/rng.h"
#include "testing/synthetic.h"

namespace stc {
namespace {

// Shared synthetic inputs (built once; benchmarks must be deterministic).
struct MicroInputs {
  MicroInputs() {
    Rng rng(2024);
    image = testing::random_image(rng, 200);
    wcfg = testing::random_wcfg(*image, rng);
    trace = testing::random_trace(*image, rng, 200000);
    layout = cfg::AddressMap::original(*image);
  }
  std::unique_ptr<cfg::ProgramImage> image;
  profile::WeightedCFG wcfg;
  trace::BlockTrace trace;
  cfg::AddressMap layout;
};

// Repeats `body` `iterations` times and returns a result carrying the
// measured wall-clock time: seconds, ns/op and items/s. `items` is the
// number of logical items one call of `body` processes.
template <typename Body>
ExperimentResult timed(std::uint64_t iterations, std::uint64_t items,
                       Body&& body) {
  using clock = std::chrono::steady_clock;
  std::uint64_t sink = 0;
  const auto start = clock::now();
  for (std::uint64_t i = 0; i < iterations; ++i) sink += body();
  const double seconds = std::chrono::duration<double>(clock::now() - start)
                             .count();
  ExperimentResult result;
  result.metric("seconds", seconds);
  result.metric("ns_per_op",
                seconds * 1e9 / double(iterations * (items ? items : 1)));
  if (seconds > 0) {
    result.metric("items_per_second", double(iterations * items) / seconds);
  }
  result.counters().add("iterations", iterations);
  result.counters().add("items", iterations * items);
  result.counters().add("checksum", sink);
  return result;
}

}  // namespace
}  // namespace stc

int main() {
  using namespace stc;
  std::printf("== Microbenchmarks: component throughput ==\n\n");

  MicroInputs in;
  const std::uint64_t trace_events = in.trace.num_events();

  ExperimentRunner runner("micro_components");
  runner.meta("trace_events", trace_events);
  runner.meta("synthetic_routines", std::uint64_t{200});

  std::vector<std::size_t> jobs;
  jobs.push_back(runner.add("trace append", {{"component", "trace"}}, [] {
    return timed(20, 10000, [] {
      Rng rng(1);
      trace::BlockTrace t;
      for (int i = 0; i < 10000; ++i) {
        t.append(static_cast<cfg::BlockId>(rng.uniform(1000)));
      }
      return t.num_events();
    });
  }));
  jobs.push_back(runner.add("trace replay", {{"component", "trace"}},
                            [&in, trace_events] {
    return timed(20, trace_events, [&in] {
      std::uint64_t sum = 0;
      in.trace.for_each([&](cfg::BlockId b) { sum += b; });
      return sum;
    });
  }));
  for (const std::uint32_t cache_bytes : {1024u, 8192u}) {
    jobs.push_back(runner.add(
        "missrate sim " + fmt_size(cache_bytes),
        {{"component", "sim"}, {"cache_bytes", std::to_string(cache_bytes)}},
        [&in, trace_events, cache_bytes] {
          return timed(5, trace_events, [&in, cache_bytes] {
            sim::ICache cache({cache_bytes, 32, 1});
            return sim::run_missrate(in.trace, *in.image, in.layout, cache)
                .misses;
          });
        }));
  }
  jobs.push_back(runner.add("seq3 sim", {{"component", "sim"}},
                            [&in, trace_events] {
    return timed(5, trace_events, [&in] {
      sim::FetchParams params;
      sim::ICache cache({4096, 32, 1});
      return sim::run_seq3(in.trace, *in.image, in.layout, params, &cache)
          .cycles;
    });
  }));
  jobs.push_back(runner.add("stc layout build", {{"component", "layout"}},
                            [&in] {
    return timed(10, 1, [&in] {
      return std::uint64_t{
          core::make_layout(core::LayoutKind::kStcAuto, in.wcfg, 4096, 1024)
              .size()};
    });
  }));
  jobs.push_back(runner.add("pettis-hansen build", {{"component", "layout"}},
                            [&in] {
    return timed(10, 1, [&in] {
      return std::uint64_t{
          core::make_layout(core::LayoutKind::kPettisHansen, in.wcfg, 0, 0)
              .size()};
    });
  }));
  for (const std::int64_t n : {std::int64_t{1000}, std::int64_t{10000}}) {
    jobs.push_back(runner.add(
        "btree insert " + fmt_count(std::uint64_t(n)),
        {{"component", "index"}, {"keys", std::to_string(n)}}, [n] {
          return timed(5, std::uint64_t(n), [n] {
            db::Kernel kernel;
            db::BTreeIndex index(kernel);
            for (std::int64_t i = 0; i < n; ++i) {
              index.insert(db::Value((i * 2654435761) % 100000),
                           db::RID{static_cast<std::uint32_t>(i), 0});
            }
            return index.entry_count();
          });
        }));
  }
  jobs.push_back(runner.add("btree probe", {{"component", "index"}}, [] {
    db::Kernel kernel;
    db::BTreeIndex index(kernel);
    for (std::int64_t i = 0; i < 10000; ++i) {
      index.insert(db::Value(i), db::RID{static_cast<std::uint32_t>(i), 0});
    }
    std::int64_t key = 0;
    return timed(20000, 1, [&index, &key] {
      auto cursor = index.seek_equal(db::Value(key));
      db::RID rid;
      const bool found = cursor->next(rid);
      key = (key + 7919) % 10000;
      return std::uint64_t{found};
    });
  }));
  jobs.push_back(runner.add("hash probe", {{"component", "index"}}, [] {
    db::Kernel kernel;
    db::HashIndex index(kernel);
    for (std::int64_t i = 0; i < 10000; ++i) {
      index.insert(db::Value(i), db::RID{static_cast<std::uint32_t>(i), 0});
    }
    std::int64_t key = 0;
    return timed(20000, 1, [&index, &key] {
      auto cursor = index.seek_equal(db::Value(key));
      db::RID rid;
      const bool found = cursor->next(rid);
      key = (key + 7919) % 10000;
      return std::uint64_t{found};
    });
  }));

  // Timing microbenchmarks must not contend for cores: force serial
  // execution regardless of STC_THREADS.
  runner.run(1);

  TextTable table;
  table.header({"benchmark", "ns/op", "items/s"});
  for (const std::size_t job : jobs) {
    char ns[32];
    std::snprintf(ns, sizeof ns, "%.1f", runner.metric_or(job, "ns_per_op"));
    char ips[32];
    std::snprintf(ips, sizeof ips, "%.3g",
                  runner.metric_or(job, "items_per_second", 0.0));
    table.row({runner.job_name(job), ns, ips});
  }
  std::fputs(table.render().c_str(), stdout);

  return bench::write_report(runner);
}
