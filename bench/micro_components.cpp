// google-benchmark microbenchmarks of the core components: simulator
// throughput, layout construction cost, index operation latency, trace
// recording overhead. These measure the tooling itself, not the paper's
// results.
#include <benchmark/benchmark.h>

#include "cfg/builder.h"
#include "core/layouts.h"
#include "db/btree.h"
#include "db/hash_index.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "support/rng.h"
#include "testing/synthetic.h"
#include "trace/block_trace.h"

namespace stc {
namespace {

// Shared synthetic inputs (built once; benchmarks must be deterministic).
struct MicroInputs {
  MicroInputs() {
    Rng rng(2024);
    image = testing::random_image(rng, 200);
    wcfg = testing::random_wcfg(*image, rng);
    trace = testing::random_trace(*image, rng, 200000);
    layout = cfg::AddressMap::original(*image);
  }
  std::unique_ptr<cfg::ProgramImage> image;
  profile::WeightedCFG wcfg;
  trace::BlockTrace trace;
  cfg::AddressMap layout;
};

MicroInputs& inputs() {
  static MicroInputs instance;
  return instance;
}

void BM_TraceAppend(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    trace::BlockTrace t;
    for (int i = 0; i < 10000; ++i) {
      t.append(static_cast<cfg::BlockId>(rng.uniform(1000)));
    }
    benchmark::DoNotOptimize(t.num_events());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TraceAppend);

void BM_TraceReplay(benchmark::State& state) {
  auto& in = inputs();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    in.trace.for_each([&](cfg::BlockId b) { sum += b; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.trace.num_events()));
}
BENCHMARK(BM_TraceReplay);

void BM_MissRateSim(benchmark::State& state) {
  auto& in = inputs();
  for (auto _ : state) {
    sim::ICache cache({static_cast<std::uint32_t>(state.range(0)), 32, 1});
    const auto result = sim::run_missrate(in.trace, *in.image, in.layout, cache);
    benchmark::DoNotOptimize(result.misses);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.trace.num_events()));
}
BENCHMARK(BM_MissRateSim)->Arg(1024)->Arg(8192);

void BM_Seq3Sim(benchmark::State& state) {
  auto& in = inputs();
  for (auto _ : state) {
    sim::FetchParams params;
    sim::ICache cache({4096, 32, 1});
    const auto result = sim::run_seq3(in.trace, *in.image, in.layout, params,
                                      &cache);
    benchmark::DoNotOptimize(result.cycles);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.trace.num_events()));
}
BENCHMARK(BM_Seq3Sim);

void BM_StcLayoutBuild(benchmark::State& state) {
  auto& in = inputs();
  for (auto _ : state) {
    const auto map =
        core::make_layout(core::LayoutKind::kStcAuto, in.wcfg, 4096, 1024);
    benchmark::DoNotOptimize(map.size());
  }
}
BENCHMARK(BM_StcLayoutBuild);

void BM_PettisHansenBuild(benchmark::State& state) {
  auto& in = inputs();
  for (auto _ : state) {
    const auto map =
        core::make_layout(core::LayoutKind::kPettisHansen, in.wcfg, 0, 0);
    benchmark::DoNotOptimize(map.size());
  }
}
BENCHMARK(BM_PettisHansenBuild);

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    db::Kernel kernel;
    db::BTreeIndex index(kernel);
    for (std::int64_t i = 0; i < state.range(0); ++i) {
      index.insert(db::Value((i * 2654435761) % 100000),
                   db::RID{static_cast<std::uint32_t>(i), 0});
    }
    benchmark::DoNotOptimize(index.entry_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeProbe(benchmark::State& state) {
  db::Kernel kernel;
  db::BTreeIndex index(kernel);
  for (std::int64_t i = 0; i < 10000; ++i) {
    index.insert(db::Value(i), db::RID{static_cast<std::uint32_t>(i), 0});
  }
  std::int64_t key = 0;
  for (auto _ : state) {
    auto cursor = index.seek_equal(db::Value(key));
    db::RID rid;
    benchmark::DoNotOptimize(cursor->next(rid));
    key = (key + 7919) % 10000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeProbe);

void BM_HashProbe(benchmark::State& state) {
  db::Kernel kernel;
  db::HashIndex index(kernel);
  for (std::int64_t i = 0; i < 10000; ++i) {
    index.insert(db::Value(i), db::RID{static_cast<std::uint32_t>(i), 0});
  }
  std::int64_t key = 0;
  for (auto _ : state) {
    auto cursor = index.seek_equal(db::Value(key));
    db::RID rid;
    benchmark::DoNotOptimize(cursor->next(rid));
    key = (key + 7919) % 10000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashProbe);

}  // namespace
}  // namespace stc

BENCHMARK_MAIN();
