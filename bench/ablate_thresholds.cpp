// Ablation: sensitivity of the STC layout to the trace-building thresholds
// (Section 5.2's Exec Threshold and Branch Threshold). The paper fixes the
// thresholds by hand and announces automatic selection as future work; the
// repository implements CFA-budget fitting, and this bench shows what the
// thresholds trade off.
#include <cstdio>

#include "bench/common.h"
#include "core/stc_layout.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner(
      "Ablation: ExecThreshold x BranchThreshold (stc-auto, 2K/512)", env,
      setup);

  const std::uint32_t cache = 2048;
  const std::uint32_t cfa = 512;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};

  // Row 1: the auto-fitted threshold (the default pipeline).
  {
    core::StcParams params;
    params.cache_bytes = cache;
    params.cfa_bytes = cfa;
    const auto result = core::stc_layout(setup.wcfg(), core::SeedKind::kAuto,
                                         params);
    std::printf("auto-fitted ExecThreshold = %llu (pass-1 fills %llu of %u "
                "CFA bytes)\n\n",
                static_cast<unsigned long long>(result.exec_threshold_pass1),
                static_cast<unsigned long long>(result.pass1_bytes), cfa);
  }

  auto runner = bench::make_runner("ablate_thresholds", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.meta("cfa_bytes", std::uint64_t{cfa});

  const std::uint64_t max_count = [&] {
    std::uint64_t m = 0;
    for (std::uint64_t c : setup.wcfg().block_count) m = std::max(m, c);
    return m;
  }();

  // Each job builds a layout under its thresholds and replays the Test trace;
  // jobs only read the shared Setup.
  struct Cell {
    std::size_t job;
    std::uint64_t exec_threshold;
    double branch;
  };
  std::vector<Cell> cells;
  const double exec_fracs[] = {0.0001, 0.001, 0.01, 0.1};
  const double branches[] = {0.2, 0.4, 0.6, 0.8};
  for (const double exec_frac : exec_fracs) {
    for (const double branch : branches) {
      const std::uint64_t exec_threshold = std::max<std::uint64_t>(
          1,
          static_cast<std::uint64_t>(exec_frac * double(max_count)));
      const std::size_t job = runner.add(
          fmt_count(exec_threshold) + " x " + fmt_fixed(branch, 1),
          {{"exec_threshold", std::to_string(exec_threshold)},
           {"branch_threshold", fmt_fixed(branch, 1)}},
          [&setup, dm, cache, cfa, exec_threshold, branch] {
            core::StcParams params;
            params.cache_bytes = cache;
            params.cfa_bytes = cfa;
            params.branch_threshold = branch;
            params.exec_threshold_pass1 = exec_threshold;
            const auto built =
                core::stc_layout(setup.wcfg(), core::SeedKind::kAuto, params);
            // Overfull pass-1 spills are handled by the pipeline; report
            // the resulting occupancy alongside the simulation metrics.
            ExperimentResult result =
                bench::measure_miss(setup, built.layout, dm);
            const auto fetch = bench::measure_seq3(setup, built.layout, dm);
            result.metric("ipc", fetch.metric("ipc"));
            result.counters().merge(fetch.counters());
            const auto seq = bench::measure_seq(setup, built.layout);
            result.metric("insn_per_taken", seq.metric("insn_per_taken"));
            result.counters().add("pass1_bytes", built.pass1_bytes);
            result.counters().add("sequences", built.num_sequences);
            return result;
          });
      cells.push_back({job, exec_threshold, branch});
    }
  }
  runner.run();

  TextTable table;
  table.header({"ExecThresh", "BranchThresh", "pass1 bytes", "seqs",
                "miss%", "IPC", "insn/taken"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = runner.result(cells[i].job);
    table.row({fmt_count(cells[i].exec_threshold),
               fmt_fixed(cells[i].branch, 1),
               fmt_count(r.counters().get("pass1_bytes")),
               fmt_count(r.counters().get("sequences")),
               fmt_fixed(runner.metric_or(cells[i].job, "miss_pct"), 2),
               fmt_fixed(runner.metric_or(cells[i].job, "ipc"), 2),
               fmt_fixed(runner.metric_or(cells[i].job, "insn_per_taken"), 1)});
    if (i % 4 == 3) table.separator();
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nLow exec thresholds overfill pass 1 (spilling sequences); high\n"
      "branch thresholds keep sequences short but pure. The auto-fitted\n"
      "threshold balances CFA occupancy against dilution.\n");

  return bench::write_report(runner);
}
