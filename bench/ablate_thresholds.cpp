// Ablation: sensitivity of the STC layout to the trace-building thresholds
// (Section 5.2's Exec Threshold and Branch Threshold). The paper fixes the
// thresholds by hand and announces automatic selection as future work; the
// repository implements CFA-budget fitting, and this bench shows what the
// thresholds trade off.
#include <cstdio>

#include "bench/common.h"
#include "core/stc_layout.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner(
      "Ablation: ExecThreshold x BranchThreshold (stc-auto, 2K/512)", env,
      setup);

  const std::uint32_t cache = 2048;
  const std::uint32_t cfa = 512;
  const sim::CacheGeometry dm{cache, env.line_bytes, 1};

  // Row 1: the auto-fitted threshold (the default pipeline).
  {
    core::StcParams params;
    params.cache_bytes = cache;
    params.cfa_bytes = cfa;
    const auto result = core::stc_layout(setup.wcfg(), core::SeedKind::kAuto,
                                         params);
    std::printf("auto-fitted ExecThreshold = %llu (pass-1 fills %llu of %u "
                "CFA bytes)\n\n",
                static_cast<unsigned long long>(result.exec_threshold_pass1),
                static_cast<unsigned long long>(result.pass1_bytes), cfa);
  }

  TextTable table;
  table.header({"ExecThresh", "BranchThresh", "pass1 bytes", "seqs",
                "miss%", "IPC", "insn/taken"});
  const std::uint64_t max_count = [&] {
    std::uint64_t m = 0;
    for (std::uint64_t c : setup.wcfg().block_count) m = std::max(m, c);
    return m;
  }();
  for (double exec_frac : {0.0001, 0.001, 0.01, 0.1}) {
    for (double branch : {0.2, 0.4, 0.6, 0.8}) {
      core::StcParams params;
      params.cache_bytes = cache;
      params.cfa_bytes = cfa;
      params.branch_threshold = branch;
      params.exec_threshold_pass1 =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                         exec_frac * double(max_count)));
      const auto result =
          core::stc_layout(setup.wcfg(), core::SeedKind::kAuto, params);
      // Overfull pass-1 spills are handled by the pipeline; report results.
      const auto seq = trace::measure_sequentiality(setup.test_trace(),
                                                    setup.image(), result.layout);
      table.row({fmt_count(*params.exec_threshold_pass1), fmt_fixed(branch, 1),
                 fmt_count(result.pass1_bytes),
                 fmt_count(result.num_sequences),
                 fmt_fixed(bench::miss_pct(setup, result.layout, dm), 2),
                 fmt_fixed(bench::seq3_ipc(setup, result.layout, dm), 2),
                 fmt_fixed(seq.insns_between_taken_branches(), 1)});
    }
    table.separator();
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nLow exec thresholds overfill pass 1 (spilling sequences); high\n"
      "branch thresholds keep sequences short but pure. The auto-fitted\n"
      "threshold balances CFA occupancy against dilution.\n");
  return 0;
}
