// Ablation: execution back end — does the fetch-bandwidth win survive to IPC?
//
// The paper stops at fetch bandwidth (Table 4's IPC is instructions per
// *fetch* cycle). This sweep carries the fetched stream through the bounded
// out-of-order back end (src/backend) under one unified clock and asks how
// much of each layout's advantage survives real issue/commit limits: with a
// small window the machine is fetch-bound and the layout win carries
// through; with a large window back-end latency starts to hide i-cache
// stalls and the gap narrows. Axes: layout x predictor (perfect vs gshare,
// the realistic representative) x i-cache size x issue-queue depth (ROB
// sized 4x the IQ, the usual window rule).
//
// Rows are grouped per i-cache; "ipc" is retired instructions per pipeline
// cycle (backend::BackendStats), directly comparable across rows but NOT to
// Table 4's fetch-only IPC. STC_BACKEND picks the machine kind for the
// whole grid (default ooo when the knob is off, since an off back end has
// no IPC to ablate); STC_IQ_DEPTH/STC_ROB_DEPTH are ignored here — the grid
// sweeps the window itself.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  using frontend::BpredKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: out-of-order back end (fetch -> IPC)", env,
                      setup);

  // Machine shape: STC_BACKEND selects inorder/ooo for the whole grid; the
  // default (off) ablates the out-of-order machine. Cost-model fields ride
  // along from the environment-validated defaults.
  backend::BackendParams base = backend::BackendParams::from_environment();
  if (base.off()) base.kind = backend::BackendKind::kOoo;
  frontend::FrontEndParams fe_base =
      frontend::FrontEndParams::from_environment();

  const BpredKind kinds[] = {BpredKind::kPerfect, BpredKind::kGshare};
  const struct {
    LayoutKind kind;
    const char* name;
  } layouts[] = {
      {LayoutKind::kOrig, "orig"},         {LayoutKind::kPettisHansen, "ph"},
      {LayoutKind::kTorrellas, "torr"},    {LayoutKind::kStcAuto, "auto"},
      {LayoutKind::kStcOps, "ops"},
  };
  const std::uint32_t caches[] = {2048, 8192};
  const std::uint32_t iq_depths[] = {2, 16};

  auto runner = bench::make_runner("ablate_backend", env, setup);
  runner.meta("backend", backend::to_string(base.kind));
  runner.meta("decode_width", std::uint64_t{base.decode_width});
  runner.meta("issue_width", std::uint64_t{base.issue_width});
  runner.meta("commit_width", std::uint64_t{base.commit_width});
  runner.meta("rob_per_iq", std::uint64_t{4});
  runner.meta("base_latency", std::uint64_t{base.base_latency});
  runner.meta("mem_latency", std::uint64_t{base.mem_latency});
  runner.meta("size_shift", std::uint64_t{base.size_shift});

  runner.time_phase("layouts", [&] {
    for (const std::uint32_t cache : caches) {
      for (const auto& l : layouts) setup.layout(l.kind, cache, cache / 4);
    }
  });

  // jobs[cache][layout][kind][iq]
  std::vector<std::vector<std::vector<std::vector<std::size_t>>>> jobs;
  for (const std::uint32_t cache : caches) {
    const sim::CacheGeometry dm{cache, env.line_bytes, 1};
    jobs.emplace_back();
    for (const auto& l : layouts) {
      const auto& layout = setup.layout(l.kind, cache, cache / 4);
      jobs.back().emplace_back();
      for (const BpredKind kind : kinds) {
        frontend::FrontEndParams fe = fe_base;
        fe.kind = kind;
        fe.prefetch = kind != BpredKind::kPerfect && fe_base.ftq_depth > 0;
        jobs.back().back().emplace_back();
        for (const std::uint32_t iq : iq_depths) {
          backend::BackendParams bp = base;
          bp.iq_depth = iq;
          bp.rob_depth = iq * 4;
          const std::string name = std::string(frontend::to_string(kind)) +
                                   " " + l.name + " " + fmt_size(cache) +
                                   " iq" + std::to_string(iq);
          jobs.back().back().back().push_back(runner.add(
              name,
              {{"bpred", frontend::to_string(kind)},
               {"layout", l.name},
               {"cache", std::to_string(cache)},
               {"iq_depth", std::to_string(iq)}},
              [&setup, &layout, dm, fe, bp] {
                return bench::measure_seq3_backend(setup, layout, dm, fe, bp);
              }));
        }
      }
    }
  }
  runner.run();

  for (std::size_t c = 0; c < std::size(caches); ++c) {
    std::printf("-- %s i-cache, IPC (retired insns / pipeline cycle) --\n",
                fmt_size(caches[c]).c_str());
    TextTable table;
    table.header({"config", "orig", "ph", "torr", "auto", "ops"});
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      for (std::size_t q = 0; q < std::size(iq_depths); ++q) {
        std::vector<std::string> row{std::string(frontend::to_string(
                                         kinds[k])) +
                                     " iq" + std::to_string(iq_depths[q])};
        for (std::size_t l = 0; l < std::size(layouts); ++l) {
          const std::size_t job = jobs[c][l][k][q];
          std::string cell = fmt_fixed(runner.metric_or(job, "ipc"), 2);
          if (kinds[k] != BpredKind::kPerfect) {
            cell += " (" + fmt_fixed(runner.metric_or(job, "mpki"), 1) + ")";
          }
          row.push_back(cell);
        }
        table.row(row);
      }
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  // Headline: the layout win measured in delivered IPC, small vs large
  // window, at the 8K cache point under gshare.
  const double small_ratio =
      runner.metric_or(jobs[1][4][1][0], "ipc") /
      runner.metric_or(jobs[1][0][1][0], "ipc");
  const double large_ratio =
      runner.metric_or(jobs[1][4][1][1], "ipc") /
      runner.metric_or(jobs[1][0][1][1], "ipc");
  const auto& ops_large = runner.result(jobs[1][4][1][1]);
  std::printf(
      "ops/orig delivered-IPC ratio at 8K gshare: %.2fx (iq=2) -> %.2fx "
      "(iq=16)\n(ops iq=16: rob peak %llu, %llu dispatch stalls on IQ, "
      "%llu on ROB)\n",
      small_ratio, large_ratio,
      static_cast<unsigned long long>(
          ops_large.counters().get("be_rob_peak")),
      static_cast<unsigned long long>(
          ops_large.counters().get("be_dispatch_stall_iq")),
      static_cast<unsigned long long>(
          ops_large.counters().get("be_dispatch_stall_rob")));

  return bench::write_report(runner);
}
