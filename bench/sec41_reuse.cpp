// Reproduces the Section 4.1 temporal-locality measurement: the probability
// that a popular basic block (from the set covering 75% of dynamic
// references) is re-executed within a given number of instructions.
// Paper: 33% within 250 instructions, 19% within 100.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Section 4.1: re-reference distance of popular blocks",
                      env, setup);

  const auto reuse = profile::reuse_distances(setup.training_trace(),
                                              setup.training_profile(), 0.75);
  std::printf("hot set: %llu blocks covering %.1f%% of references\n\n",
              static_cast<unsigned long long>(reuse.hot_blocks),
              100.0 * reuse.coverage);

  auto runner = bench::make_runner("sec41_reuse", env, setup);
  runner.meta("hot_blocks", reuse.hot_blocks);
  runner.meta("coverage", reuse.coverage);

  struct Bound {
    std::uint64_t insns;
    const char* paper;
  };
  const Bound bounds[] = {{25, ""},    {50, ""},    {100, "19%"}, {250, "33%"},
                          {500, ""},   {1000, ""},  {10000, ""}};
  std::vector<std::size_t> jobs;
  for (const Bound& bound : bounds) {
    jobs.push_back(runner.add(
        "within-" + std::to_string(bound.insns),
        {{"insns", std::to_string(bound.insns)}}, [&reuse, bound] {
          ExperimentResult result;
          result.metric("reuse_fraction", reuse.fraction_below(bound.insns));
          return result;
        }));
  }
  runner.run();

  TextTable table;
  table.header({"Re-referenced within", "Fraction of re-references", "(paper)"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    table.row({fmt_count(bounds[i].insns) + " insns",
               fmt_percent(runner.metric_or(jobs[i], "reuse_fraction")),
               bounds[i].paper});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nThe most popular blocks are re-executed every few instructions:\n"
      "substantial temporal locality for a Conflict-Free Area to exploit.\n");

  return bench::write_report(runner);
}
