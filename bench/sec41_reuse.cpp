// Reproduces the Section 4.1 temporal-locality measurement: the probability
// that a popular basic block (from the set covering 75% of dynamic
// references) is re-executed within a given number of instructions.
// Paper: 33% within 250 instructions, 19% within 100.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Section 4.1: re-reference distance of popular blocks",
                      env, setup);

  const auto reuse = profile::reuse_distances(setup.training_trace(),
                                              setup.training_profile(), 0.75);
  std::printf("hot set: %llu blocks covering %.1f%% of references\n\n",
              static_cast<unsigned long long>(reuse.hot_blocks),
              100.0 * reuse.coverage);

  TextTable table;
  table.header({"Re-referenced within", "Fraction of re-references", "(paper)"});
  const auto row = [&](std::uint64_t insns, const char* paper) {
    table.row({fmt_count(insns) + " insns",
               fmt_percent(reuse.fraction_below(insns)), paper});
  };
  row(25, "");
  row(50, "");
  row(100, "19%");
  row(250, "33%");
  row(500, "");
  row(1000, "");
  row(10000, "");
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nThe most popular blocks are re-executed every few instructions:\n"
      "substantial temporal locality for a Conflict-Free Area to exploit.\n");
  return 0;
}
