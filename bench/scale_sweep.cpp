// Scale sweep: streamed replay of production-scale on-disk traces.
//
// The paper's traces fit in memory; production DSS traces do not. This bench
// builds K-fold replications of the Test trace on disk through
// trace::TraceFileWriter (K = 1, 10, 100 — the x100 file is two orders of
// magnitude past today's largest in-memory run), then replays each one
// *streamed*: trace::TraceReader maps the file (STC_MMAP), decodes one chunk
// at a time and drops its pages behind the pass, so peak resident memory is
// bounded by the chunk size while the file scales freely. Grid:
//
//   sim  = stream_missrate_xK | stream_seq_xK
//   mode = interp   (scalar span kernel, line math from the meta table)
//        | compiled (8-wide SIMD kernel over pre-resolved line tables)
//
// Every compiled cell re-runs its scalar streamed twin untimed and requires
// bit-identical counters; the K=1 cells additionally cross-check against the
// in-memory slab replay. rss_peak_mb reports ru_maxrss after the cell — the
// x100 rows demonstrate bounded-RSS replay of a trace ~100x the in-memory
// footprint. tools/perf_gate.py gates the compiled/interp speedup of the x10
// rows against bench/perf_baseline.json.
//
// The grid shards across worker processes under STC_SHARDS (the scratch
// trace files carry the worker's shard tag, so siblings never collide), and
// runs its own cells on a single thread so the timings stay clean.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "support/check.h"
#include "support/env.h"
#include "trace/trace_io.h"

namespace {

double rss_peak_mb() {
  struct rusage usage {};
  ::getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KB
}

void require_equal(std::uint64_t got, std::uint64_t want, const char* what) {
  if (got != want) {
    throw stc::StatusError(stc::internal_error(
        std::string(what) + " diverged: " + std::to_string(got) + " vs " +
        std::to_string(want)));
  }
}

}  // namespace

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Scale sweep: streamed replay, x1/x10/x100 traces", env,
                      setup);

  const std::uint32_t cache = 4096;
  const sim::CacheGeometry geometry{cache, env.line_bytes, 1};

  auto runner = bench::make_runner("scale_sweep", env, setup);
  runner.meta("cache_bytes", std::uint64_t{cache});
  runner.time_phase("layouts", [&] { setup.layout(LayoutKind::kOrig, 0, 0); });
  const cfg::AddressMap& layout = setup.layout(LayoutKind::kOrig, 0, 0);

  // One compiled plan supplies the metadata and line tables for every cell
  // (they share the image/layout/line size); its slab doubles as the K=1
  // in-memory cross-check reference.
  auto plan_built =
      sim::build_replay_plan(sim::ReplayMode::kCompiled, setup.test_trace(),
                             setup.image(), layout, env.line_bytes);
  STC_CHECK_MSG(plan_built.is_ok(), plan_built.status().to_string().c_str());
  const sim::ReplayPlan plan = std::move(plan_built).take();

  const std::uint32_t factors[] = {1, 10, 100};

  // Scratch trace files: shard workers replay concurrently in one bench
  // directory, so each process tags its files with its slice.
  std::string tag = env::shard().value();
  for (char& c : tag) {
    if (c == '/') c = 'o';
  }
  const std::string dir = env::bench_dir().value();
  const auto path_for = [&](std::uint32_t factor) {
    return dir + "/SCALE_sweep_x" + std::to_string(factor) +
           (tag.empty() ? std::string() : "." + tag) + ".trace";
  };

  // The sharding parent only spawns workers and merges their fragments — it
  // never replays, so it skips the file builds its workers redo themselves.
  const bool executes_jobs =
      !env::shard().value().empty() || env::shards().value() <= 1;
  std::vector<std::string> scratch;
  runner.time_phase("scale_write", [&] {
    if (!executes_jobs) return;
    for (const std::uint32_t factor : factors) {
      const std::string path = path_for(factor);
      auto writer = trace::TraceFileWriter::create(path);
      STC_CHECK_MSG(writer.is_ok(), writer.status().to_string().c_str());
      for (std::uint32_t k = 0; k < factor; ++k) {
        setup.test_trace().for_each(
            [&](cfg::BlockId b) { writer.value().append(b); });
      }
      const Status s = writer.value().finalize();
      STC_CHECK_MSG(s.is_ok(), s.to_string().c_str());
      scratch.push_back(path);
    }
  });

  // jobs[factor][sim][mode]: sim 0 = missrate, 1 = sequentiality;
  // mode 0 = interp (scalar), 1 = compiled (SIMD + tables).
  std::size_t jobs[std::size(factors)][2][2];
  for (std::size_t f = 0; f < std::size(factors); ++f) {
    const std::uint32_t factor = factors[f];
    const std::string path = path_for(factor);
    for (int compiled = 0; compiled < 2; ++compiled) {
      const char* mode = compiled ? "compiled" : "interp";
      const sim::ReplayKernel kernel =
          compiled ? sim::ReplayKernel::kSimd : sim::ReplayKernel::kScalar;

      const std::string miss_sim =
          "stream_missrate_x" + std::to_string(factor);
      jobs[f][0][compiled] = runner.add(
          miss_sim + " " + mode, {{"sim", miss_sim}, {"mode", mode}},
          [&plan, path, geometry, factor, compiled, kernel] {
            auto opened = trace::TraceReader::open(path);
            if (!opened.is_ok()) throw StatusError(opened.status());
            const trace::TraceReader reader = std::move(opened).take();
            const sim::CompiledTable* tables =
                compiled ? &plan.compiled() : nullptr;
            sim::ICache icache(geometry);
            const auto start = std::chrono::steady_clock::now();
            auto streamed = sim::replay_missrate_streamed(
                reader, plan.meta(), tables, icache, kernel);
            const double seconds = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() - start)
                                       .count();
            if (!streamed.is_ok()) throw StatusError(streamed.status());
            const sim::MissRateResult result = streamed.value();
            if (compiled) {
              // The timed SIMD+tables pass must match the scalar streamed
              // reference bit for bit.
              sim::ICache ref_cache(geometry);
              auto ref = sim::replay_missrate_streamed(
                  reader, plan.meta(), nullptr, ref_cache,
                  sim::ReplayKernel::kScalar);
              if (!ref.is_ok()) throw StatusError(ref.status());
              require_equal(result.misses, ref.value().misses, "misses");
              require_equal(result.line_accesses, ref.value().line_accesses,
                            "line_accesses");
              require_equal(result.instructions, ref.value().instructions,
                            "instructions");
            }
            if (factor == 1) {
              sim::ICache mem_cache(geometry);
              const sim::MissRateResult mem =
                  sim::replay_missrate(plan, mem_cache);
              require_equal(result.misses, mem.misses, "misses (vs in-memory)");
              require_equal(result.instructions, mem.instructions,
                            "instructions (vs in-memory)");
            }
            ExperimentResult out;
            out.metric("seconds", seconds);
            out.metric("events_per_sec",
                       seconds > 0
                           ? static_cast<double>(reader.num_events()) / seconds
                           : 0.0);
            out.metric("miss_pct", result.misses_per_100_insns());
            out.metric("file_mb", static_cast<double>(reader.file_bytes()) /
                                      (1024.0 * 1024.0));
            out.metric("rss_peak_mb", rss_peak_mb());
            result.export_counters(out.counters());
            out.counters().add("blocks", reader.num_events());
            return out;
          });

      const std::string seq_sim = "stream_seq_x" + std::to_string(factor);
      jobs[f][1][compiled] = runner.add(
          seq_sim + " " + mode, {{"sim", seq_sim}, {"mode", mode}},
          [&plan, path, factor, compiled, kernel] {
            auto opened = trace::TraceReader::open(path);
            if (!opened.is_ok()) throw StatusError(opened.status());
            const trace::TraceReader reader = std::move(opened).take();
            const auto start = std::chrono::steady_clock::now();
            auto streamed =
                sim::replay_sequentiality_streamed(reader, plan.meta(), kernel);
            const double seconds = std::chrono::duration<double>(
                                       std::chrono::steady_clock::now() - start)
                                       .count();
            if (!streamed.is_ok()) throw StatusError(streamed.status());
            const trace::SequentialityStats stats = streamed.value();
            if (compiled) {
              auto ref = sim::replay_sequentiality_streamed(
                  reader, plan.meta(), sim::ReplayKernel::kScalar);
              if (!ref.is_ok()) throw StatusError(ref.status());
              require_equal(stats.instructions, ref.value().instructions,
                            "instructions");
              require_equal(stats.taken_transitions,
                            ref.value().taken_transitions, "taken_transitions");
              require_equal(stats.dynamic_blocks, ref.value().dynamic_blocks,
                            "dynamic_blocks");
            }
            if (factor == 1) {
              const trace::SequentialityStats mem =
                  sim::replay_sequentiality(plan);
              require_equal(stats.instructions, mem.instructions,
                            "instructions (vs in-memory)");
              require_equal(stats.taken_transitions, mem.taken_transitions,
                            "taken_transitions (vs in-memory)");
            }
            ExperimentResult out;
            out.metric("seconds", seconds);
            out.metric("events_per_sec",
                       seconds > 0
                           ? static_cast<double>(reader.num_events()) / seconds
                           : 0.0);
            out.metric("insn_per_taken", stats.insns_between_taken_branches());
            out.metric("file_mb", static_cast<double>(reader.file_bytes()) /
                                      (1024.0 * 1024.0));
            out.metric("rss_peak_mb", rss_peak_mb());
            stats.export_counters(out.counters());
            out.counters().add("blocks", reader.num_events());
            return out;
          });
    }
  }

  // Single worker per process: the cells time themselves. Parallelism comes
  // from STC_SHARDS worker processes, not threads.
  runner.run(1);
  for (const std::string& path : scratch) std::remove(path.c_str());

  TextTable table;
  table.header({"trace", "file MB", "sim", "interp ev/s", "compiled ev/s",
                "speedup", "peak RSS MB"});
  for (std::size_t f = 0; f < std::size(factors); ++f) {
    const char* sims[] = {"missrate", "seq"};
    for (int s = 0; s < 2; ++s) {
      const double interp = runner.metric_or(jobs[f][s][0], "events_per_sec");
      const double fast = runner.metric_or(jobs[f][s][1], "events_per_sec");
      table.row({"x" + std::to_string(factors[f]),
                 fmt_fixed(runner.metric_or(jobs[f][s][1], "file_mb"), 1),
                 sims[s], fmt_fixed(interp, 0), fmt_fixed(fast, 0),
                 fmt_fixed(interp > 0 ? fast / interp : 0.0, 2),
                 fmt_fixed(runner.metric_or(jobs[f][s][1], "rss_peak_mb"), 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nStreamed replay decodes one chunk at a time off the mapped file and\n"
      "releases its pages behind the pass; peak RSS stays bounded while the\n"
      "trace scales x100. Compiled rows run the 8-wide SIMD kernels.\n");

  return bench::write_report(runner);
}
