// Reproduces Table 1: total static program elements and the fraction
// actually used by an execution of the Training set.
// Paper: procedures 6,813 -> 19.7%; basic blocks 127,426 -> 12.1%;
// instructions 593,884 -> 12.7%.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 1: static vs executed footprint (Training set)",
                      env, setup);

  auto runner = bench::make_runner("table1_footprint", env, setup);
  const std::size_t job = runner.add("footprint", [&] {
    const auto fp = profile::footprint(setup.training_profile());
    ExperimentResult result;
    result.metric("routine_fraction", fp.routine_fraction());
    result.metric("block_fraction", fp.block_fraction());
    result.metric("instruction_fraction", fp.instruction_fraction());
    result.counters().add("total_routines", fp.total_routines);
    result.counters().add("executed_routines", fp.executed_routines);
    result.counters().add("total_blocks", fp.total_blocks);
    result.counters().add("executed_blocks", fp.executed_blocks);
    result.counters().add("total_instructions", fp.total_instructions);
    result.counters().add("executed_instructions", fp.executed_instructions);
    result.counters().add("blocks", setup.training_trace().num_events());
    return result;
  });
  runner.run();

  const auto& r = runner.result(job);
  const auto count = [&](const char* name) {
    return fmt_count(r.counters().get(name));
  };
  TextTable table;
  table.header({"", "Total", "Executed", "Percent", "(paper)"});
  table.row({"Procedures", count("total_routines"),
             count("executed_routines"),
             fmt_percent(runner.metric_or(job, "routine_fraction")), "19.7%"});
  table.row({"Basic blocks", count("total_blocks"), count("executed_blocks"),
             fmt_percent(runner.metric_or(job, "block_fraction")), "12.1%"});
  table.row({"Instructions", count("total_instructions"),
             count("executed_instructions"),
             fmt_percent(runner.metric_or(job, "instruction_fraction")), "12.7%"});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nExecuted code: %s of %s static code; the database kernel contains\n"
      "large sections of code which are rarely accessed (Section 4.1).\n",
      fmt_size(r.counters().get("executed_instructions") * 4).c_str(),
      fmt_size(r.counters().get("total_instructions") * 4).c_str());

  return bench::write_report(runner);
}
