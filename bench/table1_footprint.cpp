// Reproduces Table 1: total static program elements and the fraction
// actually used by an execution of the Training set.
// Paper: procedures 6,813 -> 19.7%; basic blocks 127,426 -> 12.1%;
// instructions 593,884 -> 12.7%.
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 1: static vs executed footprint (Training set)",
                      env, setup);

  const auto fp = profile::footprint(setup.training_profile());
  TextTable table;
  table.header({"", "Total", "Executed", "Percent", "(paper)"});
  table.row({"Procedures", fmt_count(fp.total_routines),
             fmt_count(fp.executed_routines), fmt_percent(fp.routine_fraction()),
             "19.7%"});
  table.row({"Basic blocks", fmt_count(fp.total_blocks),
             fmt_count(fp.executed_blocks), fmt_percent(fp.block_fraction()),
             "12.1%"});
  table.row({"Instructions", fmt_count(fp.total_instructions),
             fmt_count(fp.executed_instructions),
             fmt_percent(fp.instruction_fraction()), "12.7%"});
  std::fputs(table.render().c_str(), stdout);

  std::printf(
      "\nExecuted code: %s of %s static code; the database kernel contains\n"
      "large sections of code which are rarely accessed (Section 4.1).\n",
      fmt_size(fp.executed_instructions * 4).c_str(),
      fmt_size(fp.total_instructions * 4).c_str());
  return 0;
}
