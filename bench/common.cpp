#include "bench/common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <tuple>

#include "support/check.h"
#include "support/env.h"
#include "trace/fetch_stream.h"
#include "verify/oracle.h"

namespace stc::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// ---- STC_VERIFY --------------------------------------------------------
// With STC_VERIFY=1 every measurement cell runs under the layout-equivalence
// oracle (src/verify): each distinct (trace, image, layout) triple gets one
// full structure + replay verification, and every simulator result is
// counter-checked. A violation aborts the bench — corrupted layouts must
// never produce numbers.

bool verify_enabled() {
  // Validated centrally (env::verify aborts the bench at startup on garbage
  // values); by this point the knob is a clean boolean.
  static const bool enabled = env::verify().value_or(false);
  return enabled;
}

void require_clean(const verify::Report& report, const char* what) {
  if (report.ok()) return;
  std::fprintf(stderr, "STC_VERIFY: %s failed verification:\n%s", what,
               report.summary().c_str());
  STC_CHECK_MSG(false, "STC_VERIFY violation (see report above)");
}

// Full oracle runs are memoized by identity so a grid sweeping many cells
// over few layouts verifies each layout once. The instruction-by-instruction
// replay walk is additionally bounded to a trace prefix: structure and the
// per-cell counter checks cover the whole trace, and a remapping bug corrupts
// the stream within the first events it touches, so the prefix keeps the
// whole-grid overhead under 2x wall-clock without losing detection power.
constexpr std::uint64_t kReplayPrefixEvents = 250000;

void verify_triple(const trace::BlockTrace& trace,
                   const cfg::ProgramImage& image,
                   const cfg::AddressMap& layout) {
  static std::mutex mu;
  static std::set<std::tuple<const void*, const void*, const void*>> seen;
  {
    const std::lock_guard<std::mutex> lock(mu);
    if (!seen.insert({&trace, &image, &layout}).second) return;
  }
  verify::OracleOptions options;
  options.simulators = false;  // per-cell counter checks cover the sims
  if (trace.num_events() <= kReplayPrefixEvents) {
    require_clean(
        verify::verify_layout(trace, image, layout, nullptr, options),
        layout.name().c_str());
    return;
  }
  trace::BlockTrace prefix;
  std::uint64_t taken = 0;
  trace.for_each([&](cfg::BlockId b) {
    if (taken++ < kReplayPrefixEvents) prefix.append(b);
  });
  require_clean(verify::verify_layout(prefix, image, layout, nullptr, options),
                layout.name().c_str());
}

// STC_VERIFY cross-check for a plan-backed cell: `fill_interp` re-runs the
// cell through the interpreter into a fresh counter set, which must match
// the replay engine's counters bit for bit.
void cross_check_replay(const char* what, const CounterSet& actual,
                        const std::function<void(CounterSet&)>& fill_interp) {
  CounterSet expected;
  fill_interp(expected);
  require_clean(verify::check_counters_equal(expected, actual, what),
                "replay-mode cross-check");
}

}  // namespace

std::vector<CfaPoint> Env::cfa_sweep() const {
  // Structured like the paper's Table 3 rows (cache / CFA):
  // 8/2 8/4 8/6 | 16/4 16/8 16/12 | 32/4 32/8 32/16 32/24 | 64/8 64/16 64/24,
  // scaled to this kernel (divide by 8).
  return {
      {1024, 256},  {1024, 512},  {1024, 768},
      {2048, 512},  {2048, 1024}, {2048, 1536},
      {4096, 512},  {4096, 1024}, {4096, 2048}, {4096, 3072},
      {8192, 1024}, {8192, 2048}, {8192, 3072},
  };
}

Env Env::from_environment() {
  // Fail fast on any malformed knob — including ones this struct does not
  // carry (STC_THREADS, STC_BENCH_DIR, STC_FAULT, ...) — so a typo kills the
  // bench in milliseconds with a message instead of mid-sweep or silently.
  env::validate_all_or_exit();
  Env env;
  env.scale_factor = env::scale_factor().value();
  env.seed = env::seed().value();
  env.line_bytes = env::line_bytes().value();
  return env;
}

Setup::Setup(const Env& env) : env_(env) {
  const auto setup_start = std::chrono::steady_clock::now();
  db::tpcd::WorkloadConfig config;
  config.scale_factor = env.scale_factor;
  config.seed = env.seed;
  btree_ = db::tpcd::make_database(config, db::IndexKind::kBTree);
  hash_ = db::tpcd::make_database(config, db::IndexKind::kHash);
  setup_seconds_ = seconds_since(setup_start);

  const auto workload_start = std::chrono::steady_clock::now();
  profile_ = std::make_unique<profile::Profile>(db::kernel_image());
  {
    trace::TraceRecorder recorder(training_);
    cfg::TeeSink tee;
    tee.add(profile_.get());
    tee.add(&recorder);
    db::tpcd::run_training_workload(*btree_, &tee);
  }
  {
    trace::TraceRecorder recorder(test_);
    db::tpcd::run_test_workload(*btree_, *hash_, &recorder);
  }
  wcfg_ = std::make_unique<profile::WeightedCFG>(
      profile::WeightedCFG::from_profile(*profile_));
  workload_seconds_ = seconds_since(workload_start);
}

const cfg::ProgramImage& Setup::image() const { return db::kernel_image(); }

const cfg::AddressMap& Setup::layout(core::LayoutKind kind,
                                     std::uint32_t cache_bytes,
                                     std::uint32_t cfa_bytes) {
  // orig and P&H ignore the geometry; cache them once.
  if (kind == core::LayoutKind::kOrig || kind == core::LayoutKind::kPettisHansen) {
    cache_bytes = 0;
    cfa_bytes = 0;
  }
  for (const auto& cached : layouts_) {
    if (cached->kind == kind && cached->cache_bytes == cache_bytes &&
        cached->cfa_bytes == cfa_bytes) {
      return cached->map;
    }
  }
  const std::uint32_t effective_cache = cache_bytes == 0 ? 4096 : cache_bytes;
  const std::uint32_t effective_cfa = cache_bytes == 0 ? 1024 : cfa_bytes;
  layouts_.push_back(std::make_unique<CachedLayout>(CachedLayout{
      kind, cache_bytes, cfa_bytes,
      core::make_layout(kind, *wcfg_, effective_cache, effective_cfa)}));
  return layouts_.back()->map;
}

ExperimentResult measure_miss(const trace::BlockTrace& trace,
                              const cfg::ProgramImage& image,
                              const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              std::uint32_t victim_lines) {
  if (verify_enabled()) verify_triple(trace, image, layout);
  const sim::ReplayPlan* plan =
      plan_for(trace, image, layout, geometry.line_bytes);
  sim::ICache cache(geometry, victim_lines);
  const auto sim = plan != nullptr
                       ? sim::replay_missrate(*plan, cache)
                       : sim::run_missrate(trace, image, layout, cache);
  if (verify_enabled()) {
    require_clean(verify::check_missrate_result(
                      sim, cache.stats(),
                      verify::trace_instructions(trace, image)),
                  "missrate counters");
  }
  ExperimentResult result;
  result.metric("miss_pct", sim.misses_per_100_insns());
  sim.export_counters(result.counters());
  cache.stats().export_counters(result.counters());
  result.counters().add("blocks", trace.num_events());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay("missrate", result.counters(), [&](CounterSet& out) {
      sim::ICache ref(geometry, victim_lines);
      const auto r = sim::run_missrate(trace, image, layout, ref);
      r.export_counters(out);
      ref.stats().export_counters(out);
      out.add("blocks", trace.num_events());
    });
  }
  return result;
}

ExperimentResult measure_tenant_miss(const workload::ComposedTrace& composed,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     const sim::CacheGeometry& geometry) {
  const trace::BlockTrace& trace = composed.trace;
  if (verify_enabled()) verify_triple(trace, image, layout);
  const std::uint32_t line = geometry.line_bytes;
  sim::ICache cache(geometry);
  struct TenantStats {
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
  };
  std::vector<TenantStats> per(composed.tenant_events.size());
  TenantStats total;
  // Mirrors sim::run_missrate line-crossing semantics exactly (the aggregate
  // counters must equal a plain run over the composed trace); the extra
  // state is the provenance-segment cursor selecting the charged tenant.
  trace::BlockRunStream stream(trace, image, layout);
  trace::BlockRun run;
  std::size_t seg = 0;
  std::uint64_t seg_left =
      composed.segments.empty() ? 0 : composed.segments[0].events;
  std::uint64_t prev_line = ~std::uint64_t{0};
  while (stream.next(run)) {
    while (seg_left == 0 && seg + 1 < composed.segments.size()) {
      seg_left = composed.segments[++seg].events;
    }
    STC_CHECK_MSG(seg_left > 0, "composed trace outruns its segments");
    --seg_left;
    TenantStats& t = per[composed.segments[seg].tenant];
    t.instructions += run.insns;
    total.instructions += run.insns;
    const std::uint64_t first = run.addr / line;
    const std::uint64_t last = (run.end_addr() - 1) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
      if (l == prev_line) continue;
      ++t.accesses;
      ++total.accesses;
      if (!cache.access(l * line)) {
        ++t.misses;
        ++total.misses;
      }
      prev_line = l;
    }
  }
  if (verify_enabled()) {
    // Independent recount: the attributed totals must match a plain
    // run_missrate pass over the same trace with a fresh cache.
    sim::ICache ref(geometry);
    const auto r = sim::run_missrate(trace, image, layout, ref);
    STC_CHECK_MSG(r.instructions == total.instructions &&
                      r.line_accesses == total.accesses &&
                      r.misses == total.misses,
                  "tenant-attributed counters diverge from run_missrate");
  }
  auto pct = [](const TenantStats& t) {
    return t.instructions == 0 ? 0.0
                               : 100.0 * static_cast<double>(t.misses) /
                                     static_cast<double>(t.instructions);
  };
  ExperimentResult result;
  result.metric("miss_pct", pct(total));
  double worst = 0.0;
  for (std::size_t i = 0; i < per.size(); ++i) {
    result.metric("miss_pct_t" + std::to_string(i), pct(per[i]));
    result.counters().add("t" + std::to_string(i) + "_misses", per[i].misses);
    worst = std::max(worst, pct(per[i]));
  }
  result.metric("worst_miss_pct", worst);
  result.counters().add("instructions", total.instructions);
  result.counters().add("line_accesses", total.accesses);
  result.counters().add("misses", total.misses);
  result.counters().add("blocks", trace.num_events());
  return result;
}

namespace {

// Baseline (perfect-prediction) cells: the exact code paths the paper's
// tables are measured with. measure_seq3/measure_tc dispatch here unless
// STC_BPRED selects a realistic predictor.
ExperimentResult measure_seq3_plain(const trace::BlockTrace& trace,
                                    const cfg::ProgramImage& image,
                                    const cfg::AddressMap& layout,
                                    const sim::CacheGeometry& geometry,
                                    bool perfect) {
  if (verify_enabled()) verify_triple(trace, image, layout);
  const sim::ReplayPlan* plan =
      plan_for(trace, image, layout, geometry.line_bytes);
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  const auto sim =
      plan != nullptr
          ? sim::run_seq3(*plan, params, perfect ? nullptr : &cache)
          : sim::run_seq3(trace, image, layout, params,
                          perfect ? nullptr : &cache);
  if (verify_enabled()) {
    require_clean(verify::check_fetch_result(
                      sim, params, verify::trace_instructions(trace, image),
                      /*with_trace_cache=*/false),
                  "seq3 counters");
  }
  ExperimentResult result;
  result.metric("ipc", sim.ipc());
  sim.export_counters(result.counters());
  if (!perfect) cache.stats().export_counters(result.counters());
  result.counters().add("blocks", trace.num_events());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay("seq3", result.counters(), [&](CounterSet& out) {
      sim::ICache ref(geometry);
      const auto r = sim::run_seq3(trace, image, layout, params,
                                   perfect ? nullptr : &ref);
      r.export_counters(out);
      if (!perfect) ref.stats().export_counters(out);
      out.add("blocks", trace.num_events());
    });
  }
  return result;
}

ExperimentResult measure_tc_plain(const trace::BlockTrace& trace,
                                  const cfg::ProgramImage& image,
                                  const cfg::AddressMap& layout,
                                  const sim::CacheGeometry& geometry,
                                  const sim::TraceCacheParams& tc,
                                  bool perfect) {
  if (verify_enabled()) verify_triple(trace, image, layout);
  const sim::ReplayPlan* plan =
      plan_for(trace, image, layout, geometry.line_bytes);
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  const auto sim =
      plan != nullptr
          ? sim::run_trace_cache(*plan, params, tc, perfect ? nullptr : &cache)
          : sim::run_trace_cache(trace, image, layout, params, tc,
                                 perfect ? nullptr : &cache);
  if (verify_enabled()) {
    require_clean(verify::check_fetch_result(
                      sim, params, verify::trace_instructions(trace, image),
                      /*with_trace_cache=*/true),
                  "trace-cache counters");
  }
  ExperimentResult result;
  result.metric("ipc", sim.ipc());
  result.metric("tc_hit_pct", 100.0 * sim.tc_hit_ratio());
  sim.export_counters(result.counters());
  if (!perfect) cache.stats().export_counters(result.counters());
  result.counters().add("blocks", trace.num_events());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay("trace_cache", result.counters(), [&](CounterSet& out) {
      sim::ICache ref(geometry);
      const auto r = sim::run_trace_cache(trace, image, layout, params, tc,
                                          perfect ? nullptr : &ref);
      r.export_counters(out);
      if (!perfect) ref.stats().export_counters(out);
      out.add("blocks", trace.num_events());
    });
  }
  return result;
}

}  // namespace

const frontend::FrontEndParams& frontend_params() {
  static const frontend::FrontEndParams params =
      frontend::FrontEndParams::from_environment();
  return params;
}

const backend::BackendParams& backend_params() {
  static const backend::BackendParams params =
      backend::BackendParams::from_environment();
  return params;
}

sim::ReplayMode replay_mode() {
  static const sim::ReplayMode mode = sim::replay_mode_from_env();
  return mode;
}

const sim::ReplayPlan* plan_for(const trace::BlockTrace& trace,
                                const cfg::ProgramImage& image,
                                const cfg::AddressMap& layout,
                                std::uint32_t line_bytes) {
  return plan_for(trace, image, layout, line_bytes, sim::BackendSpec{});
}

const sim::ReplayPlan* plan_for(const trace::BlockTrace& trace,
                                const cfg::ProgramImage& image,
                                const cfg::AddressMap& layout,
                                std::uint32_t line_bytes,
                                const sim::BackendSpec& backend) {
  const sim::ReplayMode mode = replay_mode();
  if (mode == sim::ReplayMode::kInterp) return nullptr;
  static sim::ReplayPlanCache cache;
  return cache.get(mode, trace, image, layout, line_bytes, backend);
}

const char* to_string(ReplaySimKind kind) {
  switch (kind) {
    case ReplaySimKind::kMissRate: return "missrate";
    case ReplaySimKind::kSequentiality: return "sequentiality";
    case ReplaySimKind::kSeq3: return "seq3";
    case ReplaySimKind::kTraceCache: return "trace_cache";
    case ReplaySimKind::kBackend: return "backend";
  }
  return "unknown";
}

namespace {

// The fixed machine the replay-throughput "backend" rows measure: the
// default out-of-order window. Deliberately independent of the STC_BACKEND
// knobs — the throughput bench compares replay engines, not machine shapes.
backend::BackendParams replay_bench_backend() {
  backend::BackendParams bp;
  bp.kind = backend::BackendKind::kOoo;
  return bp;
}

// Runs one simulator kind through either backend (interp when `plan` is
// null) and exports its counters in the cell's canonical order.
void run_replay_sim(ReplaySimKind kind, const trace::BlockTrace& trace,
                    const cfg::ProgramImage& image,
                    const cfg::AddressMap& layout,
                    const sim::CacheGeometry& geometry,
                    const sim::ReplayPlan* plan, CounterSet& out) {
  switch (kind) {
    case ReplaySimKind::kMissRate: {
      sim::ICache cache(geometry);
      const auto r = plan != nullptr
                         ? sim::replay_missrate(*plan, cache)
                         : sim::run_missrate(trace, image, layout, cache);
      r.export_counters(out);
      cache.stats().export_counters(out);
      return;
    }
    case ReplaySimKind::kSequentiality: {
      const auto r = plan != nullptr
                         ? sim::replay_sequentiality(*plan)
                         : trace::measure_sequentiality(trace, image, layout);
      r.export_counters(out);
      return;
    }
    case ReplaySimKind::kSeq3: {
      const sim::FetchParams params;
      sim::ICache cache(geometry);
      const auto r =
          plan != nullptr
              ? sim::run_seq3(*plan, params, &cache)
              : sim::run_seq3(trace, image, layout, params, &cache);
      r.export_counters(out);
      cache.stats().export_counters(out);
      return;
    }
    case ReplaySimKind::kTraceCache: {
      const sim::FetchParams params;
      const sim::TraceCacheParams tc;
      sim::ICache cache(geometry);
      const auto r = plan != nullptr
                         ? sim::run_trace_cache(*plan, params, tc, &cache)
                         : sim::run_trace_cache(trace, image, layout, params,
                                                tc, &cache);
      r.export_counters(out);
      cache.stats().export_counters(out);
      return;
    }
    case ReplaySimKind::kBackend: {
      const sim::FetchParams params;
      const frontend::FrontEndParams fe;  // transparent front end
      const backend::BackendParams bp = replay_bench_backend();
      sim::ICache cache(geometry);
      const auto r =
          plan != nullptr
              ? backend::run_seq3_backend(*plan, params, fe, bp, &cache)
              : backend::run_seq3_backend(trace, image, layout, params, fe,
                                          bp, &cache);
      if (!r.is_ok()) {
        throw StatusError(r.status().with_context("replay backend cell"));
      }
      r.value().fetch.export_counters(out);
      r.value().frontend.export_counters(out);
      r.value().backend.export_counters(out);
      cache.stats().export_counters(out);
      return;
    }
  }
}

}  // namespace

ExperimentResult measure_replay_cell(const trace::BlockTrace& trace,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     const sim::CacheGeometry& geometry,
                                     ReplaySimKind sim_kind,
                                     sim::ReplayMode mode) {
  const std::uint32_t line_bytes =
      sim_kind == ReplaySimKind::kSequentiality ? 0 : geometry.line_bytes;

  // Plan build (timed separately: it amortizes over a whole grid in real
  // benches but must still be visible in the throughput report).
  double plan_seconds = 0.0;
  std::unique_ptr<sim::ReplayPlan> plan;
  if (mode != sim::ReplayMode::kInterp) {
    const auto plan_start = std::chrono::steady_clock::now();
    const sim::BackendSpec spec = sim_kind == ReplaySimKind::kBackend
                                      ? replay_bench_backend().spec()
                                      : sim::BackendSpec{};
    Result<sim::ReplayPlan> built =
        sim::build_replay_plan(mode, trace, image, layout, line_bytes, spec);
    plan_seconds = seconds_since(plan_start);
    if (!built.is_ok()) {
      throw StatusError(built.status().with_context("replay cell plan"));
    }
    plan = std::make_unique<sim::ReplayPlan>(std::move(built).take());
  }

  ExperimentResult result;
  const auto replay_start = std::chrono::steady_clock::now();
  run_replay_sim(sim_kind, trace, image, layout, geometry, plan.get(),
                 result.counters());
  const double seconds = seconds_since(replay_start);

  // Correctness gate: the timed run must reproduce the interpreter bit for
  // bit, whichever engine produced it.
  CounterSet expected;
  run_replay_sim(sim_kind, trace, image, layout, geometry, nullptr, expected);
  const verify::Report diff =
      verify::check_counters_equal(expected, result.counters(),
                                   to_string(sim_kind));
  if (!diff.ok()) {
    throw StatusError(internal_error("replay mode " +
                                     std::string(sim::to_string(mode)) +
                                     " diverged from interp: " +
                                     diff.summary()));
  }

  const double events = static_cast<double>(trace.num_events());
  result.metric("events_per_sec", seconds > 0.0 ? events / seconds : 0.0);
  result.metric("seconds", seconds);
  if (mode != sim::ReplayMode::kInterp) {
    result.metric("plan_seconds", plan_seconds);
  }
  result.counters().add("blocks", trace.num_events());
  return result;
}

ExperimentResult measure_seq3(const trace::BlockTrace& trace,
                              const cfg::ProgramImage& image,
                              const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              bool perfect) {
  const frontend::FrontEndParams& fe = frontend_params();
  const backend::BackendParams& bp = backend_params();
  if (!bp.off()) {
    return measure_seq3_backend(trace, image, layout, geometry, fe, bp,
                                perfect);
  }
  if (fe.transparent()) {
    return measure_seq3_plain(trace, image, layout, geometry, perfect);
  }
  return measure_seq3_bpred(trace, image, layout, geometry, fe, perfect);
}

ExperimentResult measure_tc(const trace::BlockTrace& trace,
                            const cfg::ProgramImage& image,
                            const cfg::AddressMap& layout,
                            const sim::CacheGeometry& geometry,
                            const sim::TraceCacheParams& tc, bool perfect) {
  const frontend::FrontEndParams& fe = frontend_params();
  if (fe.transparent()) {
    return measure_tc_plain(trace, image, layout, geometry, tc, perfect);
  }
  return measure_tc_bpred(trace, image, layout, geometry, tc, fe, perfect);
}

ExperimentResult measure_seq3_bpred(const trace::BlockTrace& trace,
                                    const cfg::ProgramImage& image,
                                    const cfg::AddressMap& layout,
                                    const sim::CacheGeometry& geometry,
                                    const frontend::FrontEndParams& fe,
                                    bool perfect) {
  if (fe.transparent()) {
    return measure_seq3_plain(trace, image, layout, geometry, perfect);
  }
  if (verify_enabled()) verify_triple(trace, image, layout);
  const sim::ReplayPlan* plan =
      plan_for(trace, image, layout, geometry.line_bytes);
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  const auto sim =
      plan != nullptr
          ? frontend::run_seq3_frontend(*plan, params, fe,
                                        perfect ? nullptr : &cache)
          : frontend::run_seq3_frontend(trace, image, layout, params, fe,
                                        perfect ? nullptr : &cache);
  if (verify_enabled()) {
    require_clean(verify::check_frontend_result(
                      sim, params, fe,
                      verify::trace_instructions(trace, image),
                      /*with_trace_cache=*/false),
                  "front-end seq3 counters");
  }
  ExperimentResult result;
  result.metric("ipc", sim.fetch.ipc());
  result.metric("mpki", sim.frontend.mispredicts_per_ki(sim.fetch.instructions));
  sim.fetch.export_counters(result.counters());
  sim.frontend.export_counters(result.counters());
  if (!perfect) cache.stats().export_counters(result.counters());
  result.counters().add("blocks", trace.num_events());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay("seq3+frontend", result.counters(),
                       [&](CounterSet& out) {
                         sim::ICache ref(geometry);
                         const auto r = frontend::run_seq3_frontend(
                             trace, image, layout, params, fe,
                             perfect ? nullptr : &ref);
                         r.fetch.export_counters(out);
                         r.frontend.export_counters(out);
                         if (!perfect) ref.stats().export_counters(out);
                         out.add("blocks", trace.num_events());
                       });
  }
  return result;
}

ExperimentResult measure_tc_bpred(const trace::BlockTrace& trace,
                                  const cfg::ProgramImage& image,
                                  const cfg::AddressMap& layout,
                                  const sim::CacheGeometry& geometry,
                                  const sim::TraceCacheParams& tc,
                                  const frontend::FrontEndParams& fe,
                                  bool perfect) {
  if (fe.transparent()) {
    return measure_tc_plain(trace, image, layout, geometry, tc, perfect);
  }
  if (verify_enabled()) verify_triple(trace, image, layout);
  const sim::ReplayPlan* plan =
      plan_for(trace, image, layout, geometry.line_bytes);
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  const auto sim =
      plan != nullptr
          ? frontend::run_trace_cache_frontend(*plan, params, tc, fe,
                                               perfect ? nullptr : &cache)
          : frontend::run_trace_cache_frontend(trace, image, layout, params,
                                               tc, fe,
                                               perfect ? nullptr : &cache);
  if (verify_enabled()) {
    require_clean(verify::check_frontend_result(
                      sim, params, fe,
                      verify::trace_instructions(trace, image),
                      /*with_trace_cache=*/true),
                  "front-end trace-cache counters");
  }
  ExperimentResult result;
  result.metric("ipc", sim.fetch.ipc());
  result.metric("tc_hit_pct", 100.0 * sim.fetch.tc_hit_ratio());
  result.metric("mpki", sim.frontend.mispredicts_per_ki(sim.fetch.instructions));
  sim.fetch.export_counters(result.counters());
  sim.frontend.export_counters(result.counters());
  if (!perfect) cache.stats().export_counters(result.counters());
  result.counters().add("blocks", trace.num_events());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay("trace_cache+frontend", result.counters(),
                       [&](CounterSet& out) {
                         sim::ICache ref(geometry);
                         const auto r = frontend::run_trace_cache_frontend(
                             trace, image, layout, params, tc, fe,
                             perfect ? nullptr : &ref);
                         r.fetch.export_counters(out);
                         r.frontend.export_counters(out);
                         if (!perfect) ref.stats().export_counters(out);
                         out.add("blocks", trace.num_events());
                       });
  }
  return result;
}

ExperimentResult measure_seq3_backend(const trace::BlockTrace& trace,
                                      const cfg::ProgramImage& image,
                                      const cfg::AddressMap& layout,
                                      const sim::CacheGeometry& geometry,
                                      const frontend::FrontEndParams& fe,
                                      const backend::BackendParams& bp,
                                      bool perfect) {
  STC_CHECK_MSG(!bp.off(),
                "measure_seq3_backend requires a non-off back end");
  if (verify_enabled()) verify_triple(trace, image, layout);
  const sim::ReplayPlan* plan =
      plan_for(trace, image, layout, geometry.line_bytes, bp.spec());
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  const auto run =
      plan != nullptr
          ? backend::run_seq3_backend(*plan, params, fe, bp,
                                      perfect ? nullptr : &cache)
          : backend::run_seq3_backend(trace, image, layout, params, fe, bp,
                                      perfect ? nullptr : &cache);
  if (!run.is_ok()) {
    throw StatusError(run.status().with_context("backend cell"));
  }
  const backend::BackendResult& sim = run.value();
  if (verify_enabled()) {
    require_clean(verify::check_backend_result(
                      sim, params, fe, bp,
                      verify::trace_instructions(trace, image)),
                  "back-end pipeline counters");
  }
  ExperimentResult result;
  result.metric("ipc", sim.ipc());
  if (!fe.transparent()) {
    result.metric("mpki",
                  sim.frontend.mispredicts_per_ki(sim.fetch.instructions));
  }
  sim.fetch.export_counters(result.counters());
  if (!fe.transparent()) sim.frontend.export_counters(result.counters());
  sim.backend.export_counters(result.counters());
  if (!perfect) cache.stats().export_counters(result.counters());
  result.counters().add("blocks", trace.num_events());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay(
        "seq3+backend", result.counters(), [&](CounterSet& out) {
          sim::ICache ref(geometry);
          const auto r = backend::run_seq3_backend(
              trace, image, layout, params, fe, bp,
              perfect ? nullptr : &ref);
          if (!r.is_ok()) {
            throw StatusError(
                r.status().with_context("backend interp cross-check"));
          }
          r.value().fetch.export_counters(out);
          if (!fe.transparent()) r.value().frontend.export_counters(out);
          r.value().backend.export_counters(out);
          if (!perfect) ref.stats().export_counters(out);
          out.add("blocks", trace.num_events());
        });
  }
  return result;
}

ExperimentResult measure_seq(const trace::BlockTrace& trace,
                             const cfg::ProgramImage& image,
                             const cfg::AddressMap& layout) {
  if (verify_enabled()) verify_triple(trace, image, layout);
  // Sequentiality needs no cache-line tables: a layout-only plan suffices.
  const sim::ReplayPlan* plan = plan_for(trace, image, layout, 0);
  const auto seq = plan != nullptr
                       ? sim::replay_sequentiality(*plan)
                       : trace::measure_sequentiality(trace, image, layout);
  ExperimentResult result;
  result.metric("insn_per_taken", seq.insns_between_taken_branches());
  seq.export_counters(result.counters());
  if (verify_enabled() && plan != nullptr) {
    cross_check_replay("sequentiality", result.counters(),
                       [&](CounterSet& out) {
                         trace::measure_sequentiality(trace, image, layout)
                             .export_counters(out);
                       });
  }
  return result;
}

ExperimentResult measure_miss(Setup& setup, const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              std::uint32_t victim_lines) {
  return measure_miss(setup.test_trace(), setup.image(), layout, geometry,
                      victim_lines);
}

ExperimentResult measure_seq3(Setup& setup, const cfg::AddressMap& layout,
                              const sim::CacheGeometry& geometry,
                              bool perfect) {
  return measure_seq3(setup.test_trace(), setup.image(), layout, geometry,
                      perfect);
}

ExperimentResult measure_tc(Setup& setup, const cfg::AddressMap& layout,
                            const sim::CacheGeometry& geometry,
                            const sim::TraceCacheParams& tc, bool perfect) {
  return measure_tc(setup.test_trace(), setup.image(), layout, geometry, tc,
                    perfect);
}

ExperimentResult measure_seq(Setup& setup, const cfg::AddressMap& layout) {
  return measure_seq(setup.test_trace(), setup.image(), layout);
}

ExperimentResult measure_seq3_bpred(Setup& setup, const cfg::AddressMap& layout,
                                    const sim::CacheGeometry& geometry,
                                    const frontend::FrontEndParams& fe,
                                    bool perfect) {
  return measure_seq3_bpred(setup.test_trace(), setup.image(), layout,
                            geometry, fe, perfect);
}

ExperimentResult measure_tc_bpred(Setup& setup, const cfg::AddressMap& layout,
                                  const sim::CacheGeometry& geometry,
                                  const sim::TraceCacheParams& tc,
                                  const frontend::FrontEndParams& fe,
                                  bool perfect) {
  return measure_tc_bpred(setup.test_trace(), setup.image(), layout, geometry,
                          tc, fe, perfect);
}

ExperimentResult measure_seq3_backend(Setup& setup,
                                      const cfg::AddressMap& layout,
                                      const sim::CacheGeometry& geometry,
                                      const frontend::FrontEndParams& fe,
                                      const backend::BackendParams& bp,
                                      bool perfect) {
  return measure_seq3_backend(setup.test_trace(), setup.image(), layout,
                              geometry, fe, bp, perfect);
}

double miss_pct(Setup& setup, const cfg::AddressMap& layout,
                const sim::CacheGeometry& geometry,
                std::uint32_t victim_lines) {
  return measure_miss(setup, layout, geometry, victim_lines)
      .metric("miss_pct");
}

double seq3_ipc(Setup& setup, const cfg::AddressMap& layout,
                const sim::CacheGeometry& geometry, bool perfect) {
  return measure_seq3(setup, layout, geometry, perfect).metric("ipc");
}

double tc_ipc(Setup& setup, const cfg::AddressMap& layout,
              const sim::CacheGeometry& geometry,
              const sim::TraceCacheParams& tc, bool perfect) {
  return measure_tc(setup, layout, geometry, tc, perfect).metric("ipc");
}

void print_banner(const char* title, const Env& env, const Setup& setup) {
  std::printf("== %s ==\n", title);
  std::printf(
      "setup: SF=%.4g seed=%llu line=%uB | training events=%llu "
      "test events=%llu | kernel: %zu routines, %zu blocks, %llu insns\n\n",
      env.scale_factor, static_cast<unsigned long long>(env.seed),
      env.line_bytes,
      static_cast<unsigned long long>(setup.training_trace().num_events()),
      static_cast<unsigned long long>(setup.test_trace().num_events()),
      setup.image().num_routines(), setup.image().num_blocks(),
      static_cast<unsigned long long>(setup.image().total_instructions()));
}

ExperimentRunner make_runner(const char* name, const Env& env,
                             const Setup& setup) {
  ExperimentRunner runner(name);
  // Bench grids are rebuilt identically by every process that runs the
  // binary with the same knobs, which is exactly the contract process
  // sharding needs (STC_SHARDS / STC_SHARD; see support/experiment.h).
  runner.set_shardable(true);
  runner.meta("scale_factor", env.scale_factor);
  runner.meta("seed", env.seed);
  runner.meta("line_bytes", std::uint64_t{env.line_bytes});
  runner.meta("replay_mode", sim::to_string(replay_mode()));
  runner.meta("training_events", setup.training_trace().num_events());
  runner.meta("test_events", setup.test_trace().num_events());
  runner.meta("kernel_routines",
              static_cast<std::uint64_t>(setup.image().num_routines()));
  runner.meta("kernel_blocks",
              static_cast<std::uint64_t>(setup.image().num_blocks()));
  runner.meta("kernel_instructions", setup.image().total_instructions());
  runner.record_phase("setup", setup.setup_seconds());
  runner.record_phase("workload", setup.workload_seconds());
  // Every report carries the full phase set. Benches that build layouts up
  // front accumulate real seconds onto this entry via time_phase("layouts");
  // for the rest (layouts built inside jobs, or none at all) the phase is
  // present and zero, so consumers can rely on a uniform schema.
  runner.record_phase("layouts", 0.0);
  return runner;
}

int write_report(const ExperimentRunner& runner) {
  const Result<std::string> path = runner.write_report();
  if (!path.is_ok()) {
    std::fprintf(stderr, "[%s] %s\n", runner.name().c_str(),
                 path.status().to_string().c_str());
    return 1;
  }
  if (runner.all_ok()) {
    std::printf("\n[%s] wrote %s (%zu jobs)\n", runner.name().c_str(),
                path.value().c_str(), runner.num_jobs());
    return 0;
  }
  std::printf("\n[%s] wrote %s (%zu jobs, %zu FAILED — see report)\n",
              runner.name().c_str(), path.value().c_str(), runner.num_jobs(),
              runner.failures().size());
  return runner.exit_code();
}

}  // namespace stc::bench
