#include "bench/common.h"

#include <cstdio>
#include <cstdlib>

#include "support/thread_pool.h"

namespace stc::bench {

std::vector<CfaPoint> Env::cfa_sweep() const {
  // Structured like the paper's Table 3 rows (cache / CFA):
  // 8/2 8/4 8/6 | 16/4 16/8 16/12 | 32/4 32/8 32/16 32/24 | 64/8 64/16 64/24,
  // scaled to this kernel (divide by 8).
  return {
      {1024, 256},  {1024, 512},  {1024, 768},
      {2048, 512},  {2048, 1024}, {2048, 1536},
      {4096, 512},  {4096, 1024}, {4096, 2048}, {4096, 3072},
      {8192, 1024}, {8192, 2048}, {8192, 3072},
  };
}

Env Env::from_environment() {
  Env env;
  if (const char* sf = std::getenv("STC_SF")) env.scale_factor = std::atof(sf);
  if (const char* seed = std::getenv("STC_SEED")) {
    env.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  if (const char* line = std::getenv("STC_LINE")) {
    env.line_bytes = static_cast<std::uint32_t>(std::atoi(line));
  }
  return env;
}

Setup::Setup(const Env& env) : env_(env) {
  db::tpcd::WorkloadConfig config;
  config.scale_factor = env.scale_factor;
  config.seed = env.seed;
  btree_ = db::tpcd::make_database(config, db::IndexKind::kBTree);
  hash_ = db::tpcd::make_database(config, db::IndexKind::kHash);

  profile_ = std::make_unique<profile::Profile>(db::kernel_image());
  {
    trace::TraceRecorder recorder(training_);
    cfg::TeeSink tee;
    tee.add(profile_.get());
    tee.add(&recorder);
    db::tpcd::run_training_workload(*btree_, &tee);
  }
  {
    trace::TraceRecorder recorder(test_);
    db::tpcd::run_test_workload(*btree_, *hash_, &recorder);
  }
  wcfg_ = std::make_unique<profile::WeightedCFG>(
      profile::WeightedCFG::from_profile(*profile_));
}

const cfg::ProgramImage& Setup::image() const { return db::kernel_image(); }

const cfg::AddressMap& Setup::layout(core::LayoutKind kind,
                                     std::uint32_t cache_bytes,
                                     std::uint32_t cfa_bytes) {
  // orig and P&H ignore the geometry; cache them once.
  if (kind == core::LayoutKind::kOrig || kind == core::LayoutKind::kPettisHansen) {
    cache_bytes = 0;
    cfa_bytes = 0;
  }
  for (const auto& cached : layouts_) {
    if (cached->kind == kind && cached->cache_bytes == cache_bytes &&
        cached->cfa_bytes == cfa_bytes) {
      return cached->map;
    }
  }
  const std::uint32_t effective_cache = cache_bytes == 0 ? 4096 : cache_bytes;
  const std::uint32_t effective_cfa = cache_bytes == 0 ? 1024 : cfa_bytes;
  layouts_.push_back(std::make_unique<CachedLayout>(CachedLayout{
      kind, cache_bytes, cfa_bytes,
      core::make_layout(kind, *wcfg_, effective_cache, effective_cfa)}));
  return layouts_.back()->map;
}

double miss_pct(Setup& setup, const cfg::AddressMap& layout,
                const sim::CacheGeometry& geometry,
                std::uint32_t victim_lines) {
  sim::ICache cache(geometry, victim_lines);
  return sim::run_missrate(setup.test_trace(), setup.image(), layout, cache)
      .misses_per_100_insns();
}

double seq3_ipc(Setup& setup, const cfg::AddressMap& layout,
                const sim::CacheGeometry& geometry, bool perfect) {
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  return sim::run_seq3(setup.test_trace(), setup.image(), layout, params,
                       perfect ? nullptr : &cache)
      .ipc();
}

double tc_ipc(Setup& setup, const cfg::AddressMap& layout,
              const sim::CacheGeometry& geometry,
              const sim::TraceCacheParams& tc, bool perfect) {
  sim::FetchParams params;
  params.perfect_icache = perfect;
  sim::ICache cache(geometry);
  return sim::run_trace_cache(setup.test_trace(), setup.image(), layout, params,
                              tc, perfect ? nullptr : &cache)
      .ipc();
}

std::vector<double> parallel_cells(
    const std::vector<std::function<double()>>& jobs) {
  std::size_t threads = 0;  // hardware concurrency
  if (const char* env = std::getenv("STC_THREADS")) {
    threads = static_cast<std::size_t>(std::atoi(env));
  }
  ThreadPool pool(threads);
  std::vector<double> results(jobs.size(), 0.0);
  pool.parallel_for(jobs.size(),
                    [&](std::size_t i) { results[i] = jobs[i](); });
  return results;
}

void print_banner(const char* title, const Env& env, const Setup& setup) {
  std::printf("== %s ==\n", title);
  std::printf(
      "setup: SF=%.4g seed=%llu line=%uB | training events=%llu "
      "test events=%llu | kernel: %zu routines, %zu blocks, %llu insns\n\n",
      env.scale_factor, static_cast<unsigned long long>(env.seed),
      env.line_bytes,
      static_cast<unsigned long long>(setup.training_trace().num_events()),
      static_cast<unsigned long long>(setup.test_trace().num_events()),
      setup.image().num_routines(), setup.image().num_blocks(),
      static_cast<unsigned long long>(setup.image().total_instructions()));
}

}  // namespace stc::bench
