// Reproduces Table 3: instruction-cache miss rate (misses per 100 executed
// instructions) for the five code layouts over the cache/CFA sweep, plus the
// 2-way set-associative and victim-cache (4 fully-associative lines, the
// paper's 16 scaled with the cache axis) alternatives on the original
// layout.
//
// The paper's absolute cache sizes (8-64KB) are scaled 8x down to match this
// kernel's executed footprint; the row structure (three to four CFA choices
// per cache size) mirrors the paper exactly. Independent (layout, cache)
// cells run as one ExperimentRunner grid after the layouts are prebuilt.
#include <array>
#include <cstdio>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Table 3: i-cache miss rate per layout (Test set)", env,
                      setup);

  auto runner = bench::make_runner("table3_missrate", env, setup);

  // Prebuild every layout so the parallel phase is read-only.
  runner.time_phase("layouts", [&] {
    for (const bench::CfaPoint& point : env.cfa_sweep()) {
      for (LayoutKind kind : {LayoutKind::kTorrellas, LayoutKind::kStcAuto,
                              LayoutKind::kStcOps}) {
        setup.layout(kind, point.cache_bytes, point.cfa_bytes);
      }
    }
    setup.layout(LayoutKind::kOrig, 0, 0);
    setup.layout(LayoutKind::kPettisHansen, 0, 0);
  });

  // Enumerate the measurement cells.
  struct CellRef {
    std::size_t job;
    std::size_t row;
    std::size_t column;
  };
  std::vector<CellRef> refs;
  const auto sweep = env.cfa_sweep();
  // values[row][col], col 0..6 = orig P&H Torr auto ops 2way victim.
  std::vector<std::array<double, 7>> values(sweep.size());
  std::vector<bool> leads_cache(sweep.size(), false);

  const auto add = [&](std::size_t row, std::size_t column,
                       const std::string& cell, const bench::CfaPoint& point,
                       const char* layout,
                       std::function<ExperimentResult()> fn) {
    const std::size_t job = runner.add(
        cell + " " + layout,
        {{"cache_bytes", std::to_string(point.cache_bytes)},
         {"cfa_bytes", std::to_string(point.cfa_bytes)},
         {"layout", layout}},
        std::move(fn));
    refs.push_back({job, row, column});
  };

  std::uint32_t last_cache = 0;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const bench::CfaPoint point = sweep[r];
    const sim::CacheGeometry dm{point.cache_bytes, env.line_bytes, 1};
    leads_cache[r] = point.cache_bytes != last_cache;
    last_cache = point.cache_bytes;
    const std::string cell =
        fmt_size(point.cache_bytes) + "/" + fmt_size(point.cfa_bytes);
    if (leads_cache[r]) {
      add(r, 0, cell, point, "orig", [&setup, dm] {
        return bench::measure_miss(setup, setup.layout(LayoutKind::kOrig, 0, 0),
                                   dm);
      });
      add(r, 1, cell, point, "ph", [&setup, dm] {
        return bench::measure_miss(
            setup, setup.layout(LayoutKind::kPettisHansen, 0, 0), dm);
      });
      const sim::CacheGeometry two_way{point.cache_bytes, env.line_bytes, 2};
      add(r, 5, cell, point, "orig-2way", [&setup, two_way] {
        return bench::measure_miss(
            setup, setup.layout(LayoutKind::kOrig, 0, 0), two_way);
      });
      add(r, 6, cell, point, "orig-victim", [&setup, dm] {
        return bench::measure_miss(setup, setup.layout(LayoutKind::kOrig, 0, 0),
                                   dm, /*victim_lines=*/4);
      });
    }
    const struct {
      LayoutKind kind;
      const char* label;
    } kinds[] = {{LayoutKind::kTorrellas, "torr"},
                 {LayoutKind::kStcAuto, "auto"},
                 {LayoutKind::kStcOps, "ops"}};
    for (std::size_t k = 0; k < 3; ++k) {
      const LayoutKind kind = kinds[k].kind;
      add(r, 2 + k, cell, point, kinds[k].label, [&setup, kind, point, dm] {
        return bench::measure_miss(
            setup, setup.layout(kind, point.cache_bytes, point.cfa_bytes), dm);
      });
    }
  }

  runner.run();
  for (const CellRef& ref : refs) {
    values[ref.row][ref.column] = runner.metric_or(ref.job, "miss_pct");
  }

  // Render.
  TextTable table;
  table.header({"i-cache/CFA", "orig", "P&H", "Torr", "auto", "ops", "2-way",
                "victim"});
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    const bench::CfaPoint point = sweep[r];
    std::vector<std::string> cells{fmt_size(point.cache_bytes) + "/" +
                                   fmt_size(point.cfa_bytes)};
    for (std::size_t c = 0; c < 7; ++c) {
      const bool geometry_free = c <= 1 || c >= 5;
      if (geometry_free && !leads_cache[r]) {
        cells.push_back("-");
      } else {
        cells.push_back(fmt_fixed(values[r][c], 2));
      }
    }
    table.row(std::move(cells));
    if (point.cfa_bytes * 4 >= point.cache_bytes * 3) table.separator();
  }
  std::fputs(table.render().c_str(), stdout);

  // Headline: miss reduction band across the sweep (paper: 60-98%).
  double best_reduction = 0.0;
  double worst_reduction = 1.0;
  for (std::size_t r = 0; r < sweep.size(); ++r) {
    if (!leads_cache[r]) continue;
    const double orig = values[r][0];
    if (orig <= 0.0) continue;
    double best = orig;
    for (std::size_t rr = r; rr < sweep.size(); ++rr) {
      if (sweep[rr].cache_bytes != sweep[r].cache_bytes) break;
      best = std::min(best, values[rr][4]);  // ops column
    }
    const double reduction = 1.0 - best / orig;
    best_reduction = std::max(best_reduction, reduction);
    worst_reduction = std::min(worst_reduction, reduction);
  }
  std::printf(
      "\nops-layout miss reduction across cache sizes: %.0f%% .. %.0f%% "
      "(paper: 60-98%%)\n",
      100.0 * worst_reduction, 100.0 * best_reduction);

  return bench::write_report(runner);
}
