// Ablation: speculative front end — predictor type x layout x cache size.
//
// The paper evaluates SEQ.3 under perfect branch prediction (Table 4). This
// sweep replaces the oracle with realistic direction predictors (always-
// taken, bimodal, gshare, 2-level local) plus a BTB, a return-address stack
// and FDIP-style fetch-directed prefetching (src/frontend), and asks how
// much of each layout's fetch-bandwidth advantage survives a real front
// end. Two effects compete: reordering turns taken branches into
// fall-throughs (fewer chances to mispredict a target), but it also changes
// which (addr, history) pairs alias in the pattern tables.
//
// The perfect rows run the transparent configuration — byte-identical to
// Table 4's simulator — so every realistic row reads as a delta against the
// paper's numbers in the same report.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"

int main() {
  using namespace stc;
  using core::LayoutKind;
  using frontend::BpredKind;
  const auto env = bench::Env::from_environment();
  bench::Setup setup(env);
  bench::print_banner("Ablation: branch prediction + FDIP front end", env,
                      setup);

  // The environment's front-end geometry (STC_FTQ_DEPTH etc.); the predictor
  // kind is the sweep axis, overridden per row.
  frontend::FrontEndParams base = frontend::FrontEndParams::from_environment();

  const BpredKind kinds[] = {BpredKind::kPerfect, BpredKind::kAlwaysTaken,
                             BpredKind::kBimodal, BpredKind::kGshare,
                             BpredKind::kLocal};
  const struct {
    LayoutKind kind;
    const char* name;
  } layouts[] = {
      {LayoutKind::kOrig, "orig"},         {LayoutKind::kPettisHansen, "ph"},
      {LayoutKind::kTorrellas, "torr"},    {LayoutKind::kStcAuto, "auto"},
      {LayoutKind::kStcOps, "ops"},
  };
  const std::uint32_t caches[] = {2048, 8192};

  auto runner = bench::make_runner("ablate_bpred", env, setup);
  runner.meta("table_bits", std::uint64_t{base.table_bits});
  runner.meta("btb_entries", std::uint64_t{base.btb_entries});
  runner.meta("ras_depth", std::uint64_t{base.ras_depth});
  runner.meta("ftq_depth", std::uint64_t{base.ftq_depth});
  runner.meta("prefetch_width", std::uint64_t{base.prefetch_width});
  runner.meta("mispredict_penalty", std::uint64_t{base.mispredict_penalty});

  runner.time_phase("layouts", [&] {
    for (const std::uint32_t cache : caches) {
      for (const auto& l : layouts) setup.layout(l.kind, cache, cache / 4);
    }
  });

  // jobs[cache][layout][kind]
  std::vector<std::vector<std::vector<std::size_t>>> jobs;
  for (const std::uint32_t cache : caches) {
    const sim::CacheGeometry dm{cache, env.line_bytes, 1};
    jobs.emplace_back();
    for (const auto& l : layouts) {
      const auto& layout = setup.layout(l.kind, cache, cache / 4);
      jobs.back().emplace_back();
      for (const BpredKind kind : kinds) {
        frontend::FrontEndParams fe = base;
        fe.kind = kind;
        fe.prefetch = kind != BpredKind::kPerfect && base.ftq_depth > 0;
        const std::string name = std::string(frontend::to_string(kind)) + " " +
                                 l.name + " " + fmt_size(cache);
        jobs.back().back().push_back(runner.add(
            name,
            {{"bpred", frontend::to_string(kind)},
             {"layout", l.name},
             {"cache", std::to_string(cache)}},
            [&setup, &layout, dm, fe] {
              return bench::measure_seq3_bpred(setup, layout, dm, fe);
            }));
      }
    }
  }
  runner.run();

  for (std::size_t c = 0; c < std::size(caches); ++c) {
    std::printf("-- %s i-cache, IPC (mispredicts/1000 insns) --\n",
                fmt_size(caches[c]).c_str());
    TextTable table;
    table.header({"bpred", "orig", "ph", "torr", "auto", "ops"});
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      std::vector<std::string> row{frontend::to_string(kinds[k])};
      for (std::size_t l = 0; l < std::size(layouts); ++l) {
        const std::size_t job = jobs[c][l][k];
        std::string cell = fmt_fixed(runner.metric_or(job, "ipc"), 2);
        if (kinds[k] != BpredKind::kPerfect) {
          cell += " (" + fmt_fixed(runner.metric_or(job, "mpki"), 1) + ")";
        }
        row.push_back(cell);
      }
      table.row(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\n");
  }

  // Headline: how much of the layout win survives a realistic front end.
  const std::size_t g_orig_job = jobs[1][0][3];        // gshare orig 8K
  const std::size_t g_ops_job = jobs[1][4][3];         // gshare ops 8K
  const auto& g_ops = runner.result(g_ops_job);
  std::printf(
      "ops/orig fetch-bandwidth ratio at 8K: %.2fx perfect -> %.2fx gshare\n"
      "(gshare ops: %.1f mispredicts/1000 insns, %llu prefetches issued,\n"
      " %llu useful, %llu late)\n",
      runner.metric_or(jobs[1][4][0], "ipc") /
          runner.metric_or(jobs[1][0][0], "ipc"),
      runner.metric_or(g_ops_job, "ipc") / runner.metric_or(g_orig_job, "ipc"),
      runner.metric_or(g_ops_job, "mpki"),
      static_cast<unsigned long long>(g_ops.counters().get("prefetch_issued")),
      static_cast<unsigned long long>(g_ops.counters().get("prefetch_useful")),
      static_cast<unsigned long long>(g_ops.counters().get("prefetch_late")));

  return bench::write_report(runner);
}
