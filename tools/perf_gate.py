#!/usr/bin/env python3
"""CI perf-regression gate over replay-throughput bench reports.

Wall-clock events/sec is machine-dependent, so the gate works on *speedup
ratios*: for every simulator cell, events_per_sec in the batched/compiled
replay mode divided by the interp mode measured in the same run on the same
machine. Ratios are compared against a committed baseline
(bench/perf_baseline.json) with a tolerance band:

    current_speedup >= baseline_speedup * (1 - tolerance)

A cell whose ratio falls below the band is a throughput regression and the
gate exits 1. The gate additionally requires the best ratio across all cells
to clear the baseline's `min_best_speedup` floor (the batched/compiled
engines must actually be worth having), and validates the report's schema:
schema_version == 3 with a throughput.events_per_sec field.

Usage:
    perf_gate.py BENCH_replay_throughput.json [BENCH_scale_sweep.json ...]
                 [--baseline FILE] [--tolerance 0.15]
                 [--write-baseline FILE] [--scale-non-interp F]

Several reports gate together in one invocation (each is schema-validated
and must be failure-free; their cells merge, and a (sim, mode) pair that
appears in two reports is an error).

--write-baseline records the current run's ratios as a new baseline (after
a deliberate engine change; scale the recorded ratios down first if the
machine is unusually fast). --scale-non-interp multiplies every non-interp
events_per_sec by F before gating — CI uses it to prove the gate catches a
simulated regression (F=0.84 must fail a freshly written baseline at the
default 15% tolerance).
"""

import argparse
import json
import sys


def fail(msg):
    print(f"perf_gate: FAIL: {msg}", file=sys.stderr)
    return 1


def load_cells(report, scale_non_interp, cells):
    """Merges {(sim, mode): events_per_sec} from the report into cells."""
    for result in report.get("results", []):
        params = result.get("params", {})
        metrics = result.get("metrics")
        if metrics is None:
            raise ValueError(
                f"job '{result.get('name')}' has no metrics (failed cell)")
        sim, mode = params.get("sim"), params.get("mode")
        if sim is None or mode is None:
            raise ValueError(
                f"job '{result.get('name')}' lacks sim/mode params")
        if "events_per_sec" not in metrics:
            raise ValueError(
                f"job '{result.get('name')}': metrics lack 'events_per_sec'")
        eps = metrics["events_per_sec"]
        if mode != "interp":
            eps *= scale_non_interp
        if (sim, mode) in cells:
            raise ValueError(
                f"cell ('{sim}', '{mode}') appears in more than one report")
        cells[(sim, mode)] = eps
    return cells


def speedups(cells):
    """{(sim, mode): cell / interp} for every non-interp cell."""
    out = {}
    for (sim, mode), eps in sorted(cells.items()):
        if mode == "interp":
            continue
        interp = cells.get((sim, "interp"))
        if interp is None or interp <= 0:
            raise ValueError(f"no interp reference for sim '{sim}'")
        out[f"{sim}/{mode}"] = eps / interp
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+", metavar="report")
    parser.add_argument("--baseline", default="bench/perf_baseline.json")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument("--write-baseline", metavar="FILE")
    parser.add_argument("--scale-non-interp", type=float, default=1.0)
    args = parser.parse_args()

    cells = {}
    benches = []
    for path in args.reports:
        with open(path) as f:
            report = json.load(f)
        benches.append(report.get("bench"))

        # Schema v3 validation: mandatory throughput.events_per_sec.
        if report.get("schema_version") != 3:
            return fail(f"{path}: schema_version is "
                        f"{report.get('schema_version')!r}, expected 3")
        throughput = report.get("throughput")
        if (not isinstance(throughput, dict)
                or "events_per_sec" not in throughput):
            return fail(f"{path}: report lacks throughput.events_per_sec "
                        "(schema v3)")
        if report.get("failures"):
            return fail(f"{path}: report records "
                        f"{len(report['failures'])} failed jobs")
        try:
            load_cells(report, args.scale_non_interp, cells)
        except ValueError as e:
            return fail(f"{path}: {e}")

    try:
        current = speedups(cells)
    except ValueError as e:
        return fail(str(e))

    if args.write_baseline:
        baseline = {
            "bench": "+".join(benches),
            "tolerance": args.tolerance,
            "min_best_speedup": 2.0,
            "speedups": {k: round(v, 4) for k, v in current.items()},
        }
        with open(args.write_baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"perf_gate: wrote baseline {args.write_baseline}")
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)
    tolerance = args.tolerance
    floor_mult = 1.0 - tolerance

    failed = False
    for key, base in sorted(baseline.get("speedups", {}).items()):
        cur = current.get(key)
        if cur is None:
            print(f"perf_gate: FAIL: baseline cell '{key}' missing from "
                  "report", file=sys.stderr)
            failed = True
            continue
        floor = base * floor_mult
        verdict = "ok" if cur >= floor else "REGRESSION"
        print(f"perf_gate: {key}: speedup {cur:.3f} vs baseline {base:.3f} "
              f"(floor {floor:.3f}) {verdict}")
        if cur < floor:
            failed = True

    min_best = baseline.get("min_best_speedup", 2.0)
    best = max(current.values(), default=0.0)
    print(f"perf_gate: best speedup {best:.3f} (floor {min_best:.3f})")
    if best < min_best:
        print(f"perf_gate: FAIL: best speedup {best:.3f} below "
              f"min_best_speedup {min_best:.3f}", file=sys.stderr)
        failed = True

    if failed:
        return fail("throughput regressed beyond the tolerance band")
    print("perf_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
