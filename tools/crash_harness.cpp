// Crash-consistency harness for the experiment runner.
//
// Proves the resilience contract end to end: SIGKILL the process at every
// write-boundary fault point it crosses (journal appends, report writes,
// trace/cache saves), then resume with STC_RESUME=1 and demand a final
// BENCH_*.json byte-identical to an uninterrupted run, with no leftover
// fragments, temp files, or journals. Runs as a matrix over unsharded and
// sharded execution (--shards N puts the kill inside worker processes and
// exercises the parent's supervision/respawn path as well).
//
// Modes:
//   crash_harness --child            deterministic 8-cell grid, writes its
//                                    report and exits (also entered via the
//                                    sharding re-exec protocol's --shard)
//   crash_harness [--dir D] [--shards N] [--sample K]
//                                    driver: reference run, fault-point
//                                    discovery via STC_FAULT_DUMP, then one
//                                    kill-and-resume task per (point, hit);
//                                    --sample K runs a deterministic K-task
//                                    subset (CI smoke), 0 = full sweep.
//
// Exit code 0 when every task resumed byte-identical and litter-free.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "support/env.h"
#include "support/experiment.h"
#include "support/io.h"

extern char** environ;

namespace {

using stc::ExperimentResult;
using stc::ExperimentRunner;

// The workload under test: small enough to crash hundreds of times in CI,
// rich enough (metrics, counters, multiple cells) that byte-identity is a
// real statement. Everything is a pure function of the cell index.
int run_child() {
  stc::env::validate_all_or_exit();
  ExperimentRunner runner("crashgrid");
  runner.set_shardable(true);
  runner.meta("workload", "crash-harness deterministic grid");
  runner.meta("cells", std::uint64_t{8});
  for (int i = 0; i < 8; ++i) {
    runner.add("cell" + std::to_string(i), {{"i", std::to_string(i)}},
               [i]() {
                 ExperimentResult result;
                 result.metric("value", i * 1.5);
                 result.metric("ratio", static_cast<double>(i) / 7.0);
                 result.counters().add("blocks", 100 + i);
                 result.counters().add("instructions", 1000 * i + 7);
                 return result;
               });
  }
  runner.run();
  stc::Result<std::string> path = runner.write_report();
  if (!path.is_ok()) {
    std::fprintf(stderr, "crash_harness child: %s\n",
                 path.status().to_string().c_str());
    return 1;
  }
  return runner.exit_code();
}

bool make_dir(const std::string& path) {
  return ::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST;
}

struct RunOutcome {
  bool ran = false;       // fork/exec machinery worked
  bool exited = false;    // normal exit (vs signal)
  int exit_code = -1;
  int signal = 0;
};

// Spawns this binary in --child mode with a controlled STC_* environment.
// All inherited STC_* knobs are stripped so the harness is hermetic; stdout
// and stderr go to `log_path` for post-mortem on failure.
RunOutcome run_grid(const std::string& exe, const std::string& bench_dir,
                    std::uint32_t shards, const std::string& crash_spec,
                    bool resume, const std::string& dump_path,
                    const std::string& log_path) {
  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "STC_", 4) == 0) continue;
    env_storage.emplace_back(*e);
  }
  env_storage.push_back("STC_BENCH_DIR=" + bench_dir);
  env_storage.push_back("STC_ZERO_TIMINGS=1");
  env_storage.push_back("STC_THREADS=2");
  env_storage.push_back("STC_JOB_RETRIES=1");
  if (shards > 1) {
    env_storage.push_back("STC_SHARDS=" + std::to_string(shards));
  }
  if (!crash_spec.empty()) env_storage.push_back("STC_CRASH=" + crash_spec);
  if (resume) env_storage.push_back("STC_RESUME=1");
  if (!dump_path.empty()) {
    env_storage.push_back("STC_FAULT_DUMP=" + dump_path);
  }
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (std::string& entry : env_storage) envp.push_back(entry.data());
  envp.push_back(nullptr);
  std::string arg0 = exe;
  std::string arg1 = "--child";
  char* argv[] = {arg0.data(), arg1.data(), nullptr};

  RunOutcome outcome;
  const pid_t pid = ::fork();
  if (pid < 0) return outcome;
  if (pid == 0) {
    const int log = ::open(log_path.c_str(),
                           O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (log >= 0) {
      ::dup2(log, STDOUT_FILENO);
      ::dup2(log, STDERR_FILENO);
      ::close(log);
    }
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);
  }
  int wstatus = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(pid, &wstatus, 0);
  } while (reaped < 0 && errno == EINTR);
  if (reaped != pid) return outcome;
  outcome.ran = true;
  if (WIFEXITED(wstatus)) {
    outcome.exited = true;
    outcome.exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    outcome.signal = WTERMSIG(wstatus);
  }
  return outcome;
}

// Reads an STC_FAULT_DUMP file: "point count" per line, one block per
// process. The max count per point is the deepest any single process got —
// exactly the hit range STC_CRASH=point:k can target.
std::map<std::string, std::uint64_t> read_dump(const std::string& path) {
  std::map<std::string, std::uint64_t> counts;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return counts;
  char line[1024];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    char point[896];
    unsigned long long count = 0;
    if (std::sscanf(line, "%895s %llu", point, &count) == 2 && count > 0) {
      std::uint64_t& slot = counts[point];
      if (count > slot) slot = count;
    }
  }
  std::fclose(f);
  return counts;
}

bool is_write_boundary(const std::string& point) {
  for (const char* prefix :
       {"journal.", "report.write.", "trace.save.", "plancache.write"}) {
    if (point.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

bool read_bytes(const std::string& path, std::string* out) {
  stc::Result<std::vector<std::uint8_t>> bytes = stc::read_file(path);
  if (!bytes.is_ok()) return false;
  out->assign(bytes.value().begin(), bytes.value().end());
  return true;
}

// Any fragment, temp, or journal file left in `dir` after a successful run
// is a contract violation.
std::vector<std::string> find_litter(const std::string& dir) {
  std::vector<std::string> litter;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return litter;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const auto ends_with = [&name](const char* suffix) {
      const std::size_t n = std::strlen(suffix);
      return name.size() >= n &&
             name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with(".tmp") || ends_with(".journal") ||
        (name.find(".shard") != std::string::npos && ends_with(".json"))) {
      litter.push_back(name);
    }
  }
  ::closedir(d);
  return litter;
}

void dump_log(const std::string& log_path) {
  std::string text;
  if (read_bytes(log_path, &text) && !text.empty()) {
    std::fprintf(stderr, "--- child log ---\n%s-----------------\n",
                 text.c_str());
  }
}

int run_driver(const std::string& exe, std::string dir, std::uint32_t shards,
               std::size_t sample) {
  if (dir.empty()) dir = "crash_harness_scratch";
  if (!make_dir(dir)) {
    std::fprintf(stderr, "crash_harness: cannot create '%s'\n", dir.c_str());
    return 1;
  }
  const char* mode = shards > 1 ? "sharded" : "unsharded";

  // Reference: an uninterrupted run, which also records every fault point
  // the workload crosses.
  const std::string ref_dir = dir + "/ref";
  if (!make_dir(ref_dir)) return 1;
  const std::string dump_path = ref_dir + "/faults.dump";
  std::remove(dump_path.c_str());
  const RunOutcome ref = run_grid(exe, ref_dir, shards, "", false, dump_path,
                                  ref_dir + "/log.txt");
  if (!ref.ran || !ref.exited || ref.exit_code != 0) {
    std::fprintf(stderr, "crash_harness: reference run failed (%s)\n", mode);
    dump_log(ref_dir + "/log.txt");
    return 1;
  }
  std::string reference;
  if (!read_bytes(ref_dir + "/BENCH_crashgrid.json", &reference)) {
    std::fprintf(stderr, "crash_harness: reference report missing\n");
    return 1;
  }

  struct Task {
    std::string point;
    std::uint64_t hit;
  };
  std::vector<Task> tasks;
  for (const auto& [point, count] : read_dump(dump_path)) {
    if (!is_write_boundary(point)) continue;
    for (std::uint64_t k = 1; k <= count; ++k) tasks.push_back({point, k});
  }
  if (tasks.empty()) {
    std::fprintf(stderr,
                 "crash_harness: no write-boundary fault points recorded\n");
    return 1;
  }
  if (sample > 0 && sample < tasks.size()) {
    // Deterministic stride sample across the full (point, hit) range.
    std::vector<Task> picked;
    for (std::size_t i = 0; i < sample; ++i) {
      picked.push_back(tasks[i * tasks.size() / sample]);
    }
    tasks = std::move(picked);
  }
  std::printf("crash_harness: %s, %zu kill task(s)\n", mode, tasks.size());

  std::size_t failures = 0;
  std::size_t survived = 0;  // crash point never reached a kill (fine)
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const Task& task = tasks[t];
    const std::string spec =
        task.point + ":" + std::to_string(task.hit);
    const std::string task_dir = dir + "/t" + std::to_string(t);
    if (!make_dir(task_dir)) return 1;
    const std::string log_path = task_dir + "/log.txt";
    std::remove(log_path.c_str());
    const auto fail = [&](const std::string& why) {
      ++failures;
      std::fprintf(stderr, "FAIL %s [%s]: %s\n", spec.c_str(), mode,
                   why.c_str());
      dump_log(log_path);
    };

    const RunOutcome crash =
        run_grid(exe, task_dir, shards, spec, false, "", log_path);
    if (!crash.ran) {
      fail("could not spawn the crash run");
      continue;
    }
    bool need_resume = true;
    if (crash.exited && crash.exit_code == 0) {
      // A sharded parent can absorb a worker's death (respawn + resume) and
      // still finish clean; unsharded, the kill always takes the process.
      need_resume = false;
      ++survived;
    } else if (!crash.exited && crash.signal != SIGKILL) {
      fail("crash run died by signal " + std::to_string(crash.signal) +
           ", expected SIGKILL");
      continue;
    } else if (crash.exited && crash.exit_code != 0) {
      fail("crash run exited with code " + std::to_string(crash.exit_code) +
           " instead of being killed");
      continue;
    }
    if (need_resume) {
      const RunOutcome resumed =
          run_grid(exe, task_dir, shards, "", true, "", log_path);
      if (!resumed.ran || !resumed.exited || resumed.exit_code != 0) {
        fail("resume run did not exit cleanly");
        continue;
      }
    }
    std::string report;
    if (!read_bytes(task_dir + "/BENCH_crashgrid.json", &report)) {
      fail("final report missing after resume");
      continue;
    }
    if (report != reference) {
      fail("final report is not byte-identical to the reference");
      continue;
    }
    const std::vector<std::string> litter = find_litter(task_dir);
    if (!litter.empty()) {
      std::string names;
      for (const std::string& name : litter) {
        if (!names.empty()) names += ", ";
        names += name;
      }
      fail("leftover files after resume: " + names);
      continue;
    }
  }
  std::printf(
      "crash_harness: %zu task(s), %zu recovered in-run, %zu failure(s)\n",
      tasks.size(), survived, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::uint32_t shards = 1;
  std::size_t sample = 0;
  bool child = std::getenv("STC_SHARD") != nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--child" || arg == "--shard") {
      child = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--sample" && i + 1 < argc) {
      sample = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: crash_harness [--child] [--dir D] [--shards N] "
                   "[--sample K]\n");
      return 2;
    }
  }
  if (child) return run_child();
  char exe_buffer[4096];
  const ssize_t n =
      ::readlink("/proc/self/exe", exe_buffer, sizeof exe_buffer - 1);
  if (n <= 0) {
    std::fprintf(stderr, "crash_harness: cannot resolve /proc/self/exe\n");
    return 1;
  }
  exe_buffer[n] = '\0';
  return run_driver(exe_buffer, dir, shards == 0 ? 1 : shards, sample);
}
