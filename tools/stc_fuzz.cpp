// Deterministic fuzz driver for the layout-equivalence oracle.
//
//   stc_fuzz --iters 5000 --seed 1 [--verbose] [--inject short-block]
//
// Each iteration derives an independent case seed from (--seed, iteration),
// generates a FuzzCase, and runs every layout kind through the oracle
// (verify::run_case). On the first failure the case is shrunk to a minimal
// repro, the oracle report is printed together with a paste-ready regression
// test snippet, and the process exits 1. A clean run exits 0.
//
// --inject short-block corrupts every produced layout with an emulated
// off-by-one block size (see verify::Injection) — used to prove the oracle
// and shrinker actually catch mapping bugs.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/rng.h"
#include "verify/fuzz.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iters N] [--seed S] [--verbose] "
               "[--inject short-block]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 500;
  std::uint64_t seed = 1;
  bool verbose = false;
  stc::verify::Injection injection = stc::verify::Injection::kNone;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iters") {
      iters = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--inject") {
      const std::string what = next_value();
      if (what != "short-block") {
        std::fprintf(stderr, "unknown injection '%s'\n", what.c_str());
        return 2;
      }
      injection = stc::verify::Injection::kShortBlock;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  std::uint64_t injectable = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    // Independent per-iteration stream: resuming at any iteration with the
    // same base seed regenerates the identical case.
    stc::Rng rng(seed * 0x9e3779b97f4a7c15ull + i);
    const stc::verify::FuzzCase c = stc::verify::random_case(rng);
    if (verbose) {
      std::fprintf(stderr,
                   "iter %llu: %zu routines, %zu blocks, %zu events\n",
                   static_cast<unsigned long long>(i), c.routines.size(),
                   c.num_blocks(), c.trace.size());
    }
    const stc::verify::Report report = stc::verify::run_case(c, injection);
    if (report.ok()) continue;
    ++injectable;
    if (injection != stc::verify::Injection::kNone) {
      // Injected-bug mode: a failure is the expected outcome; shrink the
      // first one to demonstrate the workflow, then stop successfully.
      std::printf("iteration %llu: injected bug caught by the oracle:\n%s\n",
                  static_cast<unsigned long long>(i),
                  report.summary().c_str());
      const stc::verify::FuzzCase shrunk =
          stc::verify::shrink_case(c, injection);
      std::printf(
          "shrunk to %zu routine(s), %zu block(s), %zu trace event(s)\n\n",
          shrunk.routines.size(), shrunk.num_blocks(), shrunk.trace.size());
      std::printf("%s\n",
                  stc::verify::run_case(shrunk, injection).summary().c_str());
      std::printf("// paste into tests/verify/regression_cases.cpp:\n%s",
                  stc::verify::emit_cpp(shrunk, "InjectedShortBlock").c_str());
      return 0;
    }
    std::fprintf(stderr, "iteration %llu (seed %llu) FAILED:\n%s\n",
                 static_cast<unsigned long long>(i),
                 static_cast<unsigned long long>(seed),
                 report.summary().c_str());
    const stc::verify::FuzzCase shrunk = stc::verify::shrink_case(c, injection);
    std::fprintf(stderr, "shrunk repro (%zu routines, %zu blocks):\n%s\n",
                 shrunk.routines.size(), shrunk.num_blocks(),
                 stc::verify::run_case(shrunk, injection).summary().c_str());
    std::printf("// paste into tests/verify/regression_cases.cpp:\n%s",
                stc::verify::emit_cpp(
                    shrunk, "Shrunk_seed" + std::to_string(seed) + "_iter" +
                                std::to_string(i))
                    .c_str());
    return 1;
  }

  if (injection != stc::verify::Injection::kNone) {
    std::fprintf(stderr,
                 "inject mode: no generated case was injectable in %llu "
                 "iterations (need two address-adjacent blocks)\n",
                 static_cast<unsigned long long>(iters));
    return 1;
  }
  std::printf("stc_fuzz: %llu iterations clean (seed %llu)\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));
  return 0;
}
