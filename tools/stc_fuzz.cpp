// Deterministic fuzz drivers for the layout-equivalence oracle and the
// trace-file deserializer.
//
//   stc_fuzz --iters 5000 --seed 1 [--verbose] [--inject short-block]
//   stc_fuzz --replay-diff [--iters N] [--seed S] [--verbose]
//   stc_fuzz --multitenant [--iters N] [--seed S] [--verbose]
//   stc_fuzz --trace-bytes [--seed S] [--verbose]
//
// Oracle mode: each iteration derives an independent case seed from
// (--seed, iteration), generates a FuzzCase, and runs every layout kind
// through the oracle (verify::run_case). On the first failure the case is
// shrunk to a minimal repro, the oracle report is printed together with a
// paste-ready regression test snippet, and the process exits 1. A clean run
// exits 0.
//
// --replay-diff swaps the oracle for the replay-mode differential check:
// every generated case is replayed through the interp, batched and compiled
// engines (sim/replay.h) over every layout kind, and any counter divergence
// is shrunk to a paste-ready regression snippet. Exit codes as above.
//
// --multitenant swaps in the multi-tenant composer differential check
// (verify::run_multitenant_diff): each case's trace is split into a
// salt-derived number of tenant streams, composed under a salt-derived
// quantum/arrival model, and checked for determinism, conservation,
// single-tenant byte-identity, cross-engine replay bit-identity, and the
// tenant-partitioned CFA contract. Failures shrink as in the other modes.
//
// --inject short-block corrupts every produced layout with an emulated
// off-by-one block size (see verify::Injection) — used to prove the oracle
// and shrinker actually catch mapping bugs.
//
// --trace-bytes exercises BlockTrace::deserialize against corruption: it
// serializes deterministic traces (one single-chunk, one multi-chunk), then
// flips bits at EVERY byte offset and truncates at every length. Each mutant
// must either fail with a structured error or decode to a trace that
// re-serializes byte-identically to the original (a semantics-preserving
// flip); a crash, hang, sanitizer report, or silently different trace is a
// bug. Exits 0 when every mutant behaved.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "support/rng.h"
#include "trace/block_trace.h"
#include "verify/fuzz.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iters N] [--seed S] [--verbose] "
               "[--inject short-block]\n"
               "       %s --replay-diff [--iters N] [--seed S] [--verbose]\n"
               "       %s --multitenant [--iters N] [--seed S] [--verbose]\n"
               "       %s --trace-bytes [--seed S] [--verbose]\n",
               argv0, argv0, argv0, argv0);
}

// Accounting for one corpus of mutants over a serialized trace.
struct TraceFuzzStats {
  std::uint64_t mutants = 0;
  std::uint64_t rejected = 0;   // structured error (the expected outcome)
  std::uint64_t harmless = 0;   // accepted and byte-identical round-trip
  std::uint64_t silent = 0;     // accepted but different payload: a bug
};

// Feeds one mutated buffer through deserialize and classifies the outcome.
// Returns false (and logs) only for the silent-corruption case; errors and
// identical round-trips are both acceptable.
bool check_mutant(const std::vector<std::uint8_t>& bytes, const char* what,
                  std::size_t offset, TraceFuzzStats& stats) {
  ++stats.mutants;
  auto decoded = stc::trace::BlockTrace::deserialize(
      bytes.empty() ? nullptr : bytes.data(), bytes.size());
  if (!decoded.is_ok()) {
    ++stats.rejected;
    return true;
  }
  if (decoded.value().serialize() == bytes) {
    ++stats.harmless;
    return true;
  }
  ++stats.silent;
  std::fprintf(stderr,
               "trace-bytes: %s at offset %zu was ACCEPTED but decodes to a "
               "different trace (silent corruption)\n",
               what, offset);
  return false;
}

// Flips bits at every offset (all eight single-bit patterns plus 0xff when
// `all_bits`, a single 0xff flip otherwise) and truncates at every
// `trunc_stride`-th length (1 = every prefix).
bool fuzz_trace_bytes(const std::vector<std::uint8_t>& original, bool all_bits,
                      std::size_t trunc_stride, const char* label,
                      bool verbose) {
  bool ok = true;
  TraceFuzzStats stats;
  std::vector<std::uint8_t> mutant = original;
  for (std::size_t offset = 0; offset < original.size(); ++offset) {
    const std::uint8_t patterns_all[] = {0x01, 0x02, 0x04, 0x08,
                                         0x10, 0x20, 0x40, 0x80, 0xff};
    const std::uint8_t patterns_one[] = {0xff};
    const std::uint8_t* patterns = all_bits ? patterns_all : patterns_one;
    const std::size_t num_patterns = all_bits ? 9 : 1;
    for (std::size_t p = 0; p < num_patterns; ++p) {
      mutant[offset] = original[offset] ^ patterns[p];
      ok = check_mutant(mutant, "bit flip", offset, stats) && ok;
    }
    mutant[offset] = original[offset];
  }
  for (std::size_t len = 0; len < original.size(); len += trunc_stride) {
    std::vector<std::uint8_t> prefix(original.begin(),
                                     original.begin() + static_cast<long>(len));
    ok = check_mutant(prefix, "truncation", len, stats) && ok;
  }
  if (verbose || !ok) {
    std::fprintf(stderr,
                 "trace-bytes %s: %llu mutants over %zu bytes: %llu rejected, "
                 "%llu harmless, %llu silent\n",
                 label, static_cast<unsigned long long>(stats.mutants),
                 original.size(),
                 static_cast<unsigned long long>(stats.rejected),
                 static_cast<unsigned long long>(stats.harmless),
                 static_cast<unsigned long long>(stats.silent));
  }
  return ok;
}

// Byte-flip fuzz over the serialized trace format. Two corpora: a small
// single-chunk trace gets the full 9-pattern treatment, and a trace just past
// the chunk-split threshold (exercising multi-chunk validation and the
// cross-chunk delta base) gets one flip per offset to bound runtime.
int run_trace_bytes(std::uint64_t seed, bool verbose) {
  stc::Rng rng(seed);

  stc::trace::BlockTrace small;
  std::uint32_t id = 1000;
  for (int i = 0; i < 1500; ++i) {
    // Mix short hops (1-byte varints) with long jumps (multi-byte varints).
    if (rng.chance(0.1)) {
      id = static_cast<std::uint32_t>(rng.uniform(1u << 24));
    } else {
      id = static_cast<std::uint32_t>(
          std::max<std::int64_t>(0, static_cast<std::int64_t>(id) +
                                        rng.uniform_range(-64, 64)));
    }
    small.append(id);
  }

  stc::trace::BlockTrace multi;
  id = 0;
  // Short deltas until the payload spills just past one 64KB chunk, so the
  // second chunk (and the decoder's per-chunk delta-base restart) is
  // exercised while the file stays small enough to flip every byte.
  while (multi.byte_size() < (1u << 16) + 1024) {
    id = static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, static_cast<std::int64_t>(id) +
                                      rng.uniform_range(-40, 48)));
    multi.append(id);
  }

  bool ok = fuzz_trace_bytes(small.serialize(), /*all_bits=*/true,
                             /*trunc_stride=*/1, "single-chunk", verbose);
  ok = fuzz_trace_bytes(multi.serialize(), /*all_bits=*/false,
                        /*trunc_stride=*/251, "multi-chunk", verbose) &&
       ok;
  if (!ok) {
    std::fprintf(stderr, "stc_fuzz --trace-bytes: FAILED (seed %llu)\n",
                 static_cast<unsigned long long>(seed));
    return 1;
  }
  std::printf("stc_fuzz --trace-bytes: every mutant rejected cleanly or "
              "round-tripped (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 500;
  std::uint64_t seed = 1;
  bool verbose = false;
  bool trace_bytes = false;
  bool replay_diff = false;
  bool multitenant = false;
  stc::verify::Injection injection = stc::verify::Injection::kNone;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--iters") {
      iters = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--trace-bytes") {
      trace_bytes = true;
    } else if (arg == "--replay-diff") {
      replay_diff = true;
    } else if (arg == "--multitenant") {
      multitenant = true;
    } else if (arg == "--inject") {
      const std::string what = next_value();
      if (what != "short-block") {
        std::fprintf(stderr, "unknown injection '%s'\n", what.c_str());
        return 2;
      }
      injection = stc::verify::Injection::kShortBlock;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (trace_bytes) return run_trace_bytes(seed, verbose);

  if (replay_diff || multitenant) {
    // Differential modes share one loop; only the check function differs.
    const char* mode = replay_diff ? "replay-diff" : "multitenant";
    const char* check_fn =
        replay_diff ? "run_replay_diff" : "run_multitenant_diff";
    const char* test_prefix = replay_diff ? "ReplayDiff" : "Multitenant";
    const auto check = [&](const stc::verify::FuzzCase& candidate) {
      return replay_diff ? stc::verify::run_replay_diff(candidate)
                         : stc::verify::run_multitenant_diff(candidate);
    };
    for (std::uint64_t i = 0; i < iters; ++i) {
      stc::Rng rng(seed * 0x9e3779b97f4a7c15ull + i);
      const stc::verify::FuzzCase c = stc::verify::random_case(rng);
      if (verbose) {
        std::fprintf(stderr,
                     "%s iter %llu: %zu routines, %zu blocks, "
                     "%zu events\n",
                     mode, static_cast<unsigned long long>(i),
                     c.routines.size(), c.num_blocks(), c.trace.size());
      }
      const stc::verify::Report report = check(c);
      if (report.ok()) continue;
      std::fprintf(stderr,
                   "%s iteration %llu (seed %llu) FAILED:\n%s\n", mode,
                   static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(seed),
                   report.summary().c_str());
      const stc::verify::FuzzCase shrunk = stc::verify::shrink_case_with(
          c, [&check](const stc::verify::FuzzCase& candidate) {
            return !check(candidate).ok();
          });
      std::fprintf(stderr, "shrunk repro (%zu routines, %zu blocks):\n%s\n",
                   shrunk.routines.size(), shrunk.num_blocks(),
                   check(shrunk).summary().c_str());
      std::printf("// paste into tests/verify/regression_cases.cpp:\n%s",
                  stc::verify::emit_cpp(
                      shrunk,
                      std::string(test_prefix) + "_seed" +
                          std::to_string(seed) + "_iter" + std::to_string(i),
                      check_fn)
                      .c_str());
      return 1;
    }
    std::printf("stc_fuzz --%s: %llu iterations clean (seed %llu)\n", mode,
                static_cast<unsigned long long>(iters),
                static_cast<unsigned long long>(seed));
    return 0;
  }

  std::uint64_t injectable = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    // Independent per-iteration stream: resuming at any iteration with the
    // same base seed regenerates the identical case.
    stc::Rng rng(seed * 0x9e3779b97f4a7c15ull + i);
    const stc::verify::FuzzCase c = stc::verify::random_case(rng);
    if (verbose) {
      std::fprintf(stderr,
                   "iter %llu: %zu routines, %zu blocks, %zu events\n",
                   static_cast<unsigned long long>(i), c.routines.size(),
                   c.num_blocks(), c.trace.size());
    }
    const stc::verify::Report report = stc::verify::run_case(c, injection);
    if (report.ok()) continue;
    ++injectable;
    if (injection != stc::verify::Injection::kNone) {
      // Injected-bug mode: a failure is the expected outcome; shrink the
      // first one to demonstrate the workflow, then stop successfully.
      std::printf("iteration %llu: injected bug caught by the oracle:\n%s\n",
                  static_cast<unsigned long long>(i),
                  report.summary().c_str());
      const stc::verify::FuzzCase shrunk =
          stc::verify::shrink_case(c, injection);
      std::printf(
          "shrunk to %zu routine(s), %zu block(s), %zu trace event(s)\n\n",
          shrunk.routines.size(), shrunk.num_blocks(), shrunk.trace.size());
      std::printf("%s\n",
                  stc::verify::run_case(shrunk, injection).summary().c_str());
      std::printf("// paste into tests/verify/regression_cases.cpp:\n%s",
                  stc::verify::emit_cpp(shrunk, "InjectedShortBlock").c_str());
      return 0;
    }
    std::fprintf(stderr, "iteration %llu (seed %llu) FAILED:\n%s\n",
                 static_cast<unsigned long long>(i),
                 static_cast<unsigned long long>(seed),
                 report.summary().c_str());
    const stc::verify::FuzzCase shrunk = stc::verify::shrink_case(c, injection);
    std::fprintf(stderr, "shrunk repro (%zu routines, %zu blocks):\n%s\n",
                 shrunk.routines.size(), shrunk.num_blocks(),
                 stc::verify::run_case(shrunk, injection).summary().c_str());
    std::printf("// paste into tests/verify/regression_cases.cpp:\n%s",
                stc::verify::emit_cpp(
                    shrunk, "Shrunk_seed" + std::to_string(seed) + "_iter" +
                                std::to_string(i))
                    .c_str());
    return 1;
  }

  if (injection != stc::verify::Injection::kNone) {
    std::fprintf(stderr,
                 "inject mode: no generated case was injectable in %llu "
                 "iterations (need two address-adjacent blocks)\n",
                 static_cast<unsigned long long>(iters));
    return 1;
  }
  std::printf("stc_fuzz: %llu iterations clean (seed %llu)\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(seed));
  return 0;
}
