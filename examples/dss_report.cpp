// DSS workload characterization report - the paper's Section 4 analysis as a
// standalone tool. Builds the TPC-D database, profiles the Training set and
// prints the footprint, concentration, reuse and determinism measurements,
// then the per-module execution mix (which the paper uses to motivate the
// choice of Training queries).
//
// Usage: dss_report [scale_factor]      (default 0.002)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/layouts.h"
#include "db/tpcd/workload.h"
#include "profile/locality.h"
#include "profile/profile.h"
#include "sim/icache.h"
#include "support/table.h"

using namespace stc;

int main(int argc, char** argv) {
  db::tpcd::WorkloadConfig config;
  if (argc > 1) config.scale_factor = std::atof(argv[1]);

  std::printf("building TPC-D database (SF=%.4g)...\n", config.scale_factor);
  auto database = db::tpcd::make_database(config, db::IndexKind::kBTree);

  profile::Profile prof(db::kernel_image());
  trace::BlockTrace trace;
  trace::TraceRecorder recorder(trace);
  cfg::TeeSink tee;
  tee.add(&prof);
  tee.add(&recorder);
  db::tpcd::run_training_workload(*database, &tee);

  const auto& image = db::kernel_image();
  std::printf("Training set (Q3,Q4,Q5,Q6,Q9): %llu block events, %llu "
              "instructions\n\n",
              static_cast<unsigned long long>(trace.num_events()),
              static_cast<unsigned long long>(prof.total_instructions()));

  // ---- footprint -----------------------------------------------------------
  const auto fp = profile::footprint(prof);
  std::printf("footprint: %llu/%llu routines (%.1f%%), %llu/%llu blocks "
              "(%.1f%%), %llu/%llu instructions (%.1f%%)\n",
              static_cast<unsigned long long>(fp.executed_routines),
              static_cast<unsigned long long>(fp.total_routines),
              100.0 * fp.routine_fraction(),
              static_cast<unsigned long long>(fp.executed_blocks),
              static_cast<unsigned long long>(fp.total_blocks),
              100.0 * fp.block_fraction(),
              static_cast<unsigned long long>(fp.executed_instructions),
              static_cast<unsigned long long>(fp.total_instructions),
              100.0 * fp.instruction_fraction());

  // ---- concentration --------------------------------------------------------
  const auto curve = profile::cumulative_reference_curve(prof);
  std::printf("reference concentration: 90%% of references from %llu blocks, "
              "99%% from %llu (of %zu executed)\n",
              static_cast<unsigned long long>(
                  profile::blocks_for_fraction(curve, 0.90)),
              static_cast<unsigned long long>(
                  profile::blocks_for_fraction(curve, 0.99)),
              curve.size());

  // ---- temporal locality ----------------------------------------------------
  const auto reuse = profile::reuse_distances(trace, prof, 0.75);
  std::printf("temporal locality (top-75%% blocks): %.0f%% re-referenced "
              "within 100 insns, %.0f%% within 250\n",
              100.0 * reuse.fraction_below(100),
              100.0 * reuse.fraction_below(250));

  // ---- determinism -----------------------------------------------------------
  const auto types = profile::block_type_stats(prof);
  std::printf("transition determinism: %.0f%% of dynamic transitions are "
              "fixed\n\n",
              100.0 * types.overall_predictable);

  // ---- per-module mix ---------------------------------------------------------
  std::map<std::string, std::uint64_t> insns_by_module;
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    const auto& info = image.block(b);
    insns_by_module[image.module_name(image.routine(info.routine).module)] +=
        prof.block_count(b) * info.insns;
  }
  TextTable table;
  table.header({"Module", "Dynamic instructions", "Share"});
  for (const auto& [module, insns] : insns_by_module) {
    table.row({module, fmt_count(insns),
               fmt_percent(static_cast<double>(insns) /
                           static_cast<double>(prof.total_instructions()))});
  }
  std::fputs(table.render().c_str(), stdout);

  // ---- hottest routines --------------------------------------------------------
  std::map<std::uint64_t, std::string, std::greater<>> hottest;
  for (cfg::RoutineId r = 0; r < image.num_routines(); ++r) {
    std::uint64_t insns = 0;
    const auto& info = image.routine(r);
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      insns += prof.block_count(info.entry + i) *
               image.block(info.entry + i).insns;
    }
    if (insns > 0) hottest.emplace(insns, info.name);
  }
  std::printf("\nhottest routines:\n");
  int shown = 0;
  for (const auto& [insns, name] : hottest) {
    std::printf("  %-24s %12s insns\n", name.c_str(),
                fmt_count(insns).c_str());
    if (++shown == 12) break;
  }

  // ---- per-module miss attribution (original layout, 2KB cache) ------------
  // The paper motivates its Training-set choice with "the large number of
  // misses attributed to the Access Methods and Buffer Manager modules".
  const auto orig = cfg::AddressMap::original(image);
  sim::ICache cache({2048, 32, 1});
  std::vector<std::uint64_t> per_block;
  const auto miss = sim::run_missrate(trace, image, orig, cache, &per_block);
  std::map<std::string, std::uint64_t> misses_by_module;
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    if (per_block[b] == 0) continue;
    misses_by_module[image.module_name(
        image.routine(image.block(b).routine).module)] += per_block[b];
  }
  std::printf("\ni-cache misses by module (orig layout, 2KB direct-mapped; "
              "%.2f%% overall):\n",
              miss.misses_per_100_insns());
  for (const auto& [module, count] : misses_by_module) {
    std::printf("  %-10s %10s misses (%.1f%%)\n", module.c_str(),
                fmt_count(count).c_str(),
                100.0 * static_cast<double>(count) /
                    static_cast<double>(miss.misses));
  }
  return 0;
}
