// Layout explorer: compare the code layouts on the TPC-D workload for one
// cache geometry from the command line.
//
// Usage: layout_explorer [cache_kb] [cfa_fraction] [scale_factor]
//   e.g. layout_explorer 2 0.25 0.002
#include <cstdio>
#include <cstdlib>

#include "core/layouts.h"
#include "core/stc_layout.h"
#include "db/tpcd/workload.h"
#include "profile/profile.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/trace_cache.h"
#include "support/table.h"

using namespace stc;

int main(int argc, char** argv) {
  const std::uint32_t cache_kb = argc > 1 ? std::atoi(argv[1]) : 2;
  const double cfa_fraction = argc > 2 ? std::atof(argv[2]) : 0.25;
  db::tpcd::WorkloadConfig config;
  if (argc > 3) config.scale_factor = std::atof(argv[3]);
  const std::uint32_t cache_bytes = cache_kb * 1024;
  const auto cfa_bytes =
      static_cast<std::uint32_t>(cfa_fraction * cache_bytes);

  std::printf("cache %uKB, CFA %uB, SF %.4g\n", cache_kb, cfa_bytes,
              config.scale_factor);
  auto btree = db::tpcd::make_database(config, db::IndexKind::kBTree);
  auto hash = db::tpcd::make_database(config, db::IndexKind::kHash);

  profile::Profile prof(db::kernel_image());
  db::tpcd::run_training_workload(*btree, &prof);
  trace::BlockTrace test;
  trace::TraceRecorder recorder(test);
  db::tpcd::run_test_workload(*btree, *hash, &recorder);
  const auto wcfg = profile::WeightedCFG::from_profile(prof);
  const auto& image = db::kernel_image();

  // Show the STC construction details for the chosen geometry.
  {
    core::StcParams params;
    params.cache_bytes = cache_bytes;
    params.cfa_bytes = cfa_bytes;
    const auto result = core::stc_layout(wcfg, core::SeedKind::kOps, params);
    std::printf(
        "stc-ops: fitted ExecThreshold=%llu, pass-1 fills %llu/%u CFA "
        "bytes, %zu passes, %zu sequences\n\n",
        static_cast<unsigned long long>(result.exec_threshold_pass1),
        static_cast<unsigned long long>(result.pass1_bytes), cfa_bytes,
        result.num_passes, result.num_sequences);
  }

  TextTable table;
  table.header({"layout", "miss/insn", "SEQ.3 IPC", "insn/taken", "TC IPC"});
  for (const auto kind :
       {core::LayoutKind::kOrig, core::LayoutKind::kPettisHansen,
        core::LayoutKind::kTorrellas, core::LayoutKind::kStcAuto,
        core::LayoutKind::kStcOps}) {
    const auto layout = core::make_layout(kind, wcfg, cache_bytes, cfa_bytes);
    sim::ICache c1({cache_bytes, 32, 1});
    const auto miss = sim::run_missrate(test, image, layout, c1);
    sim::FetchParams params;
    sim::ICache c2({cache_bytes, 32, 1});
    const auto fetch = sim::run_seq3(test, image, layout, params, &c2);
    const auto seq = trace::measure_sequentiality(test, image, layout);
    sim::TraceCacheParams tc;
    tc.entries = 64;
    sim::ICache c3({cache_bytes, 32, 1});
    const auto tcr = sim::run_trace_cache(test, image, layout, params, tc, &c3);
    table.row({core::to_string(kind),
               fmt_fixed(miss.misses_per_100_insns(), 2) + "%",
               fmt_fixed(fetch.ipc(), 2),
               fmt_fixed(seq.insns_between_taken_branches(), 1),
               fmt_fixed(tcr.ipc(), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
