// Quickstart: the whole Software Trace Cache pipeline on a toy database.
//
//   1. build a small database and run a query workload while profiling,
//   2. build the STC layout from the profile,
//   3. replay the workload through the i-cache and fetch-unit simulators
//      under the original and the optimized layout.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/layouts.h"
#include "db/database.h"
#include "profile/profile.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "trace/block_trace.h"

using namespace stc;

int main() {
  // ---- 1. a tiny database ------------------------------------------------
  db::Database database(/*buffer_frames=*/64);
  db::TableInfo& items = database.create_table(
      "items", db::Schema({{"id", db::ValueType::kInt},
                           {"category", db::ValueType::kInt},
                           {"price", db::ValueType::kDouble}}));
  for (std::int64_t i = 0; i < 2000; ++i) {
    database.insert(items, {db::Value(i), db::Value(i % 8),
                            db::Value(9.99 + static_cast<double>(i % 50))});
  }
  database.create_index("items", "id", db::IndexKind::kBTree, true);

  // ---- 2. profile a workload ---------------------------------------------
  profile::Profile prof(db::kernel_image());
  trace::BlockTrace trace;
  trace::TraceRecorder recorder(trace);
  cfg::TeeSink tee;
  tee.add(&prof);
  tee.add(&recorder);
  database.kernel().set_sink(&tee);
  const char* workload[] = {
      "SELECT category, COUNT(*) AS n, SUM(price) AS total FROM items "
      "GROUP BY category ORDER BY category",
      "SELECT price FROM items WHERE id = 1234",
      "SELECT id FROM items WHERE price > 50.0 AND category = 3",
  };
  for (const char* sql : workload) {
    const db::QueryResult result = database.run_query(sql);
    std::printf("query -> %zu rows; plan:\n%s\n", result.rows.size(),
                result.plan_text.c_str());
  }
  database.kernel().set_sink(nullptr);
  std::printf("captured %llu basic-block events (%llu instructions)\n\n",
              static_cast<unsigned long long>(trace.num_events()),
              static_cast<unsigned long long>(prof.total_instructions()));

  // ---- 3. build layouts and simulate --------------------------------------
  const auto wcfg = profile::WeightedCFG::from_profile(prof);
  const std::uint32_t cache_bytes = 2048;
  const auto orig = core::make_layout(core::LayoutKind::kOrig, wcfg,
                                      cache_bytes, cache_bytes / 4);
  const auto stc_layout = core::make_layout(core::LayoutKind::kStcAuto, wcfg,
                                            cache_bytes, cache_bytes / 4);

  for (const auto* entry : {&orig, &stc_layout}) {
    sim::ICache cache({cache_bytes, 32, 1});
    const auto miss =
        sim::run_missrate(trace, db::kernel_image(), *entry, cache);
    sim::FetchParams params;
    sim::ICache cache2({cache_bytes, 32, 1});
    const auto fetch =
        sim::run_seq3(trace, db::kernel_image(), *entry, params, &cache2);
    std::printf("%-8s  miss/insn = %5.2f%%   fetch bandwidth = %4.2f IPC\n",
                entry->name().c_str(), miss.misses_per_100_insns(),
                fetch.ipc());
  }
  std::printf("\nThe profile-guided layout packs the hot query path, cutting\n"
              "i-cache misses and lengthening sequential fetch runs.\n");
  return 0;
}
