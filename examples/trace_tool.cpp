// trace_tool: record workload traces to disk and analyze them offline —
// the capture/replay split the paper's methodology relies on, as a CLI.
//
// Usage:
//   trace_tool record <file> [training|test|oltp] [scale_factor]
//   trace_tool info   <file>
//   trace_tool sim    <file> <layout> [cache_bytes] [cfa_bytes]
//     layout: orig | ph | torr | auto | ops
//
// Note: `sim` rebuilds the Training profile to construct the layout, so the
// trace file must come from the same kernel build and scale factor.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/layouts.h"
#include "db/tpcd/oltp.h"
#include "db/tpcd/workload.h"
#include "profile/locality.h"
#include "profile/profile.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"

using namespace stc;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool record <file> [training|test|oltp] [sf]\n"
               "  trace_tool info   <file>\n"
               "  trace_tool sim    <file> <orig|ph|torr|auto|ops> "
               "[cache] [cfa] [sf]\n");
  return 1;
}

core::LayoutKind parse_layout(const char* name) {
  if (std::strcmp(name, "orig") == 0) return core::LayoutKind::kOrig;
  if (std::strcmp(name, "ph") == 0) return core::LayoutKind::kPettisHansen;
  if (std::strcmp(name, "torr") == 0) return core::LayoutKind::kTorrellas;
  if (std::strcmp(name, "auto") == 0) return core::LayoutKind::kStcAuto;
  if (std::strcmp(name, "ops") == 0) return core::LayoutKind::kStcOps;
  std::fprintf(stderr, "unknown layout '%s'\n", name);
  std::exit(1);
}

// Loads a trace file, turning a structured load error (missing file,
// corruption) into a diagnostic + exit 1 instead of a crash.
trace::BlockTrace load_or_die(const std::string& path) {
  auto loaded = trace::BlockTrace::load(path);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "trace_tool: %s\n",
                 loaded.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(loaded).take();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  if (command == "record") {
    const std::string which = argc > 3 ? argv[3] : "test";
    db::tpcd::WorkloadConfig config;
    if (argc > 4) config.scale_factor = std::atof(argv[4]);
    auto btree = db::tpcd::make_database(config, db::IndexKind::kBTree);
    trace::BlockTrace trace;
    trace::TraceRecorder recorder(trace);
    if (which == "training") {
      db::tpcd::run_training_workload(*btree, &recorder);
    } else if (which == "test") {
      auto hash = db::tpcd::make_database(config, db::IndexKind::kHash);
      db::tpcd::run_test_workload(*btree, *hash, &recorder);
    } else if (which == "oltp") {
      db::tpcd::OltpConfig oltp;
      db::tpcd::run_oltp_workload(*btree, oltp, &recorder);
    } else {
      return usage();
    }
    if (const Status saved = trace.save(path); !saved.is_ok()) {
      std::fprintf(stderr, "trace_tool: %s\n", saved.to_string().c_str());
      return 1;
    }
    std::printf("recorded %llu block events (%llu bytes on disk) to %s\n",
                static_cast<unsigned long long>(trace.num_events()),
                static_cast<unsigned long long>(trace.byte_size()),
                path.c_str());
    return 0;
  }

  if (command == "info") {
    const trace::BlockTrace trace = load_or_die(path);
    const auto& image = db::kernel_image();
    profile::Profile prof(image);
    prof.consume(trace);
    std::printf("%llu events, %llu instructions\n",
                static_cast<unsigned long long>(trace.num_events()),
                static_cast<unsigned long long>(prof.total_instructions()));
    const auto fp = profile::footprint(prof);
    std::printf("touches %llu/%llu blocks (%.1f%%), %llu/%llu routines\n",
                static_cast<unsigned long long>(fp.executed_blocks),
                static_cast<unsigned long long>(fp.total_blocks),
                100.0 * fp.block_fraction(),
                static_cast<unsigned long long>(fp.executed_routines),
                static_cast<unsigned long long>(fp.total_routines));
    const auto orig = cfg::AddressMap::original(image);
    const auto seq = trace::measure_sequentiality(trace, image, orig);
    std::printf("original layout: %.1f instructions between taken branches\n",
                seq.insns_between_taken_branches());
    return 0;
  }

  if (command == "sim") {
    if (argc < 4) return usage();
    const core::LayoutKind kind = parse_layout(argv[3]);
    const std::uint32_t cache_bytes = argc > 4 ? std::atoi(argv[4]) : 2048;
    const std::uint32_t cfa_bytes = argc > 5 ? std::atoi(argv[5]) : cache_bytes / 4;
    db::tpcd::WorkloadConfig config;
    if (argc > 6) config.scale_factor = std::atof(argv[6]);

    const trace::BlockTrace trace = load_or_die(path);
    const auto& image = db::kernel_image();

    // Rebuild the Training profile to drive the layout algorithms.
    auto btree = db::tpcd::make_database(config, db::IndexKind::kBTree);
    profile::Profile prof(image);
    db::tpcd::run_training_workload(*btree, &prof);
    const auto wcfg = profile::WeightedCFG::from_profile(prof);
    const auto layout = core::make_layout(kind, wcfg, cache_bytes, cfa_bytes);

    sim::ICache cache({cache_bytes, 32, 1});
    const auto miss = sim::run_missrate(trace, image, layout, cache);
    sim::FetchParams params;
    sim::ICache cache2({cache_bytes, 32, 1});
    const auto fetch = sim::run_seq3(trace, image, layout, params, &cache2);
    const auto seq = trace::measure_sequentiality(trace, image, layout);
    std::printf("%s @ %uB cache / %uB CFA: miss/insn %.2f%%, SEQ.3 %.2f IPC, "
                "%.1f insns between taken branches\n",
                core::to_string(kind), cache_bytes, cfa_bytes,
                miss.misses_per_100_insns(), fetch.ipc(),
                seq.insns_between_taken_branches());
    return 0;
  }
  return usage();
}
