// Interactive SQL shell over the TPC-D database - exercises the whole
// substrate (parser, planner, executor, access methods, buffer manager)
// interactively.
//
// Usage: sql_shell [scale_factor]
// Commands:  \q quit | \tables | \tpcd N (run TPC-D query N) | \explain SQL
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "db/coldcode.h"
#include "db/tpcd/workload.h"

using namespace stc;

int main(int argc, char** argv) {
  db::tpcd::WorkloadConfig config;
  if (argc > 1) config.scale_factor = std::atof(argv[1]);
  std::printf("loading TPC-D (SF=%.4g, btree indexes)...\n",
              config.scale_factor);
  auto database = db::tpcd::make_database(config, db::IndexKind::kBTree);
  std::printf("ready. \\q quits, \\tables lists tables, \\tpcd N runs query "
              "N, \\explain SQL shows the plan.\n");

  std::string line;
  while (std::printf("stc> "), std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\tables") {
      for (std::size_t i = 0; i < database->catalog().table_count(); ++i) {
        const db::TableInfo& t = database->catalog().table_at(i);
        std::printf("  %-10s %8llu rows, %zu indexes\n", t.name.c_str(),
                    static_cast<unsigned long long>(t.heap->tuple_count()),
                    t.indexes.size());
      }
      continue;
    }
    std::string sql = line;
    bool explain_only = false;
    if (line.rfind("\\tpcd ", 0) == 0) {
      const int id = std::atoi(line.c_str() + 6);
      if (id < 1 || id > 17) {
        std::printf("query id must be 1..17\n");
        continue;
      }
      sql = db::tpcd::query(id).sql;
      std::printf("-- %s\n%s\n", db::tpcd::query(id).name, sql.c_str());
    } else if (line.rfind("\\explain ", 0) == 0) {
      sql = line.substr(9);
      explain_only = true;
    }
    if (explain_only) {
      const auto plan = database->plan(sql);
      std::fputs(plan->explain().c_str(), stdout);
      continue;
    }
    const db::QueryResult result = database->run_query(sql);
    // Header row.
    std::string header;
    for (std::size_t c = 0; c < result.schema.size(); ++c) {
      if (c != 0) header += " | ";
      header += result.schema.column(c).name;
    }
    std::printf("%s\n", header.c_str());
    std::size_t shown = 0;
    for (const db::Tuple& row : result.rows) {
      std::printf("%s\n",
                  db::util::format_row(database->kernel(), row).c_str());
      if (++shown == 40 && result.rows.size() > 40) {
        std::printf("... (%zu rows total)\n", result.rows.size());
        break;
      }
    }
    std::printf("(%zu rows)\n", result.rows.size());
  }
  return 0;
}
