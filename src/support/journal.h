// Crash-safe append-only record journal.
//
// The experiment runner appends each completed grid cell to
// BENCH_<name>.journal as it finishes, so a crashed or killed sweep can be
// resumed (STC_RESUME=1) from the last durable record instead of starting
// over. The format is built for exactly one failure mode: a writer that dies
// mid-record, at any byte.
//
//   record := "STCJ1 " <payload-size-decimal> " " <crc32-lowercase-hex-8> "\n"
//             <payload bytes> "\n"
//
// Every append is flushed and fsync'd before it returns, so a record either
// survives a SIGKILL completely or is a detectable torn tail. Readers scan
// records in order and stop at the first frame that does not check out —
// short header, missing bytes, CRC mismatch, anything — reporting the valid
// prefix length so the writer can truncate the tear away and append from
// there. Nothing after a bad frame is ever trusted: a torn tail is a clean
// "stop here", never corrupt data flowing into a report.
//
// Fault points (STC_FAULT error injection, STC_CRASH kill injection):
//   journal.open         - opening/creating the journal file
//   journal.append.write - before a record's bytes are written
//   journal.append.tear  - mid-record, after a partial frame is on disk; the
//                          error path truncates the tear back off, the crash
//                          path leaves it for the reader to detect
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace stc {

// The result of scanning a journal: every valid record's payload in append
// order, plus where the valid prefix ends.
struct JournalScan {
  std::vector<std::string> payloads;
  // Byte offset just past record i — record_ends.size() == payloads.size().
  // Truncating the file to record_ends[i] keeps records 0..i exactly.
  std::vector<std::size_t> record_ends;
  // End of the whole valid prefix (0 for an empty or absent journal).
  std::size_t valid_bytes = 0;
  // True when bytes after the valid prefix were dropped (torn tail).
  bool torn = false;
  std::string tear_reason;  // diagnostic; empty when !torn
};

// Scans `path`. A missing file is an empty scan, not an error; unreadable
// files surface as io-error. Never throws on any byte content.
Result<JournalScan> read_journal(const std::string& path);

// Append-side handle. Thread-safe: concurrent append() calls from pool
// workers serialize internally. Movable (so owners like ExperimentRunner
// stay movable) but not copyable; moving while another thread appends is
// undefined, like any handle.
class JournalWriter {
 public:
  JournalWriter() = default;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  JournalWriter(JournalWriter&& other) noexcept
      : file_(other.file_), path_(std::move(other.path_)) {
    other.file_ = nullptr;
    other.path_.clear();
  }
  JournalWriter& operator=(JournalWriter&& other) noexcept {
    if (this != &other) {
      close();
      file_ = other.file_;
      path_ = std::move(other.path_);
      other.file_ = nullptr;
      other.path_.clear();
    }
    return *this;
  }
  ~JournalWriter();

  // Opens (creating if needed) `path` for appending, first truncating the
  // file to `keep_bytes` — the valid prefix a prior read_journal reported
  // (0 starts fresh). May be called once per writer.
  Status open(const std::string& path, std::uint64_t keep_bytes);

  // Appends one CRC-framed record and makes it durable (flush + fsync)
  // before returning. On an injected tear error the partial frame is
  // truncated back off, so an error return always leaves a clean journal.
  Status append(std::string_view payload);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  // Flushes and closes; further appends fail. Idempotent.
  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::mutex mu_;
};

}  // namespace stc
