// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as the per-chunk checksum in serialized BlockTrace files: any
// single-byte corruption of a chunk payload is guaranteed to be detected,
// which is the property the trace byte-flip fuzz mode relies on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stc {

// CRC of `size` bytes at `data`, continuing from `seed` (pass the previous
// call's return value to checksum discontiguous pieces; 0 to start).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace stc
