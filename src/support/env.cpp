#include "support/env.h"

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/faultpoint.h"

namespace stc::env {
namespace {

// Strict full-string parse helpers. Every failure names the knob, the
// rejected value and what would have been accepted.

Result<std::uint64_t> parse_uint(const char* knob, const char* value) {
  char* end = nullptr;
  if (value[0] == '\0' || value[0] == '-' || value[0] == '+') {
    return invalid_argument_error(std::string(knob) + "='" + value +
                                  "': expected an unsigned integer");
  }
  const std::uint64_t parsed = std::strtoull(value, &end, 10);
  if (*end != '\0') {
    return invalid_argument_error(std::string(knob) + "='" + value +
                                  "': expected an unsigned integer");
  }
  return parsed;
}

Result<double> parse_double(const char* knob, const char* value) {
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (value[0] == '\0' || *end != '\0' || !std::isfinite(parsed)) {
    return invalid_argument_error(std::string(knob) + "='" + value +
                                  "': expected a finite number");
  }
  return parsed;
}

}  // namespace

Result<std::size_t> threads() {
  const char* value = std::getenv("STC_THREADS");
  if (value == nullptr) return std::size_t{0};
  Result<std::uint64_t> parsed = parse_uint("STC_THREADS", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() == 0 || parsed.value() > 4096) {
    return invalid_argument_error(std::string("STC_THREADS='") + value +
                                  "': expected a worker count in [1, 4096]");
  }
  return static_cast<std::size_t>(parsed.value());
}

Result<double> scale_factor() {
  const char* value = std::getenv("STC_SF");
  if (value == nullptr) return 0.002;
  Result<double> parsed = parse_double("STC_SF", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() <= 0.0) {
    return invalid_argument_error(std::string("STC_SF='") + value +
                                  "': expected a scale factor > 0");
  }
  return parsed.value();
}

Result<std::uint64_t> seed() {
  const char* value = std::getenv("STC_SEED");
  if (value == nullptr) return std::uint64_t{19990401};
  return parse_uint("STC_SEED", value);
}

Result<std::uint32_t> line_bytes() {
  const char* value = std::getenv("STC_LINE");
  if (value == nullptr) return std::uint32_t{32};
  Result<std::uint64_t> parsed = parse_uint("STC_LINE", value);
  if (!parsed.is_ok()) return parsed.status();
  const std::uint64_t bytes = parsed.value();
  if (bytes < 8 || bytes > 1024 || (bytes & (bytes - 1)) != 0) {
    return invalid_argument_error(
        std::string("STC_LINE='") + value +
        "': expected a power-of-two line size in [8, 1024]");
  }
  return static_cast<std::uint32_t>(bytes);
}

Result<std::string> bench_dir() {
  const char* value = std::getenv("STC_BENCH_DIR");
  if (value == nullptr) return std::string(".");
  struct stat st{};
  if (::stat(value, &st) != 0 || !S_ISDIR(st.st_mode)) {
    return invalid_argument_error(std::string("STC_BENCH_DIR='") + value +
                                  "': expected an existing directory");
  }
  return std::string(value);
}

Result<bool> verify() {
  const char* value = std::getenv("STC_VERIFY");
  if (value == nullptr) return false;
  const std::string v(value);
  if (v == "0" || v == "") return false;
  if (v == "1") return true;
  return invalid_argument_error("STC_VERIFY='" + v + "': expected 0 or 1");
}

Result<std::string> bpred() {
  const char* value = std::getenv("STC_BPRED");
  if (value == nullptr) return std::string("perfect");
  const std::string v(value);
  for (const char* name : {"perfect", "always", "bimodal", "gshare", "local"}) {
    if (v == name) return v;
  }
  return invalid_argument_error(
      "STC_BPRED='" + v +
      "': expected one of perfect|always|bimodal|gshare|local");
}

Result<std::uint32_t> ftq_depth() {
  const char* value = std::getenv("STC_FTQ_DEPTH");
  if (value == nullptr) return std::uint32_t{8};
  Result<std::uint64_t> parsed = parse_uint("STC_FTQ_DEPTH", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() > 1024) {
    return invalid_argument_error(std::string("STC_FTQ_DEPTH='") + value +
                                  "': expected a depth in [0, 1024] "
                                  "(0 disables prefetching)");
  }
  return static_cast<std::uint32_t>(parsed.value());
}

Result<std::string> replay() {
  const char* value = std::getenv("STC_REPLAY");
  if (value == nullptr) return std::string("auto");
  const std::string v(value);
  for (const char* name : {"interp", "batched", "compiled", "auto"}) {
    if (v == name) return v;
  }
  return invalid_argument_error(
      "STC_REPLAY='" + v + "': expected one of interp|batched|compiled|auto");
}

Result<std::string> backend() {
  const char* value = std::getenv("STC_BACKEND");
  if (value == nullptr) return std::string("off");
  const std::string v(value);
  for (const char* name : {"off", "inorder", "ooo"}) {
    if (v == name) return v;
  }
  return invalid_argument_error("STC_BACKEND='" + v +
                                "': expected one of off|inorder|ooo");
}

Result<std::uint32_t> iq_depth() {
  const char* value = std::getenv("STC_IQ_DEPTH");
  if (value == nullptr) return std::uint32_t{16};
  Result<std::uint64_t> parsed = parse_uint("STC_IQ_DEPTH", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() == 0 || parsed.value() > 1024) {
    return invalid_argument_error(std::string("STC_IQ_DEPTH='") + value +
                                  "': expected a depth in [1, 1024]");
  }
  return static_cast<std::uint32_t>(parsed.value());
}

Result<std::uint32_t> rob_depth() {
  const char* value = std::getenv("STC_ROB_DEPTH");
  if (value == nullptr) return std::uint32_t{64};
  Result<std::uint64_t> parsed = parse_uint("STC_ROB_DEPTH", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() == 0 || parsed.value() > 4096) {
    return invalid_argument_error(std::string("STC_ROB_DEPTH='") + value +
                                  "': expected a depth in [1, 4096]");
  }
  return static_cast<std::uint32_t>(parsed.value());
}

Result<std::uint32_t> tenants() {
  const char* value = std::getenv("STC_TENANTS");
  if (value == nullptr) return std::uint32_t{4};
  Result<std::uint64_t> parsed = parse_uint("STC_TENANTS", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() == 0 || parsed.value() > 64) {
    return invalid_argument_error(std::string("STC_TENANTS='") + value +
                                  "': expected a tenant count in [1, 64]");
  }
  return static_cast<std::uint32_t>(parsed.value());
}

Result<std::uint64_t> quantum() {
  const char* value = std::getenv("STC_QUANTUM");
  if (value == nullptr) return std::uint64_t{1000};
  Result<std::uint64_t> parsed = parse_uint("STC_QUANTUM", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() > 1000000000) {
    return invalid_argument_error(
        std::string("STC_QUANTUM='") + value +
        "': expected a quantum in [0, 1000000000] events (0 = unbounded)");
  }
  return parsed.value();
}

Result<std::string> arrival() {
  const char* value = std::getenv("STC_ARRIVAL");
  if (value == nullptr) return std::string("poisson");
  const std::string v(value);
  for (const char* name : {"rr", "poisson", "bursty", "diurnal"}) {
    if (v == name) return v;
  }
  return invalid_argument_error(
      "STC_ARRIVAL='" + v + "': expected one of rr|poisson|bursty|diurnal");
}

Result<std::string> tenant_mix() {
  const char* value = std::getenv("STC_TENANT_MIX");
  if (value == nullptr) return std::string("dss,oltp");
  const std::string v(value);
  std::size_t begin = 0;
  bool any = false;
  while (begin <= v.size()) {
    const std::size_t comma = v.find(',', begin);
    const std::size_t end = comma == std::string::npos ? v.size() : comma;
    const std::string entry = v.substr(begin, end - begin);
    bool known = false;
    for (const char* name : {"dss", "dss_train", "oltp"}) {
      if (entry == name) known = true;
    }
    if (!known) {
      return invalid_argument_error(
          "STC_TENANT_MIX='" + v + "': entry '" + entry +
          "' not one of dss|dss_train|oltp (comma-separated)");
    }
    any = true;
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (!any) {
    return invalid_argument_error("STC_TENANT_MIX='" + v +
                                  "': expected at least one mix entry");
  }
  return v;
}

Result<double> job_timeout() {
  const char* value = std::getenv("STC_JOB_TIMEOUT");
  if (value == nullptr) return 0.0;
  Result<double> parsed = parse_double("STC_JOB_TIMEOUT", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() < 0.0) {
    return invalid_argument_error(std::string("STC_JOB_TIMEOUT='") + value +
                                  "': expected seconds >= 0 (0 disables)");
  }
  return parsed.value();
}

Result<std::uint32_t> job_retries() {
  const char* value = std::getenv("STC_JOB_RETRIES");
  if (value == nullptr) return std::uint32_t{1};
  Result<std::uint64_t> parsed = parse_uint("STC_JOB_RETRIES", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() > 16) {
    return invalid_argument_error(std::string("STC_JOB_RETRIES='") + value +
                                  "': expected a retry count in [0, 16]");
  }
  return static_cast<std::uint32_t>(parsed.value());
}

Result<std::uint32_t> shards() {
  const char* value = std::getenv("STC_SHARDS");
  if (value == nullptr) return std::uint32_t{1};
  Result<std::uint64_t> parsed = parse_uint("STC_SHARDS", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() == 0 || parsed.value() > 256) {
    return invalid_argument_error(std::string("STC_SHARDS='") + value +
                                  "': expected a shard count in [1, 256]");
  }
  return static_cast<std::uint32_t>(parsed.value());
}

Result<std::string> shard() {
  const char* value = std::getenv("STC_SHARD");
  if (value == nullptr || value[0] == '\0') return std::string();
  const std::string v(value);
  const std::size_t slash = v.find('/');
  const auto bad = [&v]() {
    return invalid_argument_error("STC_SHARD='" + v +
                                  "': expected '<i>/<n>' with i < n and n in "
                                  "[1, 256] (set by the sharding parent)");
  };
  if (slash == std::string::npos || slash == 0 || slash + 1 >= v.size()) {
    return bad();
  }
  const std::string index_text = v.substr(0, slash);
  const std::string count_text = v.substr(slash + 1);
  Result<std::uint64_t> index = parse_uint("STC_SHARD", index_text.c_str());
  Result<std::uint64_t> count = parse_uint("STC_SHARD", count_text.c_str());
  if (!index.is_ok() || !count.is_ok()) return bad();
  if (count.value() == 0 || count.value() > 256 ||
      index.value() >= count.value()) {
    return bad();
  }
  return v;
}

Result<bool> resume() {
  const char* value = std::getenv("STC_RESUME");
  if (value == nullptr) return false;
  const std::string v(value);
  if (v == "0" || v == "") return false;
  if (v == "1") return true;
  return invalid_argument_error("STC_RESUME='" + v + "': expected 0 or 1");
}

Result<double> heartbeat() {
  const char* value = std::getenv("STC_HEARTBEAT");
  if (value == nullptr) return 0.0;
  Result<double> parsed = parse_double("STC_HEARTBEAT", value);
  if (!parsed.is_ok()) return parsed.status();
  if (parsed.value() < 0.0) {
    return invalid_argument_error(std::string("STC_HEARTBEAT='") + value +
                                  "': expected seconds >= 0 (0 disables)");
  }
  return parsed.value();
}

Result<bool> zero_timings() {
  const char* value = std::getenv("STC_ZERO_TIMINGS");
  if (value == nullptr) return false;
  const std::string v(value);
  if (v == "0" || v == "") return false;
  if (v == "1") return true;
  return invalid_argument_error("STC_ZERO_TIMINGS='" + v +
                                "': expected 0 or 1");
}

Result<bool> mmap_enabled() {
  const char* value = std::getenv("STC_MMAP");
  if (value == nullptr) return true;
  const std::string v(value);
  if (v == "0") return false;
  if (v == "1" || v == "") return true;
  return invalid_argument_error("STC_MMAP='" + v + "': expected 0 or 1");
}

Result<std::string> plan_cache_dir() {
  const char* value = std::getenv("STC_PLAN_CACHE_DIR");
  if (value == nullptr || value[0] == '\0') return std::string();
  struct stat st{};
  if (::stat(value, &st) != 0 || !S_ISDIR(st.st_mode)) {
    return invalid_argument_error(std::string("STC_PLAN_CACHE_DIR='") + value +
                                  "': expected an existing directory");
  }
  return std::string(value);
}

Status validate_all() {
  if (Status s = threads().status(); !s.is_ok()) return s;
  if (Status s = scale_factor().status(); !s.is_ok()) return s;
  if (Status s = seed().status(); !s.is_ok()) return s;
  if (Status s = line_bytes().status(); !s.is_ok()) return s;
  if (Status s = bench_dir().status(); !s.is_ok()) return s;
  if (Status s = verify().status(); !s.is_ok()) return s;
  if (Status s = bpred().status(); !s.is_ok()) return s;
  if (Status s = ftq_depth().status(); !s.is_ok()) return s;
  if (Status s = replay().status(); !s.is_ok()) return s;
  if (Status s = backend().status(); !s.is_ok()) return s;
  if (Status s = iq_depth().status(); !s.is_ok()) return s;
  if (Status s = rob_depth().status(); !s.is_ok()) return s;
  if (Status s = tenants().status(); !s.is_ok()) return s;
  if (Status s = quantum().status(); !s.is_ok()) return s;
  if (Status s = arrival().status(); !s.is_ok()) return s;
  if (Status s = tenant_mix().status(); !s.is_ok()) return s;
  if (Status s = job_timeout().status(); !s.is_ok()) return s;
  if (Status s = job_retries().status(); !s.is_ok()) return s;
  if (Status s = shards().status(); !s.is_ok()) return s;
  if (Status s = shard().status(); !s.is_ok()) return s;
  if (Status s = resume().status(); !s.is_ok()) return s;
  if (Status s = heartbeat().status(); !s.is_ok()) return s;
  if (Status s = zero_timings().status(); !s.is_ok()) return s;
  if (Status s = mmap_enabled().status(); !s.is_ok()) return s;
  if (Status s = plan_cache_dir().status(); !s.is_ok()) return s;
  if (const char* spec = std::getenv("STC_FAULT")) {
    if (Status s = fault::validate_spec(spec); !s.is_ok()) {
      return s.with_context("STC_FAULT");
    }
  }
  if (const char* spec = std::getenv("STC_CRASH")) {
    if (Status s = fault::validate_spec(spec); !s.is_ok()) {
      return s.with_context("STC_CRASH");
    }
  }
  return Status::ok();
}

void validate_all_or_exit() {
  const Status s = validate_all();
  if (s.is_ok()) return;
  std::fprintf(stderr, "environment: %s\n", s.to_string().c_str());
  std::exit(2);
}

}  // namespace stc::env
