// Plain-text table formatting for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper; this class
// renders aligned, monospace tables so the output can be compared line-by-line
// with the paper's numbers.
#pragma once

#include <string>
#include <vector>

namespace stc {

class TextTable {
 public:
  // Sets the header row. Column count is fixed by the header.
  void header(std::vector<std::string> cells);

  // Appends a data row; must match the header's column count (checked).
  void row(std::vector<std::string> cells);

  // Appends a horizontal separator line.
  void separator();

  // Renders with columns padded to the widest cell. First column is
  // left-aligned, the rest right-aligned (numeric convention).
  std::string render() const;

 private:
  struct Line {
    bool is_separator = false;
    std::vector<std::string> cells;
  };
  std::size_t columns_ = 0;
  std::vector<Line> lines_;
};

// Formats a double with the given number of decimals ("%.*f").
std::string fmt_fixed(double value, int decimals);

// Formats with thousands separators: 1234567 -> "1,234,567".
std::string fmt_count(std::uint64_t value);

// Formats a percentage with two decimals and a trailing '%'.
std::string fmt_percent(double fraction);

// "8K", "64K", "1M" style size formatting (value in bytes).
std::string fmt_size(std::uint64_t bytes);

}  // namespace stc
