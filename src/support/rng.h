// Deterministic pseudo-random number generation.
//
// All randomness in the repository flows through Rng so that every workload,
// data set and test is reproducible from a seed. The generator is
// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64 so that any
// 64-bit seed yields a well-mixed state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace stc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed0f5eed0f5eedULL) { reseed(seed); }

  // Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform integer in [0, bound). Requires bound > 0. Unbiased
  // (Lemire rejection method).
  std::uint64_t uniform(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform_double();

  // Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p);

  // Zipf-distributed rank in [1, n] with exponent theta. Used by workload
  // generators to produce the skewed popularity distributions typical of
  // database data. O(1) per draw after O(n) one-time setup per (n, theta).
  std::uint64_t zipf(std::uint64_t n, double theta);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Picks a uniformly random element. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    STC_REQUIRE(!v.empty());
    return v[static_cast<std::size_t>(uniform(v.size()))];
  }

  // Random lowercase ASCII string of the given length.
  std::string random_string(std::size_t length);

  // Derives an independent child generator; used to give each table /
  // module its own stream so insertion order changes don't ripple.
  Rng fork();

 private:
  std::uint64_t state_[4];
  // Cached harmonic sums for the Zipf sampler, keyed by (n, theta).
  std::uint64_t zipf_n_ = 0;
  double zipf_theta_ = 0.0;
  double zipf_norm_ = 0.0;
};

}  // namespace stc
