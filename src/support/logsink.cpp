#include "support/logsink.h"

#include <cstdio>
#include <mutex>
#include <string>

namespace stc::log {

void line(std::string_view text) {
  static std::mutex mu;
  std::string buffer(text);
  if (buffer.empty() || buffer.back() != '\n') buffer.push_back('\n');
  const std::lock_guard<std::mutex> lock(mu);
  std::fwrite(buffer.data(), 1, buffer.size(), stderr);
  std::fflush(stderr);
}

}  // namespace stc::log
