// Crash-safe file I/O for reports and trace caches.
//
// write_file_atomic writes to <path>.tmp and renames over <path>, so readers
// never observe a torn file: either the old content survives or the new
// content is complete. Each step is a fault point (<prefix>.open,
// <prefix>.write, <prefix>.rename) so tests and STC_FAULT can prove the
// no-torn-file property; on any failure the temp file is removed.
//
// MappedFile gives large read-only files (streamed traces) a zero-copy view:
// it mmaps when it can and degrades to a buffered read_file when it cannot —
// the caller sees the same bytes either way and only mapped() tells them
// apart. The mmap attempt runs through a caller-named fault point so tests
// can force the fallback path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace stc {

// Atomically replaces `path` with `size` bytes at `data`. `fault_prefix`
// names the injection points (e.g. "report.write" -> report.write.open ...).
// The temp file is registered for signal cleanup while it exists, so a
// SIGINT/SIGTERM handler can unlink in-flight temp files (see below).
Status write_file_atomic(const std::string& path, const void* data,
                         std::size_t size, std::string_view fault_prefix);

// Async-signal-safe temp-file cleanup registry.
//
// A fixed pool of path slots that a signal handler may walk with nothing but
// async-signal-safe calls. write_file_atomic registers its temp file for the
// window where the file exists under its temporary name; the experiment
// runner's SIGINT/SIGTERM handler calls unlink_signal_cleanup_paths() so an
// interrupted run never strands `.tmp` litter. Registration silently no-ops
// when all slots are busy or the path is too long — cleanup is best-effort by
// design. Returns the claimed slot id, or -1 when not registered.
int register_signal_cleanup_path(const std::string& path);
// Releases slot `id` (from register_signal_cleanup_path); -1 is a no-op.
void unregister_signal_cleanup_path(int id);
// Unlinks every registered path. Only async-signal-safe calls; callable from
// a signal handler. Slots stay claimed (the owner still unregisters).
void unlink_signal_cleanup_paths();

// Reads the whole file; kNotFound when it cannot be opened, kIoError on a
// short or failed read.
Result<std::vector<std::uint8_t>> read_file(const std::string& path);

// A read-only view of a whole file: an mmap when the kernel grants one, a
// heap buffer otherwise. Move-only; the view lives until destruction.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  // Opens `path`. With `want_map` the file is mmapped (read-only, private);
  // if the map fails — including an injected fault at `map_fault_point`,
  // when non-empty — the open silently falls back to a buffered read.
  // Errors (missing file, failed read) surface as not-found/io-error.
  static Result<MappedFile> open(const std::string& path, bool want_map = true,
                                 std::string_view map_fault_point = {});

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  // True when the bytes come from a live mmap (release() then has effect).
  bool mapped() const { return map_base_ != nullptr; }

  // Tells the kernel the given byte range will not be needed again, so a
  // single sequential pass over a mapped file keeps resident memory bounded.
  // No-op for buffered opens and out-of-range requests.
  void release(std::size_t offset, std::size_t length) const;

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* map_base_ = nullptr;          // non-null only for a real mmap
  std::size_t map_length_ = 0;
  std::vector<std::uint8_t> buffer_;  // backing store for the fallback
};

}  // namespace stc
