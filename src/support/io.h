// Crash-safe file I/O for reports and trace caches.
//
// write_file_atomic writes to <path>.tmp and renames over <path>, so readers
// never observe a torn file: either the old content survives or the new
// content is complete. Each step is a fault point (<prefix>.open,
// <prefix>.write, <prefix>.rename) so tests and STC_FAULT can prove the
// no-torn-file property; on any failure the temp file is removed.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace stc {

// Atomically replaces `path` with `size` bytes at `data`. `fault_prefix`
// names the injection points (e.g. "report.write" -> report.write.open ...).
Status write_file_atomic(const std::string& path, const void* data,
                         std::size_t size, std::string_view fault_prefix);

// Reads the whole file; kNotFound when it cannot be opened, kIoError on a
// short or failed read.
Result<std::vector<std::uint8_t>> read_file(const std::string& path);

}  // namespace stc
