// Central, validated access to the STC_* environment knobs.
//
// Every knob is parsed in exactly one place, strictly: a malformed value is
// an invalid-argument Status naming the knob, the offending value, and the
// accepted values — never a silent fallback to a default (the failure mode
// that makes a typo'd STC_THREADS=all quietly run a different experiment).
// Unset knobs return their documented defaults.
//
// Bench binaries call validate_all() (via bench::Env::from_environment)
// before doing any work, so a bad knob fails the process in milliseconds
// with exit code 2 instead of aborting mid-sweep.
#pragma once

#include <cstdint>
#include <string>

#include "support/error.h"

namespace stc::env {

// STC_THREADS: grid worker count; positive integer. 0 when unset (meaning
// "let the ThreadPool pick hardware concurrency").
Result<std::size_t> threads();

// STC_SF: TPC-D scale factor; finite double > 0. Default 0.002.
Result<double> scale_factor();

// STC_SEED: generator seed; unsigned integer. Default 19990401.
Result<std::uint64_t> seed();

// STC_LINE: cache line bytes; power of two in [8, 1024]. Default 32.
Result<std::uint32_t> line_bytes();

// STC_BENCH_DIR: directory that BENCH_*.json reports land in; must already
// exist and be a directory. Default ".".
Result<std::string> bench_dir();

// STC_VERIFY: 0/1 — run every measurement cell under the layout oracle.
Result<bool> verify();

// STC_BPRED: front-end predictor name; one of perfect|always|bimodal|
// gshare|local. Default "perfect".
Result<std::string> bpred();

// STC_FTQ_DEPTH: fetch-target queue depth in lines; non-negative integer
// (0 disables prefetching). Default 8.
Result<std::uint32_t> ftq_depth();

// STC_REPLAY: trace replay engine; one of interp|batched|compiled|auto.
// Default "auto" (the fastest mode whose output is oracle-identical to the
// interpreter — currently compiled). See src/sim/replay.h.
Result<std::string> replay();

// STC_BACKEND: execution back end behind the front end; one of
// off|inorder|ooo. Default "off" (fetch-only simulation, byte-identical to
// the paper's configuration). See src/backend/backend.h.
Result<std::string> backend();

// STC_IQ_DEPTH: back-end issue-queue depth in ops; integer in [1, 1024].
// Default 16. Only meaningful with STC_BACKEND != off.
Result<std::uint32_t> iq_depth();

// STC_ROB_DEPTH: back-end reorder-buffer depth in ops; integer in
// [1, 4096]. Default 64. Only meaningful with STC_BACKEND != off.
Result<std::uint32_t> rob_depth();

// STC_TENANTS: multi-tenant composer client-stream count; integer in
// [1, 64]. Default 4. See src/workload/composer.h.
Result<std::uint32_t> tenants();

// STC_QUANTUM: composer scheduler quantum in block events per slice;
// integer in [0, 1000000000] where 0 means an unbounded quantum (each
// tenant runs to completion — plain concatenation). Default 1000.
Result<std::uint64_t> quantum();

// STC_ARRIVAL: composer arrival model; one of rr|poisson|bursty|diurnal.
// Default "poisson".
Result<std::string> arrival();

// STC_TENANT_MIX: comma-separated per-tenant workload mixes, assigned
// round-robin across tenants; each entry one of dss|dss_train|oltp.
// Default "dss,oltp".
Result<std::string> tenant_mix();

// STC_JOB_TIMEOUT: per-job deadline in seconds; finite double >= 0
// (0 disables the watchdog). Default 0.
Result<double> job_timeout();

// STC_JOB_RETRIES: extra attempts per failed job; integer in [0, 16].
// Default 1.
Result<std::uint32_t> job_retries();

// STC_SHARDS: worker-process count for sharded bench grids; integer in
// [1, 256]. Default 1 (no sharding). See src/support/experiment.h.
Result<std::uint32_t> shards();

// STC_SHARD: internal worker-side knob set by the sharding parent; either
// unset or "<i>/<n>" with i < n and n in [1, 256]. Workers run only their
// modulo slice of the grid and write a report *fragment*. Default "".
Result<std::string> shard();

// STC_RESUME: 0/1 — replay the BENCH_<name>.journal on startup, skipping
// cells already recorded, so a crashed or killed sweep continues instead of
// restarting. Default 0 (a stale journal is discarded).
Result<bool> resume();

// STC_HEARTBEAT: shard-worker liveness deadline in seconds; finite double
// >= 0. A worker whose journal makes no progress for this long is SIGKILLed
// and its slice reassigned. Default 0 (supervision by exit status only).
Result<double> heartbeat();

// STC_ZERO_TIMINGS: 0/1 — record all phase timings as 0.0 so reports are
// byte-deterministic (the crash harness compares whole files). Default 0.
Result<bool> zero_timings();

// STC_MMAP: 0/1 — stream on-disk traces through mmap (TraceReader falls
// back to buffered reads when mapping fails). Default 1.
Result<bool> mmap_enabled();

// STC_PLAN_CACHE_DIR: directory for on-disk replay-plan cache entries;
// must already exist and be a directory. Default "" (cache disabled).
Result<std::string> plan_cache_dir();

// Parses every knob above plus the STC_FAULT spec syntax; returns the first
// error. Cheap — pure parsing, no filesystem work beyond one stat.
Status validate_all();

// validate_all() that prints the error to stderr and exits 2 on failure —
// the bench-binary entry point behavior.
void validate_all_or_exit();

}  // namespace stc::env
