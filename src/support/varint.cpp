#include "support/varint.h"

namespace stc {

void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_svarint(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_uvarint(out, zigzag_encode(value));
}

std::uint64_t get_uvarint(const std::uint8_t* data, std::size_t size,
                          std::size_t& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    STC_REQUIRE_MSG(pos < size, "truncated varint");
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    STC_REQUIRE_MSG(shift < 64, "varint too long");
  }
  return value;
}

std::int64_t get_svarint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos) {
  return zigzag_decode(get_uvarint(data, size, pos));
}

bool try_get_uvarint(const std::uint8_t* data, std::size_t size,
                     std::size_t& pos, std::uint64_t& out) {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (pos >= size) return false;  // truncated
    const std::uint8_t byte = data[pos++];
    if (shift == 63 && (byte & 0xfe) != 0) return false;  // > 64 bits
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return false;  // continuation past 10 bytes
  }
  out = value;
  return true;
}

bool try_get_svarint(const std::uint8_t* data, std::size_t size,
                     std::size_t& pos, std::int64_t& out) {
  std::uint64_t raw = 0;
  if (!try_get_uvarint(data, size, pos, raw)) return false;
  out = zigzag_decode(raw);
  return true;
}

}  // namespace stc
