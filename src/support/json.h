// Minimal JSON writer for the machine-readable bench reports.
//
// Produces deterministic output: keys are emitted in insertion order, numbers
// use the shortest decimal representation that round-trips through strtod, and
// indentation is fixed. Two runs that record the same values therefore emit
// byte-identical documents — the property the parallel-vs-serial experiment
// tests rely on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stc {

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes). Control characters become \uXXXX; UTF-8 bytes pass through.
std::string json_escape(std::string_view s);

// Shortest decimal representation of `v` that parses back to exactly `v`.
// Non-finite values (which JSON cannot represent) render as "null".
std::string json_number(double v);

// Streaming writer with begin/end nesting. Usage:
//   JsonWriter w;
//   w.begin_object().key("x").value(1.5).key("xs").begin_array()
//    .value(std::uint64_t{1}).end_array().end_object();
//   w.str();
// Structural errors (value without key inside an object, unbalanced ends)
// trip STC_REQUIRE.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Names the next value; only valid directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // The finished document; requires all scopes closed.
  const std::string& str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void newline_indent();

  std::string out_;
  std::vector<Scope> scopes_;
  std::vector<bool> scope_has_items_;
  bool key_pending_ = false;
};

}  // namespace stc
