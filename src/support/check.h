// Contract-checking macros used across the library.
//
// STC_CHECK   - always-on invariant check; aborts with a message on failure.
//               Use for conditions that indicate a programming error whose
//               continuation would corrupt results (Core Guidelines I.6/E.12).
// STC_REQUIRE - precondition check on public API entry points; always on.
// STC_DCHECK  - debug-only check for hot paths (compiled out in NDEBUG).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace stc::detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "%s failed: %s at %s:%d%s%s\n", kind, expr, file, line,
               msg && msg[0] ? " -- " : "", msg ? msg : "");
  std::abort();
}

}  // namespace stc::detail

#define STC_CHECK_IMPL(kind, cond, msg)                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::stc::detail::check_failed(kind, #cond, __FILE__, __LINE__, (msg));  \
    }                                                                       \
  } while (0)

#define STC_CHECK(cond) STC_CHECK_IMPL("check", cond, "")
#define STC_CHECK_MSG(cond, msg) STC_CHECK_IMPL("check", cond, msg)
#define STC_REQUIRE(cond) STC_CHECK_IMPL("precondition", cond, "")
#define STC_REQUIRE_MSG(cond, msg) STC_CHECK_IMPL("precondition", cond, msg)

#ifdef NDEBUG
#define STC_DCHECK(cond) ((void)0)
#else
#define STC_DCHECK(cond) STC_CHECK_IMPL("debug check", cond, "")
#endif
