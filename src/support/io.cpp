#include "support/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <utility>

#include "support/faultpoint.h"

namespace stc {

namespace {

// Signal cleanup slots. States: 0 = free, 1 = being written (skip), 2 = live.
// The handler only reads paths in state 2, which the claiming thread fully
// wrote (and null-terminated) before the release-store to 2.
constexpr int kCleanupSlots = 16;
constexpr std::size_t kCleanupPathMax = 512;
std::atomic<int> cleanup_state[kCleanupSlots];
char cleanup_path[kCleanupSlots][kCleanupPathMax];

}  // namespace

int register_signal_cleanup_path(const std::string& path) {
  if (path.size() + 1 > kCleanupPathMax) return -1;
  for (int i = 0; i < kCleanupSlots; ++i) {
    int expected = 0;
    if (!cleanup_state[i].compare_exchange_strong(expected, 1,
                                                  std::memory_order_acquire)) {
      continue;
    }
    std::memcpy(cleanup_path[i], path.c_str(), path.size() + 1);
    cleanup_state[i].store(2, std::memory_order_release);
    return i;
  }
  return -1;
}

void unregister_signal_cleanup_path(int id) {
  if (id < 0 || id >= kCleanupSlots) return;
  cleanup_state[id].store(0, std::memory_order_release);
}

void unlink_signal_cleanup_paths() {
  for (int i = 0; i < kCleanupSlots; ++i) {
    if (cleanup_state[i].load(std::memory_order_acquire) == 2) {
      ::unlink(cleanup_path[i]);
    }
  }
}

Status write_file_atomic(const std::string& path, const void* data,
                         std::size_t size, std::string_view fault_prefix) {
  const std::string prefix(fault_prefix);
  const std::string tmp = path + ".tmp";
  Status status = fault::fail_if(prefix + ".open", "opening " + tmp);
  std::FILE* f = nullptr;
  int cleanup_id = -1;
  if (status.is_ok()) {
    cleanup_id = register_signal_cleanup_path(tmp);
    f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) status = io_error("cannot open '" + tmp + "' for writing");
  }
  if (status.is_ok()) {
    status = fault::fail_if(prefix + ".write", "writing " + tmp);
    if (status.is_ok() && size > 0 &&
        std::fwrite(data, 1, size, f) != size) {
      status = io_error("short write to '" + tmp + "'");
    }
  }
  if (f != nullptr) {
    // fclose flushes; a full disk surfaces here as a failed close.
    if (std::fclose(f) != 0 && status.is_ok()) {
      status = io_error("cannot flush '" + tmp + "'");
    }
  }
  if (status.is_ok()) {
    status = fault::fail_if(prefix + ".rename", "renaming " + tmp);
    if (status.is_ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
      status = io_error("cannot rename '" + tmp + "' to '" + path + "'");
    }
  }
  if (!status.is_ok()) std::remove(tmp.c_str());
  // Whether renamed away or removed, the temp name no longer exists.
  unregister_signal_cleanup_path(cleanup_id);
  return status;
}

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return not_found_error("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return io_error("read failed on '" + path + "'");
  return bytes;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
  data_ = other.data_;
  size_ = other.size_;
  map_base_ = other.map_base_;
  map_length_ = other.map_length_;
  buffer_ = std::move(other.buffer_);
  if (map_base_ == nullptr && size_ > 0) data_ = buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.map_base_ = nullptr;
  other.map_length_ = 0;
  return *this;
}

MappedFile::~MappedFile() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_length_);
}

Result<MappedFile> MappedFile::open(const std::string& path, bool want_map,
                                    std::string_view map_fault_point) {
  MappedFile file;
  if (want_map) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return not_found_error("cannot open '" + path + "'");
    struct stat st = {};
    const bool stat_ok = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
    Status injected;
    if (stat_ok && !map_fault_point.empty()) {
      injected = fault::fail_if(std::string(map_fault_point), "mapping " + path);
    }
    if (stat_ok && injected.is_ok()) {
      if (st.st_size == 0) {
        // A zero-byte mmap is invalid; an empty view needs no backing store.
        ::close(fd);
        return file;
      }
      void* base = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                          PROT_READ, MAP_PRIVATE, fd, 0);
      if (base != MAP_FAILED) {
        ::close(fd);
        file.map_base_ = base;
        file.map_length_ = static_cast<std::size_t>(st.st_size);
        file.data_ = static_cast<const std::uint8_t*>(base);
        file.size_ = file.map_length_;
        return file;
      }
    }
    ::close(fd);
    // Fall through to the buffered path: same bytes, no map.
  }
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) return bytes.status();
  file.buffer_ = std::move(bytes).take();
  file.data_ = file.buffer_.data();
  file.size_ = file.buffer_.size();
  return file;
}

void MappedFile::release(std::size_t offset, std::size_t length) const {
  if (map_base_ == nullptr || length == 0) return;
  if (offset > map_length_ || map_length_ - offset < length) return;
  // Grow the range *outward* to a 2 MB granule. MADV_DONTNEED on a read-only
  // file mapping is non-destructive (dropped pages re-fault from the page
  // cache), so over-dropping neighbours is safe — and necessary: the kernel
  // backs readahead with large folios and quietly skips folios the range
  // only partially covers, so page-granular releases leak most of the file.
  constexpr std::size_t kGranule = 2u << 20;
  const std::size_t begin = offset / kGranule * kGranule;
  std::size_t end = (offset + length + kGranule - 1) / kGranule * kGranule;
  if (end > map_length_) end = map_length_;
  ::madvise(const_cast<std::uint8_t*>(data_) + begin, end - begin,
            MADV_DONTNEED);
}

}  // namespace stc
