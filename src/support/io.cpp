#include "support/io.h"

#include <cstdio>

#include "support/faultpoint.h"

namespace stc {

Status write_file_atomic(const std::string& path, const void* data,
                         std::size_t size, std::string_view fault_prefix) {
  const std::string prefix(fault_prefix);
  const std::string tmp = path + ".tmp";
  Status status = fault::fail_if(prefix + ".open", "opening " + tmp);
  std::FILE* f = nullptr;
  if (status.is_ok()) {
    f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) status = io_error("cannot open '" + tmp + "' for writing");
  }
  if (status.is_ok()) {
    status = fault::fail_if(prefix + ".write", "writing " + tmp);
    if (status.is_ok() && size > 0 &&
        std::fwrite(data, 1, size, f) != size) {
      status = io_error("short write to '" + tmp + "'");
    }
  }
  if (f != nullptr) {
    // fclose flushes; a full disk surfaces here as a failed close.
    if (std::fclose(f) != 0 && status.is_ok()) {
      status = io_error("cannot flush '" + tmp + "'");
    }
  }
  if (status.is_ok()) {
    status = fault::fail_if(prefix + ".rename", "renaming " + tmp);
    if (status.is_ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
      status = io_error("cannot rename '" + tmp + "' to '" + path + "'");
    }
  }
  if (!status.is_ok()) std::remove(tmp.c_str());
  return status;
}

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return not_found_error("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return io_error("read failed on '" + path + "'");
  return bytes;
}

}  // namespace stc
