#include "support/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/check.h"
#include "support/crc32.h"
#include "support/faultpoint.h"
#include "support/io.h"

namespace stc {

namespace {

constexpr std::string_view kMagic = "STCJ1 ";

std::string crc_hex(std::uint32_t crc) {
  char buffer[9];
  std::snprintf(buffer, sizeof buffer, "%08x", crc);
  return std::string(buffer);
}

}  // namespace

Result<JournalScan> read_journal(const std::string& path) {
  JournalScan scan;
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) {
    if (bytes.status().code() == ErrorCode::kNotFound) return scan;
    return bytes.status().with_context("journal '" + path + "'");
  }
  const std::string_view doc(
      reinterpret_cast<const char*>(bytes.value().data()),
      bytes.value().size());
  std::size_t pos = 0;
  const auto tear = [&](const std::string& why) {
    scan.torn = pos < doc.size();
    scan.tear_reason = scan.torn ? why : std::string();
    return scan;
  };
  while (pos < doc.size()) {
    // Header line: "STCJ1 <size> <crc8hex>\n".
    if (doc.substr(pos, kMagic.size()) != kMagic) {
      return tear("bad record magic");
    }
    const std::size_t header_end = doc.find('\n', pos);
    if (header_end == std::string_view::npos) return tear("torn header");
    const std::string_view header =
        doc.substr(pos + kMagic.size(), header_end - pos - kMagic.size());
    const std::size_t space = header.find(' ');
    if (space == std::string_view::npos || space == 0 ||
        header.size() - space - 1 != 8) {
      return tear("malformed header");
    }
    std::uint64_t size = 0;
    for (const char c : header.substr(0, space)) {
      if (c < '0' || c > '9' || size > (std::uint64_t{1} << 40)) {
        return tear("malformed record size");
      }
      size = size * 10 + static_cast<std::uint64_t>(c - '0');
    }
    std::uint32_t want_crc = 0;
    for (const char c : header.substr(space + 1)) {
      std::uint32_t digit;
      if (c >= '0' && c <= '9') digit = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') digit = 10u + static_cast<std::uint32_t>(c - 'a');
      else return tear("malformed record crc");
      want_crc = want_crc * 16 + digit;
    }
    const std::size_t payload_begin = header_end + 1;
    // Payload plus its trailing newline must be fully present.
    if (doc.size() - payload_begin < size + 1) return tear("torn payload");
    const std::string_view payload = doc.substr(payload_begin, size);
    if (doc[payload_begin + size] != '\n') return tear("missing terminator");
    if (crc32(payload.data(), payload.size()) != want_crc) {
      return tear("record crc mismatch");
    }
    pos = payload_begin + size + 1;
    scan.payloads.emplace_back(payload);
    scan.record_ends.push_back(pos);
    scan.valid_bytes = pos;
  }
  return scan;
}

JournalWriter::~JournalWriter() { close(); }

Status JournalWriter::open(const std::string& path, std::uint64_t keep_bytes) {
  const std::lock_guard<std::mutex> lock(mu_);
  STC_REQUIRE(file_ == nullptr);
  if (Status s = fault::fail_if("journal.open", "opening journal '" + path +
                                                    "'");
      !s.is_ok()) {
    return s;
  }
  // "ab" creates the file when absent; truncate() trims a stale or torn
  // suffix first so appends continue exactly after the last valid record.
  if (::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0 &&
      errno != ENOENT) {
    return io_error("cannot truncate journal '" + path + "'");
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return io_error("cannot open journal '" + path + "' for append");
  }
  path_ = path;
  return Status::ok();
}

Status JournalWriter::append(std::string_view payload) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return io_error("journal is not open");
  }
  if (Status s = fault::fail_if("journal.append.write",
                                "appending journal record");
      !s.is_ok()) {
    return s;
  }
  const long start = std::ftell(file_);
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  const std::string header = std::string(kMagic) +
                             std::to_string(payload.size()) + " " +
                             crc_hex(crc) + "\n";
  // The tear point sits after a deliberately partial write: a crash here
  // (STC_CRASH) leaves a torn tail for read_journal to detect, while the
  // error path truncates the partial frame back off before returning.
  const std::size_t half = payload.size() / 2;
  bool short_write =
      std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, half, file_) != half;
  Status torn = short_write
                    ? io_error("short journal write")
                    : fault::fail_if("journal.append.tear",
                                     "appending journal record");
  if (torn.is_ok()) {
    short_write =
        std::fwrite(payload.data() + half, 1, payload.size() - half,
                    file_) != payload.size() - half ||
        std::fwrite("\n", 1, 1, file_) != 1;
    if (short_write) torn = io_error("short journal write");
  }
  if (!torn.is_ok()) {
    // Undo the partial frame so the on-disk journal stays clean.
    std::fflush(file_);
    if (start >= 0) {
      [[maybe_unused]] const int rc =
          ::ftruncate(::fileno(file_), static_cast<off_t>(start));
      std::fseek(file_, 0, SEEK_END);
    }
    return torn;
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return io_error("cannot flush journal '" + path_ + "'");
  }
  return Status::ok();
}

void JournalWriter::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  ::fsync(::fileno(file_));
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace stc
