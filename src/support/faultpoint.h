// Deterministic fault injection, always compiled in.
//
// Code on fallible paths declares named fault points:
//
//   if (Status s = fault::fail_if("trace.load.chunk", "reading chunk"); !s.is_ok())
//     return s;
//
// In normal runs every point is a counter bump and a branch — no allocation,
// no syscalls. Faults are armed either
//   - explicitly:    STC_FAULT=trace.load.chunk:3   (fire on the 3rd hit;
//                    comma-separate multiple specs; ":1" may be omitted), or
//   - statistically: STC_FAULT_RATE=0.01 STC_FAULT_SEED=7, where each hit
//     fires iff hash(seed, point, hit#) < rate — fully deterministic, so a
//     failing run replays exactly.
//
// Crash injection: STC_CRASH=point:N (same spec grammar as STC_FAULT) makes
// the Nth hit of a point SIGKILL the process instead of returning an error —
// the real failure mode the journal/resume layer must survive, with no
// destructors, no atexit, no flush. Crash arming is checked before error
// arming, so a point listed in both crashes. STC_FAULT_DUMP=<path> appends
// one "point hit-count" line per fired-or-not point at process exit, which is
// how tools/crash_harness discovers every write boundary a workload crosses.
//
// Point names are dotted lowercase paths, site-first: trace.load.chunk,
// trace.save.rename, report.write.open, job.exec. Tests arm points
// programmatically with arm()/reset() (see tests/support/faultpoint_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace stc::fault {

// True when this hit of `point` should fail. Counts hits per point name
// (1-based) whether or not any fault is armed. Thread-safe.
bool fire(std::string_view point);

// fire() wrapped into the common pattern: ok() normally, a kFaultInjected
// Status mentioning `point` and `what` when the point fires.
Status fail_if(std::string_view point, std::string_view what);

// Arms `point` to fire on its `nth` hit from now (1 = next hit). Counts and
// arms are process-global; tests should reset() around use.
void arm(std::string_view point, std::uint64_t nth = 1);

// Arms every point to fire with probability `rate` per hit, keyed by `seed`.
void arm_probabilistic(double rate, std::uint64_t seed);

// Arms `point` to SIGKILL the process on its `nth` hit from now, exactly as
// STC_CRASH would. For death tests; reset() clears it.
void arm_crash(std::string_view point, std::uint64_t nth = 1);

// Parses a STC_FAULT spec ("a.b:2,c.d") and arms it. Structured error on
// malformed specs (bad count, empty point name).
Status arm_from_spec(std::string_view spec);

// Syntax-checks a spec without arming anything (env validation).
Status validate_spec(std::string_view spec);

// Clears all armed faults and hit counters. Does NOT re-read the
// environment; env arming happens once at first fire() unless reset.
void reset();

// Hits recorded for `point` so far (after reset: 0).
std::uint64_t hits(std::string_view point);

}  // namespace stc::fault
