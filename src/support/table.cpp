#include "support/table.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>

#include "support/check.h"

namespace stc {

void TextTable::header(std::vector<std::string> cells) {
  STC_REQUIRE(!cells.empty());
  columns_ = cells.size();
  lines_.push_back({false, std::move(cells)});
  separator();
}

void TextTable::row(std::vector<std::string> cells) {
  STC_REQUIRE_MSG(cells.size() == columns_, "row/column count mismatch");
  lines_.push_back({false, std::move(cells)});
}

void TextTable::separator() { lines_.push_back({true, {}}); }

std::string TextTable::render() const {
  std::vector<std::size_t> width(columns_, 0);
  for (const auto& line : lines_) {
    if (line.is_separator) continue;
    for (std::size_t c = 0; c < columns_; ++c) {
      width[c] = std::max(width[c], line.cells[c].size());
    }
  }
  std::string out;
  for (const auto& line : lines_) {
    if (line.is_separator) {
      for (std::size_t c = 0; c < columns_; ++c) {
        out.append(width[c] + 2, '-');
        if (c + 1 < columns_) out += "+";
      }
      out += "\n";
      continue;
    }
    for (std::size_t c = 0; c < columns_; ++c) {
      const std::string& cell = line.cells[c];
      const std::size_t pad = width[c] - cell.size();
      out += ' ';
      if (c == 0) {
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
      out += ' ';
      if (c + 1 < columns_) out += "|";
    }
    out += "\n";
  }
  return out;
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  std::string digits = buf;
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out += ',';
      since_sep = 0;
    }
    out += *it;
    ++since_sep;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_percent(double fraction) {
  return fmt_fixed(fraction * 100.0, 2) + "%";
}

std::string fmt_size(std::uint64_t bytes) {
  if (bytes % (1024 * 1024) == 0 && bytes > 0) {
    return fmt_count(bytes / (1024 * 1024)) + "M";
  }
  if (bytes % 1024 == 0 && bytes > 0) {
    return fmt_count(bytes / 1024) + "K";
  }
  return fmt_count(bytes) + "B";
}

}  // namespace stc
