#include "support/error.h"

namespace stc {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kCorruptData:
      return "corrupt-data";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kFaultInjected:
      return "fault-injected";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  return std::string(stc::to_string(code_)) + ": " + message_;
}

Status invalid_argument_error(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status corrupt_data_error(std::string message) {
  return Status(ErrorCode::kCorruptData, std::move(message));
}
Status io_error(std::string message) {
  return Status(ErrorCode::kIoError, std::move(message));
}
Status not_found_error(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status timeout_error(std::string message) {
  return Status(ErrorCode::kTimeout, std::move(message));
}
Status fault_injected_error(std::string message) {
  return Status(ErrorCode::kFaultInjected, std::move(message));
}
Status internal_error(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace stc
