#include "support/experiment.h"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>

#include "support/check.h"
#include "support/env.h"
#include "support/faultpoint.h"
#include "support/io.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace stc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Warns (once per job) on stderr when a running job overruns its deadline.
// Jobs are cooperative — the watchdog cannot kill a stuck simulation, but it
// makes a wedged sweep diagnosable instead of silent; the overrun is then
// recorded as timed_out when the attempt finally returns.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(double timeout_seconds, const std::vector<std::string>& names)
      : timeout_(timeout_seconds),
        names_(names),
        start_(names.size(), Clock::time_point::min()),
        warned_(names.size(), false),
        thread_([this] { loop(); }) {}

  ~DeadlineWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void begin(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    start_[index] = Clock::now();
    warned_[index] = false;
  }

  void end(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    start_[index] = Clock::time_point::min();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < start_.size(); ++i) {
        if (start_[i] == Clock::time_point::min() || warned_[i]) continue;
        const double elapsed =
            std::chrono::duration<double>(now - start_[i]).count();
        if (elapsed > timeout_) {
          warned_[i] = true;
          std::fprintf(stderr,
                       "watchdog: job '%s' is %.1fs past its %.3gs deadline\n",
                       names_[i].c_str(), elapsed - timeout_, timeout_);
        }
      }
    }
  }

  const double timeout_;
  const std::vector<std::string>& names_;
  std::vector<Clock::time_point> start_;
  std::vector<bool> warned_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

void ExperimentResult::metric(std::string_view name, double value) {
  for (auto& m : metrics_) {
    if (m.first == name) {
      m.second = value;
      return;
    }
  }
  metrics_.emplace_back(std::string(name), value);
}

Result<double> ExperimentResult::try_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return m.second;
  }
  std::string have;
  for (const auto& m : metrics_) {
    if (!have.empty()) have += ", ";
    have += m.first;
  }
  return not_found_error("metric '" + std::string(name) + "' not recorded (" +
                         (have.empty() ? "no metrics" : "have: " + have) + ")");
}

double ExperimentResult::metric(std::string_view name) const {
  return try_metric(name).value();  // throws StatusError when absent
}

bool ExperimentResult::has_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return true;
  }
  return false;
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

ExperimentRunner::ExperimentRunner(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void ExperimentRunner::meta(std::string_view key, std::string_view value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kString,
                   std::string(value), 0.0, 0});
}

void ExperimentRunner::meta(std::string_view key, double value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kDouble, {}, value, 0});
}

void ExperimentRunner::meta(std::string_view key, std::uint64_t value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kUint, {}, 0.0, value});
}

void ExperimentRunner::record_phase(std::string_view phase, double seconds) {
  for (auto& p : phases_) {
    if (p.first == phase) {
      p.second += seconds;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), seconds);
}

void ExperimentRunner::time_phase(std::string_view phase,
                                  const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  record_phase(phase, seconds_since(start));
}

std::size_t ExperimentRunner::add(
    std::string job_name,
    std::vector<std::pair<std::string, std::string>> params,
    std::function<ExperimentResult()> fn) {
  STC_REQUIRE(!ran_);
  jobs_.push_back({std::move(job_name), std::move(params), std::move(fn)});
  return jobs_.size() - 1;
}

void ExperimentRunner::set_max_retries(std::uint32_t retries) {
  max_retries_ = retries;
  retries_set_ = true;
}

void ExperimentRunner::set_job_timeout(double seconds) {
  STC_REQUIRE(seconds >= 0.0);
  job_timeout_ = seconds;
  timeout_set_ = true;
}

Result<std::size_t> ExperimentRunner::threads_from_env() {
  return env::threads();
}

void ExperimentRunner::run(std::size_t threads) {
  STC_REQUIRE(!ran_);
  ran_ = true;
  if (threads == 0) threads = threads_from_env().value();
  if (!retries_set_) max_retries_ = env::job_retries().value();
  if (!timeout_set_) job_timeout_ = env::job_timeout().value();
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();

  std::vector<std::string> job_names;
  job_names.reserve(jobs_.size());
  for (const Job& job : jobs_) job_names.push_back(job.name);
  std::unique_ptr<DeadlineWatchdog> watchdog;
  if (job_timeout_ > 0.0) {
    watchdog = std::make_unique<DeadlineWatchdog>(job_timeout_, job_names);
  }

  // One grid cell: run the job, capturing any thrown error into the
  // outcome instead of letting it reach the pool. Failed attempts retry up
  // to max_retries_ times (transient faults); deadline overruns do not — a
  // deterministic simulation that overran once will overrun again.
  const auto run_job = [this, &watchdog](std::size_t i) {
    JobFailure& outcome = outcomes_[i];
    outcome.index = i;
    outcome.name = jobs_[i].name;
    const std::uint32_t max_attempts = 1 + max_retries_;
    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome.attempts = attempt;
      if (watchdog) watchdog->begin(i);
      const auto start = Clock::now();
      Status error;
      ExperimentResult result;
      try {
        if (Status s = fault::fail_if("job.exec", "executing job"); !s.is_ok()) {
          throw StatusError(s);
        }
        result = jobs_[i].fn();
      } catch (const StatusError& e) {
        error = e.status();
      } catch (const std::exception& e) {
        error = internal_error(std::string("unhandled exception: ") + e.what());
      } catch (...) {
        error = internal_error("unhandled non-exception throw");
      }
      const double elapsed = seconds_since(start);
      if (watchdog) watchdog->end(i);
      if (error.is_ok() && job_timeout_ > 0.0 && elapsed > job_timeout_) {
        outcome.status = JobStatus::kTimedOut;
        outcome.error =
            timeout_error("ran past the " + json_number(job_timeout_) +
                          "s deadline")
                .with_context("job '" + jobs_[i].name + "'");
        return;  // deadline overruns are not transient: no retry
      }
      if (error.is_ok()) {
        results_[i] = std::move(result);
        outcome.status = JobStatus::kOk;
        outcome.error = Status::ok();
        return;
      }
      outcome.status = JobStatus::kFailed;
      outcome.error = error.with_context("job '" + jobs_[i].name + "'");
    }
  };

  const auto start = Clock::now();
  {
    ThreadPool pool(threads);
    threads_used_ = pool.thread_count() == 0 ? 1 : pool.thread_count();
    pool.parallel_for(jobs_.size(), run_job);
  }
  watchdog.reset();
  record_phase("replay", seconds_since(start));

  for (const JobFailure& outcome : outcomes_) {
    if (outcome.status != JobStatus::kOk) failures_.push_back(outcome);
  }
  for (const JobFailure& failure : failures_) {
    std::fprintf(stderr, "[%s] job '%s' %s after %u attempt(s): %s\n",
                 bench_name_.c_str(), failure.name.c_str(),
                 to_string(failure.status), failure.attempts,
                 failure.error.to_string().c_str());
  }
}

const ExperimentResult& ExperimentRunner::result(std::size_t index) const {
  STC_REQUIRE(ran_ && index < results_.size());
  return results_[index];
}

JobStatus ExperimentRunner::job_status(std::size_t index) const {
  STC_REQUIRE(ran_ && index < outcomes_.size());
  return outcomes_[index].status;
}

const std::vector<JobFailure>& ExperimentRunner::failures() const {
  STC_REQUIRE(ran_);
  return failures_;
}

bool ExperimentRunner::all_ok() const {
  STC_REQUIRE(ran_);
  return failures_.empty();
}

int ExperimentRunner::exit_code() const { return all_ok() ? 0 : 3; }

double ExperimentRunner::metric_or(std::size_t index, std::string_view name,
                                   double fallback) const {
  STC_REQUIRE(ran_ && index < results_.size());
  if (outcomes_[index].status != JobStatus::kOk) return fallback;
  const Result<double> value = results_[index].try_metric(name);
  return value.is_ok() ? value.value() : fallback;
}

double ExperimentRunner::metric_or(std::size_t index,
                                   std::string_view name) const {
  return metric_or(index, name, std::nan(""));
}

namespace {

void write_results(JsonWriter& w,
                   const std::vector<ExperimentResult>& results,
                   const std::vector<JobFailure>& outcomes,
                   const std::vector<std::string>& names,
                   const std::vector<std::vector<std::pair<std::string,
                                                           std::string>>>&
                       params) {
  w.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("name").value(names[i]);
    if (!params[i].empty()) {
      w.key("params").begin_object();
      for (const auto& p : params[i]) w.key(p.first).value(p.second);
      w.end_object();
    }
    // Successful cells keep the clean-run shape (no "status" key), so a
    // degraded sweep's good cells stay byte-identical to a clean sweep's.
    if (outcomes[i].status != JobStatus::kOk) {
      w.key("status").value(to_string(outcomes[i].status));
      w.key("error").value(outcomes[i].error.to_string());
    }
    w.key("metrics").begin_object();
    for (const auto& m : results[i].metrics()) w.key(m.first).value(m.second);
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& c : results[i].counters().items()) {
      w.key(c.first).value(c.second);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string ExperimentRunner::results_json() const {
  STC_REQUIRE(ran_);
  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  JsonWriter w;
  write_results(w, results_, outcomes_, names, params);
  return w.str();
}

std::string ExperimentRunner::report_json() const {
  STC_REQUIRE(ran_);
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_name_);
  w.key("schema_version").value(std::uint64_t{3});
  w.key("threads").value(static_cast<std::uint64_t>(threads_used_));

  w.key("env").begin_object();
  for (const MetaEntry& m : meta_) {
    w.key(m.key);
    switch (m.kind) {
      case MetaEntry::Kind::kString:
        w.value(m.s);
        break;
      case MetaEntry::Kind::kDouble:
        w.value(m.d);
        break;
      case MetaEntry::Kind::kUint:
        w.value(m.u);
        break;
    }
  }
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& p : phases_) w.key(p.first).value(p.second);
  w.end_object();

  // Replay throughput from the jobs' standard counters.
  CounterSet totals;
  for (const ExperimentResult& r : results_) totals.merge(r.counters());
  double replay_seconds = 0.0;
  for (const auto& p : phases_) {
    if (p.first == "replay") replay_seconds = p.second;
  }
  // Schema v3: the throughput block is mandatory and always carries
  // events_per_sec (trace events — the "blocks" counter — replayed per
  // second of the replay phase; 0.0 when the phase was not timed).
  const auto rate = [&](std::uint64_t total) {
    return replay_seconds > 0.0 ? static_cast<double>(total) / replay_seconds
                                : 0.0;
  };
  w.key("throughput").begin_object();
  w.key("events_per_sec").value(rate(totals.get("blocks")));
  w.key("blocks_per_second").value(rate(totals.get("blocks")));
  w.key("instructions_per_second").value(rate(totals.get("instructions")));
  w.end_object();

  w.key("totals").begin_object();
  for (const auto& c : totals.items()) w.key(c.first).value(c.second);
  w.end_object();

  w.key("failures").begin_array();
  for (const JobFailure& f : failures_) {
    w.begin_object();
    w.key("job").value(f.name);
    w.key("index").value(static_cast<std::uint64_t>(f.index));
    w.key("status").value(to_string(f.status));
    w.key("attempts").value(std::uint64_t{f.attempts});
    w.key("error").value(f.error.to_string());
    w.end_object();
  }
  w.end_array();

  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  w.key("results");
  write_results(w, results_, outcomes_, names, params);
  w.end_object();
  return w.str();
}

Result<std::string> ExperimentRunner::write_report() const {
  Result<std::string> dir = env::bench_dir();
  if (!dir.is_ok()) return dir.status().with_context("bench report");
  const std::string path = dir.value() + "/BENCH_" + bench_name_ + ".json";
  const std::string doc = report_json() + "\n";
  if (Status s =
          write_file_atomic(path, doc.data(), doc.size(), "report.write");
      !s.is_ok()) {
    return s.with_context("bench report '" + path + "'");
  }
  return path;
}

}  // namespace stc
