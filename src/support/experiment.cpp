#include "support/experiment.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "support/check.h"
#include "support/env.h"
#include "support/faultpoint.h"
#include "support/io.h"
#include "support/json.h"
#include "support/json_read.h"
#include "support/logsink.h"
#include "support/thread_pool.h"

extern char** environ;

namespace stc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Live shard-worker pids, readable from a signal handler. A slot is a pid
// when a worker is running, 0 when free.
constexpr std::size_t kMaxShardPids = 256;
std::atomic<pid_t> g_shard_pids[kMaxShardPids];

int register_shard_pid(pid_t pid) {
  for (std::size_t i = 0; i < kMaxShardPids; ++i) {
    pid_t expected = 0;
    if (g_shard_pids[i].compare_exchange_strong(expected, pid)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void unregister_shard_pid(int slot) {
  if (slot >= 0) g_shard_pids[slot].store(0);
}

// SIGINT/SIGTERM: an interrupted run must stay resumable and leave no
// litter. The journal needs no flushing here — every append is already
// fsync'd — so the handler only unlinks in-flight temp files, takes the
// shard workers down with it, and dies by the original signal. All calls
// are async-signal-safe.
void interrupt_handler(int sig) {
  unlink_signal_cleanup_paths();
  for (std::size_t i = 0; i < kMaxShardPids; ++i) {
    const pid_t pid = g_shard_pids[i].load();
    if (pid > 0) ::kill(pid, SIGKILL);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_interrupt_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction action = {};
    action.sa_handler = interrupt_handler;
    ::sigemptyset(&action.sa_mask);
    for (const int sig : {SIGINT, SIGTERM}) {
      struct sigaction previous = {};
      // Leave non-default dispositions (a test harness's, SIG_IGN) alone.
      if (::sigaction(sig, nullptr, &previous) == 0 &&
          previous.sa_handler == SIG_DFL) {
        ::sigaction(sig, &action, nullptr);
      }
    }
  });
}

// Removes every directory entry named <prefix>...<suffix>. Best-effort;
// returns the number removed.
std::size_t remove_matching_files(const std::string& dir,
                                  const std::string& prefix,
                                  const std::string& suffix) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> victims;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    victims.push_back(dir + "/" + name);
  }
  ::closedir(d);
  for (const std::string& path : victims) std::remove(path.c_str());
  return victims.size();
}

std::int64_t file_size_or(const std::string& path, std::int64_t fallback) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) != 0) return fallback;
  return static_cast<std::int64_t>(st.st_size);
}

std::string shard_suffix(std::uint32_t shard, std::uint32_t count) {
  return ".shard" + std::to_string(shard) + "of" + std::to_string(count);
}

// Warns (once per job) on stderr when a running job overruns its deadline.
// Jobs are cooperative — the watchdog cannot kill a stuck simulation, but it
// makes a wedged sweep diagnosable instead of silent; the overrun is then
// recorded as timed_out when the attempt finally returns.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(double timeout_seconds, const std::vector<std::string>& names)
      : timeout_(timeout_seconds),
        names_(names),
        start_(names.size(), Clock::time_point::min()),
        attempt_(names.size(), 1),
        warned_(names.size(), false),
        thread_([this] { loop(); }) {}

  ~DeadlineWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void begin(std::size_t index, std::uint32_t attempt) {
    std::lock_guard<std::mutex> lock(mu_);
    start_[index] = Clock::now();
    attempt_[index] = attempt;
    warned_[index] = false;
  }

  void end(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    start_[index] = Clock::time_point::min();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < start_.size(); ++i) {
        if (start_[i] == Clock::time_point::min() || warned_[i]) continue;
        const double elapsed =
            std::chrono::duration<double>(now - start_[i]).count();
        if (elapsed > timeout_) {
          warned_[i] = true;
          char message[256];
          std::snprintf(message, sizeof message,
                        "watchdog: job '%s' (attempt %u) is %.1fs past its "
                        "%.3gs deadline",
                        names_[i].c_str(), attempt_[i], elapsed - timeout_,
                        timeout_);
          // One locked sink: the warning comes from the watchdog's own
          // thread and must not interleave with bench output.
          log::line(message);
        }
      }
    }
  }

  const double timeout_;
  const std::vector<std::string>& names_;
  std::vector<Clock::time_point> start_;
  std::vector<std::uint32_t> attempt_;
  std::vector<bool> warned_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

void ExperimentResult::metric(std::string_view name, double value) {
  for (auto& m : metrics_) {
    if (m.first == name) {
      m.second = value;
      return;
    }
  }
  metrics_.emplace_back(std::string(name), value);
}

Result<double> ExperimentResult::try_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return m.second;
  }
  std::string have;
  for (const auto& m : metrics_) {
    if (!have.empty()) have += ", ";
    have += m.first;
  }
  return not_found_error("metric '" + std::string(name) + "' not recorded (" +
                         (have.empty() ? "no metrics" : "have: " + have) + ")");
}

double ExperimentResult::metric(std::string_view name) const {
  return try_metric(name).value();  // throws StatusError when absent
}

bool ExperimentResult::has_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return true;
  }
  return false;
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

ExperimentRunner::ExperimentRunner(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void ExperimentRunner::meta(std::string_view key, std::string_view value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kString,
                   std::string(value), 0.0, 0});
}

void ExperimentRunner::meta(std::string_view key, double value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kDouble, {}, value, 0});
}

void ExperimentRunner::meta(std::string_view key, std::uint64_t value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kUint, {}, 0.0, value});
}

void ExperimentRunner::record_phase(std::string_view phase, double seconds) {
  // STC_ZERO_TIMINGS makes reports fully byte-deterministic (the crash
  // harness compares whole files); malformed values are caught by
  // validate_all, not here.
  if (const Result<bool> zero = env::zero_timings();
      zero.is_ok() && zero.value()) {
    seconds = 0.0;
  }
  for (auto& p : phases_) {
    if (p.first == phase) {
      p.second += seconds;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), seconds);
}

void ExperimentRunner::time_phase(std::string_view phase,
                                  const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  record_phase(phase, seconds_since(start));
}

std::size_t ExperimentRunner::add(
    std::string job_name,
    std::vector<std::pair<std::string, std::string>> params,
    std::function<ExperimentResult()> fn) {
  STC_REQUIRE(!ran_);
  jobs_.push_back({std::move(job_name), std::move(params), std::move(fn)});
  return jobs_.size() - 1;
}

void ExperimentRunner::set_max_retries(std::uint32_t retries) {
  max_retries_ = retries;
  retries_set_ = true;
}

void ExperimentRunner::set_job_timeout(double seconds) {
  STC_REQUIRE(seconds >= 0.0);
  job_timeout_ = seconds;
  timeout_set_ = true;
}

void ExperimentRunner::set_heartbeat(double seconds) {
  STC_REQUIRE(seconds >= 0.0);
  heartbeat_ = seconds;
  heartbeat_set_ = true;
}

Result<std::string> ExperimentRunner::journal_path() const {
  Result<std::string> dir = env::bench_dir();
  if (!dir.is_ok()) return dir.status().with_context("journal");
  const std::string suffix =
      shard_count_ > 1 ? shard_suffix(shard_index_, shard_count_) : "";
  return dir.value() + "/BENCH_" + bench_name_ + suffix + ".journal";
}

Result<std::size_t> ExperimentRunner::threads_from_env() {
  return env::threads();
}

void ExperimentRunner::run(std::size_t threads) {
  STC_REQUIRE(!ran_);
  ran_ = true;
  if (!retries_set_) max_retries_ = env::job_retries().value();
  if (!timeout_set_) job_timeout_ = env::job_timeout().value();
  if (!heartbeat_set_) heartbeat_ = env::heartbeat().value();
  if (!journaling_set_) journaling_ = shardable_;
  resume_ = env::resume().value();
  install_interrupt_handlers();
  if (shardable_) {
    const std::string spec = env::shard().value();
    if (!spec.empty()) {
      // Worker process: claim the modulo slice the parent assigned, then run
      // it like any local grid. The spec was validated by env::shard().
      const std::size_t slash = spec.find('/');
      shard_index_ =
          static_cast<std::uint32_t>(std::strtoul(spec.c_str(), nullptr, 10));
      shard_count_ = static_cast<std::uint32_t>(
          std::strtoul(spec.c_str() + slash + 1, nullptr, 10));
    } else if (const std::uint32_t shards = env::shards().value();
               shards > 1 && !jobs_.empty()) {
      run_sharded(shards);
      return;
    }
  }
  run_local(threads);
}

void ExperimentRunner::run_local(std::size_t threads) {
  if (threads == 0) threads = threads_from_env().value();
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();
  done_.assign(jobs_.size(), 0);
  if (journaling_) prepare_journal();

  std::vector<std::string> job_names;
  job_names.reserve(jobs_.size());
  for (const Job& job : jobs_) job_names.push_back(job.name);
  std::unique_ptr<DeadlineWatchdog> watchdog;
  if (job_timeout_ > 0.0) {
    watchdog = std::make_unique<DeadlineWatchdog>(job_timeout_, job_names);
  }

  // One grid cell: run the job, capturing any thrown error into the
  // outcome instead of letting it reach the pool. Failed attempts retry up
  // to max_retries_ times (transient faults); deadline overruns do not — a
  // deterministic simulation that overran once will overrun again.
  const auto run_job = [this, &watchdog](std::size_t i) {
    JobFailure& outcome = outcomes_[i];
    if (done_[i]) return;  // replayed from the journal; outcome is final
    outcome.index = i;
    outcome.name = jobs_[i].name;
    if (shard_count_ > 1 && i % shard_count_ != shard_index_) {
      outcome.status = JobStatus::kOk;  // another worker's cell
      return;
    }
    const std::uint32_t max_attempts = 1 + max_retries_;
    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome.attempts = attempt;
      if (watchdog) watchdog->begin(i, attempt);
      const auto start = Clock::now();
      Status error;
      ExperimentResult result;
      try {
        if (Status s = fault::fail_if("job.exec", "executing job"); !s.is_ok()) {
          throw StatusError(s);
        }
        result = jobs_[i].fn();
      } catch (const StatusError& e) {
        error = e.status();
      } catch (const std::exception& e) {
        error = internal_error(std::string("unhandled exception: ") + e.what());
      } catch (...) {
        error = internal_error("unhandled non-exception throw");
      }
      const double elapsed = seconds_since(start);
      if (watchdog) watchdog->end(i);
      if (error.is_ok() && job_timeout_ > 0.0 && elapsed > job_timeout_) {
        outcome.status = JobStatus::kTimedOut;
        outcome.error =
            timeout_error("ran past the " + json_number(job_timeout_) +
                          "s deadline")
                .with_context("job '" + jobs_[i].name + "'");
        break;  // deadline overruns are not transient: no retry
      }
      if (error.is_ok()) {
        results_[i] = std::move(result);
        outcome.status = JobStatus::kOk;
        outcome.error = Status::ok();
        break;
      }
      outcome.status = JobStatus::kFailed;
      outcome.error = error.with_context("job '" + jobs_[i].name + "'");
    }
    // The cell's fate is sealed — make it durable before the pool moves on.
    journal_append_outcome(i);
  };

  const auto start = Clock::now();
  {
    ThreadPool pool(threads);
    threads_used_ = pool.thread_count() == 0 ? 1 : pool.thread_count();
    pool.parallel_for(jobs_.size(), run_job);
  }
  watchdog.reset();
  record_phase("replay", seconds_since(start));
  collect_failures();
}

void ExperimentRunner::collect_failures() {
  failures_.clear();
  for (const JobFailure& outcome : outcomes_) {
    if (outcome.status != JobStatus::kOk) failures_.push_back(outcome);
  }
  for (const JobFailure& failure : failures_) {
    log::line("[" + bench_name_ + "] job '" + failure.name + "' " +
              to_string(failure.status) + " after " +
              std::to_string(failure.attempts) +
              " attempt(s): " + failure.error.to_string());
  }
}

namespace {

// Reconstructs a Status from the "<code>: <message>" text an outcome
// serialized into a fragment, so the merged report's failures section is
// byte-identical to the unsharded run's.
Status parse_status(const std::string& text) {
  const std::size_t sep = text.find(": ");
  const std::string code_name =
      sep == std::string::npos ? std::string() : text.substr(0, sep);
  const std::string message =
      sep == std::string::npos ? text : text.substr(sep + 2);
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kCorruptData,
        ErrorCode::kIoError, ErrorCode::kNotFound, ErrorCode::kTimeout,
        ErrorCode::kFaultInjected, ErrorCode::kInternal}) {
    if (code_name == to_string(code)) return Status(code, message);
  }
  return internal_error(text);
}

}  // namespace

// Opens this process's journal, first replaying it under STC_RESUME=1. A
// record that fails to absorb (the grid changed under the journal) drops it
// and everything after; the journal is then truncated to what was kept, so
// appends continue from a clean prefix. Journal trouble never fails the run
// — it degrades to journaling-off with a logged warning.
void ExperimentRunner::prepare_journal() {
  Result<std::string> path = journal_path();
  if (!path.is_ok()) {
    log::line("journal: " + path.status().to_string() +
              "; journaling disabled");
    journaling_ = false;
    return;
  }
  std::uint64_t keep = 0;
  if (resume_) {
    Result<JournalScan> scan = read_journal(path.value());
    if (!scan.is_ok()) {
      log::line("journal: " + scan.status().to_string() + "; starting fresh");
    } else {
      std::size_t absorbed = 0;
      for (const std::string& payload : scan.value().payloads) {
        if (Status s = absorb_journal_payload(payload); !s.is_ok()) {
          log::line("journal: " + s.to_string() +
                    "; dropping it and later records");
          break;
        }
        ++absorbed;
      }
      if (absorbed > 0) keep = scan.value().record_ends[absorbed - 1];
      if (scan.value().torn) {
        log::line("journal '" + path.value() + "': torn tail (" +
                  scan.value().tear_reason + ") truncated");
      }
    }
  }
  if (Status s = journal_.open(path.value(), keep); !s.is_ok()) {
    log::line("journal: " + s.to_string() + "; journaling disabled");
    journaling_ = false;
  }
}

void ExperimentRunner::journal_append_outcome(std::size_t index) {
  if (!journaling_ || !journal_.is_open()) return;
  const JobFailure& outcome = outcomes_[index];
  JsonWriter w;
  w.begin_object();
  w.key("index").value(static_cast<std::uint64_t>(index));
  w.key("name").value(jobs_[index].name);
  w.key("status").value(to_string(outcome.status));
  w.key("attempts").value(std::uint64_t{outcome.attempts});
  if (outcome.status != JobStatus::kOk) {
    w.key("error").value(outcome.error.to_string());
  }
  w.key("metrics").begin_object();
  for (const auto& m : results_[index].metrics()) {
    w.key(m.first).value(m.second);
  }
  w.end_object();
  w.key("counters").begin_object();
  for (const auto& c : results_[index].counters().items()) {
    w.key(c.first).value(c.second);
  }
  w.end_object();
  w.end_object();
  if (Status s = journal_.append(w.str()); !s.is_ok()) {
    // A lost record only means resume re-runs this cell; the run goes on.
    log::line("journal: " + s.to_string());
  }
}

// One journal record back into the grid. Failed/timed_out records are as
// final as ok ones: the original run exhausted the retry budget, and the
// resumed report must serialize byte-identically to the uninterrupted one.
Status ExperimentRunner::absorb_journal_payload(const std::string& payload) {
  const auto corrupt = [](const std::string& what) {
    return corrupt_data_error("journal record: " + what);
  };
  std::string parse_error;
  const JsonValue root = parse_json(payload, &parse_error);
  if (!parse_error.empty()) return corrupt(parse_error);
  if (!root.is_object()) return corrupt("not a JSON object");
  const JsonValue* index = root.find("index");
  if (index == nullptr || !index->is_number()) return corrupt("missing index");
  const auto i = static_cast<std::size_t>(index->number);
  if (i >= jobs_.size()) return corrupt("index out of range");
  if (shard_count_ > 1 && i % shard_count_ != shard_index_) {
    return corrupt("record outside this shard's slice");
  }
  const JsonValue* name = root.find("name");
  if (name == nullptr || !name->is_string() || name->text != jobs_[i].name) {
    return corrupt("job " + std::to_string(i) + " name mismatch");
  }
  const JsonValue* status = root.find("status");
  if (status == nullptr || !status->is_string()) {
    return corrupt("missing status");
  }
  JobFailure& outcome = outcomes_[i];
  outcome.index = i;
  outcome.name = jobs_[i].name;
  const JsonValue* tries = root.find("attempts");
  outcome.attempts = tries != nullptr && tries->is_number()
                         ? static_cast<std::uint32_t>(tries->number)
                         : 1;
  if (status->text == "ok") {
    outcome.status = JobStatus::kOk;
    outcome.error = Status::ok();
  } else if (status->text == "failed" || status->text == "timed_out") {
    outcome.status = status->text == "timed_out" ? JobStatus::kTimedOut
                                                 : JobStatus::kFailed;
    const JsonValue* error = root.find("error");
    outcome.error =
        parse_status(error != nullptr ? error->text : "missing error text");
  } else {
    return corrupt("unknown status '" + status->text + "'");
  }
  ExperimentResult result;
  if (const JsonValue* metrics = root.find("metrics"); metrics != nullptr) {
    // json_number() round-trips exactly (see absorb_fragment).
    for (const auto& m : metrics->members) {
      result.metric(m.first, m.second.number);
    }
  }
  if (const JsonValue* counters = root.find("counters"); counters != nullptr) {
    for (const auto& c : counters->members) {
      result.counters().add(c.first,
                            std::strtoull(c.second.text.c_str(), nullptr, 10));
    }
  }
  results_[i] = std::move(result);
  done_[i] = 1;
  return Status::ok();
}

// The final report is durable — resume state has nothing left to add.
// Removes this run's journal and any worker journals.
void ExperimentRunner::remove_resume_state(const std::string& dir) const {
  journal_.close();
  std::remove((dir + "/BENCH_" + bench_name_ + ".journal").c_str());
  remove_matching_files(dir, "BENCH_" + bench_name_ + ".shard", ".journal");
}

// Fragment and temp-file hygiene (journals are resume state and survive
// unless explicitly dropped). Stale fragments from a previous crashed run
// must never be absorbed as fresh results.
void ExperimentRunner::cleanup_shard_scratch(const std::string& dir,
                                             bool keep_journals) const {
  const std::string prefix = "BENCH_" + bench_name_ + ".shard";
  remove_matching_files(dir, prefix, ".json");
  remove_matching_files(dir, prefix, ".json.tmp");
  std::remove((dir + "/BENCH_" + bench_name_ + ".json.tmp").c_str());
  if (!keep_journals) remove_matching_files(dir, prefix, ".journal");
}

Result<int> ExperimentRunner::spawn_shard(std::uint32_t shard,
                                          std::uint32_t count, bool resume,
                                          bool strip_crash) const {
  if (Status s = fault::fail_if("shard.spawn", "spawning shard worker");
      !s.is_ok()) {
    return s;
  }
  // STC_SHARD_EXE lets tests point the worker protocol at a stand-in binary;
  // production parents re-execute themselves.
  const char* exe_override = std::getenv("STC_SHARD_EXE");
  const std::string exe =
      exe_override != nullptr ? exe_override : "/proc/self/exe";
  const std::string spec =
      std::to_string(shard) + "/" + std::to_string(count);
  // Build the child's environment and argv before forking: the parent's
  // environment minus any inherited STC_SHARD/STC_RESUME, plus this worker's
  // slice. A respawn after a worker death resumes from the worker's journal
  // and sheds STC_CRASH — a worker that crashed once must not crash at the
  // same point forever.
  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "STC_SHARD=", 10) == 0) continue;
    if (std::strncmp(*e, "STC_RESUME=", 11) == 0) continue;
    if (strip_crash && std::strncmp(*e, "STC_CRASH=", 10) == 0) continue;
    env_storage.emplace_back(*e);
  }
  env_storage.push_back("STC_SHARD=" + spec);
  if (resume) env_storage.push_back("STC_RESUME=1");
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (std::string& entry : env_storage) envp.push_back(entry.data());
  envp.push_back(nullptr);
  std::string arg0 = exe;
  std::string arg1 = "--shard";
  std::string arg2 = spec;
  char* argv[] = {arg0.data(), arg1.data(), arg2.data(), nullptr};
  const pid_t pid = ::fork();
  if (pid < 0) {
    return io_error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Worker: its table printing duplicates the parent's, so stdout goes to
    // /dev/null — the report fragment is the real output channel.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);
  }
  return static_cast<int>(pid);
}

Status ExperimentRunner::absorb_fragment(std::uint32_t shard,
                                         std::uint32_t count,
                                         const std::string& path) {
  const auto corrupt = [&](const std::string& what) {
    return corrupt_data_error("shard fragment '" + path + "': " + what);
  };
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) {
    return bytes.status().with_context("shard fragment");
  }
  const std::string doc(bytes.value().begin(), bytes.value().end());
  std::string parse_error;
  const JsonValue root = parse_json(doc, &parse_error);
  if (!parse_error.empty()) return corrupt(parse_error);
  if (!root.is_object()) return corrupt("not a JSON object");
  const JsonValue* bench = root.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->text != bench_name_) {
    return corrupt("fragment is for a different bench");
  }
  const JsonValue* schema = root.find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number != 3.0) {
    return corrupt("unsupported schema version");
  }
  const JsonValue* results = root.find("results");
  if (results == nullptr || !results->is_array() ||
      results->items.size() != jobs_.size()) {
    return corrupt("grid shape mismatch");
  }
  // Attempt counts live in the fragment's failures section, keyed by index.
  std::vector<std::uint32_t> attempts(jobs_.size(), 1);
  if (const JsonValue* failures = root.find("failures");
      failures != nullptr && failures->is_array()) {
    for (const JsonValue& f : failures->items) {
      const JsonValue* index = f.find("index");
      const JsonValue* tries = f.find("attempts");
      if (index == nullptr || tries == nullptr) continue;
      const auto i = static_cast<std::size_t>(index->number);
      if (i < attempts.size()) {
        attempts[i] = static_cast<std::uint32_t>(tries->number);
      }
    }
  }
  for (std::size_t j = shard; j < jobs_.size();
       j += static_cast<std::size_t>(count)) {
    const JsonValue& cell = results->items[j];
    const JsonValue* cell_name = cell.find("name");
    if (cell_name == nullptr || cell_name->text != jobs_[j].name) {
      return corrupt("job " + std::to_string(j) + " name mismatch");
    }
    ExperimentResult result;
    if (const JsonValue* metrics = cell.find("metrics"); metrics != nullptr) {
      // json_number() emits shortest-round-trip doubles, so parsing with
      // strtod and re-serializing reproduces the fragment's bytes exactly.
      for (const auto& m : metrics->members) {
        result.metric(m.first, m.second.number);
      }
    }
    if (const JsonValue* counters = cell.find("counters");
        counters != nullptr) {
      for (const auto& c : counters->members) {
        result.counters().add(
            c.first, std::strtoull(c.second.text.c_str(), nullptr, 10));
      }
    }
    JobFailure& outcome = outcomes_[j];
    outcome.index = j;
    outcome.name = jobs_[j].name;
    if (const JsonValue* status = cell.find("status"); status != nullptr) {
      outcome.status = status->text == "timed_out" ? JobStatus::kTimedOut
                                                   : JobStatus::kFailed;
      outcome.attempts = attempts[j];
      const JsonValue* error = cell.find("error");
      outcome.error = parse_status(error != nullptr ? error->text
                                                    : "missing error text");
    } else {
      outcome.status = JobStatus::kOk;
      outcome.attempts = 1;
      outcome.error = Status::ok();
    }
    results_[j] = std::move(result);
  }
  std::remove(path.c_str());
  return Status::ok();
}

void ExperimentRunner::run_sharded(std::uint32_t shards) {
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();
  threads_used_ = shards;

  Result<std::string> dir = env::bench_dir();
  STC_CHECK_MSG(dir.is_ok(), "STC_BENCH_DIR not validated before use");
  const auto fragment_path = [&](std::uint32_t s) {
    return dir.value() + "/BENCH_" + bench_name_ + shard_suffix(s, shards) +
           ".json";
  };
  const auto worker_journal_path = [&](std::uint32_t s) {
    return dir.value() + "/BENCH_" + bench_name_ + shard_suffix(s, shards) +
           ".journal";
  };

  // Stale fragments and temp files from an earlier crashed run are cleaned,
  // never trusted; worker journals survive only when this run resumes from
  // them.
  cleanup_shard_scratch(dir.value(), /*keep_journals=*/resume_);

  const auto start = Clock::now();
  const std::uint32_t max_attempts = 1 + max_retries_;

  struct Worker {
    pid_t pid = -1;
    int pid_slot = -1;
    std::uint32_t attempts = 0;
    bool running = false;
    bool merged = false;
    bool hang_killed = false;
    std::int64_t journal_size = -1;
    Clock::time_point last_progress;
    Status last_error;
  };
  std::vector<Worker> workers(shards);

  // Spawns (or respawns) worker s, consuming one attempt per try; immediate
  // spawn failures burn through the budget here. First attempts inherit the
  // parent's resume mode; a respawn after a worker death always resumes from
  // the journal the dead worker left behind, and sheds STC_CRASH so a
  // crashed-once worker is not doomed to crash at the same point forever.
  const auto spawn = [&](std::uint32_t s) {
    Worker& w = workers[s];
    while (w.attempts < max_attempts) {
      ++w.attempts;
      const bool resume_child = resume_ || w.attempts > 1;
      Result<int> child =
          spawn_shard(s, shards, resume_child, /*strip_crash=*/w.attempts > 1);
      if (child.is_ok()) {
        w.pid = static_cast<pid_t>(child.value());
        w.pid_slot = register_shard_pid(w.pid);
        w.running = true;
        w.hang_killed = false;
        w.journal_size = file_size_or(worker_journal_path(s), -1);
        w.last_progress = Clock::now();
        return;
      }
      w.last_error = child.status();
    }
  };

  // One worker left the running set: judge its exit, absorb its fragment,
  // respawn within the budget on any failure.
  const auto reap = [&](std::uint32_t s, int wstatus, bool reaped_ok) {
    Worker& w = workers[s];
    unregister_shard_pid(w.pid_slot);
    w.pid_slot = -1;
    w.running = false;
    Status err;
    if (w.hang_killed) {
      err = timeout_error("shard worker made no journal progress within its " +
                          json_number(heartbeat_) + "s heartbeat deadline");
    } else if (!reaped_ok || !WIFEXITED(wstatus)) {
      err = io_error("shard worker died abnormally");
    } else if (const int code = WEXITSTATUS(wstatus); code != 0 && code != 3) {
      // 0 = clean, 3 = partial success (per-job failures are in the
      // fragment); anything else means the worker never got that far.
      err = io_error("shard worker exited with code " + std::to_string(code));
    } else {
      err = absorb_fragment(s, shards, fragment_path(s));
    }
    if (err.is_ok()) {
      w.merged = true;
      return;
    }
    w.last_error = err;
    if (w.attempts < max_attempts) spawn(s);
  };

  for (std::uint32_t s = 0; s < shards; ++s) spawn(s);

  // Supervision loop: reap exits without blocking; the worker journal's
  // growth is the liveness signal (every completed cell fsyncs a record), so
  // a journal that stalls past the heartbeat deadline marks a wedged worker
  // — SIGKILL it and reassign its slice. Heartbeat 0 supervises by exit
  // status alone.
  while (true) {
    bool any_running = false;
    bool any_event = false;
    for (std::uint32_t s = 0; s < shards; ++s) {
      Worker& w = workers[s];
      if (!w.running) continue;
      any_running = true;
      int wstatus = 0;
      pid_t r;
      do {
        r = ::waitpid(w.pid, &wstatus, WNOHANG);
      } while (r < 0 && errno == EINTR);
      if (r != 0) {
        any_event = true;
        reap(s, wstatus, r == w.pid);
        continue;
      }
      if (heartbeat_ > 0.0) {
        const std::int64_t size = file_size_or(worker_journal_path(s), -1);
        if (size != w.journal_size) {
          w.journal_size = size;
          w.last_progress = Clock::now();
        } else if (seconds_since(w.last_progress) > heartbeat_) {
          // Wedged. SIGKILL cannot be blocked, so the blocking reap here is
          // prompt.
          w.hang_killed = true;
          ::kill(w.pid, SIGKILL);
          do {
            r = ::waitpid(w.pid, &wstatus, 0);
          } while (r < 0 && errno == EINTR);
          any_event = true;
          reap(s, wstatus, r == w.pid);
        }
      }
    }
    if (!any_running) break;
    if (!any_event) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  for (std::uint32_t s = 0; s < shards; ++s) {
    if (workers[s].merged) continue;
    const Status error = workers[s].last_error.with_context(
        "shard " + std::to_string(s) + "/" + std::to_string(shards));
    for (std::size_t j = s; j < jobs_.size();
         j += static_cast<std::size_t>(shards)) {
      outcomes_[j].index = j;
      outcomes_[j].name = jobs_[j].name;
      outcomes_[j].status = JobStatus::kFailed;
      outcomes_[j].attempts = workers[s].attempts;
      outcomes_[j].error = error.with_context("job '" + jobs_[j].name + "'");
    }
  }
  // Fragments are absorbed-and-deleted on success; whatever is left — a
  // corrupt fragment from an exhausted shard, temp litter from a killed
  // worker — goes now. Worker journals stay: they are the resume state a
  // future STC_RESUME=1 run (or write_report on success) retires.
  cleanup_shard_scratch(dir.value(), /*keep_journals=*/true);
  record_phase("replay", seconds_since(start));
  collect_failures();
}

Status ExperimentRunner::merge_fragments(
    const std::vector<std::string>& fragment_paths) {
  STC_REQUIRE(!ran_ && !fragment_paths.empty());
  ran_ = true;
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();
  const auto count = static_cast<std::uint32_t>(fragment_paths.size());
  threads_used_ = count;
  Status first_error;
  for (std::uint32_t s = 0; s < count; ++s) {
    Status err = absorb_fragment(s, count, fragment_paths[s]);
    if (err.is_ok()) continue;
    if (first_error.is_ok()) first_error = err;
    const Status error = err.with_context("shard " + std::to_string(s) + "/" +
                                          std::to_string(count));
    for (std::size_t j = s; j < jobs_.size();
         j += static_cast<std::size_t>(count)) {
      outcomes_[j].index = j;
      outcomes_[j].name = jobs_[j].name;
      outcomes_[j].status = JobStatus::kFailed;
      outcomes_[j].attempts = 1;
      outcomes_[j].error = error.with_context("job '" + jobs_[j].name + "'");
    }
  }
  collect_failures();
  return first_error;
}

const ExperimentResult& ExperimentRunner::result(std::size_t index) const {
  STC_REQUIRE(ran_ && index < results_.size());
  return results_[index];
}

JobStatus ExperimentRunner::job_status(std::size_t index) const {
  STC_REQUIRE(ran_ && index < outcomes_.size());
  return outcomes_[index].status;
}

const std::vector<JobFailure>& ExperimentRunner::failures() const {
  STC_REQUIRE(ran_);
  return failures_;
}

bool ExperimentRunner::all_ok() const {
  STC_REQUIRE(ran_);
  return failures_.empty();
}

int ExperimentRunner::exit_code() const { return all_ok() ? 0 : 3; }

double ExperimentRunner::metric_or(std::size_t index, std::string_view name,
                                   double fallback) const {
  STC_REQUIRE(ran_ && index < results_.size());
  if (outcomes_[index].status != JobStatus::kOk) return fallback;
  const Result<double> value = results_[index].try_metric(name);
  return value.is_ok() ? value.value() : fallback;
}

double ExperimentRunner::metric_or(std::size_t index,
                                   std::string_view name) const {
  return metric_or(index, name, std::nan(""));
}

namespace {

void write_results(JsonWriter& w,
                   const std::vector<ExperimentResult>& results,
                   const std::vector<JobFailure>& outcomes,
                   const std::vector<std::string>& names,
                   const std::vector<std::vector<std::pair<std::string,
                                                           std::string>>>&
                       params) {
  w.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("name").value(names[i]);
    if (!params[i].empty()) {
      w.key("params").begin_object();
      for (const auto& p : params[i]) w.key(p.first).value(p.second);
      w.end_object();
    }
    // Successful cells keep the clean-run shape (no "status" key), so a
    // degraded sweep's good cells stay byte-identical to a clean sweep's.
    if (outcomes[i].status != JobStatus::kOk) {
      w.key("status").value(to_string(outcomes[i].status));
      w.key("error").value(outcomes[i].error.to_string());
    }
    w.key("metrics").begin_object();
    for (const auto& m : results[i].metrics()) w.key(m.first).value(m.second);
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& c : results[i].counters().items()) {
      w.key(c.first).value(c.second);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string ExperimentRunner::results_json() const {
  STC_REQUIRE(ran_);
  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  JsonWriter w;
  write_results(w, results_, outcomes_, names, params);
  return w.str();
}

std::string ExperimentRunner::report_json() const {
  STC_REQUIRE(ran_);
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_name_);
  w.key("schema_version").value(std::uint64_t{3});
  w.key("threads").value(static_cast<std::uint64_t>(threads_used_));

  w.key("env").begin_object();
  for (const MetaEntry& m : meta_) {
    w.key(m.key);
    switch (m.kind) {
      case MetaEntry::Kind::kString:
        w.value(m.s);
        break;
      case MetaEntry::Kind::kDouble:
        w.value(m.d);
        break;
      case MetaEntry::Kind::kUint:
        w.value(m.u);
        break;
    }
  }
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& p : phases_) w.key(p.first).value(p.second);
  w.end_object();

  // Replay throughput from the jobs' standard counters.
  CounterSet totals;
  for (const ExperimentResult& r : results_) totals.merge(r.counters());
  double replay_seconds = 0.0;
  for (const auto& p : phases_) {
    if (p.first == "replay") replay_seconds = p.second;
  }
  // Schema v3: the throughput block is mandatory and always carries
  // events_per_sec (trace events — the "blocks" counter — replayed per
  // second of the replay phase; 0.0 when the phase was not timed).
  const auto rate = [&](std::uint64_t total) {
    return replay_seconds > 0.0 ? static_cast<double>(total) / replay_seconds
                                : 0.0;
  };
  w.key("throughput").begin_object();
  w.key("events_per_sec").value(rate(totals.get("blocks")));
  w.key("blocks_per_second").value(rate(totals.get("blocks")));
  w.key("instructions_per_second").value(rate(totals.get("instructions")));
  w.end_object();

  w.key("totals").begin_object();
  for (const auto& c : totals.items()) w.key(c.first).value(c.second);
  w.end_object();

  w.key("failures").begin_array();
  for (const JobFailure& f : failures_) {
    w.begin_object();
    w.key("job").value(f.name);
    w.key("index").value(static_cast<std::uint64_t>(f.index));
    w.key("status").value(to_string(f.status));
    w.key("attempts").value(std::uint64_t{f.attempts});
    w.key("error").value(f.error.to_string());
    w.end_object();
  }
  w.end_array();

  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  w.key("results");
  write_results(w, results_, outcomes_, names, params);
  w.end_object();
  return w.str();
}

Result<std::string> ExperimentRunner::write_report() const {
  Result<std::string> dir = env::bench_dir();
  if (!dir.is_ok()) return dir.status().with_context("bench report");
  // A shard worker writes a fragment the parent will merge and delete; only
  // the parent (or an unsharded run) writes the canonical report name.
  const std::string suffix =
      shard_count_ > 1 ? shard_suffix(shard_index_, shard_count_) : "";
  const std::string path =
      dir.value() + "/BENCH_" + bench_name_ + suffix + ".json";
  const std::string doc = report_json() + "\n";
  if (Status s =
          write_file_atomic(path, doc.data(), doc.size(), "report.write");
      !s.is_ok()) {
    return s.with_context("bench report '" + path + "'");
  }
  // The canonical report is durable: the journal(s) that would rebuild it
  // are spent. A worker keeps its journal — only the parent's merge makes
  // the worker's cells durable in the canonical report.
  if (shard_count_ == 1) remove_resume_state(dir.value());
  return path;
}

}  // namespace stc
