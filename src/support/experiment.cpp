#include "support/experiment.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "support/check.h"
#include "support/json.h"
#include "support/thread_pool.h"

namespace stc {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

void ExperimentResult::metric(std::string_view name, double value) {
  for (auto& m : metrics_) {
    if (m.first == name) {
      m.second = value;
      return;
    }
  }
  metrics_.emplace_back(std::string(name), value);
}

double ExperimentResult::metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return m.second;
  }
  STC_REQUIRE(false && "unknown metric");
  return 0.0;
}

bool ExperimentResult::has_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return true;
  }
  return false;
}

ExperimentRunner::ExperimentRunner(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void ExperimentRunner::meta(std::string_view key, std::string_view value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kString,
                   std::string(value), 0.0, 0});
}

void ExperimentRunner::meta(std::string_view key, double value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kDouble, {}, value, 0});
}

void ExperimentRunner::meta(std::string_view key, std::uint64_t value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kUint, {}, 0.0, value});
}

void ExperimentRunner::record_phase(std::string_view phase, double seconds) {
  for (auto& p : phases_) {
    if (p.first == phase) {
      p.second += seconds;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), seconds);
}

void ExperimentRunner::time_phase(std::string_view phase,
                                  const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  record_phase(phase, seconds_since(start));
}

std::size_t ExperimentRunner::add(
    std::string job_name,
    std::vector<std::pair<std::string, std::string>> params,
    std::function<ExperimentResult()> fn) {
  STC_REQUIRE(!ran_);
  jobs_.push_back({std::move(job_name), std::move(params), std::move(fn)});
  return jobs_.size() - 1;
}

std::size_t ExperimentRunner::threads_from_env() {
  if (const char* env = std::getenv("STC_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 0;  // ThreadPool picks hardware concurrency
}

void ExperimentRunner::run(std::size_t threads) {
  STC_REQUIRE(!ran_);
  ran_ = true;
  if (threads == 0) threads = threads_from_env();
  results_.assign(jobs_.size(), ExperimentResult{});

  const auto start = std::chrono::steady_clock::now();
  ThreadPool pool(threads);
  threads_used_ = pool.thread_count() == 0 ? 1 : pool.thread_count();
  pool.parallel_for(jobs_.size(),
                    [this](std::size_t i) { results_[i] = jobs_[i].fn(); });
  record_phase("replay", seconds_since(start));
}

const ExperimentResult& ExperimentRunner::result(std::size_t index) const {
  STC_REQUIRE(ran_ && index < results_.size());
  return results_[index];
}

namespace {

void write_results(JsonWriter& w,
                   const std::vector<ExperimentResult>& results,
                   const std::vector<std::string>& names,
                   const std::vector<std::vector<std::pair<std::string,
                                                           std::string>>>&
                       params) {
  w.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("name").value(names[i]);
    if (!params[i].empty()) {
      w.key("params").begin_object();
      for (const auto& p : params[i]) w.key(p.first).value(p.second);
      w.end_object();
    }
    w.key("metrics").begin_object();
    for (const auto& m : results[i].metrics()) w.key(m.first).value(m.second);
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& c : results[i].counters().items()) {
      w.key(c.first).value(c.second);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string ExperimentRunner::results_json() const {
  STC_REQUIRE(ran_);
  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  JsonWriter w;
  write_results(w, results_, names, params);
  return w.str();
}

std::string ExperimentRunner::report_json() const {
  STC_REQUIRE(ran_);
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_name_);
  w.key("schema_version").value(std::uint64_t{1});
  w.key("threads").value(static_cast<std::uint64_t>(threads_used_));

  w.key("env").begin_object();
  for (const MetaEntry& m : meta_) {
    w.key(m.key);
    switch (m.kind) {
      case MetaEntry::Kind::kString:
        w.value(m.s);
        break;
      case MetaEntry::Kind::kDouble:
        w.value(m.d);
        break;
      case MetaEntry::Kind::kUint:
        w.value(m.u);
        break;
    }
  }
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& p : phases_) w.key(p.first).value(p.second);
  w.end_object();

  // Replay throughput from the jobs' standard counters.
  CounterSet totals;
  for (const ExperimentResult& r : results_) totals.merge(r.counters());
  double replay_seconds = 0.0;
  for (const auto& p : phases_) {
    if (p.first == "replay") replay_seconds = p.second;
  }
  w.key("throughput").begin_object();
  if (replay_seconds > 0.0) {
    w.key("blocks_per_second")
        .value(static_cast<double>(totals.get("blocks")) / replay_seconds);
    w.key("instructions_per_second")
        .value(static_cast<double>(totals.get("instructions")) /
               replay_seconds);
  }
  w.end_object();

  w.key("totals").begin_object();
  for (const auto& c : totals.items()) w.key(c.first).value(c.second);
  w.end_object();

  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  w.key("results");
  write_results(w, results_, names, params);
  w.end_object();
  return w.str();
}

std::string ExperimentRunner::write_report() const {
  std::string dir = ".";
  if (const char* env = std::getenv("STC_BENCH_DIR")) dir = env;
  const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
  const std::string doc = report_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open bench report %s for writing\n",
                 path.c_str());
    STC_REQUIRE(f != nullptr && "cannot open bench report for writing");
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return path;
}

}  // namespace stc
