#include "support/experiment.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

#include "support/check.h"
#include "support/env.h"
#include "support/faultpoint.h"
#include "support/io.h"
#include "support/json.h"
#include "support/json_read.h"
#include "support/thread_pool.h"

extern char** environ;

namespace stc {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Warns (once per job) on stderr when a running job overruns its deadline.
// Jobs are cooperative — the watchdog cannot kill a stuck simulation, but it
// makes a wedged sweep diagnosable instead of silent; the overrun is then
// recorded as timed_out when the attempt finally returns.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(double timeout_seconds, const std::vector<std::string>& names)
      : timeout_(timeout_seconds),
        names_(names),
        start_(names.size(), Clock::time_point::min()),
        warned_(names.size(), false),
        thread_([this] { loop(); }) {}

  ~DeadlineWatchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void begin(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    start_[index] = Clock::now();
    warned_[index] = false;
  }

  void end(std::size_t index) {
    std::lock_guard<std::mutex> lock(mu_);
    start_[index] = Clock::time_point::min();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!done_) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      const Clock::time_point now = Clock::now();
      for (std::size_t i = 0; i < start_.size(); ++i) {
        if (start_[i] == Clock::time_point::min() || warned_[i]) continue;
        const double elapsed =
            std::chrono::duration<double>(now - start_[i]).count();
        if (elapsed > timeout_) {
          warned_[i] = true;
          std::fprintf(stderr,
                       "watchdog: job '%s' is %.1fs past its %.3gs deadline\n",
                       names_[i].c_str(), elapsed - timeout_, timeout_);
        }
      }
    }
  }

  const double timeout_;
  const std::vector<std::string>& names_;
  std::vector<Clock::time_point> start_;
  std::vector<bool> warned_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread thread_;
};

}  // namespace

void ExperimentResult::metric(std::string_view name, double value) {
  for (auto& m : metrics_) {
    if (m.first == name) {
      m.second = value;
      return;
    }
  }
  metrics_.emplace_back(std::string(name), value);
}

Result<double> ExperimentResult::try_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return m.second;
  }
  std::string have;
  for (const auto& m : metrics_) {
    if (!have.empty()) have += ", ";
    have += m.first;
  }
  return not_found_error("metric '" + std::string(name) + "' not recorded (" +
                         (have.empty() ? "no metrics" : "have: " + have) + ")");
}

double ExperimentResult::metric(std::string_view name) const {
  return try_metric(name).value();  // throws StatusError when absent
}

bool ExperimentResult::has_metric(std::string_view name) const {
  for (const auto& m : metrics_) {
    if (m.first == name) return true;
  }
  return false;
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kFailed:
      return "failed";
    case JobStatus::kTimedOut:
      return "timed_out";
  }
  return "unknown";
}

ExperimentRunner::ExperimentRunner(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void ExperimentRunner::meta(std::string_view key, std::string_view value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kString,
                   std::string(value), 0.0, 0});
}

void ExperimentRunner::meta(std::string_view key, double value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kDouble, {}, value, 0});
}

void ExperimentRunner::meta(std::string_view key, std::uint64_t value) {
  meta_.push_back({std::string(key), MetaEntry::Kind::kUint, {}, 0.0, value});
}

void ExperimentRunner::record_phase(std::string_view phase, double seconds) {
  for (auto& p : phases_) {
    if (p.first == phase) {
      p.second += seconds;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), seconds);
}

void ExperimentRunner::time_phase(std::string_view phase,
                                  const std::function<void()>& fn) {
  const auto start = Clock::now();
  fn();
  record_phase(phase, seconds_since(start));
}

std::size_t ExperimentRunner::add(
    std::string job_name,
    std::vector<std::pair<std::string, std::string>> params,
    std::function<ExperimentResult()> fn) {
  STC_REQUIRE(!ran_);
  jobs_.push_back({std::move(job_name), std::move(params), std::move(fn)});
  return jobs_.size() - 1;
}

void ExperimentRunner::set_max_retries(std::uint32_t retries) {
  max_retries_ = retries;
  retries_set_ = true;
}

void ExperimentRunner::set_job_timeout(double seconds) {
  STC_REQUIRE(seconds >= 0.0);
  job_timeout_ = seconds;
  timeout_set_ = true;
}

Result<std::size_t> ExperimentRunner::threads_from_env() {
  return env::threads();
}

void ExperimentRunner::run(std::size_t threads) {
  STC_REQUIRE(!ran_);
  ran_ = true;
  if (!retries_set_) max_retries_ = env::job_retries().value();
  if (!timeout_set_) job_timeout_ = env::job_timeout().value();
  if (shardable_) {
    const std::string spec = env::shard().value();
    if (!spec.empty()) {
      // Worker process: claim the modulo slice the parent assigned, then run
      // it like any local grid. The spec was validated by env::shard().
      const std::size_t slash = spec.find('/');
      shard_index_ =
          static_cast<std::uint32_t>(std::strtoul(spec.c_str(), nullptr, 10));
      shard_count_ = static_cast<std::uint32_t>(
          std::strtoul(spec.c_str() + slash + 1, nullptr, 10));
    } else if (const std::uint32_t shards = env::shards().value();
               shards > 1 && !jobs_.empty()) {
      run_sharded(shards);
      return;
    }
  }
  run_local(threads);
}

void ExperimentRunner::run_local(std::size_t threads) {
  if (threads == 0) threads = threads_from_env().value();
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();

  std::vector<std::string> job_names;
  job_names.reserve(jobs_.size());
  for (const Job& job : jobs_) job_names.push_back(job.name);
  std::unique_ptr<DeadlineWatchdog> watchdog;
  if (job_timeout_ > 0.0) {
    watchdog = std::make_unique<DeadlineWatchdog>(job_timeout_, job_names);
  }

  // One grid cell: run the job, capturing any thrown error into the
  // outcome instead of letting it reach the pool. Failed attempts retry up
  // to max_retries_ times (transient faults); deadline overruns do not — a
  // deterministic simulation that overran once will overrun again.
  const auto run_job = [this, &watchdog](std::size_t i) {
    JobFailure& outcome = outcomes_[i];
    outcome.index = i;
    outcome.name = jobs_[i].name;
    if (shard_count_ > 1 && i % shard_count_ != shard_index_) {
      outcome.status = JobStatus::kOk;  // another worker's cell
      return;
    }
    const std::uint32_t max_attempts = 1 + max_retries_;
    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome.attempts = attempt;
      if (watchdog) watchdog->begin(i);
      const auto start = Clock::now();
      Status error;
      ExperimentResult result;
      try {
        if (Status s = fault::fail_if("job.exec", "executing job"); !s.is_ok()) {
          throw StatusError(s);
        }
        result = jobs_[i].fn();
      } catch (const StatusError& e) {
        error = e.status();
      } catch (const std::exception& e) {
        error = internal_error(std::string("unhandled exception: ") + e.what());
      } catch (...) {
        error = internal_error("unhandled non-exception throw");
      }
      const double elapsed = seconds_since(start);
      if (watchdog) watchdog->end(i);
      if (error.is_ok() && job_timeout_ > 0.0 && elapsed > job_timeout_) {
        outcome.status = JobStatus::kTimedOut;
        outcome.error =
            timeout_error("ran past the " + json_number(job_timeout_) +
                          "s deadline")
                .with_context("job '" + jobs_[i].name + "'");
        return;  // deadline overruns are not transient: no retry
      }
      if (error.is_ok()) {
        results_[i] = std::move(result);
        outcome.status = JobStatus::kOk;
        outcome.error = Status::ok();
        return;
      }
      outcome.status = JobStatus::kFailed;
      outcome.error = error.with_context("job '" + jobs_[i].name + "'");
    }
  };

  const auto start = Clock::now();
  {
    ThreadPool pool(threads);
    threads_used_ = pool.thread_count() == 0 ? 1 : pool.thread_count();
    pool.parallel_for(jobs_.size(), run_job);
  }
  watchdog.reset();
  record_phase("replay", seconds_since(start));
  collect_failures();
}

void ExperimentRunner::collect_failures() {
  failures_.clear();
  for (const JobFailure& outcome : outcomes_) {
    if (outcome.status != JobStatus::kOk) failures_.push_back(outcome);
  }
  for (const JobFailure& failure : failures_) {
    std::fprintf(stderr, "[%s] job '%s' %s after %u attempt(s): %s\n",
                 bench_name_.c_str(), failure.name.c_str(),
                 to_string(failure.status), failure.attempts,
                 failure.error.to_string().c_str());
  }
}

namespace {

// Reconstructs a Status from the "<code>: <message>" text an outcome
// serialized into a fragment, so the merged report's failures section is
// byte-identical to the unsharded run's.
Status parse_status(const std::string& text) {
  const std::size_t sep = text.find(": ");
  const std::string code_name =
      sep == std::string::npos ? std::string() : text.substr(0, sep);
  const std::string message =
      sep == std::string::npos ? text : text.substr(sep + 2);
  for (const ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kCorruptData,
        ErrorCode::kIoError, ErrorCode::kNotFound, ErrorCode::kTimeout,
        ErrorCode::kFaultInjected, ErrorCode::kInternal}) {
    if (code_name == to_string(code)) return Status(code, message);
  }
  return internal_error(text);
}

std::string shard_suffix(std::uint32_t shard, std::uint32_t count) {
  return ".shard" + std::to_string(shard) + "of" + std::to_string(count);
}

}  // namespace

Result<int> ExperimentRunner::spawn_shard(std::uint32_t shard,
                                          std::uint32_t count) const {
  if (Status s = fault::fail_if("shard.spawn", "spawning shard worker");
      !s.is_ok()) {
    return s;
  }
  // STC_SHARD_EXE lets tests point the worker protocol at a stand-in binary;
  // production parents re-execute themselves.
  const char* exe_override = std::getenv("STC_SHARD_EXE");
  const std::string exe =
      exe_override != nullptr ? exe_override : "/proc/self/exe";
  const std::string spec =
      std::to_string(shard) + "/" + std::to_string(count);
  // Build the child's environment and argv before forking: the parent's
  // environment minus any inherited STC_SHARD, plus this worker's slice.
  std::vector<std::string> env_storage;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "STC_SHARD=", 10) == 0) continue;
    env_storage.emplace_back(*e);
  }
  env_storage.push_back("STC_SHARD=" + spec);
  std::vector<char*> envp;
  envp.reserve(env_storage.size() + 1);
  for (std::string& entry : env_storage) envp.push_back(entry.data());
  envp.push_back(nullptr);
  std::string arg0 = exe;
  std::string arg1 = "--shard";
  std::string arg2 = spec;
  char* argv[] = {arg0.data(), arg1.data(), arg2.data(), nullptr};
  const pid_t pid = ::fork();
  if (pid < 0) {
    return io_error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Worker: its table printing duplicates the parent's, so stdout goes to
    // /dev/null — the report fragment is the real output channel.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::close(devnull);
    }
    ::execve(exe.c_str(), argv, envp.data());
    _exit(127);
  }
  return static_cast<int>(pid);
}

Status ExperimentRunner::absorb_fragment(std::uint32_t shard,
                                         std::uint32_t count,
                                         const std::string& path) {
  const auto corrupt = [&](const std::string& what) {
    return corrupt_data_error("shard fragment '" + path + "': " + what);
  };
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) {
    return bytes.status().with_context("shard fragment");
  }
  const std::string doc(bytes.value().begin(), bytes.value().end());
  std::string parse_error;
  const JsonValue root = parse_json(doc, &parse_error);
  if (!parse_error.empty()) return corrupt(parse_error);
  if (!root.is_object()) return corrupt("not a JSON object");
  const JsonValue* bench = root.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->text != bench_name_) {
    return corrupt("fragment is for a different bench");
  }
  const JsonValue* schema = root.find("schema_version");
  if (schema == nullptr || !schema->is_number() || schema->number != 3.0) {
    return corrupt("unsupported schema version");
  }
  const JsonValue* results = root.find("results");
  if (results == nullptr || !results->is_array() ||
      results->items.size() != jobs_.size()) {
    return corrupt("grid shape mismatch");
  }
  // Attempt counts live in the fragment's failures section, keyed by index.
  std::vector<std::uint32_t> attempts(jobs_.size(), 1);
  if (const JsonValue* failures = root.find("failures");
      failures != nullptr && failures->is_array()) {
    for (const JsonValue& f : failures->items) {
      const JsonValue* index = f.find("index");
      const JsonValue* tries = f.find("attempts");
      if (index == nullptr || tries == nullptr) continue;
      const auto i = static_cast<std::size_t>(index->number);
      if (i < attempts.size()) {
        attempts[i] = static_cast<std::uint32_t>(tries->number);
      }
    }
  }
  for (std::size_t j = shard; j < jobs_.size();
       j += static_cast<std::size_t>(count)) {
    const JsonValue& cell = results->items[j];
    const JsonValue* cell_name = cell.find("name");
    if (cell_name == nullptr || cell_name->text != jobs_[j].name) {
      return corrupt("job " + std::to_string(j) + " name mismatch");
    }
    ExperimentResult result;
    if (const JsonValue* metrics = cell.find("metrics"); metrics != nullptr) {
      // json_number() emits shortest-round-trip doubles, so parsing with
      // strtod and re-serializing reproduces the fragment's bytes exactly.
      for (const auto& m : metrics->members) {
        result.metric(m.first, m.second.number);
      }
    }
    if (const JsonValue* counters = cell.find("counters");
        counters != nullptr) {
      for (const auto& c : counters->members) {
        result.counters().add(
            c.first, std::strtoull(c.second.text.c_str(), nullptr, 10));
      }
    }
    JobFailure& outcome = outcomes_[j];
    outcome.index = j;
    outcome.name = jobs_[j].name;
    if (const JsonValue* status = cell.find("status"); status != nullptr) {
      outcome.status = status->text == "timed_out" ? JobStatus::kTimedOut
                                                   : JobStatus::kFailed;
      outcome.attempts = attempts[j];
      const JsonValue* error = cell.find("error");
      outcome.error = parse_status(error != nullptr ? error->text
                                                    : "missing error text");
    } else {
      outcome.status = JobStatus::kOk;
      outcome.attempts = 1;
      outcome.error = Status::ok();
    }
    results_[j] = std::move(result);
  }
  std::remove(path.c_str());
  return Status::ok();
}

void ExperimentRunner::run_sharded(std::uint32_t shards) {
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();
  threads_used_ = shards;

  Result<std::string> dir = env::bench_dir();
  STC_CHECK_MSG(dir.is_ok(), "STC_BENCH_DIR not validated before use");
  const auto fragment_path = [&](std::uint32_t s) {
    return dir.value() + "/BENCH_" + bench_name_ + shard_suffix(s, shards) +
           ".json";
  };

  const auto start = Clock::now();
  const std::uint32_t max_attempts = 1 + max_retries_;
  std::vector<std::uint32_t> pending;
  for (std::uint32_t s = 0; s < shards; ++s) pending.push_back(s);
  std::vector<std::uint32_t> attempts(shards, 0);
  std::vector<Status> last_error(shards, Status::ok());
  std::vector<bool> merged(shards, false);

  while (!pending.empty()) {
    // One round: spawn every pending worker in parallel, then reap and merge
    // as each exits. A shard whose spawn, exit, or fragment is bad retries
    // in the next round, up to the same budget jobs get.
    std::vector<std::pair<std::uint32_t, int>> running;
    std::vector<std::uint32_t> retry;
    for (const std::uint32_t s : pending) {
      ++attempts[s];
      Result<int> child = spawn_shard(s, shards);
      if (!child.is_ok()) {
        last_error[s] = child.status();
        if (attempts[s] < max_attempts) retry.push_back(s);
        continue;
      }
      running.emplace_back(s, child.value());
    }
    for (const auto& [s, pid] : running) {
      int wstatus = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(pid, &wstatus, 0);
      } while (reaped < 0 && errno == EINTR);
      Status err;
      if (reaped != pid || !WIFEXITED(wstatus)) {
        err = io_error("shard worker died abnormally");
      } else if (const int code = WEXITSTATUS(wstatus);
                 code != 0 && code != 3) {
        // 0 = clean, 3 = partial success (per-job failures are in the
        // fragment); anything else means the worker never got that far.
        err = io_error("shard worker exited with code " +
                       std::to_string(code));
      } else {
        err = absorb_fragment(s, shards, fragment_path(s));
      }
      if (!err.is_ok()) {
        last_error[s] = err;
        if (attempts[s] < max_attempts) retry.push_back(s);
      } else {
        merged[s] = true;
      }
    }
    pending = std::move(retry);
  }

  for (std::uint32_t s = 0; s < shards; ++s) {
    if (merged[s]) continue;
    const Status error = last_error[s].with_context(
        "shard " + std::to_string(s) + "/" + std::to_string(shards));
    for (std::size_t j = s; j < jobs_.size();
         j += static_cast<std::size_t>(shards)) {
      outcomes_[j].index = j;
      outcomes_[j].name = jobs_[j].name;
      outcomes_[j].status = JobStatus::kFailed;
      outcomes_[j].attempts = attempts[s];
      outcomes_[j].error = error.with_context("job '" + jobs_[j].name + "'");
    }
  }
  record_phase("replay", seconds_since(start));
  collect_failures();
}

Status ExperimentRunner::merge_fragments(
    const std::vector<std::string>& fragment_paths) {
  STC_REQUIRE(!ran_ && !fragment_paths.empty());
  ran_ = true;
  results_.assign(jobs_.size(), ExperimentResult{});
  outcomes_.assign(jobs_.size(), JobFailure{});
  failures_.clear();
  const auto count = static_cast<std::uint32_t>(fragment_paths.size());
  threads_used_ = count;
  Status first_error;
  for (std::uint32_t s = 0; s < count; ++s) {
    Status err = absorb_fragment(s, count, fragment_paths[s]);
    if (err.is_ok()) continue;
    if (first_error.is_ok()) first_error = err;
    const Status error = err.with_context("shard " + std::to_string(s) + "/" +
                                          std::to_string(count));
    for (std::size_t j = s; j < jobs_.size();
         j += static_cast<std::size_t>(count)) {
      outcomes_[j].index = j;
      outcomes_[j].name = jobs_[j].name;
      outcomes_[j].status = JobStatus::kFailed;
      outcomes_[j].attempts = 1;
      outcomes_[j].error = error.with_context("job '" + jobs_[j].name + "'");
    }
  }
  collect_failures();
  return first_error;
}

const ExperimentResult& ExperimentRunner::result(std::size_t index) const {
  STC_REQUIRE(ran_ && index < results_.size());
  return results_[index];
}

JobStatus ExperimentRunner::job_status(std::size_t index) const {
  STC_REQUIRE(ran_ && index < outcomes_.size());
  return outcomes_[index].status;
}

const std::vector<JobFailure>& ExperimentRunner::failures() const {
  STC_REQUIRE(ran_);
  return failures_;
}

bool ExperimentRunner::all_ok() const {
  STC_REQUIRE(ran_);
  return failures_.empty();
}

int ExperimentRunner::exit_code() const { return all_ok() ? 0 : 3; }

double ExperimentRunner::metric_or(std::size_t index, std::string_view name,
                                   double fallback) const {
  STC_REQUIRE(ran_ && index < results_.size());
  if (outcomes_[index].status != JobStatus::kOk) return fallback;
  const Result<double> value = results_[index].try_metric(name);
  return value.is_ok() ? value.value() : fallback;
}

double ExperimentRunner::metric_or(std::size_t index,
                                   std::string_view name) const {
  return metric_or(index, name, std::nan(""));
}

namespace {

void write_results(JsonWriter& w,
                   const std::vector<ExperimentResult>& results,
                   const std::vector<JobFailure>& outcomes,
                   const std::vector<std::string>& names,
                   const std::vector<std::vector<std::pair<std::string,
                                                           std::string>>>&
                       params) {
  w.begin_array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    w.begin_object();
    w.key("name").value(names[i]);
    if (!params[i].empty()) {
      w.key("params").begin_object();
      for (const auto& p : params[i]) w.key(p.first).value(p.second);
      w.end_object();
    }
    // Successful cells keep the clean-run shape (no "status" key), so a
    // degraded sweep's good cells stay byte-identical to a clean sweep's.
    if (outcomes[i].status != JobStatus::kOk) {
      w.key("status").value(to_string(outcomes[i].status));
      w.key("error").value(outcomes[i].error.to_string());
    }
    w.key("metrics").begin_object();
    for (const auto& m : results[i].metrics()) w.key(m.first).value(m.second);
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& c : results[i].counters().items()) {
      w.key(c.first).value(c.second);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string ExperimentRunner::results_json() const {
  STC_REQUIRE(ran_);
  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  JsonWriter w;
  write_results(w, results_, outcomes_, names, params);
  return w.str();
}

std::string ExperimentRunner::report_json() const {
  STC_REQUIRE(ran_);
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(bench_name_);
  w.key("schema_version").value(std::uint64_t{3});
  w.key("threads").value(static_cast<std::uint64_t>(threads_used_));

  w.key("env").begin_object();
  for (const MetaEntry& m : meta_) {
    w.key(m.key);
    switch (m.kind) {
      case MetaEntry::Kind::kString:
        w.value(m.s);
        break;
      case MetaEntry::Kind::kDouble:
        w.value(m.d);
        break;
      case MetaEntry::Kind::kUint:
        w.value(m.u);
        break;
    }
  }
  w.end_object();

  w.key("phases").begin_object();
  for (const auto& p : phases_) w.key(p.first).value(p.second);
  w.end_object();

  // Replay throughput from the jobs' standard counters.
  CounterSet totals;
  for (const ExperimentResult& r : results_) totals.merge(r.counters());
  double replay_seconds = 0.0;
  for (const auto& p : phases_) {
    if (p.first == "replay") replay_seconds = p.second;
  }
  // Schema v3: the throughput block is mandatory and always carries
  // events_per_sec (trace events — the "blocks" counter — replayed per
  // second of the replay phase; 0.0 when the phase was not timed).
  const auto rate = [&](std::uint64_t total) {
    return replay_seconds > 0.0 ? static_cast<double>(total) / replay_seconds
                                : 0.0;
  };
  w.key("throughput").begin_object();
  w.key("events_per_sec").value(rate(totals.get("blocks")));
  w.key("blocks_per_second").value(rate(totals.get("blocks")));
  w.key("instructions_per_second").value(rate(totals.get("instructions")));
  w.end_object();

  w.key("totals").begin_object();
  for (const auto& c : totals.items()) w.key(c.first).value(c.second);
  w.end_object();

  w.key("failures").begin_array();
  for (const JobFailure& f : failures_) {
    w.begin_object();
    w.key("job").value(f.name);
    w.key("index").value(static_cast<std::uint64_t>(f.index));
    w.key("status").value(to_string(f.status));
    w.key("attempts").value(std::uint64_t{f.attempts});
    w.key("error").value(f.error.to_string());
    w.end_object();
  }
  w.end_array();

  std::vector<std::string> names;
  std::vector<std::vector<std::pair<std::string, std::string>>> params;
  for (const Job& job : jobs_) {
    names.push_back(job.name);
    params.push_back(job.params);
  }
  w.key("results");
  write_results(w, results_, outcomes_, names, params);
  w.end_object();
  return w.str();
}

Result<std::string> ExperimentRunner::write_report() const {
  Result<std::string> dir = env::bench_dir();
  if (!dir.is_ok()) return dir.status().with_context("bench report");
  // A shard worker writes a fragment the parent will merge and delete; only
  // the parent (or an unsharded run) writes the canonical report name.
  const std::string suffix =
      shard_count_ > 1 ? shard_suffix(shard_index_, shard_count_) : "";
  const std::string path =
      dir.value() + "/BENCH_" + bench_name_ + suffix + ".json";
  const std::string doc = report_json() + "\n";
  if (Status s =
          write_file_atomic(path, doc.data(), doc.size(), "report.write");
      !s.is_ok()) {
    return s.with_context("bench report '" + path + "'");
  }
  return path;
}

}  // namespace stc
