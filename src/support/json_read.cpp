#include "support/json_read.h"

#include <cctype>
#include <cstdlib>

namespace stc {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& m : members) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

JsonValue JsonParser::parse() {
  JsonValue v = value();
  skip_ws();
  if (error_.empty() && pos_ != doc_.size()) {
    set_error("trailing characters");
  }
  if (!error_.empty()) return JsonValue{};
  return v;
}

void JsonParser::set_error(const std::string& what) {
  if (error_.empty()) {
    error_ = what + " at offset " + std::to_string(pos_);
  }
}

void JsonParser::skip_ws() {
  while (pos_ < doc_.size() &&
         std::isspace(static_cast<unsigned char>(doc_[pos_]))) {
    ++pos_;
  }
}

bool JsonParser::consume(char c) {
  skip_ws();
  if (pos_ < doc_.size() && doc_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonParser::literal(std::string_view word) {
  if (doc_.substr(pos_, word.size()) == word) {
    pos_ += word.size();
    return true;
  }
  return false;
}

JsonValue JsonParser::value() {
  skip_ws();
  JsonValue v;
  if (pos_ >= doc_.size()) {
    set_error("unexpected end of document");
    return v;
  }
  const char c = doc_[pos_];
  if (c == '{') return object();
  if (c == '[') return array();
  if (c == '"') {
    v.kind = JsonValue::Kind::kString;
    v.text = string();
    return v;
  }
  if (literal("null")) return v;
  if (literal("true")) {
    v.kind = JsonValue::Kind::kBool;
    v.boolean = true;
    return v;
  }
  if (literal("false")) {
    v.kind = JsonValue::Kind::kBool;
    return v;
  }
  return number();
}

JsonValue JsonParser::number() {
  const std::size_t start = pos_;
  while (pos_ < doc_.size() &&
         (std::isdigit(static_cast<unsigned char>(doc_[pos_])) ||
          doc_[pos_] == '-' || doc_[pos_] == '+' || doc_[pos_] == '.' ||
          doc_[pos_] == 'e' || doc_[pos_] == 'E')) {
    ++pos_;
  }
  JsonValue v;
  if (pos_ == start) {
    set_error("expected value");
    return v;
  }
  v.kind = JsonValue::Kind::kNumber;
  v.text = std::string(doc_.substr(start, pos_ - start));
  v.number = std::strtod(v.text.c_str(), nullptr);
  return v;
}

std::string JsonParser::string() {
  std::string out;
  ++pos_;  // opening quote
  while (pos_ < doc_.size() && doc_[pos_] != '"') {
    char c = doc_[pos_++];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (pos_ >= doc_.size()) break;
    const char esc = doc_[pos_++];
    switch (esc) {
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        // The writer only emits \u00XX for control bytes.
        if (pos_ + 4 <= doc_.size()) {
          const std::string hex(doc_.substr(pos_, 4));
          out.push_back(
              static_cast<char>(std::strtol(hex.c_str(), nullptr, 16)));
          pos_ += 4;
        }
        break;
      }
      default: out.push_back(esc); break;
    }
  }
  if (pos_ >= doc_.size()) {
    set_error("unterminated string");
  } else {
    ++pos_;  // closing quote
  }
  return out;
}

JsonValue JsonParser::array() {
  JsonValue v;
  v.kind = JsonValue::Kind::kArray;
  ++pos_;  // '['
  skip_ws();
  if (consume(']')) return v;
  while (true) {
    v.items.push_back(value());
    if (!error_.empty()) return v;
    if (consume(']')) return v;
    if (!consume(',')) {
      set_error("expected ',' or ']'");
      return v;
    }
  }
}

JsonValue JsonParser::object() {
  JsonValue v;
  v.kind = JsonValue::Kind::kObject;
  ++pos_;  // '{'
  skip_ws();
  if (consume('}')) return v;
  while (true) {
    skip_ws();
    if (pos_ >= doc_.size() || doc_[pos_] != '"') {
      set_error("expected object key");
      return v;
    }
    std::string key = string();
    if (!consume(':')) {
      set_error("expected ':'");
      return v;
    }
    v.members.emplace_back(std::move(key), value());
    if (!error_.empty()) return v;
    if (consume('}')) return v;
    if (!consume(',')) {
      set_error("expected ',' or '}'");
      return v;
    }
  }
}

JsonValue parse_json(std::string_view doc, std::string* error) {
  JsonParser parser(doc);
  JsonValue v = parser.parse();
  if (error != nullptr) *error = parser.error();
  return v;
}

}  // namespace stc
