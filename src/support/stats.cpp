#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace stc {

void CounterSet::add(std::string_view name, std::uint64_t delta) {
  for (auto& item : items_) {
    if (item.first == name) {
      item.second += delta;
      return;
    }
  }
  items_.emplace_back(std::string(name), delta);
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& item : other.items_) add(item.first, item.second);
}

std::uint64_t CounterSet::get(std::string_view name) const {
  for (const auto& item : items_) {
    if (item.first == name) return item.second;
  }
  return 0;
}

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

BoundedHistogram::BoundedHistogram(std::vector<std::uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  STC_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void BoundedHistogram::add(std::uint64_t value, std::uint64_t weight) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += weight;
  total_ += weight;
}

double BoundedHistogram::fraction_below(std::uint64_t bound) const {
  if (total_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (bounds_[i] > bound) break;
    below += counts_[i];
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

double percentile(std::vector<double> values, double p) {
  STC_REQUIRE(!values.empty());
  STC_REQUIRE(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace stc
