// Structured, recoverable errors for data-dependent failure paths.
//
// The contract (see VERIFY.md "Error handling"): STC_CHECK/STC_REQUIRE stay
// reserved for programmer errors — conditions that can only arise from a bug
// inside this codebase. Anything the *data* can cause — a corrupt trace file,
// a malformed environment knob, a failed write — returns a Status/Result<T>
// instead, so callers can degrade gracefully (skip a cell, report a failure,
// exit with a message) rather than abort the whole run.
//
// Context chains build outside-in: the site that detects the failure states
// the fact ("crc mismatch"), each caller on the way out prepends what it was
// doing ("chunk 3", "trace 'runs/test.trc'"), giving
//   corrupt-data: trace 'runs/test.trc': chunk 3: crc mismatch
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "support/check.h"

namespace stc {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,  // malformed input the caller supplied (env knobs, CLI)
  kCorruptData,      // well-formed request, rotten bytes (trace files)
  kIoError,          // the OS said no (open/write/rename)
  kNotFound,         // a named thing that should exist does not
  kTimeout,          // a deadline elapsed
  kFaultInjected,    // a faultpoint fired (tests / STC_FAULT)
  kInternal,         // escaped exception or other unclassified failure
};

const char* to_string(ErrorCode code);

class Status {
 public:
  Status() = default;  // ok
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    STC_REQUIRE(code != ErrorCode::kOk);
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  // The context-chained message (no code prefix); empty for ok.
  const std::string& message() const { return message_; }

  // Prepends one hop of context: status.with_context("chunk 3").
  Status with_context(std::string_view context) const {
    if (is_ok()) return *this;
    return Status(code_, std::string(context) + ": " + message_);
  }

  // "<code>: <message>", e.g. "corrupt-data: chunk 3: crc mismatch".
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Exception wrapper for crossing layers that cannot return Result (job
// lambdas inside the experiment runner, deep call chains). The runner
// catches it and records the Status in the failure report.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

// A value or a Status — the return type of fallible data-path functions.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    STC_REQUIRE_MSG(!status_.is_ok(), "Result built from an ok Status");
  }

  bool is_ok() const { return status_.is_ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    require_ok();
    return value_;
  }
  T& value() & {
    require_ok();
    return value_;
  }
  T&& take() && {
    require_ok();
    return std::move(value_);
  }

  T value_or(T fallback) const& { return is_ok() ? value_ : fallback; }

  Result<T> with_context(std::string_view context) && {
    if (is_ok()) return std::move(*this);
    return Result<T>(status_.with_context(context));
  }

 private:
  void require_ok() const {
    if (!status_.is_ok()) throw StatusError(status_);
  }

  T value_{};
  Status status_;
};

// Convenience constructors mirroring absl: invalid_argument_error("...").
Status invalid_argument_error(std::string message);
Status corrupt_data_error(std::string message);
Status io_error(std::string message);
Status not_found_error(std::string message);
Status timeout_error(std::string message);
Status fault_injected_error(std::string message);
Status internal_error(std::string message);

}  // namespace stc
