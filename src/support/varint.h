// LEB128-style variable-length integer coding.
//
// Used by the trace recorder to keep large dynamic basic-block traces compact
// in memory: consecutive block ids are delta-encoded and most deltas fit in
// one or two bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "support/check.h"

namespace stc {

// Appends an unsigned varint to `out`.
void put_uvarint(std::vector<std::uint8_t>& out, std::uint64_t value);

// Appends a zig-zag encoded signed varint to `out`.
void put_svarint(std::vector<std::uint8_t>& out, std::int64_t value);

// Reads an unsigned varint starting at `pos`; advances `pos`.
// Truncation/overflow is a precondition violation (aborts) — use only on
// buffers this process encoded. For untrusted bytes use try_get_uvarint.
std::uint64_t get_uvarint(const std::uint8_t* data, std::size_t size,
                          std::size_t& pos);

// Reads a zig-zag encoded signed varint starting at `pos`; advances `pos`.
std::int64_t get_svarint(const std::uint8_t* data, std::size_t size,
                         std::size_t& pos);

// Non-aborting decode for untrusted input (trace files). Returns false —
// leaving `pos` and `out` unspecified — on a varint that is truncated, runs
// past 10 bytes, or carries bits beyond the 64th.
bool try_get_uvarint(const std::uint8_t* data, std::size_t size,
                     std::size_t& pos, std::uint64_t& out);
bool try_get_svarint(const std::uint8_t* data, std::size_t size,
                     std::size_t& pos, std::int64_t& out);

inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace stc
