// One locked sink for human-facing diagnostics.
//
// Bench grids print their tables on stdout while the runner's watchdog and
// failure reporting write warnings from worker threads. Raw fprintf calls
// from multiple threads interleave mid-line; everything that writes a
// diagnostic line goes through log::line instead, which emits the whole line
// (newline included) as one write under a process-wide lock.
#pragma once

#include <string_view>

namespace stc::log {

// Writes `text` to stderr as one atomic unit, appending a trailing newline
// when `text` does not end with one, and flushes. Thread-safe.
void line(std::string_view text);

}  // namespace stc::log
