// Streaming and batch statistics helpers shared by the analysis passes.
#pragma once

#include <cstdint>
#include <vector>

namespace stc {

// Welford-style streaming mean/variance over double observations.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram over fixed bucket boundaries. Bucket i holds values in
// [bounds[i-1], bounds[i]) with an implicit final overflow bucket.
class BoundedHistogram {
 public:
  explicit BoundedHistogram(std::vector<std::uint64_t> upper_bounds);

  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  // Fraction of observations strictly below `bound` (bound must be one of the
  // configured upper bounds).
  double fraction_below(std::uint64_t bound) const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t total_ = 0;
};

// Exact percentile over a materialized sample (sorts a copy).
double percentile(std::vector<double> values, double p);

}  // namespace stc
