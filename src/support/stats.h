// Streaming and batch statistics helpers shared by the analysis passes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stc {

// Insertion-ordered named-counter registry. The simulators export their raw
// event counts (probes, misses, trace-cache fills, ...) through this type so
// the experiment runner can aggregate them and emit them in bench reports
// without knowing each result struct. Counter sets are small (tens of
// entries); lookup is a linear scan.
class CounterSet {
 public:
  // Adds `delta` to `name`, creating the counter at the end on first use.
  void add(std::string_view name, std::uint64_t delta);

  // Adds every counter of `other` into this set.
  void merge(const CounterSet& other);

  // Current value, or 0 for a counter never added.
  std::uint64_t get(std::string_view name) const;

  bool empty() const { return items_.empty(); }
  const std::vector<std::pair<std::string, std::uint64_t>>& items() const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, std::uint64_t>> items_;
};

// Welford-style streaming mean/variance over double observations.
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram over fixed bucket boundaries. Bucket i holds values in
// [bounds[i-1], bounds[i]) with an implicit final overflow bucket.
class BoundedHistogram {
 public:
  explicit BoundedHistogram(std::vector<std::uint64_t> upper_bounds);

  void add(std::uint64_t value, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  // Fraction of observations strictly below `bound` (bound must be one of the
  // configured upper bounds).
  double fraction_below(std::uint64_t bound) const;
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::uint64_t total_ = 0;
};

// Exact percentile over a materialized sample (sorts a copy).
double percentile(std::vector<double> values, double p);

}  // namespace stc
