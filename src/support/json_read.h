// Minimal recursive-descent JSON reader.
//
// Just enough to read back the documents support/json.h writes (BENCH_*.json
// reports and shard fragments): objects keep key insertion order so
// structural comparisons — and byte-deterministic re-serialization via
// json_number()'s round-trip guarantee — work against the exact order the
// writer emits. Not a general validator: numbers parse via strtod, strings
// handle the writer's escape set, and parse errors surface as a null value
// plus an error string. Grew out of the test-only parser in
// tests/testing/json_parse.h, promoted here when the sharded experiment
// runner needed to merge worker report fragments in production code.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stc {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;  // string value, or the raw token for numbers
  std::vector<JsonValue> items;                            // arrays
  std::vector<std::pair<std::string, JsonValue>> members;  // objects

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view doc) : doc_(doc) {}

  // Parses the whole document; on failure returns null and sets error().
  JsonValue parse();

  const std::string& error() const { return error_; }

 private:
  void set_error(const std::string& what);
  void skip_ws();
  bool consume(char c);
  bool literal(std::string_view word);
  JsonValue value();
  JsonValue number();
  std::string string();
  JsonValue array();
  JsonValue object();

  std::string_view doc_;
  std::size_t pos_ = 0;
  std::string error_;
};

// One-shot convenience wrapper around JsonParser.
JsonValue parse_json(std::string_view doc, std::string* error = nullptr);

}  // namespace stc
