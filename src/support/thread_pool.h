// A small fixed-size worker pool with a parallel_for helper.
//
// The evaluation harness replays one recorded trace through many independent
// (layout x cache configuration) simulations; those replays share no mutable
// state, so they parallelize trivially. On single-core hosts the pool degrades
// to sequential execution with no thread spawn overhead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace stc {

class ThreadPool {
 public:
  // threads == 0 selects hardware_concurrency(); a value of 1 (or a
  // single-core host) runs tasks inline on the submitting thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Runs body(i) for i in [0, n), distributing iterations across workers and
  // blocking until all complete. A throwing iteration does not wedge the
  // batch: every remaining task still runs (the ExperimentRunner relies on
  // sibling jobs completing), workers survive for the next batch, and the
  // first exception (in completion order) is rethrown on the calling thread
  // after the batch drains. Inline mode (no workers) lets the exception
  // propagate immediately instead, preserving plain-loop semantics.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr batch_error_;  // first failure of the current batch
};

}  // namespace stc
