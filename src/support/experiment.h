// Declarative experiment grids with parallel execution and JSON reporting.
//
// Every bench expresses its table/ablation as a grid of named jobs; the
// runner fans the grid across a ThreadPool and aggregates results into a
// vector indexed by declaration order, so parallel execution is bit-identical
// to serial execution (DESIGN.md's "one execution, many simulations" rule
// makes the jobs read-only over shared state). Alongside whatever ASCII table
// the bench prints, the runner emits the full grid as BENCH_<name>.json:
// per-job metrics and simulator counters, per-phase wall-clock timings
// (setup / workload / replay) and replay throughput.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/stats.h"

namespace stc {

// One measured cell: named scalar metrics (the numbers a table prints) plus
// raw simulator counters. Both keep insertion order for stable serialization.
class ExperimentResult {
 public:
  void metric(std::string_view name, double value);
  double metric(std::string_view name) const;  // requires the metric to exist
  bool has_metric(std::string_view name) const;

  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
  CounterSet counters_;
};

class ExperimentRunner {
 public:
  // `bench_name` names the report file: BENCH_<bench_name>.json.
  explicit ExperimentRunner(std::string bench_name);

  const std::string& name() const { return bench_name_; }

  // Report metadata (environment knobs, configuration), emitted under "env"
  // in insertion order.
  void meta(std::string_view key, std::string_view value);
  void meta(std::string_view key, double value);
  void meta(std::string_view key, std::uint64_t value);

  // Wall-clock phase accounting. record_phase stores externally measured
  // seconds; time_phase measures `fn`. Repeated names accumulate.
  void record_phase(std::string_view phase, double seconds);
  void time_phase(std::string_view phase, const std::function<void()>& fn);

  // Declares a job and returns its index. `params` are the cell's grid
  // coordinates (e.g. {"layout","ops"},{"cache","2048"}); they are emitted
  // with the result. Jobs must be pure functions of shared read-only state.
  std::size_t add(std::string job_name,
                  std::vector<std::pair<std::string, std::string>> params,
                  std::function<ExperimentResult()> fn);
  std::size_t add(std::string job_name, std::function<ExperimentResult()> fn) {
    return add(std::move(job_name), {}, std::move(fn));
  }

  // Executes all jobs across `threads` workers (0 = STC_THREADS, falling back
  // to hardware concurrency) and records the "replay" phase time plus
  // blocks/s and instructions/s throughput from the jobs' "blocks" /
  // "instructions" counters. May be called once per runner.
  void run(std::size_t threads = 0);

  // Thread count requested via STC_THREADS (0 when unset = hardware pick).
  static std::size_t threads_from_env();

  std::size_t num_jobs() const { return jobs_.size(); }
  const std::string& job_name(std::size_t index) const {
    return jobs_.at(index).name;
  }
  const ExperimentResult& result(std::size_t index) const;
  const std::vector<ExperimentResult>& results() const { return results_; }

  // The grid results alone — deterministic, byte-identical across thread
  // counts and runs (no timings).
  std::string results_json() const;

  // The full report: bench name, schema version, env, phase seconds,
  // throughput, and the results grid.
  std::string report_json() const;

  // Writes report_json() to <dir>/BENCH_<name>.json where <dir> is
  // STC_BENCH_DIR or the working directory; returns the path written.
  std::string write_report() const;

 private:
  struct Job {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    std::function<ExperimentResult()> fn;
  };

  struct MetaEntry {
    enum class Kind { kString, kDouble, kUint };
    std::string key;
    Kind kind;
    std::string s;
    double d = 0.0;
    std::uint64_t u = 0;
  };

  std::string bench_name_;
  std::vector<MetaEntry> meta_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<Job> jobs_;
  std::vector<ExperimentResult> results_;
  std::size_t threads_used_ = 0;
  bool ran_ = false;
};

}  // namespace stc
