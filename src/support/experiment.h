// Declarative experiment grids with parallel execution and JSON reporting.
//
// Every bench expresses its table/ablation as a grid of named jobs; the
// runner fans the grid across a ThreadPool and aggregates results into a
// vector indexed by declaration order, so parallel execution is bit-identical
// to serial execution (DESIGN.md's "one execution, many simulations" rule
// makes the jobs read-only over shared state). Alongside whatever ASCII table
// the bench prints, the runner emits the full grid as BENCH_<name>.json:
// per-job metrics and simulator counters, per-phase wall-clock timings
// (setup / workload / replay) and replay throughput.
//
// Execution is fault-tolerant: a job that throws (StatusError or any
// exception) or overruns its deadline does not abort the grid. The job is
// retried up to STC_JOB_RETRIES times, then recorded as failed/timed_out in
// the report's "failures" section; every other cell still runs and
// serializes byte-identically to a clean run. The process exit code (via
// exit_code()) reflects partial success.
//
// Grids declared shardable (bench::make_runner does this) additionally scale
// across worker *processes*: with STC_SHARDS=N > 1 the runner re-executes
// its own binary N times with "--shard i/N" (STC_SHARD in the environment),
// each worker runs the modulo-i slice of the grid and writes a report
// *fragment* (BENCH_<name>.shard<i>of<N>.json) through the same atomic
// writer, and the parent merges the fragments back into one report that is
// byte-identical — outside wall-clock timing fields — to an unsharded run.
// Worker spawn/exit/fragment failures ride the same retry machinery as job
// faults; a shard that stays broken marks only its own cells failed.
//
// Crash resilience (shardable grids): every completed cell is appended to a
// CRC-framed journal (BENCH_<name>.journal; workers use the shard-suffixed
// name) as it finishes, durable before the next cell starts. STC_RESUME=1
// replays the journal on startup and skips the recorded cells — a run killed
// at any byte boundary resumes to a final report byte-identical (modulo
// timings; see STC_ZERO_TIMINGS) to an uninterrupted one. The sharding
// parent supervises workers: STC_HEARTBEAT > 0 SIGKILLs a worker whose
// journal stops growing and reassigns its slice (the respawn resumes from
// that same journal), torn journal tails are truncated not trusted, and
// leftover fragments/temp files are cleaned on every exit path, including
// SIGINT/SIGTERM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/error.h"
#include "support/journal.h"
#include "support/stats.h"

namespace stc {

// One measured cell: named scalar metrics (the numbers a table prints) plus
// raw simulator counters. Both keep insertion order for stable serialization.
class ExperimentResult {
 public:
  void metric(std::string_view name, double value);
  // Throws StatusError (kNotFound, naming the metric) when absent — inside a
  // runner job the error lands in the failure report instead of aborting.
  double metric(std::string_view name) const;
  Result<double> try_metric(std::string_view name) const;
  bool has_metric(std::string_view name) const;

  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }

 private:
  std::vector<std::pair<std::string, double>> metrics_;
  CounterSet counters_;
};

enum class JobStatus { kOk, kFailed, kTimedOut };
const char* to_string(JobStatus status);

// One entry of the report's "failures" section. Error messages are
// deterministic (no wall-clock content), so a run with the same injected
// faults serializes byte-identically.
struct JobFailure {
  std::size_t index = 0;       // declaration-order job index
  std::string name;            // job name
  JobStatus status = JobStatus::kFailed;
  std::uint32_t attempts = 0;  // total attempts made (1 + retries used)
  Status error;                // last attempt's error, job context included
};

class ExperimentRunner {
 public:
  // `bench_name` names the report file: BENCH_<bench_name>.json.
  explicit ExperimentRunner(std::string bench_name);

  const std::string& name() const { return bench_name_; }

  // Report metadata (environment knobs, configuration), emitted under "env"
  // in insertion order.
  void meta(std::string_view key, std::string_view value);
  void meta(std::string_view key, double value);
  void meta(std::string_view key, std::uint64_t value);

  // Wall-clock phase accounting. record_phase stores externally measured
  // seconds; time_phase measures `fn`. Repeated names accumulate.
  void record_phase(std::string_view phase, double seconds);
  void time_phase(std::string_view phase, const std::function<void()>& fn);

  // Declares a job and returns its index. `params` are the cell's grid
  // coordinates (e.g. {"layout","ops"},{"cache","2048"}); they are emitted
  // with the result. Jobs must be pure functions of shared read-only state.
  std::size_t add(std::string job_name,
                  std::vector<std::pair<std::string, std::string>> params,
                  std::function<ExperimentResult()> fn);
  std::size_t add(std::string job_name, std::function<ExperimentResult()> fn) {
    return add(std::move(job_name), {}, std::move(fn));
  }

  // Fault-tolerance knobs, defaulting from STC_JOB_RETRIES/STC_JOB_TIMEOUT
  // at run() time; setters override (tests, embedding tools).
  void set_max_retries(std::uint32_t retries);
  void set_job_timeout(double seconds);  // 0 disables the deadline

  // Opts this grid into process sharding (see the header comment). Only
  // binaries whose main rebuilds the identical grid from the environment may
  // set this — the worker protocol re-executes the binary and trusts job
  // index i to mean the same cell in every process. Shardable grids journal
  // by default (the same rebuild-identical-grid property resume requires).
  void set_shardable(bool shardable) { shardable_ = shardable; }
  bool shardable() const { return shardable_; }

  // Overrides the journaling default (shardable grids journal, plain grids
  // do not). Journaled grids honor STC_RESUME=1.
  void set_journaling(bool journaling) {
    journaling_ = journaling;
    journaling_set_ = true;
  }

  // Overrides the STC_HEARTBEAT shard-supervision deadline (seconds; 0
  // disables liveness kills, workers are then only supervised by exit).
  void set_heartbeat(double seconds);

  // The journal this process appends to: <dir>/BENCH_<name>.journal, with
  // the shard suffix inside a worker. Errors only on a bad STC_BENCH_DIR.
  Result<std::string> journal_path() const;

  // Merges worker report fragments into this runner's results exactly as
  // the sharding parent does: fragment_paths[i] must be shard i of
  // fragment_paths.size(). Replaces run(); merged fragments are deleted.
  // Returns the first absorb error (those shards' cells are marked failed);
  // public for tests and offline tooling.
  Status merge_fragments(const std::vector<std::string>& fragment_paths);

  // Executes all jobs across `threads` workers (0 = STC_THREADS, falling back
  // to hardware concurrency) and records the "replay" phase time plus
  // blocks/s and instructions/s throughput from the jobs' "blocks" /
  // "instructions" counters. May be called once per runner. Per-job faults
  // are captured (see failures()); a malformed environment knob throws
  // StatusError (benches validate knobs at startup, so this is for library
  // misuse).
  void run(std::size_t threads = 0);

  // Thread count requested via STC_THREADS (0 when unset = hardware pick);
  // structured error on a malformed value.
  static Result<std::size_t> threads_from_env();

  std::size_t num_jobs() const { return jobs_.size(); }
  const std::string& job_name(std::size_t index) const {
    return jobs_.at(index).name;
  }
  const ExperimentResult& result(std::size_t index) const;
  const std::vector<ExperimentResult>& results() const { return results_; }

  // Job outcomes. failures() is ordered by job index; empty after a clean
  // run. exit_code() is 0 when clean, 3 when any job failed — bench mains
  // return it so sweeps distinguish "numbers are partial" from success.
  JobStatus job_status(std::size_t index) const;
  const std::vector<JobFailure>& failures() const;
  bool all_ok() const;
  int exit_code() const;

  // result(index).metric(name) for render paths that must survive failed
  // cells: the fallback (default quiet NaN) is returned for a failed job or
  // a missing metric instead of throwing.
  double metric_or(std::size_t index, std::string_view name) const;
  double metric_or(std::size_t index, std::string_view name,
                   double fallback) const;

  // The grid results alone — deterministic, byte-identical across thread
  // counts and runs (no timings). Failed cells carry status/error instead of
  // metrics; successful cells serialize exactly as in a clean run.
  std::string results_json() const;

  // The full report: bench name, schema version, env, phase seconds,
  // throughput, totals, failures, and the results grid.
  std::string report_json() const;

  // Writes report_json() atomically to <dir>/BENCH_<name>.json where <dir>
  // is STC_BENCH_DIR or the working directory; returns the path written or
  // a structured error (bad dir, failed write, injected "report.write.*"
  // fault) — never a torn file. A shard worker writes its fragment
  // (BENCH_<name>.shard<i>of<N>.json) instead.
  Result<std::string> write_report() const;

 private:
  void run_local(std::size_t threads);
  void run_sharded(std::uint32_t shards);
  Result<int> spawn_shard(std::uint32_t shard, std::uint32_t count,
                          bool resume, bool strip_crash) const;
  Status absorb_fragment(std::uint32_t shard, std::uint32_t count,
                         const std::string& path);
  void collect_failures();
  void prepare_journal();
  void journal_append_outcome(std::size_t index);
  Status absorb_journal_payload(const std::string& payload);
  void remove_resume_state(const std::string& dir) const;
  void cleanup_shard_scratch(const std::string& dir, bool keep_journals) const;
  struct Job {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    std::function<ExperimentResult()> fn;
  };

  struct MetaEntry {
    enum class Kind { kString, kDouble, kUint };
    std::string key;
    Kind kind;
    std::string s;
    double d = 0.0;
    std::uint64_t u = 0;
  };

  std::string bench_name_;
  std::vector<MetaEntry> meta_;
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<Job> jobs_;
  std::vector<ExperimentResult> results_;
  std::vector<JobFailure> outcomes_;  // per job; status kOk when clean
  std::vector<JobFailure> failures_;  // the non-ok subset, index order
  std::uint32_t max_retries_ = 0;
  bool retries_set_ = false;
  double job_timeout_ = 0.0;
  bool timeout_set_ = false;
  double heartbeat_ = 0.0;
  bool heartbeat_set_ = false;
  std::size_t threads_used_ = 0;
  bool ran_ = false;
  bool shardable_ = false;
  bool journaling_ = false;
  bool journaling_set_ = false;
  bool resume_ = false;
  std::uint32_t shard_index_ = 0;  // this process's slice when shard_count_>1
  std::uint32_t shard_count_ = 1;  // >1 only inside a worker process
  std::vector<char> done_;         // cells absorbed from the journal
  // write_report() (const) retires the journal after the report is durable.
  mutable JournalWriter journal_;
};

}  // namespace stc
