#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.h"

namespace stc {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exactly-representable range print without a
  // fractional part; everything else uses the shortest round-tripping %.*g.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  scopes_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  STC_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::kObject);
  STC_REQUIRE(!key_pending_);
  const bool had_items = scope_has_items_.back();
  scopes_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  scopes_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  STC_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::kArray);
  const bool had_items = scope_has_items_.back();
  scopes_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  STC_REQUIRE(!scopes_.empty() && scopes_.back() == Scope::kObject);
  STC_REQUIRE(!key_pending_);
  if (scope_has_items_.back()) out_ += ',';
  scope_has_items_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  STC_REQUIRE(scopes_.empty());
  return out_;
}

void JsonWriter::before_value() {
  if (scopes_.empty()) {
    STC_REQUIRE(out_.empty());  // exactly one top-level value
    return;
  }
  if (scopes_.back() == Scope::kObject) {
    STC_REQUIRE(key_pending_);  // object members need a key
    key_pending_ = false;
    return;
  }
  if (scope_has_items_.back()) out_ += ',';
  scope_has_items_.back() = true;
  newline_indent();
}

void JsonWriter::newline_indent() {
  out_ += '\n';
  out_.append(2 * scopes_.size(), ' ');
}

}  // namespace stc
