#include "support/faultpoint.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace stc::fault {
namespace {

struct Registry {
  std::mutex mu;
  bool env_loaded = false;
  std::map<std::string, std::uint64_t, std::less<>> hit_counts;
  // point -> absolute hit number that fires (0 = disarmed after firing).
  std::map<std::string, std::uint64_t, std::less<>> armed;
  // point -> absolute hit number that SIGKILLs the process (STC_CRASH).
  std::map<std::string, std::uint64_t, std::less<>> crash_armed;
  std::string dump_path;  // STC_FAULT_DUMP target, empty = no dump
  double rate = 0.0;      // probabilistic mode when > 0
  std::uint64_t seed = 0;
};

Registry& registry() {
  static Registry r;
  return r;
}

// SplitMix64-style avalanche over (seed, point, hit) — deterministic and
// well-distributed, so rate r fires ~r of hits regardless of point naming.
std::uint64_t mix(std::uint64_t seed, std::string_view point,
                  std::uint64_t hit) {
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (const char c : point) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0xbf58476d1ce4e5b9ull;
  }
  h ^= hit + 0x94d049bb133111ebull;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

// Parses "a.b:2,c.d" into (point, nth) pairs; first error wins.
Status parse_spec(std::string_view spec,
                  std::vector<std::pair<std::string, std::uint64_t>>* out) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      if (end == spec.size()) break;
      return invalid_argument_error("empty entry in fault spec '" +
                                    std::string(spec) + "'");
    }
    std::string_view point = entry;
    std::uint64_t nth = 1;
    if (const std::size_t colon = entry.rfind(':');
        colon != std::string_view::npos) {
      point = entry.substr(0, colon);
      const std::string count(entry.substr(colon + 1));
      char* parse_end = nullptr;
      errno = 0;
      nth = std::strtoull(count.c_str(), &parse_end, 10);
      if (count.empty() || *parse_end != '\0' || nth == 0 ||
          errno == ERANGE) {
        return invalid_argument_error("fault spec '" + std::string(entry) +
                                      "': count after ':' must be a positive "
                                      "integer");
      }
    }
    if (point.empty()) {
      return invalid_argument_error("fault spec '" + std::string(entry) +
                                    "' has an empty point name");
    }
    out->emplace_back(std::string(point), nth);
    if (end == spec.size()) break;
  }
  return Status::ok();
}

// Must hold r.mu. Parses and applies the spec; returns the first error.
Status arm_spec_locked(Registry& r, std::string_view spec) {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  if (Status s = parse_spec(spec, &entries); !s.is_ok()) return s;
  for (const auto& [point, nth] : entries) {
    r.armed[point] = r.hit_counts[point] + nth;
  }
  return Status::ok();
}

// Appends one "point hit-count" line per seen point to STC_FAULT_DUMP.
// Append mode: a sharded run has every process (parent + workers) dump into
// the same file; readers take the max count per point, which is exactly the
// per-process hit number STC_CRASH arming needs.
void dump_hits_at_exit() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.dump_path.empty()) return;
  std::FILE* f = std::fopen(r.dump_path.c_str(), "ab");
  if (f == nullptr) return;
  std::string out;
  for (const auto& [point, count] : r.hit_counts) {
    out += point;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  // One fwrite per process keeps concurrent dumps line-intact in practice.
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
}

// Must hold r.mu. Parses a crash spec and arms SIGKILL hits.
Status arm_crash_spec_locked(Registry& r, std::string_view spec) {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  if (Status s = parse_spec(spec, &entries); !s.is_ok()) return s;
  for (const auto& [point, nth] : entries) {
    r.crash_armed[point] = r.hit_counts[point] + nth;
  }
  return Status::ok();
}

// Must hold r.mu. One-time arming from the environment.
void load_env_locked(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  if (const char* spec = std::getenv("STC_FAULT")) {
    const Status s = arm_spec_locked(r, spec);
    if (!s.is_ok()) {
      // Misconfigured injection must not silently run a clean experiment.
      std::fprintf(stderr, "STC_FAULT: %s\n", s.to_string().c_str());
      std::exit(2);
    }
  }
  if (const char* spec = std::getenv("STC_CRASH")) {
    const Status s = arm_crash_spec_locked(r, spec);
    if (!s.is_ok()) {
      std::fprintf(stderr, "STC_CRASH: %s\n", s.to_string().c_str());
      std::exit(2);
    }
  }
  if (const char* dump = std::getenv("STC_FAULT_DUMP")) {
    if (*dump != '\0') {
      r.dump_path = dump;
      std::atexit(dump_hits_at_exit);
    }
  }
  if (const char* rate = std::getenv("STC_FAULT_RATE")) {
    char* end = nullptr;
    const double parsed = std::strtod(rate, &end);
    if (end == rate || *end != '\0' || parsed < 0.0 || parsed > 1.0) {
      std::fprintf(stderr,
                   "STC_FAULT_RATE=%s: expected a probability in [0,1]\n",
                   rate);
      std::exit(2);
    }
    r.rate = parsed;
  }
  if (const char* seed = std::getenv("STC_FAULT_SEED")) {
    r.seed = std::strtoull(seed, nullptr, 10);
  }
}

}  // namespace

bool fire(std::string_view point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  const std::uint64_t hit = ++r.hit_counts[std::string(point)];
  if (const auto it = r.crash_armed.find(point);
      it != r.crash_armed.end() && it->second == hit) {
    // Die the way a real crash does: no unwinding, no atexit, no flush.
    // SIGKILL cannot be caught, so anything not already durable is lost —
    // which is the property the resume path is tested against.
    ::kill(::getpid(), SIGKILL);
  }
  if (const auto it = r.armed.find(point); it != r.armed.end()) {
    if (it->second == hit) {
      r.armed.erase(it);  // one-shot: retries of the same site succeed
      return true;
    }
  }
  if (r.rate > 0.0) {
    const double u =
        static_cast<double>(mix(r.seed, point, hit) >> 11) * 0x1p-53;
    if (u < r.rate) return true;
  }
  return false;
}

Status fail_if(std::string_view point, std::string_view what) {
  if (!fire(point)) return Status::ok();
  return fault_injected_error(std::string(what) + " (fault point '" +
                              std::string(point) + "')");
}

void arm(std::string_view point, std::uint64_t nth) {
  STC_REQUIRE(nth > 0);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  r.armed[std::string(point)] = r.hit_counts[std::string(point)] + nth;
}

void arm_probabilistic(double rate, std::uint64_t seed) {
  STC_REQUIRE(rate >= 0.0 && rate <= 1.0);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  r.rate = rate;
  r.seed = seed;
}

void arm_crash(std::string_view point, std::uint64_t nth) {
  STC_REQUIRE(nth > 0);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  r.crash_armed[std::string(point)] = r.hit_counts[std::string(point)] + nth;
}

Status arm_from_spec(std::string_view spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  load_env_locked(r);
  return arm_spec_locked(r, spec);
}

Status validate_spec(std::string_view spec) {
  std::vector<std::pair<std::string, std::uint64_t>> entries;
  return parse_spec(spec, &entries);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;  // tests own the state from here on
  r.hit_counts.clear();
  r.armed.clear();
  r.crash_armed.clear();
  r.rate = 0.0;
  r.seed = 0;
}

std::uint64_t hits(std::string_view point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.hit_counts.find(point);
  return it == r.hit_counts.end() ? 0 : it->second;
}

}  // namespace stc::fault
