#include "support/thread_pool.h"

namespace stc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !batch_error_) batch_error_ = error;
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) batch_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    in_flight_ += n;
    for (std::size_t i = 0; i < n; ++i) {
      tasks_.push([&body, i] { body(i); });
    }
  }
  work_available_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0 && tasks_.empty(); });
  if (batch_error_) {
    std::exception_ptr error = batch_error_;
    batch_error_ = nullptr;  // the pool stays usable for the next batch
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace stc
