#include "support/rng.h"

#include <cmath>

namespace stc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  zipf_n_ = 0;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  STC_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  STC_REQUIRE(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

std::uint64_t Rng::zipf(std::uint64_t n, double theta) {
  STC_REQUIRE(n > 0);
  if (zipf_n_ != n || zipf_theta_ != theta) {
    double norm = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), theta);
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_norm_ = norm;
  }
  // Inverse-CDF by sequential accumulation is O(n) worst case; acceptable for
  // the generator sizes we use (n <= a few thousand distinct hot values).
  const double u = uniform_double() * zipf_norm_;
  double acc = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), theta);
    if (acc >= u) return i;
  }
  return n;
}

std::string Rng::random_string(std::size_t length) {
  std::string s(length, 'a');
  for (auto& c : s) c = static_cast<char>('a' + uniform(26));
  return s;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace stc
