#include "sim/replay.h"

#include <algorithm>
#include <cstdio>

#include "support/env.h"
#include "support/faultpoint.h"

namespace stc::sim {

const char* to_string(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kInterp: return "interp";
    case ReplayMode::kBatched: return "batched";
    case ReplayMode::kCompiled: return "compiled";
  }
  return "?";
}

Result<ReplayMode> parse_replay_mode(const std::string& name) {
  if (name == "interp") return ReplayMode::kInterp;
  if (name == "batched") return ReplayMode::kBatched;
  if (name == "compiled" || name == "auto") return ReplayMode::kCompiled;
  return invalid_argument_error(
      "STC_REPLAY='" + name +
      "': expected one of interp|batched|compiled|auto");
}

ReplayMode replay_mode_from_env() {
  Result<std::string> name = env::replay();
  STC_CHECK_MSG(name.is_ok(), "STC_REPLAY not validated before use");
  return parse_replay_mode(name.value()).value();
}

void* ReplayArena::raw_alloc(std::size_t bytes, std::size_t align) {
  STC_DCHECK(align > 0 && (align & (align - 1)) == 0);
  for (;;) {
    if (!slabs_.empty()) {
      Slab& slab = slabs_.back();
      const std::size_t aligned = (slab.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= slab.size) {
        slab.used = aligned + bytes;
        bytes_allocated_ += bytes;
        return slab.data.get() + aligned;
      }
    }
    // Geometric growth; a fresh slab never moves earlier allocations.
    const std::size_t prev = slabs_.empty() ? 0 : slabs_.back().size;
    const std::size_t size =
        std::max({bytes + align, prev * 2, kMinSlabBytes});
    Slab slab;
    slab.data = std::make_unique<unsigned char[]>(size);
    slab.size = size;
    slabs_.push_back(std::move(slab));
  }
}

void ReplayArena::reset() {
  for (Slab& slab : slabs_) slab.used = 0;
  bytes_allocated_ = 0;
}

void BlockMetaTable::build(const cfg::ProgramImage& image,
                           const cfg::AddressMap& layout, ReplayArena& arena) {
  size_ = image.num_blocks();
  std::uint64_t* addr = arena.alloc<std::uint64_t>(size_);
  std::uint64_t* end_addr = arena.alloc<std::uint64_t>(size_);
  std::uint32_t* insns = arena.alloc<std::uint32_t>(size_);
  std::uint8_t* branch = arena.alloc<std::uint8_t>(size_);
  std::uint8_t* kind = arena.alloc<std::uint8_t>(size_);
  for (cfg::BlockId b = 0; b < size_; ++b) {
    const cfg::BlockInfo& info = image.block(b);
    addr[b] = layout.addr(b);
    end_addr[b] = addr[b] + std::uint64_t{info.insns} * cfg::kInsnBytes;
    insns[b] = info.insns;
    branch[b] = cfg::ends_in_branch(info.kind) ? 1 : 0;
    kind[b] = static_cast<std::uint8_t>(info.kind);
  }
  addr_ = addr;
  end_addr_ = end_addr;
  insns_ = insns;
  branch_ = branch;
  kind_ = kind;
}

void EventSlab::build(const trace::BlockTrace& trace) {
  events_.clear();
  events_.reserve(static_cast<std::size_t>(trace.num_events()));
  for (std::size_t c = 0; c < trace.num_chunks(); ++c) {
    trace.decode_chunk(c, events_);
  }
  STC_CHECK(events_.size() == trace.num_events());
  max_id_ = 0;
  for (const cfg::BlockId id : events_) max_id_ = std::max(max_id_, id);
}

Status CompiledTable::build(const BlockMetaTable& meta,
                            std::uint32_t line_bytes, ReplayArena& arena) {
  if (Status s = fault::fail_if("replay.compile",
                                "building compiled replay tables");
      !s.is_ok()) {
    return s;
  }
  if (line_bytes == 0) return Status::ok();  // layout-only plan
  STC_REQUIRE((line_bytes & (line_bytes - 1)) == 0);
  const std::size_t n = meta.size();
  std::uint64_t* first = arena.alloc<std::uint64_t>(n);
  std::uint64_t* last = arena.alloc<std::uint64_t>(n);
  std::uint64_t* word = arena.alloc<std::uint64_t>(n);
  for (cfg::BlockId b = 0; b < n; ++b) {
    first[b] = meta.addr(b) / line_bytes;
    // Mirrors run_missrate: the last line is the one holding the block's
    // final instruction byte (end_addr - 1), even for zero-length blocks.
    last[b] = (meta.end_addr(b) - 1) / line_bytes;
    word[b] = meta.addr(b) / cfg::kInsnBytes;
  }
  first_line_ = first;
  last_line_ = last;
  word_index_ = word;
  line_bytes_ = line_bytes;
  return Status::ok();
}

void BackendTable::build(const BlockMetaTable& meta, const BackendSpec& spec,
                         ReplayArena& arena) {
  STC_REQUIRE(spec.enabled);
  const std::size_t n = meta.size();
  std::uint32_t* latency = arena.alloc<std::uint32_t>(n);
  std::uint8_t* dest = arena.alloc<std::uint8_t>(n);
  std::uint8_t* src1 = arena.alloc<std::uint8_t>(n);
  std::uint8_t* src2 = arena.alloc<std::uint8_t>(n);
  for (cfg::BlockId b = 0; b < n; ++b) {
    latency[b] = backend_op_latency(spec, meta.insns(b), meta.kind(b));
    backend_op_regs(meta.addr(b), meta.insns(b), &dest[b], &src1[b],
                    &src2[b]);
  }
  latency_ = latency;
  dest_ = dest;
  src1_ = src1;
  src2_ = src2;
  spec_ = spec;
  valid_ = true;
}

Result<ReplayPlan> build_replay_plan(ReplayMode mode,
                                     std::shared_ptr<const EventSlab> slab,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     std::uint32_t line_bytes,
                                     const BackendSpec& backend) {
  STC_REQUIRE(mode != ReplayMode::kInterp);
  STC_REQUIRE(slab != nullptr);
  ReplayPlan plan;
  plan.mode_ = mode;
  plan.slab_ = std::move(slab);
  plan.arena_ = std::make_unique<ReplayArena>();
  plan.meta_.build(image, layout, *plan.arena_);
  // One range check here buys unchecked indexing in every hot loop; the
  // interpreter would abort on the same out-of-range id mid-replay.
  STC_CHECK_MSG(plan.slab_->size() == 0 ||
                    plan.slab_->max_id() < plan.meta_.size(),
                "trace names blocks outside the program image");
  if (mode == ReplayMode::kCompiled) {
    if (Status s = plan.compiled_.build(plan.meta_, line_bytes, *plan.arena_);
        !s.is_ok()) {
      return s.with_context("compiled replay");
    }
    if (backend.enabled) {
      plan.backend_.build(plan.meta_, backend, *plan.arena_);
    }
  }
  return plan;
}

Result<ReplayPlan> build_replay_plan(ReplayMode mode,
                                     const trace::BlockTrace& trace,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     std::uint32_t line_bytes,
                                     const BackendSpec& backend) {
  auto slab = std::make_shared<EventSlab>();
  slab->build(trace);
  return build_replay_plan(mode, std::move(slab), image, layout, line_bytes,
                           backend);
}

const ReplayPlan* ReplayPlanCache::get(ReplayMode mode,
                                       const trace::BlockTrace& trace,
                                       const cfg::ProgramImage& image,
                                       const cfg::AddressMap& layout,
                                       std::uint32_t line_bytes,
                                       const BackendSpec& backend) {
  if (mode == ReplayMode::kInterp) return nullptr;

  // Content fingerprints (see the class comment): FNV-1a over what each
  // object *says*, so a rebuilt layout at a recycled address never hits a
  // stale entry.
  const auto fnv = [](std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
    return h;
  };
  constexpr std::uint64_t kBasis = 14695981039346656037ull;
  std::uint64_t image_fp = fnv(kBasis, image.num_blocks());
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    const cfg::BlockInfo& info = image.block(b);
    image_fp = fnv(image_fp, info.insns);
    image_fp = fnv(image_fp, static_cast<std::uint64_t>(info.kind));
    image_fp = fnv(image_fp, info.orig_addr);
  }
  std::uint64_t layout_fp = fnv(kBasis, layout.size());
  for (cfg::BlockId b = 0; b < layout.size(); ++b) {
    layout_fp = fnv(layout_fp, layout.addr(b));
  }
  const std::uint64_t trace_fp = trace.content_hash();

  std::lock_guard<std::mutex> lock(mu_);
  const Key key{static_cast<int>(mode), trace_fp, image_fp, layout_fp,
                line_bytes, backend.fingerprint()};
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second.get();

  std::shared_ptr<const EventSlab>& slab = slabs_[trace_fp];
  if (slab == nullptr) {
    auto built = std::make_shared<EventSlab>();
    built->build(trace);
    slab = std::move(built);
  }
  Result<ReplayPlan> plan =
      build_replay_plan(mode, slab, image, layout, line_bytes, backend);
  if (!plan.is_ok()) {
    if (!logged_fallback_) {
      logged_fallback_ = true;
      std::fprintf(stderr, "replay: %s; falling back to interp\n",
                   plan.status().to_string().c_str());
    }
    it = plans_.emplace(key, nullptr).first;
    return it->second.get();
  }
  it = plans_
           .emplace(key, std::make_unique<const ReplayPlan>(
                             std::move(plan).take()))
           .first;
  return it->second.get();
}

MissRateResult replay_missrate(const ReplayPlan& plan, ICache& cache,
                               std::vector<std::uint64_t>* per_block_misses) {
  MissRateResult result;
  const BlockMetaTable& meta = plan.meta();
  if (per_block_misses != nullptr) {
    per_block_misses->assign(meta.size(), 0);
  }
  const std::uint32_t line = cache.geometry().line_bytes;
  const EventSlab& slab = plan.slab();
  const std::size_t n = slab.size();
  std::uint64_t prev_line = ~std::uint64_t{0};
  const CompiledTable& compiled = plan.compiled();
  const bool use_tables = plan.mode() == ReplayMode::kCompiled &&
                          compiled.valid() && compiled.line_bytes() == line;
  for (std::size_t i = 0; i < n; ++i) {
    const cfg::BlockId block = slab[i];
    result.instructions += meta.insns(block);
    const std::uint64_t first =
        use_tables ? compiled.first_line(block) : meta.addr(block) / line;
    const std::uint64_t last = use_tables
                                   ? compiled.last_line(block)
                                   : (meta.end_addr(block) - 1) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
      // Same contract as the interpreter loop: consecutive instructions on
      // one line probe once; a line re-entered after leaving probes again.
      if (l == prev_line) continue;
      ++result.line_accesses;
      if (!cache.access(l * line)) {
        ++result.misses;
        if (per_block_misses != nullptr) ++(*per_block_misses)[block];
      }
      prev_line = l;
    }
  }
  return result;
}

trace::SequentialityStats replay_sequentiality(const ReplayPlan& plan) {
  trace::SequentialityStats stats;
  const BlockMetaTable& meta = plan.meta();
  const EventSlab& slab = plan.slab();
  const std::size_t n = slab.size();
  for (std::size_t i = 0; i < n; ++i) {
    const cfg::BlockId block = slab[i];
    stats.instructions += meta.insns(block);
    ++stats.dynamic_blocks;
    if (i + 1 < n && meta.addr(slab[i + 1]) != meta.end_addr(block)) {
      ++stats.taken_transitions;
    }
  }
  return stats;
}

}  // namespace stc::sim
