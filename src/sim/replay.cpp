#include "sim/replay.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>

#include "support/crc32.h"
#include "support/env.h"
#include "support/faultpoint.h"
#include "support/io.h"
#include "trace/trace_format.h"

// Portable SIMD: GCC/Clang vector extensions compile to whatever the target
// offers (AVX-512, AVX2 pairs, NEON, or plain scalar code) with identical
// integer semantics, so the fast path needs no per-ISA intrinsics and the
// bit-identity contract holds everywhere. STC_REPLAY_NO_SIMD forces the
// scalar reference loops (used to cross-check, and for odd toolchains).
#if (defined(__GNUC__) || defined(__clang__)) && !defined(STC_REPLAY_NO_SIMD)
#define STC_REPLAY_SIMD 1
#else
#define STC_REPLAY_SIMD 0
#endif

namespace stc::sim {

const char* to_string(ReplayMode mode) {
  switch (mode) {
    case ReplayMode::kInterp: return "interp";
    case ReplayMode::kBatched: return "batched";
    case ReplayMode::kCompiled: return "compiled";
  }
  return "?";
}

Result<ReplayMode> parse_replay_mode(const std::string& name) {
  if (name == "interp") return ReplayMode::kInterp;
  if (name == "batched") return ReplayMode::kBatched;
  if (name == "compiled" || name == "auto") return ReplayMode::kCompiled;
  return invalid_argument_error(
      "STC_REPLAY='" + name +
      "': expected one of interp|batched|compiled|auto");
}

ReplayMode replay_mode_from_env() {
  Result<std::string> name = env::replay();
  STC_CHECK_MSG(name.is_ok(), "STC_REPLAY not validated before use");
  return parse_replay_mode(name.value()).value();
}

void* ReplayArena::raw_alloc(std::size_t bytes, std::size_t align) {
  STC_DCHECK(align > 0 && (align & (align - 1)) == 0);
  for (;;) {
    if (!slabs_.empty()) {
      Slab& slab = slabs_.back();
      const std::size_t aligned = (slab.used + align - 1) & ~(align - 1);
      if (aligned + bytes <= slab.size) {
        slab.used = aligned + bytes;
        bytes_allocated_ += bytes;
        return slab.data.get() + aligned;
      }
    }
    // Geometric growth; a fresh slab never moves earlier allocations.
    const std::size_t prev = slabs_.empty() ? 0 : slabs_.back().size;
    const std::size_t size =
        std::max({bytes + align, prev * 2, kMinSlabBytes});
    Slab slab;
    slab.data = std::make_unique<unsigned char[]>(size);
    slab.size = size;
    slabs_.push_back(std::move(slab));
  }
}

void ReplayArena::reset() {
  for (Slab& slab : slabs_) slab.used = 0;
  bytes_allocated_ = 0;
}

void BlockMetaTable::build(const cfg::ProgramImage& image,
                           const cfg::AddressMap& layout, ReplayArena& arena) {
  size_ = image.num_blocks();
  std::uint64_t* addr = arena.alloc<std::uint64_t>(size_);
  std::uint64_t* end_addr = arena.alloc<std::uint64_t>(size_);
  std::uint32_t* insns = arena.alloc<std::uint32_t>(size_);
  std::uint8_t* branch = arena.alloc<std::uint8_t>(size_);
  std::uint8_t* kind = arena.alloc<std::uint8_t>(size_);
  for (cfg::BlockId b = 0; b < size_; ++b) {
    const cfg::BlockInfo& info = image.block(b);
    addr[b] = layout.addr(b);
    end_addr[b] = addr[b] + std::uint64_t{info.insns} * cfg::kInsnBytes;
    insns[b] = info.insns;
    branch[b] = cfg::ends_in_branch(info.kind) ? 1 : 0;
    kind[b] = static_cast<std::uint8_t>(info.kind);
  }
  addr_ = addr;
  end_addr_ = end_addr;
  insns_ = insns;
  branch_ = branch;
  kind_ = kind;
}

void EventSlab::build(const trace::BlockTrace& trace) {
  events_.clear();
  events_.reserve(static_cast<std::size_t>(trace.num_events()));
  for (std::size_t c = 0; c < trace.num_chunks(); ++c) {
    trace.decode_chunk(c, events_);
  }
  STC_CHECK(events_.size() == trace.num_events());
  max_id_ = 0;
  for (const cfg::BlockId id : events_) max_id_ = std::max(max_id_, id);
}

void EventSlab::adopt(std::vector<cfg::BlockId> events) {
  events_ = std::move(events);
  max_id_ = 0;
  for (const cfg::BlockId id : events_) max_id_ = std::max(max_id_, id);
}

Status CompiledTable::build(const BlockMetaTable& meta,
                            std::uint32_t line_bytes, ReplayArena& arena) {
  if (Status s = fault::fail_if("replay.compile",
                                "building compiled replay tables");
      !s.is_ok()) {
    return s;
  }
  if (line_bytes == 0) return Status::ok();  // layout-only plan
  STC_REQUIRE((line_bytes & (line_bytes - 1)) == 0);
  const std::size_t n = meta.size();
  std::uint64_t* first = arena.alloc<std::uint64_t>(n);
  std::uint64_t* last = arena.alloc<std::uint64_t>(n);
  std::uint64_t* word = arena.alloc<std::uint64_t>(n);
  for (cfg::BlockId b = 0; b < n; ++b) {
    first[b] = meta.addr(b) / line_bytes;
    // Mirrors run_missrate: the last line is the one holding the block's
    // final instruction byte (end_addr - 1), even for zero-length blocks.
    last[b] = (meta.end_addr(b) - 1) / line_bytes;
    word[b] = meta.addr(b) / cfg::kInsnBytes;
  }
  first_line_ = first;
  last_line_ = last;
  word_index_ = word;
  line_bytes_ = line_bytes;
  return Status::ok();
}

void BackendTable::build(const BlockMetaTable& meta, const BackendSpec& spec,
                         ReplayArena& arena) {
  STC_REQUIRE(spec.enabled);
  const std::size_t n = meta.size();
  std::uint32_t* latency = arena.alloc<std::uint32_t>(n);
  std::uint8_t* dest = arena.alloc<std::uint8_t>(n);
  std::uint8_t* src1 = arena.alloc<std::uint8_t>(n);
  std::uint8_t* src2 = arena.alloc<std::uint8_t>(n);
  for (cfg::BlockId b = 0; b < n; ++b) {
    latency[b] = backend_op_latency(spec, meta.insns(b), meta.kind(b));
    backend_op_regs(meta.addr(b), meta.insns(b), &dest[b], &src1[b],
                    &src2[b]);
  }
  latency_ = latency;
  dest_ = dest;
  src1_ = src1;
  src2_ = src2;
  spec_ = spec;
  valid_ = true;
}

Result<ReplayPlan> build_replay_plan(ReplayMode mode,
                                     std::shared_ptr<const EventSlab> slab,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     std::uint32_t line_bytes,
                                     const BackendSpec& backend) {
  STC_REQUIRE(mode != ReplayMode::kInterp);
  STC_REQUIRE(slab != nullptr);
  ReplayPlan plan;
  plan.mode_ = mode;
  plan.slab_ = std::move(slab);
  plan.arena_ = std::make_unique<ReplayArena>();
  plan.meta_.build(image, layout, *plan.arena_);
  // One range check here buys unchecked indexing in every hot loop; the
  // interpreter would abort on the same out-of-range id mid-replay.
  STC_CHECK_MSG(plan.slab_->size() == 0 ||
                    plan.slab_->max_id() < plan.meta_.size(),
                "trace names blocks outside the program image");
  if (mode == ReplayMode::kCompiled) {
    if (Status s = plan.compiled_.build(plan.meta_, line_bytes, *plan.arena_);
        !s.is_ok()) {
      return s.with_context("compiled replay");
    }
    if (backend.enabled) {
      plan.backend_.build(plan.meta_, backend, *plan.arena_);
    }
  }
  return plan;
}

Result<ReplayPlan> build_replay_plan(ReplayMode mode,
                                     const trace::BlockTrace& trace,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     std::uint32_t line_bytes,
                                     const BackendSpec& backend) {
  auto slab = std::make_shared<EventSlab>();
  slab->build(trace);
  return build_replay_plan(mode, std::move(slab), image, layout, line_bytes,
                           backend);
}

namespace {

// On-disk plan-cache entries. Host-endian with a CRC32 over the payload:
// these are per-machine cache files keyed by content fingerprint, not an
// interchange format, so the only obligations are "detect corruption" and
// "never change counters" — any validation failure is a silent rebuild.
constexpr std::uint64_t kSlabFileMagic = 0x53544353;  // "STCS"
constexpr std::uint64_t kPlanFileMagic = 0x53544350;  // "STCP"
constexpr std::uint64_t kCacheFileVersion = 1;
constexpr std::size_t kSlabHeaderBytes = 4 * 8;
constexpr std::size_t kPlanHeaderBytes = 9 * 8;

static_assert(sizeof(cfg::BlockId) == 4, "slab cache files store u32 ids");

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::shared_ptr<const EventSlab> load_slab_file(const std::string& path) {
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) return nullptr;
  const std::vector<std::uint8_t>& b = bytes.value();
  if (b.size() < kSlabHeaderBytes) return nullptr;
  if (trace::format::get_u64(b.data()) != kSlabFileMagic) return nullptr;
  if (trace::format::get_u64(b.data() + 8) != kCacheFileVersion) return nullptr;
  const std::uint64_t n = trace::format::get_u64(b.data() + 16);
  const std::uint64_t stated_crc = trace::format::get_u64(b.data() + 24);
  if ((b.size() - kSlabHeaderBytes) / sizeof(cfg::BlockId) != n ||
      (b.size() - kSlabHeaderBytes) % sizeof(cfg::BlockId) != 0) {
    return nullptr;
  }
  if (crc32(b.data() + kSlabHeaderBytes, b.size() - kSlabHeaderBytes) !=
      stated_crc) {
    return nullptr;
  }
  std::vector<cfg::BlockId> events(static_cast<std::size_t>(n));
  std::memcpy(events.data(), b.data() + kSlabHeaderBytes,
              events.size() * sizeof(cfg::BlockId));
  for (const cfg::BlockId id : events) {
    if (id >= cfg::kInvalidBlock) return nullptr;
  }
  auto slab = std::make_shared<EventSlab>();
  slab->adopt(std::move(events));
  return slab;
}

void save_slab_file(const std::string& path, const EventSlab& slab) {
  std::vector<std::uint8_t> out;
  const std::size_t payload = slab.size() * sizeof(cfg::BlockId);
  out.reserve(kSlabHeaderBytes + payload);
  trace::format::put_u64(out, kSlabFileMagic);
  trace::format::put_u64(out, kCacheFileVersion);
  trace::format::put_u64(out, slab.size());
  trace::format::put_u64(
      out, crc32(reinterpret_cast<const std::uint8_t*>(slab.data()), payload));
  const std::uint8_t* raw = reinterpret_cast<const std::uint8_t*>(slab.data());
  out.insert(out.end(), raw, raw + payload);
  // Best-effort: a failed write just means the next invocation rebuilds.
  (void)write_file_atomic(path, out.data(), out.size(), "plancache.write");
}

// Plan-table files carry the compiled line tables plus (when enabled) the
// back-end op tables, all specialized to one (meta, line size, spec) — the
// header repeats everything the tables were specialized for so a stale file
// under a colliding name can never be adopted.
bool load_plan_tables(const std::string& path, std::size_t num_blocks,
                      std::uint32_t line_bytes, const BackendSpec& backend,
                      ReplayArena& arena, CompiledTable& compiled,
                      BackendTable& backend_table) {
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) return false;
  const std::vector<std::uint8_t>& b = bytes.value();
  if (b.size() < kPlanHeaderBytes) return false;
  if (trace::format::get_u64(b.data()) != kPlanFileMagic) return false;
  if (trace::format::get_u64(b.data() + 8) != kCacheFileVersion) return false;
  if (trace::format::get_u64(b.data() + 16) != num_blocks) return false;
  if (trace::format::get_u64(b.data() + 24) != line_bytes) return false;
  const std::uint64_t enabled = trace::format::get_u64(b.data() + 32);
  if (enabled != (backend.enabled ? 1 : 0)) return false;
  if (backend.enabled &&
      (trace::format::get_u64(b.data() + 40) != backend.base_latency ||
       trace::format::get_u64(b.data() + 48) != backend.mem_latency ||
       trace::format::get_u64(b.data() + 56) != backend.size_shift)) {
    return false;
  }
  const std::uint64_t stated_crc = trace::format::get_u64(b.data() + 64);
  std::size_t expected = 3 * 8 * num_blocks;
  if (backend.enabled) expected += (4 + 3) * num_blocks;
  if (b.size() - kPlanHeaderBytes != expected) return false;
  if (crc32(b.data() + kPlanHeaderBytes, expected) != stated_crc) return false;

  const std::uint8_t* p = b.data() + kPlanHeaderBytes;
  std::uint64_t* first = arena.alloc<std::uint64_t>(num_blocks);
  std::uint64_t* last = arena.alloc<std::uint64_t>(num_blocks);
  std::uint64_t* word = arena.alloc<std::uint64_t>(num_blocks);
  std::memcpy(first, p, num_blocks * 8);
  std::memcpy(last, p + num_blocks * 8, num_blocks * 8);
  std::memcpy(word, p + num_blocks * 16, num_blocks * 8);
  compiled.adopt(line_bytes, first, last, word);
  if (backend.enabled) {
    p += num_blocks * 24;
    std::uint32_t* latency = arena.alloc<std::uint32_t>(num_blocks);
    std::uint8_t* dest = arena.alloc<std::uint8_t>(num_blocks);
    std::uint8_t* src1 = arena.alloc<std::uint8_t>(num_blocks);
    std::uint8_t* src2 = arena.alloc<std::uint8_t>(num_blocks);
    std::memcpy(latency, p, num_blocks * 4);
    std::memcpy(dest, p + num_blocks * 4, num_blocks);
    std::memcpy(src1, p + num_blocks * 5, num_blocks);
    std::memcpy(src2, p + num_blocks * 6, num_blocks);
    backend_table.adopt(backend, latency, dest, src1, src2);
  }
  return true;
}

void save_plan_tables(const std::string& path, std::size_t num_blocks,
                      std::uint32_t line_bytes, const BackendSpec& backend,
                      const CompiledTable& compiled,
                      const BackendTable& backend_table) {
  std::vector<std::uint8_t> payload;
  std::size_t expected = 3 * 8 * num_blocks;
  if (backend.enabled) expected += (4 + 3) * num_blocks;
  payload.reserve(expected);
  const auto put_array_u64 = [&payload, num_blocks](const auto& fn) {
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
      trace::format::put_u64(payload, fn(b));
    }
  };
  put_array_u64([&compiled](cfg::BlockId b) { return compiled.first_line(b); });
  put_array_u64([&compiled](cfg::BlockId b) { return compiled.last_line(b); });
  put_array_u64([&compiled](cfg::BlockId b) { return compiled.word_index(b); });
  if (backend.enabled) {
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
      const std::uint32_t v = backend_table.latency(b);
      for (int i = 0; i < 4; ++i) {
        payload.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
      }
    }
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
      payload.push_back(backend_table.dest(b));
    }
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
      payload.push_back(backend_table.src1(b));
    }
    for (cfg::BlockId b = 0; b < num_blocks; ++b) {
      payload.push_back(backend_table.src2(b));
    }
  }
  std::vector<std::uint8_t> out;
  out.reserve(kPlanHeaderBytes + payload.size());
  trace::format::put_u64(out, kPlanFileMagic);
  trace::format::put_u64(out, kCacheFileVersion);
  trace::format::put_u64(out, num_blocks);
  trace::format::put_u64(out, line_bytes);
  trace::format::put_u64(out, backend.enabled ? 1 : 0);
  trace::format::put_u64(out, backend.enabled ? backend.base_latency : 0);
  trace::format::put_u64(out, backend.enabled ? backend.mem_latency : 0);
  trace::format::put_u64(out, backend.enabled ? backend.size_shift : 0);
  trace::format::put_u64(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  (void)write_file_atomic(path, out.data(), out.size(), "plancache.write");
}

}  // namespace

ReplayPlanCache::ReplayPlanCache() {
  const Result<std::string> dir = env::plan_cache_dir();
  disk_dir_ = dir.is_ok() ? dir.value() : std::string();
}

const ReplayPlan* ReplayPlanCache::get(ReplayMode mode,
                                       const trace::BlockTrace& trace,
                                       const cfg::ProgramImage& image,
                                       const cfg::AddressMap& layout,
                                       std::uint32_t line_bytes,
                                       const BackendSpec& backend) {
  if (mode == ReplayMode::kInterp) return nullptr;

  // Content fingerprints (see the class comment): FNV-1a over what each
  // object *says*, so a rebuilt layout at a recycled address never hits a
  // stale entry.
  const auto fnv = [](std::uint64_t h, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
    return h;
  };
  constexpr std::uint64_t kBasis = 14695981039346656037ull;
  std::uint64_t image_fp = fnv(kBasis, image.num_blocks());
  for (cfg::BlockId b = 0; b < image.num_blocks(); ++b) {
    const cfg::BlockInfo& info = image.block(b);
    image_fp = fnv(image_fp, info.insns);
    image_fp = fnv(image_fp, static_cast<std::uint64_t>(info.kind));
    image_fp = fnv(image_fp, info.orig_addr);
  }
  std::uint64_t layout_fp = fnv(kBasis, layout.size());
  for (cfg::BlockId b = 0; b < layout.size(); ++b) {
    layout_fp = fnv(layout_fp, layout.addr(b));
  }
  const std::uint64_t trace_fp = trace.content_hash();

  std::lock_guard<std::mutex> lock(mu_);
  const Key key{static_cast<int>(mode), trace_fp, image_fp, layout_fp,
                line_bytes, backend.fingerprint()};
  auto it = plans_.find(key);
  if (it != plans_.end()) return it->second.get();

  std::shared_ptr<const EventSlab>& slab = slabs_[trace_fp];
  if (slab == nullptr) {
    const std::string slab_path =
        disk_dir_.empty()
            ? std::string()
            : disk_dir_ + "/slab_" + hex16(trace_fp) + ".stcs";
    if (!slab_path.empty()) {
      std::shared_ptr<const EventSlab> loaded = load_slab_file(slab_path);
      // Beyond the file's own CRC, the slab must agree with the trace it
      // claims to cache and must not name blocks the image lacks — a bad
      // cache entry downgrades to a rebuild, never an aborted run.
      if (loaded != nullptr && loaded->size() == trace.num_events() &&
          (loaded->size() == 0 || loaded->max_id() < image.num_blocks())) {
        slab = std::move(loaded);
      }
    }
    if (slab == nullptr) {
      auto built = std::make_shared<EventSlab>();
      built->build(trace);
      slab = std::move(built);
      if (!slab_path.empty()) save_slab_file(slab_path, *slab);
    }
  }
  Result<ReplayPlan> plan = [&]() -> Result<ReplayPlan> {
    if (disk_dir_.empty() || mode != ReplayMode::kCompiled ||
        line_bytes == 0) {
      return build_replay_plan(mode, slab, image, layout, line_bytes, backend);
    }
    // Disk path: the key fingerprint names a plan-tables file; adopt it
    // when every specialization parameter matches, rebuild (and persist)
    // otherwise. Fault-injected builds are not persisted — the null plan
    // stays an in-memory fact and the next run retries the build.
    std::uint64_t key_fp = kBasis;
    key_fp = fnv(key_fp, static_cast<std::uint64_t>(mode));
    key_fp = fnv(key_fp, trace_fp);
    key_fp = fnv(key_fp, image_fp);
    key_fp = fnv(key_fp, layout_fp);
    key_fp = fnv(key_fp, line_bytes);
    key_fp = fnv(key_fp, backend.fingerprint());
    const std::string plan_path =
        disk_dir_ + "/plan_" + hex16(key_fp) + ".stcp";
    ReplayPlan built;
    built.mode_ = mode;
    built.slab_ = slab;
    built.arena_ = std::make_unique<ReplayArena>();
    built.meta_.build(image, layout, *built.arena_);
    STC_CHECK_MSG(built.slab_->size() == 0 ||
                      built.slab_->max_id() < built.meta_.size(),
                  "trace names blocks outside the program image");
    if (load_plan_tables(plan_path, built.meta_.size(), line_bytes, backend,
                         *built.arena_, built.compiled_, built.backend_)) {
      return built;
    }
    if (Status s =
            built.compiled_.build(built.meta_, line_bytes, *built.arena_);
        !s.is_ok()) {
      return s.with_context("compiled replay");
    }
    if (backend.enabled) {
      built.backend_.build(built.meta_, backend, *built.arena_);
    }
    save_plan_tables(plan_path, built.meta_.size(), line_bytes, backend,
                     built.compiled_, built.backend_);
    return built;
  }();
  if (!plan.is_ok()) {
    if (!logged_fallback_) {
      logged_fallback_ = true;
      std::fprintf(stderr, "replay: %s; falling back to interp\n",
                   plan.status().to_string().c_str());
    }
    it = plans_.emplace(key, nullptr).first;
    return it->second.get();
  }
  it = plans_
           .emplace(key, std::make_unique<const ReplayPlan>(
                             std::move(plan).take()))
           .first;
  return it->second.get();
}

namespace replay_detail {
namespace {

#if STC_REPLAY_SIMD
typedef std::uint64_t u64x8 __attribute__((vector_size(64)));
#endif
constexpr std::size_t kLanes = 8;

}  // namespace

void missrate_span(const cfg::BlockId* events, std::size_t n,
                   const BlockMetaTable& meta, const CompiledTable* tables,
                   std::uint32_t line_bytes, ICache& cache,
                   std::vector<std::uint64_t>* per_block_misses,
                   ReplayKernel kernel, MissSpanState& state,
                   MissRateResult& result) {
  (void)kernel;
  const bool use_tables = tables != nullptr && tables->valid() &&
                          tables->line_bytes() == line_bytes;
  std::uint64_t prev_line = state.prev_line;
  // Same contract as the interpreter loop: consecutive instructions on one
  // line probe once; a line re-entered after leaving probes again. The probe
  // sequence is inherently serial (the cache is stateful), so it is shared
  // verbatim by both kernels — SIMD only accelerates the pure per-event
  // arithmetic around it, which is what keeps the kernels bit-identical.
  const auto probe = [&](cfg::BlockId block, std::uint64_t first,
                         std::uint64_t last) {
    for (std::uint64_t l = first; l <= last; ++l) {
      if (l == prev_line) continue;
      ++result.line_accesses;
      if (!cache.access(l * line_bytes)) {
        ++result.misses;
        if (per_block_misses != nullptr) ++(*per_block_misses)[block];
      }
      prev_line = l;
    }
  };
  std::size_t i = 0;
#if STC_REPLAY_SIMD
  if (kernel == ReplayKernel::kSimd && use_tables && n >= kLanes) {
    // Vector pre-pass per 8 events: gather the pre-resolved line bounds and
    // accumulate instruction counts in vector lanes; then drain the probes
    // in order from the gathered bounds.
    u64x8 insn_acc = {};
    std::uint64_t firsts[kLanes];
    std::uint64_t lasts[kLanes];
    for (; i + kLanes <= n; i += kLanes) {
      u64x8 insns;
      for (std::size_t l = 0; l < kLanes; ++l) {
        const cfg::BlockId b = events[i + l];
        insns[l] = meta.insns(b);
        firsts[l] = tables->first_line(b);
        lasts[l] = tables->last_line(b);
      }
      insn_acc += insns;
      for (std::size_t l = 0; l < kLanes; ++l) {
        probe(events[i + l], firsts[l], lasts[l]);
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      result.instructions += insn_acc[l];
    }
  }
#endif
  for (; i < n; ++i) {
    const cfg::BlockId block = events[i];
    result.instructions += meta.insns(block);
    const std::uint64_t first = use_tables ? tables->first_line(block)
                                           : meta.addr(block) / line_bytes;
    const std::uint64_t last = use_tables
                                   ? tables->last_line(block)
                                   : (meta.end_addr(block) - 1) / line_bytes;
    probe(block, first, last);
  }
  state.prev_line = prev_line;
}

void sequentiality_span(const cfg::BlockId* events, std::size_t n,
                        const BlockMetaTable& meta, ReplayKernel kernel,
                        SeqSpanState& state,
                        trace::SequentialityStats& stats) {
  (void)kernel;
  if (n == 0) return;
  // The transition into this span belongs to the previous span's last event
  // — the slab loop sees the two events adjacent.
  if (state.have_prev &&
      meta.addr(events[0]) != meta.end_addr(state.prev)) {
    ++stats.taken_transitions;
  }
  stats.dynamic_blocks += n;
  std::size_t i = 0;
#if STC_REPLAY_SIMD
  if (kernel == ReplayKernel::kSimd && n > kLanes) {
    u64x8 insn_acc = {};
    u64x8 taken_acc = {};
    // Each lane compares event i+l's end address with event i+l+1's start
    // address, so the loop needs one event of lookahead (i + kLanes < n).
    for (; i + kLanes < n; i += kLanes) {
      u64x8 next_addr;
      u64x8 end_addr;
      u64x8 insns;
      for (std::size_t l = 0; l < kLanes; ++l) {
        next_addr[l] = meta.addr(events[i + l + 1]);
        end_addr[l] = meta.end_addr(events[i + l]);
        insns[l] = meta.insns(events[i + l]);
      }
      insn_acc += insns;
      // A vector compare fills true lanes with all-ones (-1); subtracting
      // therefore adds one per taken transition.
      taken_acc -= reinterpret_cast<u64x8>(next_addr != end_addr);
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      stats.instructions += insn_acc[l];
      stats.taken_transitions += taken_acc[l];
    }
  }
#endif
  for (; i < n; ++i) {
    stats.instructions += meta.insns(events[i]);
    if (i + 1 < n &&
        meta.addr(events[i + 1]) != meta.end_addr(events[i])) {
      ++stats.taken_transitions;
    }
  }
  state.have_prev = true;
  state.prev = events[n - 1];
}

}  // namespace replay_detail

MissRateResult replay_missrate(const ReplayPlan& plan, ICache& cache,
                               std::vector<std::uint64_t>* per_block_misses) {
  MissRateResult result;
  const BlockMetaTable& meta = plan.meta();
  if (per_block_misses != nullptr) {
    per_block_misses->assign(meta.size(), 0);
  }
  const CompiledTable* tables =
      plan.mode() == ReplayMode::kCompiled ? &plan.compiled() : nullptr;
  replay_detail::MissSpanState state;
  replay_detail::missrate_span(plan.slab().data(), plan.slab().size(), meta,
                               tables, cache.geometry().line_bytes, cache,
                               per_block_misses, ReplayKernel::kSimd, state,
                               result);
  return result;
}

trace::SequentialityStats replay_sequentiality(const ReplayPlan& plan) {
  trace::SequentialityStats stats;
  replay_detail::SeqSpanState state;
  replay_detail::sequentiality_span(plan.slab().data(), plan.slab().size(),
                                    plan.meta(), ReplayKernel::kSimd, state,
                                    stats);
  return stats;
}

namespace {

// Shared chunk pump for the streamed replays: decode, range-check against
// the metadata table (the streamed loops index unchecked, exactly like the
// slab loops after their one-time max_id check), replay, release pages.
Status stream_chunks(
    const trace::TraceReader& reader, const BlockMetaTable& meta,
    const std::function<void(const cfg::BlockId*, std::size_t)>& on_span) {
  std::vector<cfg::BlockId> buffer;
  for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
    buffer.clear();
    Result<std::size_t> decoded = reader.decode_chunk(c, buffer);
    if (!decoded.is_ok()) {
      return decoded.status().with_context("streamed replay");
    }
    for (const cfg::BlockId id : buffer) {
      if (id >= meta.size()) {
        return corrupt_data_error("trace names block " + std::to_string(id) +
                                  " outside the program image")
            .with_context("streamed replay");
      }
    }
    on_span(buffer.data(), buffer.size());
    reader.release_chunk(c);
  }
  return Status::ok();
}

}  // namespace

Result<MissRateResult> replay_missrate_streamed(
    const trace::TraceReader& reader, const BlockMetaTable& meta,
    const CompiledTable* tables, ICache& cache, ReplayKernel kernel) {
  MissRateResult result;
  replay_detail::MissSpanState state;
  const std::uint32_t line = cache.geometry().line_bytes;
  Status s = stream_chunks(
      reader, meta,
      [&](const cfg::BlockId* events, std::size_t n) {
        replay_detail::missrate_span(events, n, meta, tables, line, cache,
                                     nullptr, kernel, state, result);
      });
  if (!s.is_ok()) return s;
  return result;
}

Result<trace::SequentialityStats> replay_sequentiality_streamed(
    const trace::TraceReader& reader, const BlockMetaTable& meta,
    ReplayKernel kernel) {
  trace::SequentialityStats stats;
  replay_detail::SeqSpanState state;
  Status s = stream_chunks(
      reader, meta,
      [&](const cfg::BlockId* events, std::size_t n) {
        replay_detail::sequentiality_span(events, n, meta, kernel, state,
                                          stats);
      });
  if (!s.is_ok()) return s;
  return stats;
}

}  // namespace stc::sim
