// SEQ.3 sequential fetch unit (Rotenberg et al., MICRO'96), as used by the
// paper's Table 4 evaluation.
//
// Per cycle the unit accesses two consecutive cache lines and provides the
// instructions from the fetch address up to the first taken branch, or up to
// a maximum of three branches, or 16 instructions, whichever comes first.
// Branch prediction is perfect (the recorded trace is the actual path), and
// i-cache misses charge a fixed penalty. All control-transfer instructions
// (conditional/unconditional branches, calls, returns) count against the
// three-branch limit, as in Section 7.3 of the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cfg/address_map.h"
#include "cfg/program.h"
#include "sim/icache.h"
#include "trace/fetch_stream.h"

namespace stc::sim {

class ReplayPlan;  // sim/replay.h

// Instruction-granular cursor over the dynamic path with bounded lookahead.
// Shared by the sequential fetch unit and the trace cache simulator.
//
// Two interchangeable backends feed it: the interpreter's BlockRunStream, or
// a pre-built ReplayPlan whose make_run() materializes the identical
// BlockRun values from flat tables. Everything downstream of refill() is the
// same code either way, which is what makes the batched/compiled modes
// bit-identical to the interpreter by construction.
class FetchPipe {
 public:
  struct Insn {
    std::uint64_t addr = 0;
    bool block_end = false;  // last instruction of its basic block
    bool is_branch = false;  // block_end of a branch/call/return block
    bool taken = false;      // block_end whose transition is non-sequential
    cfg::BlockKind kind = cfg::BlockKind::kFallThrough;  // its block's kind
  };

  FetchPipe(const trace::BlockTrace& trace, const cfg::ProgramImage& image,
            const cfg::AddressMap& layout);
  explicit FetchPipe(const ReplayPlan& plan);

  bool done() const { return buffer_.empty(); }
  std::uint64_t addr() const;  // current instruction address; requires !done()

  // Looks `k` instructions ahead (k == 0 is the current instruction).
  // Returns false if the trace ends before that instruction.
  bool peek(std::uint32_t k, Insn& out);

  // Consumes `n` instructions; requires that many remain.
  void consume(std::uint32_t n);

 private:
  void refill(std::uint32_t needed_insns);

  std::optional<trace::BlockRunStream> stream_;  // interpreter backend
  const ReplayPlan* plan_ = nullptr;             // batched/compiled backend
  std::uint64_t next_event_ = 0;                 // plan cursor
  std::deque<trace::BlockRun> buffer_;
  std::uint32_t front_offset_ = 0;  // instructions consumed of buffer_.front()
  std::uint64_t buffered_insns_ = 0;
  bool stream_done_ = false;
};

struct FetchParams {
  std::uint32_t width = 16;         // instructions per cycle, max
  std::uint32_t max_branches = 3;   // branch limit per fetch
  std::uint32_t miss_penalty = 5;   // cycles per missing fetch request
  bool perfect_icache = false;      // Table 4 "Ideal" rows
  // When true, each of the two accessed lines that misses charges its own
  // penalty; the default charges one penalty per fetch request that misses.
  bool penalty_per_line = false;
};

struct FetchResult {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t fetch_requests = 0;
  std::uint64_t miss_requests = 0;   // requests with at least one line miss
  std::uint64_t lines_missed = 0;
  std::uint64_t tc_hits = 0;         // trace-cache runs only
  std::uint64_t tc_misses = 0;
  std::uint64_t tc_fills = 0;        // traces committed by the fill buffer
  std::uint64_t tc_probes = 0;       // trace-cache lookups (hits + misses)

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  double tc_hit_ratio() const {
    const std::uint64_t total = tc_hits + tc_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(tc_hits) /
                            static_cast<double>(total);
  }

  // Registers the raw event counts for machine-readable reporting.
  void export_counters(CounterSet& out) const;
};

// One SEQ.3 fetch cycle against `pipe`: decides how many instructions the
// unit supplies and which lines it touches. Exposed for reuse by the trace
// cache simulator and for unit tests.
struct Seq3Cycle {
  std::uint32_t supplied = 0;
  std::uint64_t line0 = 0;       // first accessed line address
  bool touched_line1 = false;    // fetch extended into the second line
};

// Optional capture of the instructions a fetch cycle supplied, plus the
// address of the instruction that follows the group (the fetch redirect
// target). Consumed by the speculative front end (src/frontend), which must
// resolve the group's branches after the cycle has advanced the pipe.
struct Seq3Group {
  std::vector<FetchPipe::Insn> insns;
  bool has_next = false;        // an instruction follows the group
  std::uint64_t next_addr = 0;  // its address (valid only when has_next)
};

Seq3Cycle seq3_fetch_cycle(FetchPipe& pipe, const FetchParams& params,
                           std::uint32_t line_bytes,
                           Seq3Group* group = nullptr);

// Runs the full trace through SEQ.3 backed by `cache` (reset first).
// `cache` may be null only with params.perfect_icache.
FetchResult run_seq3(const trace::BlockTrace& trace,
                     const cfg::ProgramImage& image,
                     const cfg::AddressMap& layout, const FetchParams& params,
                     ICache* cache);

// Batched/compiled replay of the same simulation from a pre-built plan
// (sim/replay.h); counters are bit-identical to the interpreter overload.
FetchResult run_seq3(const ReplayPlan& plan, const FetchParams& params,
                     ICache* cache);

}  // namespace stc::sim
