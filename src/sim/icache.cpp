#include "sim/icache.h"

#include "trace/fetch_stream.h"

namespace stc::sim {

void CacheStats::export_counters(CounterSet& out) const {
  out.add("cache_probes", accesses);
  out.add("cache_misses", misses);
  out.add("victim_hits", victim_hits);
}

void MissRateResult::export_counters(CounterSet& out) const {
  out.add("instructions", instructions);
  out.add("line_probes", line_accesses);
  out.add("cache_misses", misses);
}

ICache::ICache(const CacheGeometry& geometry, std::uint32_t victim_lines)
    : geometry_(geometry) {
  STC_REQUIRE(geometry.line_bytes > 0 &&
              (geometry.line_bytes & (geometry.line_bytes - 1)) == 0);
  STC_REQUIRE(geometry.assoc > 0);
  STC_REQUIRE(geometry.size_bytes % (geometry.line_bytes * geometry.assoc) ==
              0);
  sets_ = geometry.num_sets();
  STC_REQUIRE((sets_ & (sets_ - 1)) == 0);
  tags_.assign(std::size_t{sets_} * geometry.assoc, kInvalidTag);
  lru_.assign(tags_.size(), 0);
  victim_tags_.assign(victim_lines, kInvalidTag);
  victim_lru_.assign(victim_lines, 0);
}

void ICache::reset() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(lru_.begin(), lru_.end(), 0);
  std::fill(victim_tags_.begin(), victim_tags_.end(), kInvalidTag);
  std::fill(victim_lru_.begin(), victim_lru_.end(), 0);
  lru_clock_ = 0;
  stats_ = CacheStats{};
}

bool ICache::probe_victim(std::uint64_t line, std::uint64_t* promoted_from) {
  for (std::size_t i = 0; i < victim_tags_.size(); ++i) {
    if (victim_tags_[i] == line) {
      *promoted_from = i;
      return true;
    }
  }
  return false;
}

bool ICache::access(std::uint64_t addr) {
  ++stats_.accesses;
  ++lru_clock_;
  const std::uint64_t line = line_of(addr);
  const std::uint32_t set = static_cast<std::uint32_t>(line & (sets_ - 1));
  const std::size_t base = std::size_t{set} * geometry_.assoc;
  const auto notify = [&](bool hit) {
    if (observer_) observer_(line * geometry_.line_bytes, hit);
    return hit;
  };

  // Main-cache lookup.
  for (std::uint32_t way = 0; way < geometry_.assoc; ++way) {
    if (tags_[base + way] == line) {
      lru_[base + way] = lru_clock_;
      return notify(true);
    }
  }

  // Choose the LRU way of the set as the fill/eviction slot.
  std::uint32_t victim_way = 0;
  for (std::uint32_t way = 1; way < geometry_.assoc; ++way) {
    if (lru_[base + way] < lru_[base + victim_way]) victim_way = way;
  }
  const std::uint64_t evicted = tags_[base + victim_way];

  // Victim-cache rescue: swap the requested line back into the main cache
  // and demote the evicted line into the victim slot it occupied.
  if (!victim_tags_.empty()) {
    std::uint64_t slot = 0;
    if (probe_victim(line, &slot)) {
      ++stats_.victim_hits;
      victim_tags_[slot] = evicted;
      victim_lru_[slot] = lru_clock_;
      tags_[base + victim_way] = line;
      lru_[base + victim_way] = lru_clock_;
      return notify(true);
    }
  }

  ++stats_.misses;
  tags_[base + victim_way] = line;
  lru_[base + victim_way] = lru_clock_;

  // Demote the evicted line into the victim cache (LRU replacement there).
  if (!victim_tags_.empty() && evicted != kInvalidTag) {
    std::size_t slot = 0;
    for (std::size_t i = 1; i < victim_tags_.size(); ++i) {
      if (victim_lru_[i] < victim_lru_[slot]) slot = i;
    }
    victim_tags_[slot] = evicted;
    victim_lru_[slot] = lru_clock_;
  }
  return notify(false);
}

bool ICache::prefetch_fill(std::uint64_t addr) {
  const std::uint64_t line = line_of(addr);
  const std::uint32_t set = static_cast<std::uint32_t>(line & (sets_ - 1));
  const std::size_t base = std::size_t{set} * geometry_.assoc;

  // Already resident in the main cache: leave the LRU order alone (a
  // prefetch of a cached line is a no-op, not a demand reference).
  for (std::uint32_t way = 0; way < geometry_.assoc; ++way) {
    if (tags_[base + way] == line) return true;
  }

  ++lru_clock_;
  std::uint32_t victim_way = 0;
  for (std::uint32_t way = 1; way < geometry_.assoc; ++way) {
    if (lru_[base + way] < lru_[base + victim_way]) victim_way = way;
  }
  const std::uint64_t evicted = tags_[base + victim_way];

  if (!victim_tags_.empty()) {
    std::uint64_t slot = 0;
    if (probe_victim(line, &slot)) {
      victim_tags_[slot] = evicted;
      victim_lru_[slot] = lru_clock_;
      tags_[base + victim_way] = line;
      lru_[base + victim_way] = lru_clock_;
      return true;
    }
  }

  tags_[base + victim_way] = line;
  lru_[base + victim_way] = lru_clock_;
  if (!victim_tags_.empty() && evicted != kInvalidTag) {
    std::size_t slot = 0;
    for (std::size_t i = 1; i < victim_tags_.size(); ++i) {
      if (victim_lru_[i] < victim_lru_[slot]) slot = i;
    }
    victim_tags_[slot] = evicted;
    victim_lru_[slot] = lru_clock_;
  }
  return false;
}

bool ICache::contains(std::uint64_t addr) const {
  const std::uint64_t line = line_of(addr);
  const std::uint32_t set = static_cast<std::uint32_t>(line & (sets_ - 1));
  const std::size_t base = std::size_t{set} * geometry_.assoc;
  for (std::uint32_t way = 0; way < geometry_.assoc; ++way) {
    if (tags_[base + way] == line) return true;
  }
  for (std::uint64_t tag : victim_tags_) {
    if (tag == line) return true;
  }
  return false;
}

MissRateResult run_missrate(const trace::BlockTrace& trace,
                            const cfg::ProgramImage& image,
                            const cfg::AddressMap& layout, ICache& cache,
                            std::vector<std::uint64_t>* per_block_misses) {
  MissRateResult result;
  if (per_block_misses != nullptr) {
    per_block_misses->assign(image.num_blocks(), 0);
  }
  const std::uint32_t line = cache.geometry().line_bytes;
  trace::BlockRunStream stream(trace, image, layout);
  // Track the block id alongside the run for attribution.
  trace::BlockTrace::Cursor ids(trace);
  trace::BlockRun run;
  std::uint64_t prev_line = ~std::uint64_t{0};
  while (stream.next(run)) {
    const cfg::BlockId block = ids.next();
    result.instructions += run.insns;
    const std::uint64_t first = run.addr / line;
    const std::uint64_t last = (run.end_addr() - 1) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
      // Consecutive instructions on one line probe the cache once; a line
      // re-entered after leaving (even the same line) probes again.
      if (l == prev_line) continue;
      ++result.line_accesses;
      if (!cache.access(l * line)) {
        ++result.misses;
        if (per_block_misses != nullptr) ++(*per_block_misses)[block];
      }
      prev_line = l;
    }
  }
  return result;
}

}  // namespace stc::sim
