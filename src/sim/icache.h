// Instruction cache simulator.
//
// Supports the three hardware organizations Table 3 compares against code
// reordering: direct-mapped, 2-way (any power-of-two associativity with true
// LRU), and a fully-associative victim cache bolted onto the main cache.
// Addresses are byte addresses; the cache operates on line granularity.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "cfg/address_map.h"
#include "cfg/program.h"
#include "support/check.h"
#include "support/stats.h"
#include "trace/block_trace.h"

namespace stc::sim {

struct CacheGeometry {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t line_bytes = 64;  // 16 four-byte instructions (SEQ.3 default)
  std::uint32_t assoc = 1;        // ways; sets = size / (line * assoc)

  std::uint32_t num_sets() const { return size_bytes / (line_bytes * assoc); }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t victim_hits = 0;  // misses rescued by the victim cache

  double miss_ratio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }

  // Registers the raw event counts for machine-readable reporting.
  void export_counters(CounterSet& out) const;
};

class ICache {
 public:
  // victim_lines > 0 attaches a fully-associative LRU victim cache of that
  // many lines; lines evicted from the main cache land there, and a victim
  // hit swaps the line back (counted as a hit in the stats).
  explicit ICache(const CacheGeometry& geometry, std::uint32_t victim_lines = 0);

  const CacheGeometry& geometry() const { return geometry_; }

  // Accesses the line containing `addr`; returns true on hit. On a miss the
  // line is filled (allocate-on-miss).
  bool access(std::uint64_t addr);

  // Probes without side effects (used by tests).
  bool contains(std::uint64_t addr) const;

  // Installs the line containing `addr` without touching the access stats or
  // the observer: prefetches are not demand probes, so the Table 3/4 counter
  // contracts are unaffected. Returns true when the line was already present
  // (main or victim cache; a victim copy is promoted back, as in access());
  // on false the line has been filled, evicting per the normal LRU/victim
  // policy — prefetch pollution is modeled, prefetch hits are not counted.
  bool prefetch_fill(std::uint64_t addr);

  // Verification hook: called once per access() with the line-aligned
  // address and the outcome (true = hit, including victim-cache rescues),
  // after the stats counters have been updated. Lets an external checker
  // recount probes/misses independently of CacheStats.
  using AccessObserver = std::function<void(std::uint64_t line_addr, bool hit)>;
  void set_observer(AccessObserver observer) {
    observer_ = std::move(observer);
  }

  void reset();
  const CacheStats& stats() const { return stats_; }

 private:
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

  std::uint64_t line_of(std::uint64_t addr) const {
    return addr / geometry_.line_bytes;
  }

  // Returns true if found (and promotes in LRU order).
  bool probe_victim(std::uint64_t line, std::uint64_t* evicted_slot);

  CacheGeometry geometry_;
  std::uint32_t sets_;
  // tags_[set * assoc + way]; lru_[same index] holds a recency counter.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t lru_clock_ = 0;

  std::vector<std::uint64_t> victim_tags_;
  std::vector<std::uint64_t> victim_lru_;

  AccessObserver observer_;
  CacheStats stats_;
};

// ---- Table 3 driver --------------------------------------------------------

struct MissRateResult {
  std::uint64_t instructions = 0;
  std::uint64_t line_accesses = 0;
  std::uint64_t misses = 0;

  // The paper's Table 3 metric: i-cache misses per instruction executed,
  // reported as a percentage (e.g. 6.5 for the 8K/orig cell).
  double misses_per_100_insns() const {
    return instructions == 0 ? 0.0
                             : 100.0 * static_cast<double>(misses) /
                                   static_cast<double>(instructions);
  }

  // Registers the raw event counts for machine-readable reporting.
  void export_counters(CounterSet& out) const;
};

// Streams every executed instruction of the trace (under `layout`) through
// the cache, touching each line once per crossing. When `per_block_misses`
// is non-null it is resized to the block count and accumulates each miss
// against the block whose instructions triggered it (the paper's per-module
// miss attribution, Section 4 / tech report UPC-DAC-1998-56).
MissRateResult run_missrate(const trace::BlockTrace& trace,
                            const cfg::ProgramImage& image,
                            const cfg::AddressMap& layout, ICache& cache,
                            std::vector<std::uint64_t>* per_block_misses =
                                nullptr);

}  // namespace stc::sim
