// Trace cache simulator (Rotenberg, Bennett & Smith, MICRO'96) — the basic
// direct-mapped trace cache the paper combines with its software layouts.
//
// Each entry stores a dynamic sequence of up to `width` instructions spanning
// up to `max_branches` basic blocks. A fetch request first probes the trace
// cache; on a hit the entire stored trace is supplied in one cycle with no
// i-cache access or miss penalty (Section 7.3: "We did not count any miss
// penalty on a trace cache hit"). On a miss, fetching proceeds from the
// conventional i-cache through the SEQ.3 unit while a fill buffer constructs
// a new trace starting at the missed fetch address.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fetch_unit.h"

namespace stc::sim {

struct TraceCacheParams {
  std::uint32_t entries = 256;      // 256 x 16 insns x 4B = 16KB
  std::uint32_t width = 16;         // instructions per entry, max
  std::uint32_t max_branches = 3;   // branch limit per entry

  std::uint64_t capacity_bytes() const {
    return std::uint64_t{entries} * width * 4;
  }
};

class TraceCache {
 public:
  explicit TraceCache(const TraceCacheParams& params);

  const TraceCacheParams& params() const { return params_; }

  // Probes for a trace starting at `addr` whose stored path matches the
  // upcoming instructions of `pipe`. Returns the number of instructions the
  // hit supplies (0 on miss). Does not consume from the pipe.
  std::uint32_t probe(std::uint64_t addr, FetchPipe& pipe) const;

  // Verification counter: total probe() calls since construction. Every
  // fetch request probes exactly once, and commits can only follow probes,
  // so stored_traces() <= probes() must always hold.
  std::uint64_t probes() const { return probes_; }

  // Fill-buffer interface: feed the instructions the core fetch supplied this
  // cycle (in order). A fill begins at a miss address via begin_fill().
  bool fill_active() const { return fill_active_; }
  void begin_fill(std::uint64_t start_addr);
  void fill_push(const FetchPipe::Insn& insn);

  std::uint64_t stored_traces() const { return stored_; }

 private:
  struct Entry {
    bool valid = false;
    std::uint64_t start = 0;
    std::vector<std::uint64_t> addrs;  // per-instruction addresses
  };

  std::size_t index_of(std::uint64_t addr) const {
    return static_cast<std::size_t>((addr / 4) & (params_.entries - 1));
  }
  void commit_fill();

  TraceCacheParams params_;
  std::vector<Entry> entries_;
  mutable std::uint64_t probes_ = 0;  // probe() is logically const

  bool fill_active_ = false;
  std::uint64_t fill_start_ = 0;
  std::uint32_t fill_branches_ = 0;
  std::vector<std::uint64_t> fill_addrs_;
  std::uint64_t stored_ = 0;
};

// Full combined simulation: trace cache in front of SEQ.3 + i-cache.
// `cache` may be null only with params.perfect_icache ("Ideal" row).
FetchResult run_trace_cache(const trace::BlockTrace& trace,
                            const cfg::ProgramImage& image,
                            const cfg::AddressMap& layout,
                            const FetchParams& params,
                            const TraceCacheParams& tc_params, ICache* cache);

// Batched/compiled replay from a pre-built plan (sim/replay.h); counters are
// bit-identical to the interpreter overload.
FetchResult run_trace_cache(const ReplayPlan& plan, const FetchParams& params,
                            const TraceCacheParams& tc_params, ICache* cache);

}  // namespace stc::sim
