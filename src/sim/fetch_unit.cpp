#include "sim/fetch_unit.h"

#include "sim/replay.h"
#include "support/check.h"

namespace stc::sim {

void FetchResult::export_counters(CounterSet& out) const {
  out.add("instructions", instructions);
  out.add("cycles", cycles);
  out.add("fetch_requests", fetch_requests);
  out.add("miss_requests", miss_requests);
  out.add("lines_missed", lines_missed);
  out.add("tc_hits", tc_hits);
  out.add("tc_misses", tc_misses);
  out.add("tc_fills", tc_fills);
  out.add("tc_probes", tc_probes);
}

FetchPipe::FetchPipe(const trace::BlockTrace& trace,
                     const cfg::ProgramImage& image,
                     const cfg::AddressMap& layout) {
  stream_.emplace(trace, image, layout);
  refill(1);
}

FetchPipe::FetchPipe(const ReplayPlan& plan) : plan_(&plan) {
  refill(1);
}

void FetchPipe::refill(std::uint32_t needed_insns) {
  while (!stream_done_ && buffered_insns_ < needed_insns) {
    trace::BlockRun run;
    if (plan_ != nullptr) {
      if (next_event_ >= plan_->num_events()) {
        stream_done_ = true;
        break;
      }
      plan_->make_run(next_event_++, run);
    } else if (!stream_->next(run)) {
      stream_done_ = true;
      break;
    }
    buffered_insns_ += run.insns;
    buffer_.push_back(run);
  }
}

std::uint64_t FetchPipe::addr() const {
  STC_REQUIRE(!buffer_.empty());
  const trace::BlockRun& front = buffer_.front();
  return front.addr + std::uint64_t{front_offset_} * cfg::kInsnBytes;
}

bool FetchPipe::peek(std::uint32_t k, Insn& out) {
  refill(front_offset_ + k + 1);
  std::uint64_t index = front_offset_ + k;
  for (const trace::BlockRun& run : buffer_) {
    if (index >= run.insns) {
      index -= run.insns;
      continue;
    }
    out.addr = run.addr + index * cfg::kInsnBytes;
    out.block_end = index + 1 == run.insns;
    out.is_branch = out.block_end && run.ends_in_branch;
    out.taken = out.block_end && run.has_next && run.taken;
    out.kind = run.kind;
    return true;
  }
  return false;
}

void FetchPipe::consume(std::uint32_t n) {
  refill(front_offset_ + n);
  STC_REQUIRE(buffered_insns_ >= front_offset_ + n);
  front_offset_ += n;
  while (!buffer_.empty() && front_offset_ >= buffer_.front().insns) {
    front_offset_ -= buffer_.front().insns;
    buffered_insns_ -= buffer_.front().insns;
    buffer_.pop_front();
  }
  // Keep at least one unconsumed instruction buffered (when the stream has
  // more) so done() reflects true exhaustion.
  refill(front_offset_ + 1);
}

Seq3Cycle seq3_fetch_cycle(FetchPipe& pipe, const FetchParams& params,
                           std::uint32_t line_bytes, Seq3Group* group) {
  Seq3Cycle cycle;
  const std::uint64_t fetch_addr = pipe.addr();
  const std::uint64_t line_base = fetch_addr & ~std::uint64_t{line_bytes - 1};
  const std::uint64_t limit_addr = line_base + 2 * std::uint64_t{line_bytes};
  cycle.line0 = line_base;

  std::uint32_t branches = 0;
  std::uint64_t last_addr = fetch_addr;
  FetchPipe::Insn insn;
  while (cycle.supplied < params.width) {
    if (!pipe.peek(cycle.supplied, insn)) break;
    if (insn.addr >= limit_addr) break;  // beyond the two accessed lines
    ++cycle.supplied;
    last_addr = insn.addr;
    if (group != nullptr) group->insns.push_back(insn);
    if (insn.is_branch) ++branches;
    if (insn.taken) break;               // stop at the first taken transfer
    if (branches >= params.max_branches) break;
  }
  STC_DCHECK(cycle.supplied > 0);
  if (group != nullptr) {
    FetchPipe::Insn next;
    group->has_next = pipe.peek(cycle.supplied, next);
    group->next_addr = group->has_next ? next.addr : 0;
  }
  cycle.touched_line1 = last_addr >= line_base + line_bytes;
  pipe.consume(cycle.supplied);
  return cycle;
}

namespace {

// The simulation proper, backend-agnostic: both run_seq3 overloads feed it
// a FetchPipe and get bit-identical counters.
FetchResult run_seq3_pipe(FetchPipe& pipe, const FetchParams& params,
                          ICache* cache) {
  STC_REQUIRE(params.perfect_icache || cache != nullptr);
  if (cache != nullptr) cache->reset();
  const std::uint32_t line_bytes =
      cache != nullptr ? cache->geometry().line_bytes : 64;

  FetchResult result;
  while (!pipe.done()) {
    const Seq3Cycle cycle = seq3_fetch_cycle(pipe, params, line_bytes);
    result.instructions += cycle.supplied;
    ++result.fetch_requests;
    ++result.cycles;
    if (!params.perfect_icache) {
      std::uint32_t missed = cache->access(cycle.line0) ? 0 : 1;
      if (cycle.touched_line1 && !cache->access(cycle.line0 + line_bytes)) {
        ++missed;
      }
      if (missed > 0) {
        ++result.miss_requests;
        result.lines_missed += missed;
        result.cycles += params.penalty_per_line
                             ? std::uint64_t{params.miss_penalty} * missed
                             : params.miss_penalty;
      }
    }
  }
  return result;
}

}  // namespace

FetchResult run_seq3(const trace::BlockTrace& trace,
                     const cfg::ProgramImage& image,
                     const cfg::AddressMap& layout, const FetchParams& params,
                     ICache* cache) {
  FetchPipe pipe(trace, image, layout);
  return run_seq3_pipe(pipe, params, cache);
}

FetchResult run_seq3(const ReplayPlan& plan, const FetchParams& params,
                     ICache* cache) {
  FetchPipe pipe(plan);
  return run_seq3_pipe(pipe, params, cache);
}

}  // namespace stc::sim
