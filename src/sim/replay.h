// Batched and compiled trace replay.
//
// The interpreter path (trace::BlockRunStream and the per-event Cursor) pays
// a varint decode, two map lookups and a virtual-free-but-branchy state
// machine for every dynamic block. This module trades that for a one-time
// build: the whole BlockTrace is decoded chunk-by-chunk into one contiguous
// event slab, and the static per-block facts every simulator asks for
// (address, size, branch-ness, kind, end address) are resolved once into
// structure-of-arrays tables allocated from a bump arena. The replay inner
// loops then index flat arrays instead of re-deriving the same answers per
// event.
//
// Three modes, selected with STC_REPLAY (validated in src/support/env):
//   interp   - the original per-event streams; the reference semantics.
//   batched  - slab + SoA metadata; simulators consume the same BlockRun
//              values the interpreter would produce, via shared code paths.
//   compiled - batched, plus per-block cache-line membership (first/last
//              line index under a fixed line size) and the trace-cache word
//              index pre-resolved into flat tables keyed by block id, so the
//              Table 3 inner loop is table lookups plus counter updates.
//   auto     - the fastest mode (currently compiled).
//
// Every mode is required to produce counters bit-identical to the
// interpreter; verify::check_replay_modes and the STC_VERIFY=1 bench path
// prove it on every run, and tools/stc_fuzz --replay-diff hunts for
// divergences. The compiled-table build runs through faultpoint
// "replay.compile" so fault-injection tests can force the clean fallback to
// the interpreter.
//
// The missrate/sequentiality inner loops are span kernels over a raw event
// range with explicit carried state (replay_detail), which buys two things:
// an 8-wide SIMD fast path (portable GCC/Clang vector extensions, scalar
// fallback elsewhere — bit-identical by construction because integer sums
// are associative and the stateful cache probes stay scalar and in order),
// and streaming replay (replay_*_streamed) that pulls chunks off an on-disk
// trace through trace::TraceReader one at a time, so traces far larger than
// RAM replay with peak memory bounded by one chunk.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <type_traits>
#include <vector>

#include "cfg/address_map.h"
#include "cfg/program.h"
#include "sim/icache.h"
#include "support/check.h"
#include "support/error.h"
#include "trace/block_trace.h"
#include "trace/fetch_stream.h"
#include "trace/trace_io.h"

namespace stc::sim {

enum class ReplayMode { kInterp, kBatched, kCompiled };

// Inner-loop kernel selection. kSimd takes the 8-wide vector path where the
// toolchain provides vector extensions (GCC/Clang; define STC_REPLAY_NO_SIMD
// to opt out) and silently degrades to the scalar reference loop elsewhere;
// both produce bit-identical counters, so this is a speed knob, never a
// semantics knob. Benches use kScalar for their "interp-equivalent" rows.
enum class ReplayKernel { kScalar, kSimd };

const char* to_string(ReplayMode mode);

// Maps a validated STC_REPLAY value to a mode ("auto" resolves to the
// fastest mode). Rejects anything env::replay() would reject.
Result<ReplayMode> parse_replay_mode(const std::string& name);

// The process-wide mode from STC_REPLAY; requires a valid environment
// (bench binaries validate first, so a bad value exits 2 before this runs).
ReplayMode replay_mode_from_env();

// Bump allocator backing the replay tables. Allocations live until reset();
// growing never moves earlier allocations (each growth is a fresh slab).
// Only trivial types: nothing is destroyed, memory is simply dropped.
class ReplayArena {
 public:
  template <typename T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivial_v<T>);
    if (count == 0) return nullptr;
    void* p = raw_alloc(count * sizeof(T), alignof(T));
    std::memset(p, 0, count * sizeof(T));
    return static_cast<T*>(p);
  }

  // Discards all allocations but keeps the slabs for reuse.
  void reset();

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t num_slabs() const { return slabs_.size(); }

 private:
  static constexpr std::size_t kMinSlabBytes = 1 << 16;

  void* raw_alloc(std::size_t bytes, std::size_t align);

  struct Slab {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };
  std::vector<Slab> slabs_;
  std::size_t bytes_allocated_ = 0;
};

// Structure-of-arrays static-block metadata: everything BlockRunStream
// derives per event, resolved once per (image, layout).
class BlockMetaTable {
 public:
  void build(const cfg::ProgramImage& image, const cfg::AddressMap& layout,
             ReplayArena& arena);

  std::size_t size() const { return size_; }
  std::uint64_t addr(cfg::BlockId b) const { return addr_[b]; }
  std::uint64_t end_addr(cfg::BlockId b) const { return end_addr_[b]; }
  std::uint32_t insns(cfg::BlockId b) const { return insns_[b]; }
  bool ends_in_branch(cfg::BlockId b) const { return branch_[b] != 0; }
  cfg::BlockKind kind(cfg::BlockId b) const {
    return static_cast<cfg::BlockKind>(kind_[b]);
  }

 private:
  std::size_t size_ = 0;
  const std::uint64_t* addr_ = nullptr;
  const std::uint64_t* end_addr_ = nullptr;
  const std::uint32_t* insns_ = nullptr;
  const std::uint8_t* branch_ = nullptr;
  const std::uint8_t* kind_ = nullptr;
};

// The whole trace decoded into one contiguous block-id slab, chunk by chunk
// (each BlockTrace chunk restarts its delta base, so chunks decode
// independently — no per-event stream state survives the build).
class EventSlab {
 public:
  void build(const trace::BlockTrace& trace);
  // Takes ownership of a pre-decoded event vector (the on-disk plan-cache
  // load path); computes max_id like build() does.
  void adopt(std::vector<cfg::BlockId> events);

  std::size_t size() const { return events_.size(); }
  cfg::BlockId operator[](std::size_t i) const { return events_[i]; }
  const cfg::BlockId* data() const { return events_.data(); }
  // Largest id in the slab (0 for an empty slab): plans check it against the
  // metadata table once, so the hot loops can index unchecked.
  cfg::BlockId max_id() const { return max_id_; }

 private:
  std::vector<cfg::BlockId> events_;
  cfg::BlockId max_id_ = 0;
};

// Synthetic back-end cost model shared by every replay mode. The back end
// (src/backend) turns each dynamic block into one op whose latency derives
// from the block's size and event class (call/return ops pay an extra
// memory-latency charge) and whose register names derive deterministically
// from the block's layout address. The spec lives here — not in
// src/backend — because compiled plans pre-resolve these per-block values
// into flat tables, and sim must not depend on the back-end library.
struct BackendSpec {
  bool enabled = false;
  std::uint32_t base_latency = 1;  // cycles charged to every op
  std::uint32_t mem_latency = 3;   // extra cycles for call/return ops
  std::uint32_t size_shift = 2;    // + (insns >> size_shift) cycles

  // Feeds the ReplayPlanCache key: two distinct enabled configs must never
  // share a compiled plan (the tables bake the latencies in). Disabled
  // specs all fingerprint to 0 so backend-off callers keep their old keys.
  std::uint64_t fingerprint() const {
    if (!enabled) return 0;
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint64_t v : {std::uint64_t{1}, std::uint64_t{base_latency},
                            std::uint64_t{mem_latency},
                            std::uint64_t{size_shift}}) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    }
    return h;
  }

  friend bool operator==(const BackendSpec& a, const BackendSpec& b) {
    return a.enabled == b.enabled && a.base_latency == b.base_latency &&
           a.mem_latency == b.mem_latency && a.size_shift == b.size_shift;
  }
  friend bool operator!=(const BackendSpec& a, const BackendSpec& b) {
    return !(a == b);
  }
};

// The synthetic register file is deliberately tiny so real dependency
// chains form on DSS-sized traces.
inline constexpr std::uint32_t kBackendRegs = 16;

// Op latency for a block of `insns` instructions ending in `kind`. Clamped
// to >= 1 so a misconfigured spec can never mint zero-latency ops (which
// would let an op commit the cycle it issues).
inline std::uint32_t backend_op_latency(const BackendSpec& spec,
                                        std::uint32_t insns,
                                        cfg::BlockKind kind) {
  std::uint32_t latency = spec.base_latency + (insns >> spec.size_shift);
  if (kind == cfg::BlockKind::kCall || kind == cfg::BlockKind::kReturn) {
    latency += spec.mem_latency;
  }
  return latency == 0 ? 1 : latency;
}

// Synthetic register names for the op of a block at layout address `addr`.
// One fixed pure function of (addr, insns) — the interpreter path computes
// it per event, the compiled tables bake it in, and equality of the two is
// what check_replay_modes proves.
inline void backend_op_regs(std::uint64_t addr, std::uint32_t insns,
                            std::uint8_t* dest, std::uint8_t* src1,
                            std::uint8_t* src2) {
  const std::uint64_t word = addr / cfg::kInsnBytes;
  *dest = static_cast<std::uint8_t>(word % kBackendRegs);
  *src1 = static_cast<std::uint8_t>((word + insns) % kBackendRegs);
  *src2 = static_cast<std::uint8_t>((word / kBackendRegs + 7) % kBackendRegs);
}

// Compiled-mode flat tables keyed by block id: cache-line membership under
// one fixed line size (the grid's geometry) and the trace-cache word index.
class CompiledTable {
 public:
  // Fires faultpoint "replay.compile"; on a fault the table stays invalid
  // and the caller falls back to the interpreter.
  Status build(const BlockMetaTable& meta, std::uint32_t line_bytes,
               ReplayArena& arena);

  // Installs pre-built tables (the on-disk plan-cache load path). The
  // arrays must outlive the table — they live in the owning plan's arena.
  void adopt(std::uint32_t line_bytes, const std::uint64_t* first_line,
             const std::uint64_t* last_line, const std::uint64_t* word_index) {
    line_bytes_ = line_bytes;
    first_line_ = first_line;
    last_line_ = last_line;
    word_index_ = word_index;
  }

  bool valid() const { return line_bytes_ != 0; }
  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint64_t first_line(cfg::BlockId b) const { return first_line_[b]; }
  std::uint64_t last_line(cfg::BlockId b) const { return last_line_[b]; }
  // addr / kInsnBytes: what TraceCache::index_of reduces modulo its entry
  // count. Pre-resolved so set selection is one AND at simulation time.
  std::uint64_t word_index(cfg::BlockId b) const { return word_index_[b]; }

 private:
  std::uint32_t line_bytes_ = 0;
  const std::uint64_t* first_line_ = nullptr;
  const std::uint64_t* last_line_ = nullptr;
  const std::uint64_t* word_index_ = nullptr;
};

// Compiled back-end tables keyed by block id: op latency and synthetic
// register names, pre-resolved under one BackendSpec. The spec is stored so
// a consumer can detect (and the DCHECK in run_seq3_backend does detect) a
// plan built for a different back-end config — the stale-plan hazard the
// ReplayPlanCache key's backend fingerprint component exists to prevent.
class BackendTable {
 public:
  void build(const BlockMetaTable& meta, const BackendSpec& spec,
             ReplayArena& arena);

  // Installs pre-built tables (the on-disk plan-cache load path); the
  // arrays must outlive the table.
  void adopt(const BackendSpec& spec, const std::uint32_t* latency,
             const std::uint8_t* dest, const std::uint8_t* src1,
             const std::uint8_t* src2) {
    spec_ = spec;
    latency_ = latency;
    dest_ = dest;
    src1_ = src1;
    src2_ = src2;
    valid_ = true;
  }

  bool valid() const { return valid_; }
  const BackendSpec& spec() const { return spec_; }
  std::uint32_t latency(cfg::BlockId b) const { return latency_[b]; }
  std::uint8_t dest(cfg::BlockId b) const { return dest_[b]; }
  std::uint8_t src1(cfg::BlockId b) const { return src1_[b]; }
  std::uint8_t src2(cfg::BlockId b) const { return src2_[b]; }

 private:
  bool valid_ = false;
  BackendSpec spec_;
  const std::uint32_t* latency_ = nullptr;
  const std::uint8_t* dest_ = nullptr;
  const std::uint8_t* src1_ = nullptr;
  const std::uint8_t* src2_ = nullptr;
};

// One built replay: a mode, the shared event slab, and the tables for a
// specific (image, layout, line size). Immutable once built; safe to share
// across threads.
class ReplayPlan {
 public:
  ReplayMode mode() const { return mode_; }
  std::uint64_t num_events() const { return slab_->size(); }
  const EventSlab& slab() const { return *slab_; }
  const BlockMetaTable& meta() const { return meta_; }
  const CompiledTable& compiled() const { return compiled_; }
  const BackendTable& backend() const { return backend_; }

  // Materializes event `i` as exactly the BlockRun the interpreter's
  // BlockRunStream would produce — the contract the shared FetchPipe and
  // every differential oracle rest on.
  void make_run(std::uint64_t i, trace::BlockRun& out) const {
    const cfg::BlockId b = (*slab_)[static_cast<std::size_t>(i)];
    out.addr = meta_.addr(b);
    out.insns = meta_.insns(b);
    out.ends_in_branch = meta_.ends_in_branch(b);
    out.kind = meta_.kind(b);
    if (i + 1 < slab_->size()) {
      out.has_next = true;
      out.next_addr = meta_.addr((*slab_)[static_cast<std::size_t>(i + 1)]);
      out.taken = out.next_addr != meta_.end_addr(b);
    } else {
      out.has_next = false;
      out.taken = false;
      out.next_addr = 0;
    }
  }

 private:
  friend Result<ReplayPlan> build_replay_plan(
      ReplayMode mode, std::shared_ptr<const EventSlab> slab,
      const cfg::ProgramImage& image, const cfg::AddressMap& layout,
      std::uint32_t line_bytes, const BackendSpec& backend);
  friend class ReplayPlanCache;  // the disk-load path adopts tables directly

  ReplayMode mode_ = ReplayMode::kBatched;
  std::shared_ptr<const EventSlab> slab_;
  std::unique_ptr<ReplayArena> arena_;  // stable storage behind the tables
  BlockMetaTable meta_;
  CompiledTable compiled_;
  BackendTable backend_;
};

// Builds a plan for `mode` (kBatched or kCompiled). `line_bytes` is the
// cache-line size the compiled tables specialize for; 0 skips the line
// tables (layout-only plans, e.g. sequentiality). An enabled `backend`
// spec additionally bakes the back-end op tables into compiled plans. The
// slab may be shared between plans over the same trace.
Result<ReplayPlan> build_replay_plan(ReplayMode mode,
                                     std::shared_ptr<const EventSlab> slab,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     std::uint32_t line_bytes,
                                     const BackendSpec& backend = {});
Result<ReplayPlan> build_replay_plan(ReplayMode mode,
                                     const trace::BlockTrace& trace,
                                     const cfg::ProgramImage& image,
                                     const cfg::AddressMap& layout,
                                     std::uint32_t line_bytes,
                                     const BackendSpec& backend = {});

// Memoizes slabs per trace and plans per (mode, trace, image, layout, line
// size) — the bench grids evaluate many cells over few distinct layouts.
// Keys are CONTENT fingerprints, not object addresses: benches rebuild
// traces, images and layouts per cell, and the allocator happily recycles a
// dead layout's address for the next one — a pointer key would then serve a
// plan built for different code. Returns nullptr for kInterp and for a
// failed compiled build (fault injection); callers then take the
// interpreter path. Thread-safe.
class ReplayPlanCache {
 public:
  // Reads STC_PLAN_CACHE_DIR once at construction. When set, decoded event
  // slabs and compiled tables additionally persist to that directory
  // (host-endian, CRC-checked, atomic writes under fault prefix
  // "plancache.write"), keyed by the same content fingerprints — so plans
  // survive across bench *invocations*, not just across cells. A corrupt or
  // mismatched cache file is silently rebuilt and rewritten; the disk layer
  // can slow a run down but never change its counters.
  ReplayPlanCache();

  const ReplayPlan* get(ReplayMode mode, const trace::BlockTrace& trace,
                        const cfg::ProgramImage& image,
                        const cfg::AddressMap& layout,
                        std::uint32_t line_bytes,
                        const BackendSpec& backend = {});

 private:
  // The trailing uint64 is BackendSpec::fingerprint(): plans carrying
  // back-end tables bake the spec's latencies in, so two configs sharing a
  // (trace, image, layout, line) cell must still get distinct plans.
  using Key = std::tuple<int, std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint32_t, std::uint64_t>;
  std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<const EventSlab>> slabs_;
  std::map<Key, std::unique_ptr<const ReplayPlan>> plans_;  // null = fallback
  bool logged_fallback_ = false;
  std::string disk_dir_;  // "" = on-disk layer disabled
};

// Span kernels behind the replay loops, exposed so tests can pin SIMD
// against scalar over arbitrary span lengths (tails included). Each kernel
// consumes a raw event range and carries explicit state, so feeding a slab
// in one span or chunk-by-chunk composes to exactly the same counter and
// cache-access sequence.
namespace replay_detail {

struct MissSpanState {
  // The last line probed, carried ACROSS events and spans (consecutive
  // instructions on one line probe the cache once).
  std::uint64_t prev_line = ~std::uint64_t{0};
};

struct SeqSpanState {
  bool have_prev = false;
  cfg::BlockId prev = 0;  // last event of the previous span
};

// `tables` may be null (or built for a different line size); the kernel
// then derives line bounds from `meta` exactly like the batched loop.
void missrate_span(const cfg::BlockId* events, std::size_t n,
                   const BlockMetaTable& meta, const CompiledTable* tables,
                   std::uint32_t line_bytes, ICache& cache,
                   std::vector<std::uint64_t>* per_block_misses,
                   ReplayKernel kernel, MissSpanState& state,
                   MissRateResult& result);
void sequentiality_span(const cfg::BlockId* events, std::size_t n,
                        const BlockMetaTable& meta, ReplayKernel kernel,
                        SeqSpanState& state, trace::SequentialityStats& stats);

}  // namespace replay_detail

// Batched/compiled equivalents of run_missrate and measure_sequentiality
// (the fetch-unit and trace-cache plan overloads live next to their
// interpreter versions in fetch_unit.h / trace_cache.h / front_end.h).
MissRateResult replay_missrate(const ReplayPlan& plan, ICache& cache,
                               std::vector<std::uint64_t>* per_block_misses =
                                   nullptr);
trace::SequentialityStats replay_sequentiality(const ReplayPlan& plan);

// Streaming replay over an on-disk trace: chunks decode one at a time into
// a reused buffer and (for mapped files) drop their pages behind the pass,
// so peak resident memory is bounded by one chunk rather than the trace.
// Counters are bit-identical to replaying the fully-loaded trace — the same
// span kernels run over the same event sequence. `tables` may be null
// (address math from `meta`, the interp-equivalent configuration). Each
// decoded chunk is range-checked against `meta` before it is replayed, so a
// corrupt trace surfaces as a clean Status, never unchecked indexing.
Result<MissRateResult> replay_missrate_streamed(
    const trace::TraceReader& reader, const BlockMetaTable& meta,
    const CompiledTable* tables, ICache& cache,
    ReplayKernel kernel = ReplayKernel::kSimd);
Result<trace::SequentialityStats> replay_sequentiality_streamed(
    const trace::TraceReader& reader, const BlockMetaTable& meta,
    ReplayKernel kernel = ReplayKernel::kSimd);

}  // namespace stc::sim
