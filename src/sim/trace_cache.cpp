#include "sim/trace_cache.h"

#include "sim/replay.h"
#include "support/check.h"

namespace stc::sim {

TraceCache::TraceCache(const TraceCacheParams& params) : params_(params) {
  STC_REQUIRE(params.entries > 0 &&
              (params.entries & (params.entries - 1)) == 0);
  STC_REQUIRE(params.width > 0);
  entries_.resize(params.entries);
}

std::uint32_t TraceCache::probe(std::uint64_t addr, FetchPipe& pipe) const {
  ++probes_;
  const Entry& entry = entries_[index_of(addr)];
  if (!entry.valid || entry.start != addr) return 0;
  // Perfect multiple-branch prediction: the hit is valid only if the stored
  // path equals the actual upcoming path.
  FetchPipe::Insn insn;
  for (std::uint32_t k = 0; k < entry.addrs.size(); ++k) {
    if (!pipe.peek(k, insn)) return 0;
    if (insn.addr != entry.addrs[k]) return 0;
  }
  return static_cast<std::uint32_t>(entry.addrs.size());
}

void TraceCache::begin_fill(std::uint64_t start_addr) {
  STC_REQUIRE(!fill_active_);
  fill_active_ = true;
  fill_start_ = start_addr;
  fill_branches_ = 0;
  fill_addrs_.clear();
}

void TraceCache::fill_push(const FetchPipe::Insn& insn) {
  if (!fill_active_) return;
  fill_addrs_.push_back(insn.addr);
  if (insn.is_branch) ++fill_branches_;
  if (fill_addrs_.size() >= params_.width ||
      fill_branches_ >= params_.max_branches) {
    commit_fill();
  }
}

void TraceCache::commit_fill() {
  Entry& entry = entries_[index_of(fill_start_)];
  entry.valid = true;
  entry.start = fill_start_;
  entry.addrs = fill_addrs_;
  fill_active_ = false;
  ++stored_;
}

namespace {

// The simulation proper, backend-agnostic: both run_trace_cache overloads
// feed it a FetchPipe and get bit-identical counters.
FetchResult run_trace_cache_pipe(FetchPipe& pipe, const FetchParams& params,
                                 const TraceCacheParams& tc_params,
                                 ICache* cache) {
  STC_REQUIRE(params.perfect_icache || cache != nullptr);
  if (cache != nullptr) cache->reset();
  const std::uint32_t line_bytes =
      cache != nullptr ? cache->geometry().line_bytes : 64;

  TraceCache tc(tc_params);
  FetchResult result;
  while (!pipe.done()) {
    const std::uint64_t fetch_addr = pipe.addr();
    if (const std::uint32_t hit_len = tc.probe(fetch_addr, pipe)) {
      // Trace cache hit: the whole stored trace is supplied this cycle.
      ++result.tc_hits;
      ++result.fetch_requests;
      ++result.cycles;
      result.instructions += hit_len;
      // The fill buffer observes the retired instruction stream regardless
      // of where the instructions came from.
      if (tc.fill_active()) {
        FetchPipe::Insn insn;
        for (std::uint32_t k = 0; k < hit_len && pipe.peek(k, insn); ++k) {
          tc.fill_push(insn);
        }
      }
      pipe.consume(hit_len);
      continue;
    }
    ++result.tc_misses;

    // Miss: the sequential unit fetches from the i-cache while the fill
    // buffer constructs a new trace starting at this address.
    if (!tc.fill_active()) tc.begin_fill(fetch_addr);
    // Snapshot the upcoming instructions for the fill buffer before the
    // cycle consumes them.
    std::vector<FetchPipe::Insn> supplied_insns;
    {
      FetchPipe::Insn peeked;
      for (std::uint32_t k = 0; k < params.width && pipe.peek(k, peeked); ++k) {
        supplied_insns.push_back(peeked);
      }
    }
    const Seq3Cycle cycle = seq3_fetch_cycle(pipe, params, line_bytes);
    result.instructions += cycle.supplied;
    ++result.fetch_requests;
    ++result.cycles;
    if (!params.perfect_icache) {
      std::uint32_t missed = cache->access(cycle.line0) ? 0 : 1;
      if (cycle.touched_line1 && !cache->access(cycle.line0 + line_bytes)) {
        ++missed;
      }
      if (missed > 0) {
        ++result.miss_requests;
        result.lines_missed += missed;
        result.cycles += params.penalty_per_line
                             ? std::uint64_t{params.miss_penalty} * missed
                             : params.miss_penalty;
      }
    }
    for (std::uint32_t k = 0; k < cycle.supplied; ++k) {
      tc.fill_push(supplied_insns[k]);
    }
  }
  result.tc_fills = tc.stored_traces();
  result.tc_probes = tc.probes();
  return result;
}

}  // namespace

FetchResult run_trace_cache(const trace::BlockTrace& trace,
                            const cfg::ProgramImage& image,
                            const cfg::AddressMap& layout,
                            const FetchParams& params,
                            const TraceCacheParams& tc_params, ICache* cache) {
  FetchPipe pipe(trace, image, layout);
  return run_trace_cache_pipe(pipe, params, tc_params, cache);
}

FetchResult run_trace_cache(const ReplayPlan& plan, const FetchParams& params,
                            const TraceCacheParams& tc_params, ICache* cache) {
  FetchPipe pipe(plan);
  return run_trace_cache_pipe(pipe, params, tc_params, cache);
}

}  // namespace stc::sim
