#include "workload/streams.h"

#include <algorithm>
#include <string>

#include "db/tpcd/queries.h"
#include "support/check.h"

namespace stc::workload {

const char* to_string(MixKind kind) {
  switch (kind) {
    case MixKind::kDss:
      return "dss";
    case MixKind::kDssTrain:
      return "dss_train";
    case MixKind::kOltp:
      return "oltp";
  }
  return "?";
}

Result<MixKind> parse_mix(std::string_view name) {
  if (name == "dss") return MixKind::kDss;
  if (name == "dss_train") return MixKind::kDssTrain;
  if (name == "oltp") return MixKind::kOltp;
  return invalid_argument_error("tenant mix '" + std::string(name) +
                                "': expected one of dss|dss_train|oltp");
}

Result<std::vector<MixKind>> parse_mix_list(std::string_view list) {
  std::vector<MixKind> mixes;
  std::size_t begin = 0;
  while (begin <= list.size()) {
    const std::size_t comma = list.find(',', begin);
    const std::size_t end = comma == std::string_view::npos ? list.size() : comma;
    Result<MixKind> mix = parse_mix(list.substr(begin, end - begin));
    if (!mix.is_ok()) return mix.status();
    mixes.push_back(mix.value());
    if (comma == std::string_view::npos) break;
    begin = comma + 1;
  }
  if (mixes.empty()) {
    return invalid_argument_error("tenant mix list is empty");
  }
  return mixes;
}

db::tpcd::OltpStats record_oltp_stream(db::Database& db,
                                       const db::tpcd::OltpConfig& config,
                                       trace::BlockTrace& trace,
                                       profile::Profile* profile) {
  trace::TraceRecorder recorder(trace);
  cfg::TeeSink tee;
  tee.add(&recorder);
  if (profile != nullptr) tee.add(profile);
  return db::tpcd::run_oltp_workload(db, config, &tee);
}

namespace {

// Rotates a query set left by `tenant` positions, so same-mix tenants walk
// the same queries starting from different phases.
std::vector<int> rotate(std::vector<int> ids, std::uint32_t tenant) {
  STC_REQUIRE(!ids.empty());
  const std::size_t shift = tenant % ids.size();
  std::rotate(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(shift),
              ids.end());
  return ids;
}

}  // namespace

void record_stream(MixKind mix, std::uint32_t tenant, db::Database& btree,
                   db::Database& hash, const StreamConfig& config,
                   trace::BlockTrace& trace, profile::Profile* profile) {
  trace::TraceRecorder recorder(trace);
  cfg::TeeSink tee;
  tee.add(&recorder);
  if (profile != nullptr) tee.add(profile);
  switch (mix) {
    case MixKind::kDss: {
      const std::vector<int> ids = rotate(db::tpcd::test_set(), tenant);
      db::tpcd::run_queries(btree, ids, &tee);
      // Independent runs: no profile edge across the database switch.
      if (profile != nullptr) profile->break_chain();
      db::tpcd::run_queries(hash, ids, &tee);
      break;
    }
    case MixKind::kDssTrain:
      db::tpcd::run_queries(btree, rotate(db::tpcd::training_set(), tenant),
                            &tee);
      break;
    case MixKind::kOltp: {
      db::tpcd::OltpConfig oltp;
      oltp.transactions = config.oltp_transactions;
      oltp.seed = config.oltp_seed + tenant;
      db::tpcd::run_oltp_workload(btree, oltp, &tee);
      break;
    }
  }
}

std::vector<TenantStream> make_tenant_streams(
    std::uint32_t tenants, const std::vector<MixKind>& mixes,
    db::Database& btree, db::Database& hash, const StreamConfig& config,
    const cfg::ProgramImage& image, std::vector<profile::Profile>* profiles) {
  STC_REQUIRE(tenants > 0);
  STC_REQUIRE(!mixes.empty());
  std::vector<TenantStream> streams;
  streams.reserve(tenants);
  if (profiles != nullptr) {
    profiles->clear();
    profiles->reserve(tenants);
  }
  for (std::uint32_t t = 0; t < tenants; ++t) {
    const MixKind mix = mixes[t % mixes.size()];
    TenantStream stream;
    stream.name = std::string(to_string(mix)) + "#" + std::to_string(t);
    profile::Profile* profile = nullptr;
    if (profiles != nullptr) {
      profiles->emplace_back(image);
      profile = &profiles->back();
    }
    record_stream(mix, t, btree, hash, config, stream.trace, profile);
    streams.push_back(std::move(stream));
  }
  return streams;
}

}  // namespace stc::workload
