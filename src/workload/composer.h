// Multi-tenant workload composition: merging N client block streams into
// one trace the way a production database's scheduler would.
//
// The paper measures instruction fetch for a *single* DSS query stream, but
// its deployment setting serves many concurrent sessions: the OS context-
// switches between clients every scheduler quantum, and each switch drops
// the instruction working set of the preempted tenant on the floor. The
// composer models that by round-robin / Poisson / bursty / diurnal
// interleaving of per-tenant traces at a configurable quantum (in block
// events), producing a single BlockTrace plus run-length tenant provenance.
//
// Everything is deterministic under ComposeParams::seed — the same streams
// and params yield a byte-identical composed trace, which is what lets the
// replay engines and the layout oracle treat composed traces exactly like
// recorded ones.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"
#include "trace/block_trace.h"

namespace stc::workload {

// How the scheduler picks the next tenant and sizes its slice
// (STC_ARRIVAL: rr|poisson|bursty|diurnal).
enum class ArrivalKind {
  kRoundRobin,  // fixed cycle over live tenants, exact-quantum slices
  kPoisson,     // uniform tenant pick, exponential slice lengths (mean = quantum)
  kBursty,      // uniform tenant pick, Zipf-multiplied slices (heavy tail)
  kDiurnal,     // tenant popularity follows phase-shifted sinusoids over the run
};

const char* to_string(ArrivalKind kind);
Result<ArrivalKind> parse_arrival(std::string_view name);

// One client stream: a name (for reports) and its recorded block trace.
struct TenantStream {
  std::string name;
  trace::BlockTrace trace;
};

struct ComposeParams {
  // Scheduler quantum in block events per slice; 0 = unbounded (every
  // selected tenant runs to completion — with kRoundRobin this is plain
  // concatenation in stream order).
  std::uint64_t quantum_events = 1000;
  ArrivalKind arrival = ArrivalKind::kPoisson;
  std::uint64_t seed = 19990401;
};

// Run-length tenant provenance: `events` consecutive composed events belong
// to tenant `tenant` (an index into the input streams). Adjacent segments
// always name different tenants (same-tenant runs are merged).
struct TenantSegment {
  std::uint32_t tenant;
  std::uint64_t events;
};

struct ComposedTrace {
  trace::BlockTrace trace;
  std::vector<TenantSegment> segments;
  // Per-tenant event totals in the merge; conservation requires
  // tenant_events[i] == streams[i].trace.num_events().
  std::vector<std::uint64_t> tenant_events;
  // Number of tenant-to-tenant transitions (segments.size() - 1, or 0).
  std::uint64_t context_switches = 0;
};

// Merges the streams under the given scheduling model. Fault point
// "workload.compose" is checked once per scheduled slice, so an armed fault
// fails mid-compose with a structured error and no composed trace escapes.
Result<ComposedTrace> compose(const std::vector<TenantStream>& streams,
                              const ComposeParams& params);

// compose() then BlockTrace::save(path). The save is atomic (temp + rename)
// and composition happens entirely in memory first, so a fault at any point
// — mid-compose or mid-write — leaves no partial trace at `path`.
Status compose_to_file(const std::vector<TenantStream>& streams,
                       const ComposeParams& params, const std::string& path);

}  // namespace stc::workload
