// Per-tenant stream builders: turning the repository's workload mixes (the
// paper's DSS Training/Test query sets and the Section 8 OLTP transaction
// mix) into the TenantStream inputs the composer schedules.
//
// This is also where the OLTP block-stream recording lives — extracted from
// bench/oltp_compare.cpp so the bench and the composer share one copy of
// the record-through-a-tee logic instead of each re-implementing it.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "db/tpcd/oltp.h"
#include "db/tpcd/workload.h"
#include "profile/profile.h"
#include "support/error.h"
#include "trace/block_trace.h"
#include "workload/composer.h"

namespace stc::workload {

// A tenant's query mix (STC_TENANT_MIX entries):
//   dss       - the paper's Test set (queries 2,3,4,6,11,12,13,14,15,17 on
//               both the btree and hash databases),
//   dss_train - the Training set (queries 3,4,5,6,9, btree only),
//   oltp      - the Section 8 transaction mix (Zipf-skewed order-status /
//               stock-check / new-order).
enum class MixKind { kDss, kDssTrain, kOltp };

const char* to_string(MixKind kind);
Result<MixKind> parse_mix(std::string_view name);
// Parses a comma-separated STC_TENANT_MIX value ("dss,oltp").
Result<std::vector<MixKind>> parse_mix_list(std::string_view list);

struct StreamConfig {
  // OLTP transaction count per OLTP tenant (matches the historical
  // oltp_compare recording of 800).
  std::uint64_t oltp_transactions = 800;
  // Base OLTP seed; tenant t draws from oltp_seed + t so same-mix tenants
  // issue distinct transaction sequences.
  std::uint64_t oltp_seed = 7;
};

// Records the OLTP block stream: runs `config.transactions` transactions
// against `db` with the recorder (and, when non-null, `profile`) attached.
// This is the logic formerly embedded in bench/oltp_compare.cpp.
db::tpcd::OltpStats record_oltp_stream(db::Database& db,
                                       const db::tpcd::OltpConfig& config,
                                       trace::BlockTrace& trace,
                                       profile::Profile* profile);

// Records one tenant's stream for `mix`. DSS tenants rotate the query order
// by `tenant` so same-mix tenants still interleave distinct query phases;
// OLTP tenants perturb the transaction seed the same way.
void record_stream(MixKind mix, std::uint32_t tenant,
                   db::Database& btree, db::Database& hash,
                   const StreamConfig& config, trace::BlockTrace& trace,
                   profile::Profile* profile);

// Builds `tenants` streams, assigning `mixes` round-robin across tenants
// (tenant t gets mixes[t % mixes.size()]). When `profiles` is non-null it
// is cleared and filled with one per-tenant Profile over `image`, aligned
// with the returned streams — the input for tenant-partitioned layouts.
std::vector<TenantStream> make_tenant_streams(
    std::uint32_t tenants, const std::vector<MixKind>& mixes,
    db::Database& btree, db::Database& hash,
    const StreamConfig& config, const cfg::ProgramImage& image,
    std::vector<profile::Profile>* profiles = nullptr);

}  // namespace stc::workload
