#include "workload/composer.h"

#include <cmath>
#include <numbers>

#include "support/faultpoint.h"
#include "support/rng.h"

namespace stc::workload {

const char* to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kRoundRobin:
      return "rr";
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kDiurnal:
      return "diurnal";
  }
  return "?";
}

Result<ArrivalKind> parse_arrival(std::string_view name) {
  if (name == "rr") return ArrivalKind::kRoundRobin;
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "bursty") return ArrivalKind::kBursty;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  return invalid_argument_error("arrival model '" + std::string(name) +
                                "': expected one of rr|poisson|bursty|diurnal");
}

namespace {

// Picks the next tenant: an index into `live` (tenant ids with events left).
std::size_t pick_tenant(const ComposeParams& params, std::size_t num_streams,
                        const std::vector<std::uint32_t>& live,
                        std::size_t rr_next, std::uint64_t emitted,
                        std::uint64_t total, Rng& rng) {
  switch (params.arrival) {
    case ArrivalKind::kRoundRobin:
      return rr_next % live.size();
    case ArrivalKind::kPoisson:
    case ArrivalKind::kBursty:
      return static_cast<std::size_t>(rng.uniform(live.size()));
    case ArrivalKind::kDiurnal: {
      // Tenant g's popularity peaks when run progress reaches phase g/G — a
      // raised cosine per tenant, so the active-session mix drifts across
      // the composed run the way load drifts across a day.
      const double progress =
          total == 0 ? 0.0
                     : static_cast<double>(emitted) / static_cast<double>(total);
      double sum = 0.0;
      std::vector<double> weight(live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        const double phase = static_cast<double>(live[i]) /
                             static_cast<double>(num_streams);
        weight[i] = 1.0 + 0.9 * std::cos(2.0 * std::numbers::pi *
                                         (progress - phase));
        sum += weight[i];
      }
      double draw = rng.uniform_double() * sum;
      for (std::size_t i = 0; i < live.size(); ++i) {
        draw -= weight[i];
        if (draw < 0.0) return i;
      }
      return live.size() - 1;  // fp round-off on the last weight
    }
  }
  return 0;
}

// Draws the slice length in events for the selected tenant (>= 1; the
// caller clamps to the tenant's remaining events).
std::uint64_t pick_slice(const ComposeParams& params, Rng& rng) {
  switch (params.arrival) {
    case ArrivalKind::kRoundRobin:
    case ArrivalKind::kDiurnal:
      return params.quantum_events;
    case ArrivalKind::kPoisson: {
      // Exponential service time with mean = quantum.
      const double len = -static_cast<double>(params.quantum_events) *
                         std::log1p(-rng.uniform_double());
      return len < 1.0 ? 1 : static_cast<std::uint64_t>(len);
    }
    case ArrivalKind::kBursty: {
      // Heavy-tailed multiple of the quantum: most slices are one quantum,
      // a Zipf tail runs up to 8x before yielding.
      return params.quantum_events * rng.zipf(8, 1.2);
    }
  }
  return params.quantum_events;
}

}  // namespace

Result<ComposedTrace> compose(const std::vector<TenantStream>& streams,
                              const ComposeParams& params) {
  if (streams.empty()) {
    return invalid_argument_error(
        "compose: expected at least one tenant stream");
  }
  if (streams.size() > 64) {
    return invalid_argument_error("compose: " + std::to_string(streams.size()) +
                                  " tenant streams exceeds the limit of 64");
  }

  ComposedTrace out;
  out.tenant_events.assign(streams.size(), 0);

  std::vector<trace::BlockTrace::Cursor> cursors;
  std::vector<std::uint64_t> remaining;
  std::vector<std::uint32_t> live;
  std::uint64_t total = 0;
  cursors.reserve(streams.size());
  for (std::uint32_t t = 0; t < streams.size(); ++t) {
    cursors.emplace_back(streams[t].trace);
    remaining.push_back(streams[t].trace.num_events());
    total += remaining.back();
    if (remaining.back() > 0) live.push_back(t);
  }

  Rng rng(params.seed);
  std::uint64_t emitted = 0;
  std::size_t rr_next = 0;

  while (!live.empty()) {
    if (Status s = fault::fail_if("workload.compose",
                                  "scheduling a tenant slice");
        !s.is_ok()) {
      return s;
    }

    const std::size_t pos = pick_tenant(params, streams.size(), live, rr_next,
                                        emitted, total, rng);
    const std::uint32_t tenant = live[pos];

    std::uint64_t slice =
        params.quantum_events == 0 ? remaining[tenant] : pick_slice(params, rng);
    if (slice > remaining[tenant]) slice = remaining[tenant];

    for (std::uint64_t i = 0; i < slice; ++i) {
      out.trace.append(cursors[tenant].next());
    }
    remaining[tenant] -= slice;
    out.tenant_events[tenant] += slice;
    emitted += slice;
    if (!out.segments.empty() && out.segments.back().tenant == tenant) {
      out.segments.back().events += slice;
    } else {
      out.segments.push_back(TenantSegment{tenant, slice});
    }

    if (remaining[tenant] == 0) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pos));
      rr_next = pos;  // the erased slot's successor shifted into `pos`
    } else {
      rr_next = pos + 1;
    }
  }

  out.context_switches =
      out.segments.empty() ? 0 : out.segments.size() - 1;
  return out;
}

Status compose_to_file(const std::vector<TenantStream>& streams,
                       const ComposeParams& params, const std::string& path) {
  Result<ComposedTrace> composed = compose(streams, params);
  if (!composed.is_ok()) {
    return composed.status().with_context("composing '" + path + "'");
  }
  return composed.value().trace.save(path);
}

}  // namespace stc::workload
