// Bounded out-of-order (or in-order) execution back end.
//
// The paper's evaluation stops at fetch bandwidth; this module carries it
// through to IPC. Each dynamic basic block becomes one op (decode granule)
// whose latency derives from the block's size and event class and whose
// synthetic register names derive from its layout address — the cost model
// is sim::BackendSpec, shared with the replay plans so compiled replay can
// pre-resolve the per-block values (sim/replay.h).
//
// The machine is deliberately small but honest about the bottlenecks that
// matter for a fetch study:
//   dispatch — up to decode_width ops/cycle enter the issue queue and the
//              reorder buffer; a full IQ or ROB stalls dispatch, and a full
//              decode FIFO back-pressures the front end (fetch stalls).
//   issue    — a scoreboard over kBackendRegs synthetic registers tracks
//              each op's two source dependencies by producer sequence
//              number (rename-style: W-A-W and W-A-R never stall, only true
//              dependencies wait). kOoo issues up to issue_width ready ops
//              in age order from anywhere in the queue; kInOrder only from
//              the queue head, stopping at the first not-ready op.
//   commit   — up to commit_width completed ops retire per cycle, strictly
//              in program (= trace) order through the ROB.
//
// Selected with STC_BACKEND=off|inorder|ooo (STC_IQ_DEPTH / STC_ROB_DEPTH
// size the window); `off` — the default — keeps every existing bench
// byte-identical because the pipeline is never constructed. Dispatch runs
// through faultpoint "backend.dispatch" so fault-injection tests can prove
// a failed dispatch surfaces as a structured job failure, not a silently
// different measurement.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/replay.h"
#include "support/error.h"
#include "support/stats.h"

namespace stc::backend {

enum class BackendKind { kOff, kInOrder, kOoo };

const char* to_string(BackendKind kind);
// Maps "off"/"inorder"/"ooo" to a kind; returns false on anything else.
bool parse_backend(const char* name, BackendKind* out);

struct BackendParams {
  BackendKind kind = BackendKind::kOff;
  std::uint32_t decode_width = 4;      // ops dispatched per cycle, max
  std::uint32_t issue_width = 4;       // ops issued per cycle, max
  std::uint32_t commit_width = 4;      // ops retired per cycle, max
  std::uint32_t iq_depth = 16;         // issue-queue entries
  std::uint32_t rob_depth = 64;        // reorder-buffer entries
  std::uint32_t fetch_buffer_ops = 32; // decode FIFO; full => fetch stalls
  std::uint32_t base_latency = 1;      // see sim::BackendSpec
  std::uint32_t mem_latency = 3;
  std::uint32_t size_shift = 2;

  bool off() const { return kind == BackendKind::kOff; }

  // The replay-facing cost model: what compiled plans bake into their
  // back-end tables and what the plan cache keys on.
  sim::BackendSpec spec() const {
    sim::BackendSpec spec;
    spec.enabled = !off();
    spec.base_latency = base_latency;
    spec.mem_latency = mem_latency;
    spec.size_shift = size_shift;
    return spec;
  }

  // Reads the bench knobs (validated by support/env):
  //   STC_BACKEND   - off|inorder|ooo (default off).
  //   STC_IQ_DEPTH  - issue-queue depth in [1, 1024] (default 16).
  //   STC_ROB_DEPTH - reorder-buffer depth in [1, 4096] (default 64).
  // A malformed knob is a structured error (a typo must not silently
  // measure the baseline); from_environment() prints it and exits 2.
  static Result<BackendParams> try_from_environment();
  static BackendParams from_environment();
};

// One decoded op: a whole basic block as the back end sees it.
struct BackendOp {
  std::uint64_t addr = 0;     // block start address under the layout
  std::uint32_t insns = 0;    // instructions the op retires
  std::uint32_t latency = 1;  // execution cycles once issued
  std::uint8_t dest = 0;      // synthetic register names (sim/replay.h)
  std::uint8_t src1 = 0;
  std::uint8_t src2 = 0;
};

struct BackendStats {
  std::uint64_t cycles = 0;            // unified pipeline clock
  std::uint64_t retired_ops = 0;
  std::uint64_t retired_insns = 0;
  std::uint64_t dispatched_ops = 0;
  std::uint64_t issued_ops = 0;
  std::uint64_t iq_peak = 0;           // high-water marks
  std::uint64_t rob_peak = 0;
  std::uint64_t iq_occupancy_sum = 0;  // summed per cycle; avg = sum/cycles
  std::uint64_t rob_occupancy_sum = 0;
  std::uint64_t frontend_stall_cycles = 0;  // fetch ready but FIFO full
  std::uint64_t dispatch_stall_iq = 0;      // dispatch blocked on IQ space
  std::uint64_t dispatch_stall_rob = 0;     // dispatch blocked on ROB space
  std::uint64_t issue_stall_cycles = 0;     // waiting ops, none ready
  std::uint64_t empty_cycles = 0;           // nothing in flight

  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(retired_insns) /
                             static_cast<double>(cycles);
  }

  // Registers the raw event counts for machine-readable reporting.
  void export_counters(CounterSet& out) const;
};

// The issue/commit machine. Drive it one cycle at a time: step(now) commits
// then issues, dispatch() inserts decoded ops (call can_dispatch() first).
// Purely deterministic — no iteration-order dependence on anything but the
// dispatch sequence.
class Backend {
 public:
  Backend(const BackendParams& params, BackendStats* stats);

  bool iq_full() const { return iq_.size() >= params_.iq_depth; }
  bool rob_full() const { return in_flight() >= params_.rob_depth; }
  bool can_dispatch() const { return !iq_full() && !rob_full(); }

  // Inserts one op at the window tail. Requires can_dispatch(). Fires
  // faultpoint "backend.dispatch"; on a fault the op is NOT inserted and
  // the caller must abandon the run (PR 4 error contract).
  Status dispatch(const BackendOp& op);

  // One cycle at time `now`: retire up to commit_width completed ops in
  // program order, then issue up to issue_width ready ops. Also samples the
  // occupancy statistics for this cycle.
  void step(std::uint64_t now);

  bool empty() const { return retire_ == next_seq_; }
  std::uint64_t in_flight() const { return next_seq_ - retire_; }
  std::size_t iq_size() const { return iq_.size(); }

  // Test hook: observes every op at commit, in commit order.
  using CommitObserver = std::function<void(const BackendOp&)>;
  void set_commit_observer(CommitObserver observer) {
    observer_ = std::move(observer);
  }

 private:
  struct RobEntry {
    std::uint64_t seq = kNoSeq;
    BackendOp op;
    std::uint64_t dep1 = kNoSeq;  // producer sequence numbers, or kNoSeq
    std::uint64_t dep2 = kNoSeq;
    bool issued = false;
    std::uint64_t done_cycle = 0;
  };
  static constexpr std::uint64_t kNoSeq = ~std::uint64_t{0};

  bool dep_satisfied(std::uint64_t dep, std::uint64_t now) const;

  const BackendParams params_;
  BackendStats* stats_;
  std::vector<RobEntry> rob_;             // slot = seq % rob_depth
  std::deque<std::uint64_t> iq_;          // waiting seqs, dispatch order
  std::vector<std::uint64_t> last_writer_;  // reg -> youngest producer seq
  std::uint64_t next_seq_ = 0;
  std::uint64_t retire_ = 0;
  CommitObserver observer_;
};

}  // namespace stc::backend
