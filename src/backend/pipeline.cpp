#include "backend/pipeline.h"

#include <deque>

#include "frontend/engine.h"
#include "support/check.h"

namespace stc::backend {

namespace {

using sim::FetchPipe;

// Produces the BackendOp for each completed basic block, in trace order.
// Two modes behind one call: the interpreter path computes latency and
// register names from the shared BackendSpec helpers; the plan path walks
// the event slab in lockstep with the fetch stream and reads the values
// from the compiled back-end tables when the plan carries them (batched
// plans compute, from the same metadata). Identical results by
// construction — the DCHECKs pin the lockstep.
class OpSource {
 public:
  explicit OpSource(const sim::BackendSpec& spec) : spec_(spec) {}
  OpSource(const sim::BackendSpec& spec, const sim::ReplayPlan& plan)
      : spec_(spec), plan_(&plan) {
    if (plan.backend().valid()) {
      // The plan cache keys on the spec fingerprint, so a plan with tables
      // for a different config can only reach here through a caller bug.
      STC_DCHECK(plan.backend().spec() == spec);
      use_table_ = true;
    }
  }

  BackendOp next(std::uint64_t block_start, std::uint32_t block_insns,
                 cfg::BlockKind kind) {
    BackendOp op;
    op.addr = block_start;
    op.insns = block_insns;
    if (plan_ != nullptr) {
      const cfg::BlockId b = plan_->slab()[cursor_++];
      STC_DCHECK(plan_->meta().addr(b) == block_start);
      STC_DCHECK(plan_->meta().insns(b) == block_insns);
      if (use_table_) {
        const sim::BackendTable& table = plan_->backend();
        op.latency = table.latency(b);
        op.dest = table.dest(b);
        op.src1 = table.src1(b);
        op.src2 = table.src2(b);
        return op;
      }
    }
    op.latency = sim::backend_op_latency(spec_, block_insns, kind);
    sim::backend_op_regs(block_start, block_insns, &op.dest, &op.src1,
                         &op.src2);
    return op;
  }

 private:
  const sim::BackendSpec spec_;
  const sim::ReplayPlan* plan_ = nullptr;
  bool use_table_ = false;
  std::size_t cursor_ = 0;
};

Result<BackendResult> run_pipe(FetchPipe& pipe, OpSource& source,
                               const sim::FetchParams& fetch_params,
                               const frontend::FrontEndParams& fe_params,
                               const BackendParams& backend_params,
                               sim::ICache* cache) {
  STC_REQUIRE(!backend_params.off());
  STC_REQUIRE(fetch_params.perfect_icache || cache != nullptr);
  if (cache != nullptr) cache->reset();
  const std::uint32_t line_bytes =
      cache != nullptr ? cache->geometry().line_bytes : 64;

  BackendResult result;
  frontend::Engine eng(fetch_params, fe_params, cache, line_bytes,
                       &result.frontend);
  Backend backend(backend_params, &result.backend);
  std::deque<BackendOp> fifo;  // decoded ops awaiting dispatch
  sim::Seq3Group group;
  std::uint64_t now = 0;
  std::uint64_t fetch_ready = 0;  // cycle the fetch unit is free again
  // A basic block may straddle fetch groups (width or line limits); decode
  // emits its op only once the block's last instruction arrives.
  bool in_block = false;
  std::uint64_t block_start = 0;
  std::uint32_t block_insns = 0;

  while (!pipe.done() || !fifo.empty() || !backend.empty()) {
    backend.step(now);

    if (!pipe.done() && now >= fetch_ready) {
      if (fifo.size() < backend_params.fetch_buffer_ops) {
        group.insns.clear();
        const sim::Seq3Cycle cycle =
            seq3_fetch_cycle(pipe, fetch_params, line_bytes, &group);
        result.fetch.instructions += cycle.supplied;
        ++result.fetch.fetch_requests;
        std::uint64_t stall = 0;
        if (!fetch_params.perfect_icache) {
          stall = frontend::charge_icache(eng, cycle, fetch_params,
                                          line_bytes, now, &result.fetch,
                                          &result.frontend);
        }
        eng.advance(cycle.supplied);
        stall += eng.resolve(group.insns, group.has_next, group.next_addr);
        fetch_ready = now + 1 + stall;
        eng.run_ahead(pipe, fetch_ready);
        for (const FetchPipe::Insn& insn : group.insns) {
          if (!in_block) {
            in_block = true;
            block_start = insn.addr;
            block_insns = 0;
          }
          ++block_insns;
          if (insn.block_end) {
            fifo.push_back(source.next(block_start, block_insns, insn.kind));
            in_block = false;
          }
        }
      } else {
        ++result.backend.frontend_stall_cycles;  // back-pressure on fetch
      }
    }

    std::uint32_t dispatched = 0;
    while (dispatched < backend_params.decode_width && !fifo.empty()) {
      if (!backend.can_dispatch()) {
        if (backend.rob_full()) {
          ++result.backend.dispatch_stall_rob;
        } else {
          ++result.backend.dispatch_stall_iq;
        }
        break;
      }
      if (Status s = backend.dispatch(fifo.front()); !s.is_ok()) {
        return s.with_context("backend pipeline");
      }
      fifo.pop_front();
      ++dispatched;
    }

    ++now;
  }
  STC_DCHECK(!in_block);  // blocks never end mid-trace (every block >= 1 insn)
  result.fetch.cycles = now;
  result.backend.cycles = now;
  return result;
}

}  // namespace

Result<BackendResult> run_seq3_backend(const trace::BlockTrace& trace,
                                       const cfg::ProgramImage& image,
                                       const cfg::AddressMap& layout,
                                       const sim::FetchParams& fetch_params,
                                       const frontend::FrontEndParams& fe_params,
                                       const BackendParams& backend_params,
                                       sim::ICache* cache) {
  FetchPipe pipe(trace, image, layout);
  OpSource source(backend_params.spec());
  return run_pipe(pipe, source, fetch_params, fe_params, backend_params,
                  cache);
}

Result<BackendResult> run_seq3_backend(const sim::ReplayPlan& plan,
                                       const sim::FetchParams& fetch_params,
                                       const frontend::FrontEndParams& fe_params,
                                       const BackendParams& backend_params,
                                       sim::ICache* cache) {
  FetchPipe pipe(plan);
  OpSource source(backend_params.spec(), plan);
  return run_pipe(pipe, source, fetch_params, fe_params, backend_params,
                  cache);
}

}  // namespace stc::backend
