#include "backend/backend.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "support/check.h"
#include "support/env.h"
#include "support/faultpoint.h"

namespace stc::backend {

const char* to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kOff: return "off";
    case BackendKind::kInOrder: return "inorder";
    case BackendKind::kOoo: return "ooo";
  }
  return "?";
}

bool parse_backend(const char* name, BackendKind* out) {
  const std::string v(name);
  if (v == "off") {
    *out = BackendKind::kOff;
  } else if (v == "inorder") {
    *out = BackendKind::kInOrder;
  } else if (v == "ooo") {
    *out = BackendKind::kOoo;
  } else {
    return false;
  }
  return true;
}

Result<BackendParams> BackendParams::try_from_environment() {
  BackendParams params;
  Result<std::string> kind = env::backend();
  if (!kind.is_ok()) return kind.status();
  const bool ok = parse_backend(kind.value().c_str(), &params.kind);
  STC_CHECK_MSG(ok, "env::backend() returned an unknown backend name");
  Result<std::uint32_t> iq = env::iq_depth();
  if (!iq.is_ok()) return iq.status();
  params.iq_depth = iq.value();
  Result<std::uint32_t> rob = env::rob_depth();
  if (!rob.is_ok()) return rob.status();
  params.rob_depth = rob.value();
  return params;
}

BackendParams BackendParams::from_environment() {
  Result<BackendParams> params = try_from_environment();
  if (!params.is_ok()) {
    std::fprintf(stderr, "environment: %s\n",
                 params.status().to_string().c_str());
    std::exit(2);
  }
  return params.value();
}

void BackendStats::export_counters(CounterSet& out) const {
  out.add("be_cycles", cycles);
  out.add("be_retired_ops", retired_ops);
  out.add("be_retired_insns", retired_insns);
  out.add("be_dispatched_ops", dispatched_ops);
  out.add("be_issued_ops", issued_ops);
  out.add("be_iq_peak", iq_peak);
  out.add("be_rob_peak", rob_peak);
  out.add("be_iq_occupancy", iq_occupancy_sum);
  out.add("be_rob_occupancy", rob_occupancy_sum);
  out.add("be_frontend_stalls", frontend_stall_cycles);
  out.add("be_dispatch_stall_iq", dispatch_stall_iq);
  out.add("be_dispatch_stall_rob", dispatch_stall_rob);
  out.add("be_issue_stalls", issue_stall_cycles);
  out.add("be_empty_cycles", empty_cycles);
}

Backend::Backend(const BackendParams& params, BackendStats* stats)
    : params_(params),
      stats_(stats),
      rob_(params.rob_depth),
      last_writer_(sim::kBackendRegs, kNoSeq) {
  STC_REQUIRE(params.kind != BackendKind::kOff);
  STC_REQUIRE(params.decode_width >= 1);
  STC_REQUIRE(params.issue_width >= 1);
  STC_REQUIRE(params.commit_width >= 1);
  STC_REQUIRE(params.iq_depth >= 1);
  STC_REQUIRE(params.rob_depth >= 1);
  STC_REQUIRE(params.fetch_buffer_ops >= 1);
  STC_REQUIRE(stats != nullptr);
}

bool Backend::dep_satisfied(std::uint64_t dep, std::uint64_t now) const {
  if (dep == kNoSeq) return true;
  const RobEntry& entry = rob_[dep % params_.rob_depth];
  // The producer retired and its slot was reused (or cleared): the value
  // has long been architectural.
  if (entry.seq != dep) return true;
  if (dep < retire_) return true;  // retired, slot not yet reused
  return entry.issued && now >= entry.done_cycle;
}

Status Backend::dispatch(const BackendOp& op) {
  if (Status s = fault::fail_if("backend.dispatch",
                                "dispatching a decoded op");
      !s.is_ok()) {
    return s;
  }
  STC_REQUIRE(can_dispatch());
  RobEntry& entry = rob_[next_seq_ % params_.rob_depth];
  entry.seq = next_seq_;
  entry.op = op;
  // Rename-style dependence capture: only the youngest prior writer of each
  // source matters, and writing dest never waits on anything.
  entry.dep1 = last_writer_[op.src1];
  entry.dep2 = last_writer_[op.src2];
  entry.issued = false;
  entry.done_cycle = 0;
  last_writer_[op.dest] = next_seq_;
  iq_.push_back(next_seq_);
  ++next_seq_;
  ++stats_->dispatched_ops;
  stats_->iq_peak = std::max<std::uint64_t>(stats_->iq_peak, iq_.size());
  stats_->rob_peak = std::max(stats_->rob_peak, in_flight());
  return Status::ok();
}

void Backend::step(std::uint64_t now) {
  // Commit: in program order, up to commit_width completed ops.
  std::uint32_t committed = 0;
  while (committed < params_.commit_width && retire_ < next_seq_) {
    const RobEntry& head = rob_[retire_ % params_.rob_depth];
    STC_DCHECK(head.seq == retire_);
    if (!head.issued || now < head.done_cycle) break;
    ++stats_->retired_ops;
    stats_->retired_insns += head.op.insns;
    if (observer_) observer_(head.op);
    ++retire_;
    ++committed;
  }

  // Issue: age order over the queue. In-order machines stop at the first
  // not-ready op (the queue head is the oldest waiting op).
  std::uint32_t issued = 0;
  for (auto it = iq_.begin(); it != iq_.end() && issued < params_.issue_width;) {
    RobEntry& entry = rob_[*it % params_.rob_depth];
    if (dep_satisfied(entry.dep1, now) && dep_satisfied(entry.dep2, now)) {
      entry.issued = true;
      entry.done_cycle = now + std::max<std::uint32_t>(1, entry.op.latency);
      ++issued;
      ++stats_->issued_ops;
      it = iq_.erase(it);
    } else if (params_.kind == BackendKind::kInOrder) {
      break;
    } else {
      ++it;
    }
  }
  if (issued == 0 && !iq_.empty()) ++stats_->issue_stall_cycles;

  // Occupancy sampling for this cycle.
  stats_->iq_occupancy_sum += iq_.size();
  stats_->rob_occupancy_sum += in_flight();
  if (empty()) ++stats_->empty_cycles;
}

}  // namespace stc::backend
