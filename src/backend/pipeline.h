// The unified fetch→decode→issue→commit pipeline: the PR 3 speculative
// front end (SEQ.3 + predictor/BTB/RAS + FDIP) feeding the bounded back end
// under one clock.
//
// Per cycle:
//   1. the back end commits and issues (backend.h),
//   2. if the fetch unit is not mid-stall and the decode FIFO has room, one
//      SEQ.3 fetch cycle runs — i-cache misses, late-prefetch waits and
//      mispredict bubbles delay the NEXT fetch rather than freezing the
//      whole machine (the back end keeps draining during front-end stalls,
//      which is exactly the decoupling a fetch-bandwidth study needs to
//      model); completed basic blocks decode into ops,
//   3. up to decode_width ops dispatch into the IQ/ROB; a full window
//      stalls dispatch, a full FIFO stalls fetch (back-pressure).
// The run ends when the trace, the FIFO and the window are all drained, so
// fetch.cycles == be_cycles and retired_insns == fetched instructions.
//
// Both overloads produce bit-identical counters: the interpreter path
// computes each op's latency/registers from the shared BackendSpec helpers
// per event; the plan path reads the same values from the plan's compiled
// back-end tables (or computes them for batched plans). check_replay_modes
// proves the identity on every verified run.
#pragma once

#include "backend/backend.h"
#include "cfg/address_map.h"
#include "cfg/program.h"
#include "frontend/front_end.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/replay.h"
#include "support/error.h"
#include "trace/block_trace.h"

namespace stc::backend {

struct BackendResult {
  sim::FetchResult fetch;
  frontend::FrontEndStats frontend;
  BackendStats backend;

  double ipc() const { return backend.ipc(); }
};

// Runs the full trace through the pipeline. `cache` may be null only with
// fetch_params.perfect_icache. Requires !backend_params.off() — backend-off
// callers use the plain simulators (bench::measure_seq3 routes this).
// The only failure is an injected "backend.dispatch" fault, surfaced as a
// structured Status per the PR 4 contract.
Result<BackendResult> run_seq3_backend(const trace::BlockTrace& trace,
                                       const cfg::ProgramImage& image,
                                       const cfg::AddressMap& layout,
                                       const sim::FetchParams& fetch_params,
                                       const frontend::FrontEndParams& fe_params,
                                       const BackendParams& backend_params,
                                       sim::ICache* cache);

// Batched/compiled replay from a pre-built plan (sim/replay.h); counters are
// bit-identical to the interpreter overload. A plan carrying back-end
// tables must have been built with backend_params.spec() — the
// ReplayPlanCache keys on the spec fingerprint to guarantee it.
Result<BackendResult> run_seq3_backend(const sim::ReplayPlan& plan,
                                       const sim::FetchParams& fetch_params,
                                       const frontend::FrontEndParams& fe_params,
                                       const BackendParams& backend_params,
                                       sim::ICache* cache);

}  // namespace stc::backend
