// On-disk layout constants for the BlockTrace binary format, shared by the
// in-memory (de)serializer (block_trace.cpp) and the streaming reader/writer
// (trace_io.cpp). All integers are little-endian u64.
//
//   header   : magic, version, num_events, num_chunks
//   chunk i  : {payload_bytes, events, crc32} + delta-svarint payload
//   -- version 3 appends a seekable index footer --
//   index    : per chunk {payload_offset, payload_bytes, events, crc32}
//   trailer  : index_offset, num_chunks, index_crc32, index_magic
//
// The index entries duplicate the chunk headers (plus the absolute payload
// offset) so a reader can locate and validate any chunk from the trailer
// alone, without walking the file. Version 2 files are version 3 files minus
// the footer; deserialize() accepts both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stc::trace::format {

inline constexpr std::uint64_t kMagic = 0x53544331;       // "STC1"
inline constexpr std::uint64_t kIndexMagic = 0x53544349;  // "STCI"
inline constexpr std::uint64_t kVersion = 3;
inline constexpr std::uint64_t kVersionV2 = 2;
inline constexpr std::size_t kHeaderBytes = 4 * 8;
inline constexpr std::size_t kChunkHeaderBytes = 3 * 8;  // size, events, crc32
inline constexpr std::size_t kIndexEntryBytes = 4 * 8;
inline constexpr std::size_t kTrailerBytes = 4 * 8;
// A chunk closes once its payload reaches this size; every chunk restarts
// the delta base so chunks decode independently.
inline constexpr std::size_t kChunkTargetBytes = 1 << 16;

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  return v;
}

// Footer size for a file with `num_chunks` chunks (0 for version 2).
inline std::size_t footer_bytes(std::uint64_t num_chunks) {
  return static_cast<std::size_t>(num_chunks) * kIndexEntryBytes +
         kTrailerBytes;
}

}  // namespace stc::trace::format
