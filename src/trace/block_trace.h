// Recording and replay of dynamic basic-block traces.
//
// A workload is executed once per (query set, database) pair while a
// TraceRecorder captures the block stream. Every (layout x cache/fetch
// configuration) evaluation then *replays* the recorded trace, which is how
// the paper evaluates layouts without relinking the binary (Section 7.1).
//
// Storage is chunked, delta-varint coded: consecutive block ids are close
// together (execution is highly sequential), so most events cost 1-2 bytes.
//
// The on-disk format (version 3, see trace_format.h) is hardened against
// corruption: every header field is bounds-checked against the file size,
// each chunk carries a CRC32 and its event count, and every varint is
// decoded with overflow and truncation checks before the trace is accepted.
// Version 3 adds a seekable per-chunk index footer (offset, byte length,
// event count, CRC per chunk) so trace_io.h can stream chunks straight off
// an mmap without materializing the trace; version 2 files (no footer) keep
// loading bit-identically. load()/deserialize() return a structured error
// for any malformed input — a corrupt cache file can never abort the process
// or replay a silently wrong stream (the `stc_fuzz --trace-bytes` mode flips
// every byte to prove it).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cfg/exec.h"
#include "cfg/types.h"
#include "support/error.h"

namespace stc::trace {

class BlockTrace {
 public:
  std::uint64_t num_events() const { return num_events_; }
  std::uint64_t byte_size() const;
  bool empty() const { return num_events_ == 0; }

  void append(cfg::BlockId block);
  void clear();

  // FNV-1a over the encoded chunks (content identity, not object identity).
  // Memoized; appending invalidates. Used by ReplayPlanCache to key plans by
  // what a trace says rather than where it lives — bench grids rebuild
  // traces at recycled heap addresses.
  std::uint64_t content_hash() const;

  // Invokes fn(block) for every recorded event, in order.
  void for_each(const std::function<void(cfg::BlockId)>& fn) const;

  // Chunk-granular access for slab decoders (src/sim/replay.h). Each chunk
  // restarts its delta base, so chunks decode independently of one another.
  std::size_t num_chunks() const { return chunks_.size(); }
  // Appends chunk `index`'s block ids to `out`; returns the event count.
  std::size_t decode_chunk(std::size_t index,
                           std::vector<cfg::BlockId>& out) const;

  // Binary (de)serialization, for caching workload runs on disk.
  // Format (trace_format.h): magic, version, event count, then per chunk
  // {payload size, event count, crc32, payload}, then the version-3 index
  // footer; all integers little-endian u64. serialize/deserialize work on
  // in-memory buffers (the fuzz harness); save writes atomically (temp file
  // + rename, fault prefix "trace.save"), load reads and validates end to
  // end (fault prefix "trace.load"). deserialize accepts versions 2 and 3;
  // serialize always emits version 3.
  std::vector<std::uint8_t> serialize() const;
  static Result<BlockTrace> deserialize(const std::uint8_t* data,
                                        std::size_t size);
  Status save(const std::string& path) const;
  static Result<BlockTrace> load(const std::string& path);

  // Forward cursor for pull-style consumers (the simulators).
  class Cursor {
   public:
    explicit Cursor(const BlockTrace& trace)
        : trace_(&trace), remaining_(trace.num_events_) {}

    bool done() const { return remaining_ == 0; }
    // Returns the next block id; requires !done().
    cfg::BlockId next();

   private:
    const BlockTrace* trace_;
    std::uint64_t remaining_;
    std::size_t chunk_index_ = 0;
    std::size_t byte_pos_ = 0;
    std::int64_t last_id_ = 0;
  };

 private:
  friend class Cursor;

  std::vector<std::vector<std::uint8_t>> chunks_;
  std::uint64_t num_events_ = 0;
  std::int64_t last_id_ = 0;  // encoder state (delta base)
  mutable std::uint64_t content_hash_ = 0;  // 0 = not yet computed
};

// TraceSink adapter that appends every event to a BlockTrace.
class TraceRecorder final : public cfg::TraceSink {
 public:
  explicit TraceRecorder(BlockTrace& trace) : trace_(trace) {}
  void on_block(cfg::BlockId block) override { trace_.append(block); }

 private:
  BlockTrace& trace_;
};

}  // namespace stc::trace
