#include "trace/block_trace.h"

#include <string>

#include "support/check.h"
#include "support/crc32.h"
#include "support/faultpoint.h"
#include "support/io.h"
#include "support/varint.h"

namespace stc::trace {
namespace {

constexpr std::uint64_t kMagic = 0x53544331;  // "STC1"
constexpr std::uint64_t kVersion = 2;
constexpr std::size_t kHeaderBytes = 4 * 8;      // magic, version, events, chunks
constexpr std::size_t kChunkHeaderBytes = 3 * 8;  // size, events, crc32

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(const std::uint8_t* data) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  return v;
}

// Decodes one chunk's delta stream, validating every varint and the running
// block id; returns the number of events or a corrupt-data error. On success
// *final_id is the chunk's last decoded block id (the encoder delta base a
// later append must continue from).
Result<std::uint64_t> validate_chunk(const std::vector<std::uint8_t>& chunk,
                                     std::int64_t* final_id) {
  std::size_t pos = 0;
  std::int64_t last_id = 0;
  std::uint64_t events = 0;
  while (pos < chunk.size()) {
    std::int64_t delta = 0;
    if (!try_get_svarint(chunk.data(), chunk.size(), pos, delta)) {
      return corrupt_data_error("malformed varint at chunk offset " +
                                std::to_string(pos));
    }
    last_id += delta;
    if (last_id < 0 ||
        last_id >= static_cast<std::int64_t>(cfg::kInvalidBlock)) {
      return corrupt_data_error("block id " + std::to_string(last_id) +
                                " out of range at chunk offset " +
                                std::to_string(pos));
    }
    ++events;
  }
  *final_id = last_id;
  return events;
}

}  // namespace

std::uint64_t BlockTrace::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size();
  return total;
}

void BlockTrace::append(cfg::BlockId block) {
  if (chunks_.empty() || chunks_.back().size() >= kChunkTargetBytes) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkTargetBytes + 8);
    last_id_ = 0;  // each chunk restarts the delta base for seekability
  }
  put_svarint(chunks_.back(), static_cast<std::int64_t>(block) - last_id_);
  last_id_ = static_cast<std::int64_t>(block);
  ++num_events_;
  content_hash_ = 0;  // memoized hash is stale
}

void BlockTrace::clear() {
  chunks_.clear();
  num_events_ = 0;
  last_id_ = 0;
  content_hash_ = 0;
}

std::uint64_t BlockTrace::content_hash() const {
  if (content_hash_ != 0) return content_hash_;
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(num_events_);
  for (const std::vector<std::uint8_t>& chunk : chunks_) {
    mix(chunk.size());
    for (const std::uint8_t byte : chunk) {
      h ^= byte;
      h *= 1099511628211ull;
    }
  }
  content_hash_ = (h == 0) ? 1 : h;  // reserve 0 for "not computed"
  return content_hash_;
}

void BlockTrace::for_each(const std::function<void(cfg::BlockId)>& fn) const {
  Cursor cursor(*this);
  while (!cursor.done()) fn(cursor.next());
}

std::size_t BlockTrace::decode_chunk(std::size_t index,
                                     std::vector<cfg::BlockId>& out) const {
  STC_REQUIRE(index < chunks_.size());
  const auto& chunk = chunks_[index];
  std::size_t pos = 0;
  std::int64_t last_id = 0;  // every chunk restarts the delta base
  std::size_t events = 0;
  while (pos < chunk.size()) {
    last_id += get_svarint(chunk.data(), chunk.size(), pos);
    STC_DCHECK(last_id >= 0);
    out.push_back(static_cast<cfg::BlockId>(last_id));
    ++events;
  }
  return events;
}

cfg::BlockId BlockTrace::Cursor::next() {
  STC_REQUIRE(!done());
  while (byte_pos_ >= trace_->chunks_[chunk_index_].size()) {
    ++chunk_index_;
    byte_pos_ = 0;
    last_id_ = 0;
    STC_CHECK(chunk_index_ < trace_->chunks_.size());
  }
  const auto& chunk = trace_->chunks_[chunk_index_];
  const std::int64_t delta =
      get_svarint(chunk.data(), chunk.size(), byte_pos_);
  last_id_ += delta;
  --remaining_;
  STC_DCHECK(last_id_ >= 0);
  return static_cast<cfg::BlockId>(last_id_);
}

std::vector<std::uint8_t> BlockTrace::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + chunks_.size() * kChunkHeaderBytes + byte_size());
  put_u64(out, kMagic);
  put_u64(out, kVersion);
  put_u64(out, num_events_);
  put_u64(out, chunks_.size());
  // Chunk event counts are recomputed from the payload: each chunk restarts
  // its delta base, so the count is the number of varints it holds.
  for (const auto& chunk : chunks_) {
    std::size_t pos = 0;
    std::uint64_t events = 0;
    std::int64_t delta = 0;
    while (pos < chunk.size()) {
      const bool ok = try_get_svarint(chunk.data(), chunk.size(), pos, delta);
      STC_CHECK_MSG(ok, "in-memory trace chunk is malformed");
      ++events;
    }
    put_u64(out, chunk.size());
    put_u64(out, events);
    put_u64(out, crc32(chunk.data(), chunk.size()));
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

Result<BlockTrace> BlockTrace::deserialize(const std::uint8_t* data,
                                           std::size_t size) {
  if (Status s = fault::fail_if("trace.load.header", "reading header");
      !s.is_ok()) {
    return s;
  }
  if (size < kHeaderBytes) {
    return corrupt_data_error("file too small (" + std::to_string(size) +
                              " bytes) for a trace header");
  }
  if (get_u64(data) != kMagic) {
    return corrupt_data_error("bad magic (not a trace file)");
  }
  const std::uint64_t version = get_u64(data + 8);
  if (version != kVersion) {
    return corrupt_data_error("unsupported trace version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kVersion) + ")");
  }
  BlockTrace trace;
  trace.num_events_ = get_u64(data + 16);
  const std::uint64_t num_chunks = get_u64(data + 24);
  if (num_chunks > (size - kHeaderBytes) / kChunkHeaderBytes) {
    return corrupt_data_error("chunk count " + std::to_string(num_chunks) +
                              " exceeds file size");
  }
  std::size_t pos = kHeaderBytes;
  std::uint64_t total_events = 0;
  trace.chunks_.reserve(num_chunks);
  for (std::uint64_t i = 0; i < num_chunks; ++i) {
    const std::string where = "chunk " + std::to_string(i);
    if (Status s = fault::fail_if("trace.load.chunk", "reading " + where);
        !s.is_ok()) {
      return s;
    }
    if (size - pos < kChunkHeaderBytes) {
      return corrupt_data_error(where + ": truncated chunk header");
    }
    const std::uint64_t payload_size = get_u64(data + pos);
    const std::uint64_t stated_events = get_u64(data + pos + 8);
    const std::uint64_t stated_crc = get_u64(data + pos + 16);
    pos += kChunkHeaderBytes;
    if (payload_size > size - pos) {
      return corrupt_data_error(where + ": payload of " +
                                std::to_string(payload_size) +
                                " bytes runs past end of file");
    }
    if (stated_crc > 0xFFFFFFFFull) {
      return corrupt_data_error(where + ": crc field out of range");
    }
    std::vector<std::uint8_t> chunk(data + pos, data + pos + payload_size);
    pos += payload_size;
    const std::uint32_t actual_crc = crc32(chunk.data(), chunk.size());
    if (actual_crc != static_cast<std::uint32_t>(stated_crc)) {
      return corrupt_data_error(where + ": crc mismatch (stored " +
                                std::to_string(stated_crc) + ", computed " +
                                std::to_string(actual_crc) + ")");
    }
    std::int64_t final_id = 0;
    Result<std::uint64_t> decoded = validate_chunk(chunk, &final_id);
    if (!decoded.is_ok()) {
      return decoded.status().with_context(where);
    }
    trace.last_id_ = final_id;  // appends continue the last chunk's base
    if (decoded.value() != stated_events) {
      return corrupt_data_error(
          where + ": decodes to " + std::to_string(decoded.value()) +
          " events but header says " + std::to_string(stated_events));
    }
    total_events += decoded.value();
    trace.chunks_.push_back(std::move(chunk));
  }
  if (pos != size) {
    return corrupt_data_error(std::to_string(size - pos) +
                              " trailing bytes after last chunk");
  }
  if (total_events != trace.num_events_) {
    return corrupt_data_error("chunks hold " + std::to_string(total_events) +
                              " events but header says " +
                              std::to_string(trace.num_events_));
  }
  return trace;
}

Status BlockTrace::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  Status s = write_file_atomic(path, bytes.data(), bytes.size(), "trace.save");
  return s.is_ok() ? s : s.with_context("trace '" + path + "'");
}

Result<BlockTrace> BlockTrace::load(const std::string& path) {
  const std::string context = "trace '" + path + "'";
  if (Status s = fault::fail_if("trace.load.open", "opening " + path);
      !s.is_ok()) {
    return s.with_context(context);
  }
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) return bytes.status().with_context(context);
  return deserialize(bytes.value().data(), bytes.value().size())
      .with_context(context);
}

}  // namespace stc::trace
