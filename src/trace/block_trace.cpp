#include "trace/block_trace.h"

#include <cstdio>
#include <memory>

#include "support/check.h"
#include "support/varint.h"

namespace stc::trace {
namespace {

constexpr std::uint32_t kMagic = 0x53544331;  // "STC1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void write_u64(std::FILE* f, std::uint64_t v) {
  STC_CHECK(std::fwrite(&v, sizeof v, 1, f) == 1);
}

std::uint64_t read_u64(std::FILE* f) {
  std::uint64_t v = 0;
  STC_CHECK_MSG(std::fread(&v, sizeof v, 1, f) == 1, "truncated trace file");
  return v;
}

}  // namespace

std::uint64_t BlockTrace::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size();
  return total;
}

void BlockTrace::append(cfg::BlockId block) {
  if (chunks_.empty() || chunks_.back().size() >= kChunkTargetBytes) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkTargetBytes + 8);
    last_id_ = 0;  // each chunk restarts the delta base for seekability
  }
  put_svarint(chunks_.back(), static_cast<std::int64_t>(block) - last_id_);
  last_id_ = static_cast<std::int64_t>(block);
  ++num_events_;
}

void BlockTrace::clear() {
  chunks_.clear();
  num_events_ = 0;
  last_id_ = 0;
}

void BlockTrace::for_each(const std::function<void(cfg::BlockId)>& fn) const {
  Cursor cursor(*this);
  while (!cursor.done()) fn(cursor.next());
}

cfg::BlockId BlockTrace::Cursor::next() {
  STC_REQUIRE(!done());
  while (byte_pos_ >= trace_->chunks_[chunk_index_].size()) {
    ++chunk_index_;
    byte_pos_ = 0;
    last_id_ = 0;
    STC_CHECK(chunk_index_ < trace_->chunks_.size());
  }
  const auto& chunk = trace_->chunks_[chunk_index_];
  const std::int64_t delta =
      get_svarint(chunk.data(), chunk.size(), byte_pos_);
  last_id_ += delta;
  --remaining_;
  STC_DCHECK(last_id_ >= 0);
  return static_cast<cfg::BlockId>(last_id_);
}

void BlockTrace::save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  STC_REQUIRE_MSG(f != nullptr, "cannot open trace file for writing");
  write_u64(f.get(), kMagic);
  write_u64(f.get(), num_events_);
  write_u64(f.get(), chunks_.size());
  for (const auto& chunk : chunks_) {
    write_u64(f.get(), chunk.size());
    if (!chunk.empty()) {
      STC_CHECK(std::fwrite(chunk.data(), 1, chunk.size(), f.get()) ==
                chunk.size());
    }
  }
}

BlockTrace BlockTrace::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  STC_REQUIRE_MSG(f != nullptr, "cannot open trace file for reading");
  STC_REQUIRE_MSG(read_u64(f.get()) == kMagic, "bad trace file magic");
  BlockTrace trace;
  trace.num_events_ = read_u64(f.get());
  const std::uint64_t num_chunks = read_u64(f.get());
  trace.chunks_.resize(num_chunks);
  for (auto& chunk : trace.chunks_) {
    chunk.resize(read_u64(f.get()));
    if (!chunk.empty()) {
      STC_CHECK_MSG(std::fread(chunk.data(), 1, chunk.size(), f.get()) ==
                        chunk.size(),
                    "truncated trace file");
    }
  }
  return trace;
}

}  // namespace stc::trace
