#include "trace/block_trace.h"

#include <string>

#include "support/check.h"
#include "support/crc32.h"
#include "support/faultpoint.h"
#include "support/io.h"
#include "support/varint.h"
#include "trace/trace_format.h"

namespace stc::trace {
namespace {

using format::get_u64;
using format::kChunkHeaderBytes;
using format::kChunkTargetBytes;
using format::kHeaderBytes;
using format::kIndexEntryBytes;
using format::kIndexMagic;
using format::kMagic;
using format::kTrailerBytes;
using format::kVersion;
using format::kVersionV2;
using format::put_u64;

// Decodes one chunk's delta stream, validating every varint and the running
// block id; returns the number of events or a corrupt-data error. On success
// *final_id is the chunk's last decoded block id (the encoder delta base a
// later append must continue from).
Result<std::uint64_t> validate_chunk(const std::vector<std::uint8_t>& chunk,
                                     std::int64_t* final_id) {
  std::size_t pos = 0;
  std::int64_t last_id = 0;
  std::uint64_t events = 0;
  while (pos < chunk.size()) {
    std::int64_t delta = 0;
    if (!try_get_svarint(chunk.data(), chunk.size(), pos, delta)) {
      return corrupt_data_error("malformed varint at chunk offset " +
                                std::to_string(pos));
    }
    last_id += delta;
    if (last_id < 0 ||
        last_id >= static_cast<std::int64_t>(cfg::kInvalidBlock)) {
      return corrupt_data_error("block id " + std::to_string(last_id) +
                                " out of range at chunk offset " +
                                std::to_string(pos));
    }
    ++events;
  }
  *final_id = last_id;
  return events;
}

}  // namespace

std::uint64_t BlockTrace::byte_size() const {
  std::uint64_t total = 0;
  for (const auto& chunk : chunks_) total += chunk.size();
  return total;
}

void BlockTrace::append(cfg::BlockId block) {
  if (chunks_.empty() || chunks_.back().size() >= kChunkTargetBytes) {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkTargetBytes + 8);
    last_id_ = 0;  // each chunk restarts the delta base for seekability
  }
  put_svarint(chunks_.back(), static_cast<std::int64_t>(block) - last_id_);
  last_id_ = static_cast<std::int64_t>(block);
  ++num_events_;
  content_hash_ = 0;  // memoized hash is stale
}

void BlockTrace::clear() {
  chunks_.clear();
  num_events_ = 0;
  last_id_ = 0;
  content_hash_ = 0;
}

std::uint64_t BlockTrace::content_hash() const {
  if (content_hash_ != 0) return content_hash_;
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(num_events_);
  for (const std::vector<std::uint8_t>& chunk : chunks_) {
    mix(chunk.size());
    for (const std::uint8_t byte : chunk) {
      h ^= byte;
      h *= 1099511628211ull;
    }
  }
  content_hash_ = (h == 0) ? 1 : h;  // reserve 0 for "not computed"
  return content_hash_;
}

void BlockTrace::for_each(const std::function<void(cfg::BlockId)>& fn) const {
  Cursor cursor(*this);
  while (!cursor.done()) fn(cursor.next());
}

std::size_t BlockTrace::decode_chunk(std::size_t index,
                                     std::vector<cfg::BlockId>& out) const {
  STC_REQUIRE(index < chunks_.size());
  const auto& chunk = chunks_[index];
  std::size_t pos = 0;
  std::int64_t last_id = 0;  // every chunk restarts the delta base
  std::size_t events = 0;
  while (pos < chunk.size()) {
    last_id += get_svarint(chunk.data(), chunk.size(), pos);
    STC_DCHECK(last_id >= 0);
    out.push_back(static_cast<cfg::BlockId>(last_id));
    ++events;
  }
  return events;
}

cfg::BlockId BlockTrace::Cursor::next() {
  STC_REQUIRE(!done());
  while (byte_pos_ >= trace_->chunks_[chunk_index_].size()) {
    ++chunk_index_;
    byte_pos_ = 0;
    last_id_ = 0;
    STC_CHECK(chunk_index_ < trace_->chunks_.size());
  }
  const auto& chunk = trace_->chunks_[chunk_index_];
  const std::int64_t delta =
      get_svarint(chunk.data(), chunk.size(), byte_pos_);
  last_id_ += delta;
  --remaining_;
  STC_DCHECK(last_id_ >= 0);
  return static_cast<cfg::BlockId>(last_id_);
}

std::vector<std::uint8_t> BlockTrace::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + chunks_.size() * kChunkHeaderBytes + byte_size());
  put_u64(out, kMagic);
  put_u64(out, kVersion);
  put_u64(out, num_events_);
  put_u64(out, chunks_.size());
  // Chunk event counts are recomputed from the payload: each chunk restarts
  // its delta base, so the count is the number of varints it holds.
  std::vector<std::uint8_t> index;
  index.reserve(chunks_.size() * kIndexEntryBytes);
  for (const auto& chunk : chunks_) {
    std::size_t pos = 0;
    std::uint64_t events = 0;
    std::int64_t delta = 0;
    while (pos < chunk.size()) {
      const bool ok = try_get_svarint(chunk.data(), chunk.size(), pos, delta);
      STC_CHECK_MSG(ok, "in-memory trace chunk is malformed");
      ++events;
    }
    const std::uint32_t crc = crc32(chunk.data(), chunk.size());
    put_u64(out, chunk.size());
    put_u64(out, events);
    put_u64(out, crc);
    put_u64(index, out.size());  // absolute offset of the payload
    put_u64(index, chunk.size());
    put_u64(index, events);
    put_u64(index, crc);
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  // Version-3 footer: the index entries, then a fixed trailer that locates
  // and checksums them so a reader can seek from the end of the file.
  const std::uint64_t index_offset = out.size();
  out.insert(out.end(), index.begin(), index.end());
  put_u64(out, index_offset);
  put_u64(out, chunks_.size());
  put_u64(out, crc32(index.data(), index.size()));
  put_u64(out, kIndexMagic);
  return out;
}

Result<BlockTrace> BlockTrace::deserialize(const std::uint8_t* data,
                                           std::size_t size) {
  if (Status s = fault::fail_if("trace.load.header", "reading header");
      !s.is_ok()) {
    return s;
  }
  if (size < kHeaderBytes) {
    return corrupt_data_error("file too small (" + std::to_string(size) +
                              " bytes) for a trace header");
  }
  if (get_u64(data) != kMagic) {
    return corrupt_data_error("bad magic (not a trace file)");
  }
  const std::uint64_t version = get_u64(data + 8);
  if (version != kVersion && version != kVersionV2) {
    return corrupt_data_error("unsupported trace version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kVersionV2) + " or " +
                              std::to_string(kVersion) + ")");
  }
  BlockTrace trace;
  trace.num_events_ = get_u64(data + 16);
  const std::uint64_t num_chunks = get_u64(data + 24);
  if (num_chunks > (size - kHeaderBytes) / kChunkHeaderBytes) {
    return corrupt_data_error("chunk count " + std::to_string(num_chunks) +
                              " exceeds file size");
  }
  // Version 3 ends with a seekable index footer; locate and checksum it
  // before walking the chunks so the walk knows where the chunk region ends
  // and each chunk can be cross-checked against its index entry.
  std::size_t body_end = size;
  const std::uint8_t* index = nullptr;
  if (version == kVersion) {
    const std::size_t footer = format::footer_bytes(num_chunks);
    if (size < kHeaderBytes + footer) {
      return corrupt_data_error("file too small for a " +
                                std::to_string(num_chunks) +
                                "-chunk index footer");
    }
    const std::uint8_t* trailer = data + size - kTrailerBytes;
    if (get_u64(trailer + 24) != kIndexMagic) {
      return corrupt_data_error("bad index footer magic");
    }
    const std::uint64_t index_offset = get_u64(trailer);
    const std::uint64_t stated_chunks = get_u64(trailer + 8);
    const std::uint64_t stated_index_crc = get_u64(trailer + 16);
    if (stated_chunks != num_chunks) {
      return corrupt_data_error(
          "index footer lists " + std::to_string(stated_chunks) +
          " chunks but header says " + std::to_string(num_chunks));
    }
    if (index_offset != size - footer) {
      return corrupt_data_error("index footer offset " +
                                std::to_string(index_offset) +
                                " does not match the file layout");
    }
    if (stated_index_crc > 0xFFFFFFFFull) {
      return corrupt_data_error("index footer crc field out of range");
    }
    index = data + index_offset;
    const std::uint32_t actual_index_crc =
        crc32(index, num_chunks * kIndexEntryBytes);
    if (actual_index_crc != static_cast<std::uint32_t>(stated_index_crc)) {
      return corrupt_data_error(
          "index footer crc mismatch (stored " +
          std::to_string(stated_index_crc) + ", computed " +
          std::to_string(actual_index_crc) + ")");
    }
    body_end = static_cast<std::size_t>(index_offset);
  }
  std::size_t pos = kHeaderBytes;
  std::uint64_t total_events = 0;
  trace.chunks_.reserve(num_chunks);
  for (std::uint64_t i = 0; i < num_chunks; ++i) {
    const std::string where = "chunk " + std::to_string(i);
    if (Status s = fault::fail_if("trace.load.chunk", "reading " + where);
        !s.is_ok()) {
      return s;
    }
    if (body_end - pos < kChunkHeaderBytes) {
      return corrupt_data_error(where + ": truncated chunk header");
    }
    const std::uint64_t payload_size = get_u64(data + pos);
    const std::uint64_t stated_events = get_u64(data + pos + 8);
    const std::uint64_t stated_crc = get_u64(data + pos + 16);
    pos += kChunkHeaderBytes;
    if (payload_size > body_end - pos) {
      return corrupt_data_error(where + ": payload of " +
                                std::to_string(payload_size) +
                                " bytes runs past " +
                                (index != nullptr ? "the index footer"
                                                  : "end of file"));
    }
    if (stated_crc > 0xFFFFFFFFull) {
      return corrupt_data_error(where + ": crc field out of range");
    }
    if (index != nullptr) {
      // The index entry must agree with the chunk it points at; any
      // disagreement means either the entry or the chunk header is corrupt.
      const std::uint8_t* entry = index + i * kIndexEntryBytes;
      if (get_u64(entry) != pos || get_u64(entry + 8) != payload_size ||
          get_u64(entry + 16) != stated_events ||
          get_u64(entry + 24) != stated_crc) {
        return corrupt_data_error(where +
                                  ": index entry disagrees with chunk header");
      }
    }
    std::vector<std::uint8_t> chunk(data + pos, data + pos + payload_size);
    pos += payload_size;
    const std::uint32_t actual_crc = crc32(chunk.data(), chunk.size());
    if (actual_crc != static_cast<std::uint32_t>(stated_crc)) {
      return corrupt_data_error(where + ": crc mismatch (stored " +
                                std::to_string(stated_crc) + ", computed " +
                                std::to_string(actual_crc) + ")");
    }
    std::int64_t final_id = 0;
    Result<std::uint64_t> decoded = validate_chunk(chunk, &final_id);
    if (!decoded.is_ok()) {
      return decoded.status().with_context(where);
    }
    trace.last_id_ = final_id;  // appends continue the last chunk's base
    if (decoded.value() != stated_events) {
      return corrupt_data_error(
          where + ": decodes to " + std::to_string(decoded.value()) +
          " events but header says " + std::to_string(stated_events));
    }
    total_events += decoded.value();
    trace.chunks_.push_back(std::move(chunk));
  }
  if (pos != body_end) {
    return corrupt_data_error(
        std::to_string(body_end - pos) + " trailing bytes after last chunk" +
        (index != nullptr ? " (before the index footer)" : ""));
  }
  if (total_events != trace.num_events_) {
    return corrupt_data_error("chunks hold " + std::to_string(total_events) +
                              " events but header says " +
                              std::to_string(trace.num_events_));
  }
  return trace;
}

Status BlockTrace::save(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = serialize();
  Status s = write_file_atomic(path, bytes.data(), bytes.size(), "trace.save");
  return s.is_ok() ? s : s.with_context("trace '" + path + "'");
}

Result<BlockTrace> BlockTrace::load(const std::string& path) {
  const std::string context = "trace '" + path + "'";
  if (Status s = fault::fail_if("trace.load.open", "opening " + path);
      !s.is_ok()) {
    return s.with_context(context);
  }
  Result<std::vector<std::uint8_t>> bytes = read_file(path);
  if (!bytes.is_ok()) return bytes.status().with_context(context);
  return deserialize(bytes.value().data(), bytes.value().size())
      .with_context(context);
}

}  // namespace stc::trace
