#include "trace/fetch_stream.h"

namespace stc::trace {

void SequentialityStats::export_counters(CounterSet& out) const {
  out.add("instructions", instructions);
  out.add("blocks", dynamic_blocks);
  out.add("taken_transitions", taken_transitions);
}

BlockRunStream::BlockRunStream(const BlockTrace& trace,
                               const cfg::ProgramImage& image,
                               const cfg::AddressMap& layout)
    : image_(image), layout_(layout), cursor_(trace) {
  if (!cursor_.done()) {
    pending_ = cursor_.next();
    have_pending_ = true;
  }
}

bool BlockRunStream::next(BlockRun& out) {
  if (!have_pending_) return false;
  const cfg::BlockInfo& info = image_.block(pending_);
  out.addr = layout_.addr(pending_);
  out.insns = info.insns;
  out.ends_in_branch = cfg::ends_in_branch(info.kind);
  out.kind = info.kind;
  if (cursor_.done()) {
    have_pending_ = false;
    out.has_next = false;
    out.taken = false;
    out.next_addr = 0;
    return true;
  }
  pending_ = cursor_.next();
  out.has_next = true;
  out.next_addr = layout_.addr(pending_);
  out.taken = out.next_addr != out.end_addr();
  return true;
}

SequentialityStats measure_sequentiality(const BlockTrace& trace,
                                         const cfg::ProgramImage& image,
                                         const cfg::AddressMap& layout) {
  SequentialityStats stats;
  BlockRunStream stream(trace, image, layout);
  BlockRun run;
  while (stream.next(run)) {
    stats.instructions += run.insns;
    ++stats.dynamic_blocks;
    if (run.has_next && run.taken) ++stats.taken_transitions;
  }
  return stats;
}

}  // namespace stc::trace
