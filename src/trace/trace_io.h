// Streaming access to on-disk block traces.
//
// BlockTrace::load() materializes the whole event stream in memory; that is
// fine for the paper's traces but not for production-scale ones. TraceReader
// opens a version-2 or version-3 trace file as a read-only view (mmap when
// the kernel grants one — see STC_MMAP — buffered otherwise), validates only
// the header and the version-3 index footer up front, and decodes chunks on
// demand: a sequential pass touches one chunk at a time and can drop each
// chunk's pages behind itself, so peak resident memory stays bounded by the
// chunk size rather than the trace size.
//
// Validation is per chunk: decode_chunk() CRC-checks and varint-validates
// exactly the chunk it touches, so corruption in one chunk is a clean
// corrupt-data Status that leaves every other chunk readable.
//
// TraceFileWriter is the producer side: events stream to disk through a
// bounded chunk buffer and finalize() writes the index footer and renames
// the temp file into place. The bytes it produces are identical to
// BlockTrace::serialize() over the same event stream, so everything proven
// about the in-memory path (fuzzing, corruption corpus) covers it too.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cfg/types.h"
#include "support/error.h"
#include "support/io.h"

namespace stc::trace {

class TraceReader {
 public:
  // Opens and validates `path`'s header (and, for version 3, its index
  // footer). `want_map` requests an mmap view; the open falls back to a
  // buffered read when mapping fails, including an injected fault at the
  // "trace.mmap.open" fault point. The single-argument overload takes
  // `want_map` from the STC_MMAP env knob (default on). Fault prefix
  // "trace.load" covers the open and header steps, mirroring
  // BlockTrace::load().
  static Result<TraceReader> open(const std::string& path);
  static Result<TraceReader> open(const std::string& path, bool want_map);

  std::uint64_t num_events() const { return num_events_; }
  std::size_t num_chunks() const { return chunks_.size(); }
  std::uint64_t chunk_events(std::size_t index) const;
  std::uint64_t file_bytes() const { return file_.size(); }
  std::uint64_t version() const { return version_; }
  // True when the file is served by a live mmap (release_chunk then works).
  bool using_mmap() const { return file_.mapped(); }

  // CRC-checks and decodes chunk `index`, appending its block ids to `out`;
  // returns the event count. Corruption is a clean corrupt-data Status
  // naming the chunk; `out` is left untouched on failure.
  Result<std::size_t> decode_chunk(std::size_t index,
                                   std::vector<cfg::BlockId>& out) const;

  // Drops the chunk's mapped pages (no-op for buffered opens), keeping a
  // sequential pass's resident set bounded by one chunk.
  void release_chunk(std::size_t index) const;

 private:
  struct ChunkRef {
    std::uint64_t offset;  // absolute file offset of the payload
    std::uint64_t size;    // payload bytes
    std::uint64_t events;
    std::uint64_t crc;
  };

  MappedFile file_;
  std::uint64_t num_events_ = 0;
  std::uint64_t version_ = 0;
  std::vector<ChunkRef> chunks_;
};

// Streams events to `path` in the version-3 format without buffering more
// than one chunk. Usage: create() -> append()... -> finalize(). Write
// errors are sticky and surface from finalize(); an unfinalized writer
// removes its temp file on destruction, so `path` is only ever replaced by
// a complete, validated file (fault prefix "trace.save", like
// BlockTrace::save()).
class TraceFileWriter {
 public:
  static Result<TraceFileWriter> create(const std::string& path);

  TraceFileWriter(TraceFileWriter&& other) noexcept { *this = std::move(other); }
  TraceFileWriter& operator=(TraceFileWriter&& other) noexcept;
  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;
  ~TraceFileWriter();

  void append(cfg::BlockId block);
  std::uint64_t num_events() const { return num_events_; }

  // Flushes the last chunk, writes the index footer, patches the header and
  // renames the temp file over `path`. Returns the first error hit anywhere
  // in the stream. The writer is spent afterwards.
  Status finalize();

  // Empty writer (Result<T> needs it); only create() yields a usable one.
  TraceFileWriter() = default;

 private:
  void flush_chunk();
  void write_bytes(const void* data, std::size_t size);
  void abandon();

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> chunk_;   // current chunk's encoded payload
  std::vector<std::uint8_t> index_;   // accumulated index entries
  std::uint64_t chunk_events_ = 0;
  std::uint64_t num_chunks_ = 0;
  std::uint64_t num_events_ = 0;
  std::uint64_t file_pos_ = 0;
  std::int64_t last_id_ = 0;          // encoder delta base
  Status error_;                      // sticky; reported by finalize()
};

}  // namespace stc::trace
