#include "trace/trace_io.h"

#include <cstdio>
#include <string>
#include <utility>

#include "support/check.h"
#include "support/crc32.h"
#include "support/env.h"
#include "support/faultpoint.h"
#include "support/varint.h"
#include "trace/trace_format.h"

namespace stc::trace {
namespace {

using format::get_u64;
using format::kChunkHeaderBytes;
using format::kChunkTargetBytes;
using format::kHeaderBytes;
using format::kIndexEntryBytes;
using format::kIndexMagic;
using format::kMagic;
using format::kTrailerBytes;
using format::kVersion;
using format::kVersionV2;
using format::put_u64;

}  // namespace

std::uint64_t TraceReader::chunk_events(std::size_t index) const {
  STC_REQUIRE(index < chunks_.size());
  return chunks_[index].events;
}

Result<TraceReader> TraceReader::open(const std::string& path) {
  const Result<bool> use_map = env::mmap_enabled();
  return open(path, use_map.is_ok() ? use_map.value() : true);
}

Result<TraceReader> TraceReader::open(const std::string& path, bool want_map) {
  const std::string context = "trace '" + path + "'";
  if (Status s = fault::fail_if("trace.load.open", "opening " + path);
      !s.is_ok()) {
    return s.with_context(context);
  }
  Result<MappedFile> file = MappedFile::open(path, want_map, "trace.mmap.open");
  if (!file.is_ok()) return file.status().with_context(context);

  TraceReader reader;
  reader.file_ = std::move(file).take();
  const std::uint8_t* data = reader.file_.data();
  const std::size_t size = reader.file_.size();

  const auto corrupt = [&context](const std::string& what) {
    return corrupt_data_error(what).with_context(context);
  };
  if (Status s = fault::fail_if("trace.load.header", "reading header");
      !s.is_ok()) {
    return s.with_context(context);
  }
  if (size < kHeaderBytes) {
    return corrupt("file too small (" + std::to_string(size) +
                   " bytes) for a trace header");
  }
  if (get_u64(data) != kMagic) {
    return corrupt("bad magic (not a trace file)");
  }
  reader.version_ = get_u64(data + 8);
  if (reader.version_ != kVersion && reader.version_ != kVersionV2) {
    return corrupt("unsupported trace version " +
                   std::to_string(reader.version_));
  }
  reader.num_events_ = get_u64(data + 16);
  const std::uint64_t num_chunks = get_u64(data + 24);
  if (num_chunks > (size - kHeaderBytes) / kChunkHeaderBytes) {
    return corrupt("chunk count " + std::to_string(num_chunks) +
                   " exceeds file size");
  }
  reader.chunks_.reserve(num_chunks);
  std::uint64_t total_events = 0;

  if (reader.version_ == kVersion) {
    // Version 3: the index footer locates every chunk, so the open touches
    // only the header and footer pages — that is what makes seeking and
    // streaming cheap (even reading the 24-byte chunk headers here would
    // fault in the whole file through readahead). Entries must tile the
    // chunk region exactly; agreement with the on-disk chunk header is
    // checked lazily in decode_chunk, which touches that page anyway.
    const std::size_t footer = format::footer_bytes(num_chunks);
    if (size < kHeaderBytes + footer) {
      return corrupt("file too small for a " + std::to_string(num_chunks) +
                     "-chunk index footer");
    }
    const std::uint8_t* trailer = data + size - kTrailerBytes;
    if (get_u64(trailer + 24) != kIndexMagic) {
      return corrupt("bad index footer magic");
    }
    const std::uint64_t index_offset = get_u64(trailer);
    const std::uint64_t stated_chunks = get_u64(trailer + 8);
    const std::uint64_t stated_index_crc = get_u64(trailer + 16);
    if (stated_chunks != num_chunks) {
      return corrupt("index footer lists " + std::to_string(stated_chunks) +
                     " chunks but header says " + std::to_string(num_chunks));
    }
    if (index_offset != size - footer) {
      return corrupt("index footer offset " + std::to_string(index_offset) +
                     " does not match the file layout");
    }
    const std::uint8_t* index = data + index_offset;
    const std::uint32_t actual_index_crc =
        crc32(index, num_chunks * kIndexEntryBytes);
    if (stated_index_crc > 0xFFFFFFFFull ||
        actual_index_crc != static_cast<std::uint32_t>(stated_index_crc)) {
      return corrupt("index footer crc mismatch");
    }
    std::uint64_t expect_offset = kHeaderBytes + kChunkHeaderBytes;
    for (std::uint64_t i = 0; i < num_chunks; ++i) {
      const std::uint8_t* entry = index + i * kIndexEntryBytes;
      ChunkRef ref;
      ref.offset = get_u64(entry);
      ref.size = get_u64(entry + 8);
      ref.events = get_u64(entry + 16);
      ref.crc = get_u64(entry + 24);
      const std::string where = "chunk " + std::to_string(i);
      if (ref.offset != expect_offset || ref.size > index_offset ||
          ref.offset + ref.size > index_offset) {
        return corrupt(where + ": index entry does not tile the chunk region");
      }
      expect_offset = ref.offset + ref.size + kChunkHeaderBytes;
      total_events += ref.events;
      reader.chunks_.push_back(ref);
    }
    if (expect_offset - kChunkHeaderBytes != index_offset) {
      return corrupt("stray bytes between last chunk and index footer");
    }
  } else {
    // Version 2 has no footer: build the chunk table by walking the chunk
    // headers (payloads are skipped, not validated — that stays per-chunk).
    std::size_t pos = kHeaderBytes;
    for (std::uint64_t i = 0; i < num_chunks; ++i) {
      const std::string where = "chunk " + std::to_string(i);
      if (size - pos < kChunkHeaderBytes) {
        return corrupt(where + ": truncated chunk header");
      }
      ChunkRef ref;
      ref.size = get_u64(data + pos);
      ref.events = get_u64(data + pos + 8);
      ref.crc = get_u64(data + pos + 16);
      pos += kChunkHeaderBytes;
      if (ref.size > size - pos) {
        return corrupt(where + ": payload of " + std::to_string(ref.size) +
                       " bytes runs past end of file");
      }
      ref.offset = pos;
      pos += ref.size;
      total_events += ref.events;
      reader.chunks_.push_back(ref);
    }
    if (pos != size) {
      return corrupt(std::to_string(size - pos) +
                     " trailing bytes after last chunk");
    }
  }
  if (total_events != reader.num_events_) {
    return corrupt("chunks hold " + std::to_string(total_events) +
                   " events but header says " +
                   std::to_string(reader.num_events_));
  }
  return reader;
}

Result<std::size_t> TraceReader::decode_chunk(
    std::size_t index, std::vector<cfg::BlockId>& out) const {
  STC_REQUIRE(index < chunks_.size());
  const ChunkRef& ref = chunks_[index];
  const std::string where = "chunk " + std::to_string(index);
  const std::uint8_t* payload = file_.data() + ref.offset;
  if (version_ == kVersion) {
    // Deferred from open(): the index entry (already CRC-checked there) must
    // agree with the chunk's own header. Checking it here keeps open() from
    // faulting in one page per chunk.
    const std::uint8_t* header = payload - kChunkHeaderBytes;
    if (get_u64(header) != ref.size || get_u64(header + 8) != ref.events ||
        get_u64(header + 16) != ref.crc) {
      return corrupt_data_error(where +
                                ": index entry disagrees with chunk header");
    }
  }
  const std::uint32_t actual_crc =
      crc32(payload, static_cast<std::size_t>(ref.size));
  if (ref.crc > 0xFFFFFFFFull ||
      actual_crc != static_cast<std::uint32_t>(ref.crc)) {
    return corrupt_data_error(where + ": crc mismatch (stored " +
                              std::to_string(ref.crc) + ", computed " +
                              std::to_string(actual_crc) + ")");
  }
  std::vector<cfg::BlockId> ids;
  ids.reserve(static_cast<std::size_t>(ref.events));
  std::size_t pos = 0;
  std::int64_t last_id = 0;  // every chunk restarts the delta base
  while (pos < ref.size) {
    std::int64_t delta = 0;
    if (!try_get_svarint(payload, static_cast<std::size_t>(ref.size), pos,
                         delta)) {
      return corrupt_data_error(where + ": malformed varint at chunk offset " +
                                std::to_string(pos));
    }
    last_id += delta;
    if (last_id < 0 ||
        last_id >= static_cast<std::int64_t>(cfg::kInvalidBlock)) {
      return corrupt_data_error(where + ": block id " +
                                std::to_string(last_id) +
                                " out of range at chunk offset " +
                                std::to_string(pos));
    }
    ids.push_back(static_cast<cfg::BlockId>(last_id));
  }
  if (ids.size() != ref.events) {
    return corrupt_data_error(where + ": decodes to " +
                              std::to_string(ids.size()) +
                              " events but index says " +
                              std::to_string(ref.events));
  }
  out.insert(out.end(), ids.begin(), ids.end());
  return ids.size();
}

void TraceReader::release_chunk(std::size_t index) const {
  STC_REQUIRE(index < chunks_.size());
  const ChunkRef& ref = chunks_[index];
  file_.release(static_cast<std::size_t>(ref.offset) - kChunkHeaderBytes,
                static_cast<std::size_t>(ref.size) + kChunkHeaderBytes);
}

TraceFileWriter& TraceFileWriter::operator=(TraceFileWriter&& other) noexcept {
  if (this == &other) return *this;
  abandon();
  path_ = std::move(other.path_);
  tmp_path_ = std::move(other.tmp_path_);
  file_ = other.file_;
  chunk_ = std::move(other.chunk_);
  index_ = std::move(other.index_);
  chunk_events_ = other.chunk_events_;
  num_chunks_ = other.num_chunks_;
  num_events_ = other.num_events_;
  file_pos_ = other.file_pos_;
  last_id_ = other.last_id_;
  error_ = other.error_;
  other.file_ = nullptr;
  return *this;
}

TraceFileWriter::~TraceFileWriter() { abandon(); }

void TraceFileWriter::abandon() {
  if (file_ == nullptr) return;
  std::fclose(file_);
  std::remove(tmp_path_.c_str());
  file_ = nullptr;
}

Result<TraceFileWriter> TraceFileWriter::create(const std::string& path) {
  const std::string tmp = path + ".tmp";
  if (Status s = fault::fail_if("trace.save.open", "opening " + tmp);
      !s.is_ok()) {
    return s.with_context("trace '" + path + "'");
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return io_error("cannot open '" + tmp + "' for writing")
        .with_context("trace '" + path + "'");
  }
  TraceFileWriter writer;
  writer.path_ = path;
  writer.tmp_path_ = tmp;
  writer.file_ = f;
  writer.chunk_.reserve(kChunkTargetBytes + 8);
  // Placeholder header; finalize() seeks back and patches the counts in.
  std::vector<std::uint8_t> header;
  put_u64(header, kMagic);
  put_u64(header, kVersion);
  put_u64(header, 0);
  put_u64(header, 0);
  writer.write_bytes(header.data(), header.size());
  return writer;
}

void TraceFileWriter::write_bytes(const void* data, std::size_t size) {
  if (!error_.is_ok() || file_ == nullptr) return;
  if (size > 0 && std::fwrite(data, 1, size, file_) != size) {
    error_ = io_error("short write to '" + tmp_path_ + "'");
    return;
  }
  file_pos_ += size;
}

void TraceFileWriter::append(cfg::BlockId block) {
  if (chunk_.size() >= kChunkTargetBytes) flush_chunk();
  put_svarint(chunk_, static_cast<std::int64_t>(block) - last_id_);
  last_id_ = static_cast<std::int64_t>(block);
  ++chunk_events_;
  ++num_events_;
}

void TraceFileWriter::flush_chunk() {
  if (error_.is_ok()) {
    error_ = fault::fail_if("trace.save.write", "writing " + tmp_path_);
  }
  const std::uint32_t crc = crc32(chunk_.data(), chunk_.size());
  std::vector<std::uint8_t> header;
  put_u64(header, chunk_.size());
  put_u64(header, chunk_events_);
  put_u64(header, crc);
  put_u64(index_, file_pos_ + kChunkHeaderBytes);  // payload offset
  put_u64(index_, chunk_.size());
  put_u64(index_, chunk_events_);
  put_u64(index_, crc);
  write_bytes(header.data(), header.size());
  write_bytes(chunk_.data(), chunk_.size());
  ++num_chunks_;
  chunk_.clear();
  chunk_events_ = 0;
  last_id_ = 0;  // each chunk restarts the delta base for seekability
}

Status TraceFileWriter::finalize() {
  const std::string context = "trace '" + path_ + "'";
  if (file_ == nullptr) {
    return internal_error("finalize() on a spent trace writer");
  }
  if (!chunk_.empty()) flush_chunk();
  const std::uint64_t index_offset = file_pos_;
  std::vector<std::uint8_t> footer = index_;
  put_u64(footer, index_offset);
  put_u64(footer, num_chunks_);
  put_u64(footer, crc32(index_.data(), index_.size()));
  put_u64(footer, kIndexMagic);
  write_bytes(footer.data(), footer.size());
  // Patch the real event/chunk counts into the placeholder header.
  if (error_.is_ok()) {
    std::vector<std::uint8_t> header;
    put_u64(header, kMagic);
    put_u64(header, kVersion);
    put_u64(header, num_events_);
    put_u64(header, num_chunks_);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(header.data(), 1, header.size(), file_) !=
            header.size()) {
      error_ = io_error("cannot patch header of '" + tmp_path_ + "'");
    }
  }
  // fclose flushes; a full disk surfaces here as a failed close.
  if (std::fclose(file_) != 0 && error_.is_ok()) {
    error_ = io_error("cannot flush '" + tmp_path_ + "'");
  }
  file_ = nullptr;
  if (error_.is_ok()) {
    error_ = fault::fail_if("trace.save.rename", "renaming " + tmp_path_);
  }
  if (error_.is_ok() &&
      std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    error_ = io_error("cannot rename '" + tmp_path_ + "' to '" + path_ + "'");
  }
  if (!error_.is_ok()) {
    std::remove(tmp_path_.c_str());
    return error_.with_context(context);
  }
  return error_;
}

}  // namespace stc::trace
