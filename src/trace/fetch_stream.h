// Adapter from a recorded block trace plus a code layout to the streams the
// architecture simulators consume.
//
// Taken-branch semantics follow the paper's simulation methodology: block
// sizes never change across layouts, and a dynamic transition A -> B is
// *sequential* iff addr(B) == addr(A) + size(A); any other transition is a
// taken control transfer. A block whose kind is not fall-through ends with a
// branch instruction (conditional/unconditional branch, call or return), all
// of which count against the fetch unit's branch limit.
#pragma once

#include <cstdint>

#include "cfg/address_map.h"
#include "cfg/program.h"
#include "support/stats.h"
#include "trace/block_trace.h"

namespace stc::trace {

// One dynamic basic block with layout-resolved addresses.
struct BlockRun {
  std::uint64_t addr = 0;       // start address under the layout
  std::uint32_t insns = 0;      // block size in instructions
  bool ends_in_branch = false;  // last instruction is a control transfer
  cfg::BlockKind kind = cfg::BlockKind::kFallThrough;  // static block kind
  bool has_next = false;        // false only for the final run of the trace
  bool taken = false;           // transition to next run is non-sequential
  std::uint64_t next_addr = 0;  // address of the next run (if has_next)

  std::uint64_t end_addr() const {
    return addr + std::uint64_t{insns} * cfg::kInsnBytes;
  }
};

// Pull-based stream of BlockRuns with one-block lookahead.
class BlockRunStream {
 public:
  BlockRunStream(const BlockTrace& trace, const cfg::ProgramImage& image,
                 const cfg::AddressMap& layout);

  // Fills `out` with the next run; returns false when the trace is exhausted.
  bool next(BlockRun& out);

 private:
  const cfg::ProgramImage& image_;
  const cfg::AddressMap& layout_;
  BlockTrace::Cursor cursor_;
  bool have_pending_ = false;
  cfg::BlockId pending_ = cfg::kInvalidBlock;
};

// Summary statistics that depend only on trace + layout (no cache model).
struct SequentialityStats {
  std::uint64_t instructions = 0;
  std::uint64_t dynamic_blocks = 0;
  std::uint64_t taken_transitions = 0;

  // The paper's headline code-quality metric (8.9 orig -> 22.4 ops).
  double insns_between_taken_branches() const {
    return taken_transitions == 0
               ? static_cast<double>(instructions)
               : static_cast<double>(instructions) /
                     static_cast<double>(taken_transitions);
  }

  // Registers the raw event counts for machine-readable reporting.
  void export_counters(CounterSet& out) const;
};

SequentialityStats measure_sequentiality(const BlockTrace& trace,
                                         const cfg::ProgramImage& image,
                                         const cfg::AddressMap& layout);

}  // namespace stc::trace
