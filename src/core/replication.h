// Code replication — the paper's Section 8 future work ("it is worth
// studying if the controlled use of code expanding techniques like function
// inlining and code replication can increase the potential fetch bandwidth
// provided by a sequential fetch unit while keeping the miss rate under
// control").
//
// A routine called from many sites puts a hard ceiling on any static layout:
// at most one call site can have the callee laid out sequentially, and the
// callee's return can be sequential for at most one resume point. The
// Replicator clones such routines per dominant call site, producing
//   (a) an extended ProgramImage (original blocks keep their ids; clones are
//       appended under a "replicated" module), and
//   (b) a trace transformer that rewrites each dynamic activation to the
//       clone belonging to its actual call site (tracked with an activation
//       stack, so recursion and nesting are handled exactly).
// Layouts are then built from a re-profile of the transformed trace, giving
// every dominant call site its own sequential copy of the callee.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cfg/program.h"
#include "profile/profile.h"
#include "trace/block_trace.h"

namespace stc::core {

struct ReplicationParams {
  // A routine qualifies when its dynamic block events are at least this
  // fraction of all events...
  double min_routine_weight = 0.002;
  // ...it is entered from at least this many distinct call-site blocks...
  std::size_t min_call_sites = 2;
  // ...and its code is small enough that copies stay cheap.
  std::uint32_t max_routine_bytes = 640;

  // Per routine, clone the most frequent call sites until this fraction of
  // its activations is covered, up to the clone cap. Remaining sites keep
  // calling the original copy.
  double site_coverage = 0.95;
  std::size_t max_clones_per_routine = 8;

  // Global brake: stop creating clones once the image has grown by this
  // factor ("controlled use of code expanding techniques").
  double max_code_growth = 1.5;
};

class Replicator {
 public:
  Replicator(const cfg::ProgramImage& original, const profile::Profile& prof,
             const ReplicationParams& params = {});

  // The extended image: block ids < original.num_blocks() are unchanged;
  // clone blocks follow.
  const cfg::ProgramImage& image() const { return *image_; }

  // Rewrites a trace recorded against the original image so that every
  // activation entered from a cloned call site references its clone.
  trace::BlockTrace transform(const trace::BlockTrace& original) const;

  // Replica provenance: origin_blocks()[b] is the original-image block that
  // block b of the extended image replicates — the identity for
  // b < original.num_blocks(), the cloned routine's corresponding block for
  // clone blocks. Lets an independent checker verify clones are byte-exact.
  const std::vector<cfg::BlockId>& origin_blocks() const {
    return origin_blocks_;
  }

  // Statistics.
  std::size_t num_cloned_routines() const { return cloned_routines_; }
  std::size_t num_clones() const { return clone_of_.size(); }
  std::uint64_t replicated_bytes() const { return replicated_bytes_; }
  double code_growth() const;

 private:
  // Key: (call-site block id << 32) | callee routine id.
  static std::uint64_t site_key(cfg::BlockId site, cfg::RoutineId callee) {
    return (std::uint64_t{site} << 32) | callee;
  }

  const cfg::ProgramImage& original_;
  std::unique_ptr<cfg::ProgramImage> image_;
  // Call site -> entry block id of the clone (in the extended image).
  std::unordered_map<std::uint64_t, cfg::BlockId> clone_of_;
  std::vector<cfg::BlockId> origin_blocks_;
  std::size_t cloned_routines_ = 0;
  std::uint64_t replicated_bytes_ = 0;
};

}  // namespace stc::core
