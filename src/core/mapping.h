// Sequence mapping into a logical array of caches — Section 5.3 / Figure 4.
//
// The address space is viewed as an array of cache-sized regions. The
// sequences of the *first* pass are mapped from address 0 and their area —
// the Conflict-Free Area, offsets [0, cfa) of every cache-sized region — is
// kept free of any other code, so the most popular traces can never be
// evicted by the rest of the program. Later passes fill the non-CFA offsets
// region by region; finally the remaining (rarely or never executed) blocks
// are appended, this time filling the entire address space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/address_map.h"
#include "core/trace_builder.h"

namespace stc::core {

struct MappingParams {
  std::uint64_t cache_bytes = 64 * 1024;
  std::uint64_t cfa_bytes = 8 * 1024;  // 0 disables the CFA reservation
  // When a sequence does not fit in the rest of the current inter-CFA window
  // but fits in a whole window, start it at the next window instead of
  // splitting it around the hole (keeps sequences sequential).
  bool avoid_splitting_sequences = false;
};

// Records, per block, which mapping pass placed it — enough for an
// independent checker to re-derive the Figure 4 occupancy rules (pass-0 code
// lives in [0, cfa); later passes stay out of every region's CFA window).
// An empty pass_of means the layout was not produced by map_sequences and
// carries no CFA contract.
struct MappingProvenance {
  static constexpr std::uint32_t kColdPass = ~std::uint32_t{0};
  static constexpr std::uint32_t kNoTenant = ~std::uint32_t{0};

  std::uint64_t cache_bytes = 0;
  std::uint64_t cfa_bytes = 0;
  std::vector<std::uint32_t> pass_of;  // indexed by BlockId; kColdPass = cold

  // Tenant-partitioned CFA (map_sequences_partitioned): the CFA is split
  // into `num_tenant_regions` sub-windows — sized by the caller's per-tenant
  // budgets, not necessarily equal — and tenant g's pass-0 code must live in
  // sub-window g. tenant_region_start holds the window boundaries as
  // num_tenant_regions + 1 ascending byte offsets, first 0 and last
  // cfa_bytes: window g is [tenant_region_start[g], tenant_region_start[g+1]).
  // num_tenant_regions == 0 means the layout is unpartitioned and both
  // vectors are empty; otherwise tenant_of is per-block with kNoTenant for
  // any block not placed by a tenant's first pass.
  std::uint32_t num_tenant_regions = 0;
  std::vector<std::uint32_t> tenant_of;
  std::vector<std::uint64_t> tenant_region_start;

  bool empty() const { return pass_of.empty(); }
  bool partitioned() const { return num_tenant_regions > 0; }
};

// passes[0] feeds the CFA; its total size must not exceed cfa_bytes
// (checked). `cold_blocks` are appended last in the order given and must
// contain exactly the blocks that appear in no sequence. When `provenance`
// is non-null it is overwritten with the per-block pass assignment.
cfg::AddressMap map_sequences(const cfg::ProgramImage& image,
                              std::string layout_name,
                              const std::vector<std::vector<Sequence>>& passes,
                              const std::vector<cfg::BlockId>& cold_blocks,
                              const MappingParams& params,
                              MappingProvenance* provenance = nullptr);

// Tenant-partitioned variant of the Figure 4 mapping: the CFA of every
// cache region is divided into tenant_pass0.size() sub-windows sized by
// `tenant_budgets` (same length as tenant_pass0; budgets must sum to
// cfa_bytes) and tenant g's first-pass sequences are mapped contiguously
// from the g'th window's start — so one tenant's hot loops occupy a
// disjoint conflict-free range and can never evict another tenant's. Each
// group's sequences must fit its sub-window (checked). `later_passes[p]`
// plays the role of passes[p+1] in map_sequences: the shared decaying
// passes filling non-CFA offsets, then cold blocks.
cfg::AddressMap map_sequences_partitioned(
    const cfg::ProgramImage& image, std::string layout_name,
    const std::vector<std::vector<Sequence>>& tenant_pass0,
    const std::vector<std::uint64_t>& tenant_budgets,
    const std::vector<std::vector<Sequence>>& later_passes,
    const std::vector<cfg::BlockId>& cold_blocks, const MappingParams& params,
    MappingProvenance* provenance = nullptr);

}  // namespace stc::core
