// Sequence mapping into a logical array of caches — Section 5.3 / Figure 4.
//
// The address space is viewed as an array of cache-sized regions. The
// sequences of the *first* pass are mapped from address 0 and their area —
// the Conflict-Free Area, offsets [0, cfa) of every cache-sized region — is
// kept free of any other code, so the most popular traces can never be
// evicted by the rest of the program. Later passes fill the non-CFA offsets
// region by region; finally the remaining (rarely or never executed) blocks
// are appended, this time filling the entire address space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/address_map.h"
#include "core/trace_builder.h"

namespace stc::core {

struct MappingParams {
  std::uint64_t cache_bytes = 64 * 1024;
  std::uint64_t cfa_bytes = 8 * 1024;  // 0 disables the CFA reservation
  // When a sequence does not fit in the rest of the current inter-CFA window
  // but fits in a whole window, start it at the next window instead of
  // splitting it around the hole (keeps sequences sequential).
  bool avoid_splitting_sequences = false;
};

// Records, per block, which mapping pass placed it — enough for an
// independent checker to re-derive the Figure 4 occupancy rules (pass-0 code
// lives in [0, cfa); later passes stay out of every region's CFA window).
// An empty pass_of means the layout was not produced by map_sequences and
// carries no CFA contract.
struct MappingProvenance {
  static constexpr std::uint32_t kColdPass = ~std::uint32_t{0};

  std::uint64_t cache_bytes = 0;
  std::uint64_t cfa_bytes = 0;
  std::vector<std::uint32_t> pass_of;  // indexed by BlockId; kColdPass = cold

  bool empty() const { return pass_of.empty(); }
};

// passes[0] feeds the CFA; its total size must not exceed cfa_bytes
// (checked). `cold_blocks` are appended last in the order given and must
// contain exactly the blocks that appear in no sequence. When `provenance`
// is non-null it is overwritten with the per-block pass assignment.
cfg::AddressMap map_sequences(const cfg::ProgramImage& image,
                              std::string layout_name,
                              const std::vector<std::vector<Sequence>>& passes,
                              const std::vector<cfg::BlockId>& cold_blocks,
                              const MappingParams& params,
                              MappingProvenance* provenance = nullptr);

}  // namespace stc::core
