// Torrellas, Xia & Daigle basic-block reordering (HPCA'95), the paper's
// second software baseline ("Torr layout").
//
// Like the STC it builds cross-procedure sequences and keeps a conflict-free
// area, but the CFA holds the most frequently referenced *individual* basic
// blocks rather than whole sequences: popular blocks are pulled out of their
// sequences into the CFA. (Section 7.3 of the ICPP paper observes that this
// breaks sequential execution as the CFA grows — the behaviour this
// implementation reproduces.)
#pragma once

#include <cstdint>

#include "cfg/address_map.h"
#include "core/mapping.h"
#include "profile/profile.h"

namespace stc::core {

struct TorrParams {
  std::uint64_t cache_bytes = 64 * 1024;
  std::uint64_t cfa_bytes = 8 * 1024;
  // Thresholds used for the sequence-building phase.
  std::uint64_t exec_threshold = 1;
  double branch_threshold = 0.1;
};

cfg::AddressMap torrellas_layout(const profile::WeightedCFG& cfg,
                                 const TorrParams& params,
                                 MappingProvenance* provenance = nullptr);

}  // namespace stc::core
