#include "core/layouts.h"

#include "support/check.h"

namespace stc::core {

cfg::AddressMap make_layout(LayoutKind kind, const profile::WeightedCFG& cfg,
                            std::uint64_t cache_bytes, std::uint64_t cfa_bytes,
                            MappingProvenance* provenance) {
  STC_REQUIRE(cfg.image != nullptr);
  if (provenance != nullptr) *provenance = MappingProvenance{};
  switch (kind) {
    case LayoutKind::kOrig:
      return cfg::AddressMap::original(*cfg.image);
    case LayoutKind::kPettisHansen:
      return pettis_hansen_layout(cfg);
    case LayoutKind::kTorrellas: {
      TorrParams params;
      params.cache_bytes = cache_bytes;
      params.cfa_bytes = cfa_bytes;
      return torrellas_layout(cfg, params, provenance);
    }
    case LayoutKind::kStcAuto:
    case LayoutKind::kStcOps: {
      StcParams params;
      params.cache_bytes = cache_bytes;
      params.cfa_bytes = cfa_bytes;
      const SeedKind seeds = kind == LayoutKind::kStcAuto ? SeedKind::kAuto
                                                          : SeedKind::kOps;
      return stc_layout(cfg, seeds, params, provenance).layout;
    }
  }
  STC_CHECK_MSG(false, "unknown layout kind");
  return cfg::AddressMap();
}

}  // namespace stc::core
