#include "core/seeds.h"

#include <algorithm>

#include "support/check.h"

namespace stc::core {

std::vector<cfg::BlockId> select_seeds(const profile::WeightedCFG& cfg,
                                       SeedKind kind) {
  STC_REQUIRE(cfg.image != nullptr);
  const cfg::ProgramImage& image = *cfg.image;
  std::vector<cfg::BlockId> seeds;
  for (cfg::RoutineId r = 0; r < image.num_routines(); ++r) {
    const cfg::RoutineInfo& info = image.routine(r);
    if (kind == SeedKind::kOps && !info.executor_op) continue;
    if (cfg.block_count[info.entry] == 0) continue;
    seeds.push_back(info.entry);
  }
  std::stable_sort(seeds.begin(), seeds.end(),
                   [&](cfg::BlockId a, cfg::BlockId b) {
                     if (cfg.block_count[a] != cfg.block_count[b]) {
                       return cfg.block_count[a] > cfg.block_count[b];
                     }
                     return a < b;
                   });
  return seeds;
}

}  // namespace stc::core
