#include "core/torrellas.h"

#include <algorithm>

#include "core/mapping.h"
#include "core/seeds.h"
#include "core/trace_builder.h"
#include "support/check.h"

namespace stc::core {

cfg::AddressMap torrellas_layout(const profile::WeightedCFG& cfg,
                                 const TorrParams& params,
                                 MappingProvenance* provenance) {
  STC_REQUIRE(cfg.image != nullptr);
  const cfg::ProgramImage& image = *cfg.image;

  // 1. CFA content: the most popular individual blocks, until the budget is
  //    full. These are marked visited so the sequence builder routes around
  //    them (they are "pulled out of their sequences").
  std::vector<cfg::BlockId> by_popularity;
  for (cfg::BlockId b = 0; b < cfg.block_count.size(); ++b) {
    if (cfg.block_count[b] > 0) by_popularity.push_back(b);
  }
  std::sort(by_popularity.begin(), by_popularity.end(),
            [&](cfg::BlockId a, cfg::BlockId b) {
              if (cfg.block_count[a] != cfg.block_count[b]) {
                return cfg.block_count[a] > cfg.block_count[b];
              }
              return a < b;
            });

  std::vector<bool> visited(cfg.block_count.size(), false);
  std::vector<Sequence> cfa_pass;
  std::uint64_t cfa_used = 0;
  for (cfg::BlockId b : by_popularity) {
    const std::uint64_t bytes = image.block(b).bytes();
    if (cfa_used + bytes > params.cfa_bytes) break;
    cfa_used += bytes;
    visited[b] = true;
    Sequence single;
    single.blocks = {b};
    single.weight = cfg.block_count[b];
    cfa_pass.push_back(std::move(single));
  }

  // 2. Sequences over the remaining blocks (auto seeds; entries already in
  //    the CFA cannot start sequences, matching the pulled-out semantics).
  std::vector<Sequence> sequences = build_traces_complete(
      cfg, select_seeds(cfg, SeedKind::kAuto),
      TraceBuildParams{params.exec_threshold, params.branch_threshold},
      &visited);
  // A final relaxed pass catches executed blocks skipped by the thresholds.
  std::vector<Sequence> relaxed = build_traces_complete(
      cfg, select_seeds(cfg, SeedKind::kAuto), TraceBuildParams{1, 0.0},
      &visited);
  sequences.insert(sequences.end(), std::make_move_iterator(relaxed.begin()),
                   std::make_move_iterator(relaxed.end()));

  // 3. Remaining (never executed) code in original order.
  std::vector<cfg::BlockId> cold;
  for (cfg::RoutineId r : image.routines_in_order()) {
    const cfg::RoutineInfo& info = image.routine(r);
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      const cfg::BlockId b = info.entry + i;
      if (!visited[b]) cold.push_back(b);
    }
  }

  MappingParams mapping;
  mapping.cache_bytes = params.cache_bytes;
  mapping.cfa_bytes = params.cfa_bytes;
  return map_sequences(image, "torr",
                       {std::move(cfa_pass), std::move(sequences)}, cold,
                       mapping, provenance);
}

}  // namespace stc::core
