#include "core/pettis_hansen.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/check.h"

namespace stc::core {
namespace {

using cfg::BlockId;
using cfg::ProgramImage;
using cfg::RoutineId;

struct WeightedPair {
  std::uint32_t a;
  std::uint32_t b;
  std::uint64_t weight;
};

// Sorts heaviest first with deterministic tie-breaking.
void sort_pairs(std::vector<WeightedPair>& pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const WeightedPair& x, const WeightedPair& y) {
              if (x.weight != y.weight) return x.weight > y.weight;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

// ---- 1. intra-procedure block chaining ------------------------------------

// Returns the executed blocks of `routine` in their P&H order (entry chain
// first, then remaining chains by weight); appends never-executed blocks to
// `fluff`.
std::vector<BlockId> order_routine_blocks(const profile::WeightedCFG& cfg,
                                          RoutineId routine,
                                          std::vector<BlockId>& fluff) {
  const ProgramImage& image = *cfg.image;
  const cfg::RoutineInfo& info = image.routine(routine);

  std::vector<BlockId> executed;
  for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
    const BlockId b = info.entry + i;
    if (cfg.block_count[b] > 0) {
      executed.push_back(b);
    } else {
      fluff.push_back(b);
    }
  }
  if (executed.empty()) return executed;

  // Local indices for the executed blocks.
  std::unordered_map<BlockId, std::uint32_t> local;
  for (std::uint32_t i = 0; i < executed.size(); ++i) local[executed[i]] = i;

  // Intra-procedure edges between executed blocks.
  std::vector<WeightedPair> edges;
  for (std::uint32_t i = 0; i < executed.size(); ++i) {
    for (const auto& succ : cfg.succs[executed[i]]) {
      const auto it = local.find(succ.to);
      if (it == local.end()) continue;
      edges.push_back({i, it->second, succ.count});
    }
  }
  sort_pairs(edges);

  // Chains: each block starts alone; merge tail(a) -> head(b).
  struct Chain {
    std::vector<std::uint32_t> blocks;
    std::uint64_t weight = 0;  // sum of merged edge weights
  };
  std::vector<Chain> chains(executed.size());
  std::vector<std::uint32_t> chain_of(executed.size());
  for (std::uint32_t i = 0; i < executed.size(); ++i) {
    chains[i].blocks = {i};
    chain_of[i] = i;
  }
  for (const WeightedPair& e : edges) {
    const std::uint32_t ca = chain_of[e.a];
    const std::uint32_t cb = chain_of[e.b];
    if (ca == cb) continue;
    if (chains[ca].blocks.back() != e.a) continue;  // a must be a chain tail
    if (chains[cb].blocks.front() != e.b) continue;  // b must be a chain head
    for (std::uint32_t idx : chains[cb].blocks) {
      chains[ca].blocks.push_back(idx);
      chain_of[idx] = ca;
    }
    chains[ca].weight += chains[cb].weight + e.weight;
    chains[cb].blocks.clear();
  }

  // Order: the chain containing the entry first, then by weight descending
  // (deterministic: by head block index on ties).
  std::vector<std::uint32_t> chain_ids;
  for (std::uint32_t c = 0; c < chains.size(); ++c) {
    if (!chains[c].blocks.empty()) chain_ids.push_back(c);
  }
  const std::uint32_t entry_chain = chain_of[0];  // local index 0 == entry
  std::stable_sort(chain_ids.begin(), chain_ids.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     if ((x == entry_chain) != (y == entry_chain)) {
                       return x == entry_chain;
                     }
                     if (chains[x].weight != chains[y].weight) {
                       return chains[x].weight > chains[y].weight;
                     }
                     return chains[x].blocks.front() < chains[y].blocks.front();
                   });

  std::vector<BlockId> ordered;
  ordered.reserve(executed.size());
  for (std::uint32_t c : chain_ids) {
    for (std::uint32_t idx : chains[c].blocks) ordered.push_back(executed[idx]);
  }
  return ordered;
}

// ---- 2. procedure ordering (closest is best) ------------------------------

std::vector<RoutineId> order_routines(const profile::WeightedCFG& cfg) {
  const ProgramImage& image = *cfg.image;
  const std::size_t n = image.num_routines();

  // Undirected routine-level weights from every inter-routine transition
  // (calls and returns both witness affinity).
  std::unordered_map<std::uint64_t, std::uint64_t> weight;
  for (BlockId b = 0; b < cfg.block_count.size(); ++b) {
    const RoutineId rb = image.block(b).routine;
    for (const auto& succ : cfg.succs[b]) {
      const RoutineId rt = image.block(succ.to).routine;
      if (rb == rt) continue;
      const std::uint64_t lo = std::min(rb, rt);
      const std::uint64_t hi = std::max(rb, rt);
      weight[(lo << 32) | hi] += succ.count;
    }
  }
  std::vector<WeightedPair> edges;
  edges.reserve(weight.size());
  for (const auto& [key, w] : weight) {
    edges.push_back({static_cast<std::uint32_t>(key >> 32),
                     static_cast<std::uint32_t>(key & 0xffffffffu), w});
  }
  sort_pairs(edges);

  std::vector<std::vector<RoutineId>> chains(n);
  std::vector<std::uint32_t> chain_of(n);
  for (RoutineId r = 0; r < n; ++r) {
    chains[r] = {r};
    chain_of[r] = r;
  }

  for (const WeightedPair& e : edges) {
    const std::uint32_t ca = chain_of[e.a];
    const std::uint32_t cb = chain_of[e.b];
    if (ca == cb) continue;
    auto& A = chains[ca];
    auto& B = chains[cb];
    // "Closest is best": orient both chains so the joined endpoints are as
    // close as possible — distance is the number of routines separating them
    // after concatenation A' + B'.
    const auto pos = [](const std::vector<RoutineId>& v, RoutineId r) {
      return static_cast<std::size_t>(
          std::find(v.begin(), v.end(), r) - v.begin());
    };
    const std::size_t pa = pos(A, e.a);
    const std::size_t pb = pos(B, e.b);
    // Distance from a to the junction if A kept (tail side) vs reversed.
    const std::size_t a_keep = A.size() - 1 - pa;
    const std::size_t a_rev = pa;
    const std::size_t b_keep = pb;
    const std::size_t b_rev = B.size() - 1 - pb;
    const bool rev_a = a_rev < a_keep;
    const bool rev_b = b_rev < b_keep;
    if (rev_a) std::reverse(A.begin(), A.end());
    if (rev_b) std::reverse(B.begin(), B.end());
    for (RoutineId r : B) {
      A.push_back(r);
      chain_of[r] = ca;
    }
    B.clear();
  }

  // Remaining chains (popular merged clusters plus isolated routines) are
  // emitted by total routine popularity, then original order.
  std::vector<std::uint32_t> chain_ids;
  for (std::uint32_t c = 0; c < chains.size(); ++c) {
    if (!chains[c].empty()) chain_ids.push_back(c);
  }
  const auto chain_weight = [&](std::uint32_t c) {
    std::uint64_t w = 0;
    for (RoutineId r : chains[c]) {
      w += cfg.block_count[image.routine(r).entry];
    }
    return w;
  };
  std::stable_sort(chain_ids.begin(), chain_ids.end(),
                   [&](std::uint32_t x, std::uint32_t y) {
                     const std::uint64_t wx = chain_weight(x);
                     const std::uint64_t wy = chain_weight(y);
                     if (wx != wy) return wx > wy;
                     return chains[x].front() < chains[y].front();
                   });

  std::vector<RoutineId> order;
  order.reserve(n);
  for (std::uint32_t c : chain_ids) {
    for (RoutineId r : chains[c]) order.push_back(r);
  }
  return order;
}

}  // namespace

cfg::AddressMap pettis_hansen_layout(const profile::WeightedCFG& cfg) {
  STC_REQUIRE(cfg.image != nullptr);
  const ProgramImage& image = *cfg.image;
  cfg::AddressMap map("ph", image.num_blocks());

  std::vector<BlockId> fluff;
  std::uint64_t cursor = 0;
  for (RoutineId r : order_routines(cfg)) {
    for (BlockId b : order_routine_blocks(cfg, r, fluff)) {
      map.set(b, cursor);
      cursor += image.block(b).bytes();
    }
  }
  // The split-out never-executed code lands at the end of the program.
  for (BlockId b : fluff) {
    map.set(b, cursor);
    cursor += image.block(b).bytes();
  }
  map.validate(image);
  return map;
}

}  // namespace stc::core
