#include "core/replication.h"

#include <algorithm>

#include "support/check.h"

namespace stc::core {
namespace {

using cfg::BlockId;
using cfg::BlockKind;
using cfg::RoutineId;

struct SiteCount {
  BlockId site;
  std::uint64_t count;
};

}  // namespace

Replicator::Replicator(const cfg::ProgramImage& original,
                       const profile::Profile& prof,
                       const ReplicationParams& params)
    : original_(original) {
  STC_REQUIRE(original.finalized());
  STC_REQUIRE(&prof.image() == &original);

  // ---- 1. per-routine dynamic weight and call sites -----------------------
  std::vector<std::uint64_t> routine_events(original.num_routines(), 0);
  for (BlockId b = 0; b < original.num_blocks(); ++b) {
    routine_events[original.block(b).routine] += prof.block_count(b);
  }
  const std::uint64_t total_events = prof.total_block_events();

  // Call sites of each routine: call-kind predecessor blocks of its entry.
  std::vector<std::vector<SiteCount>> sites(original.num_routines());
  for (const profile::Profile::Edge& edge : prof.edges()) {
    const cfg::BlockInfo& from = original.block(edge.from);
    const cfg::BlockInfo& to = original.block(edge.to);
    if (from.kind != BlockKind::kCall) continue;
    const RoutineId callee = to.routine;
    if (original.routine(callee).entry != edge.to) continue;  // not an entry
    if (from.routine == callee) continue;  // direct recursion: keep original
    sites[callee].push_back({edge.from, edge.count});
  }

  // ---- 2. choose (routine, site) clones ------------------------------------
  // Hottest routines first, so the growth budget goes to the best targets.
  std::vector<RoutineId> order(original.num_routines());
  for (RoutineId r = 0; r < original.num_routines(); ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](RoutineId a, RoutineId b) {
    if (routine_events[a] != routine_events[b]) {
      return routine_events[a] > routine_events[b];
    }
    return a < b;
  });

  struct PlannedClone {
    RoutineId routine;
    BlockId site;
  };
  std::vector<PlannedClone> plan;
  std::uint64_t growth_budget = static_cast<std::uint64_t>(
      (params.max_code_growth - 1.0) *
      static_cast<double>(original.image_bytes()));

  for (RoutineId r : order) {
    const cfg::RoutineInfo& info = original.routine(r);
    if (total_events == 0 ||
        static_cast<double>(routine_events[r]) <
            params.min_routine_weight * static_cast<double>(total_events)) {
      break;  // sorted by weight: nothing hotter follows
    }
    if (info.bytes > params.max_routine_bytes) continue;
    auto& routine_sites = sites[r];
    if (routine_sites.size() < params.min_call_sites) continue;
    std::sort(routine_sites.begin(), routine_sites.end(),
              [](const SiteCount& a, const SiteCount& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.site < b.site;
              });
    std::uint64_t total_calls = 0;
    for (const SiteCount& s : routine_sites) total_calls += s.count;

    std::uint64_t covered = 0;
    std::size_t clones = 0;
    bool any = false;
    for (const SiteCount& s : routine_sites) {
      if (clones >= params.max_clones_per_routine) break;
      if (static_cast<double>(covered) >=
          params.site_coverage * static_cast<double>(total_calls)) {
        break;
      }
      if (info.bytes > growth_budget) break;
      plan.push_back({r, s.site});
      growth_budget -= info.bytes;
      replicated_bytes_ += info.bytes;
      covered += s.count;
      ++clones;
      any = true;
    }
    if (any) ++cloned_routines_;
  }

  // ---- 3. rebuild the image: originals first (identical ids), clones after.
  image_ = std::make_unique<cfg::ProgramImage>();
  std::vector<cfg::ModuleId> module_map;
  for (cfg::ModuleId m = 0; m < original.num_modules(); ++m) {
    module_map.push_back(image_->add_module(original.module_name(m)));
  }
  for (RoutineId r = 0; r < original.num_routines(); ++r) {
    const cfg::RoutineInfo& info = original.routine(r);
    std::vector<cfg::BlockDef> blocks;
    blocks.reserve(info.num_blocks);
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      const cfg::BlockInfo& block = original.block(info.entry + i);
      blocks.push_back({block.name, block.insns, block.kind});
    }
    const RoutineId new_id = image_->add_routine(
        info.name, module_map[info.module], std::move(blocks),
        info.executor_op);
    STC_CHECK(new_id == r);  // identity mapping for original routines
  }
  const cfg::ModuleId replicated = image_->add_module("replicated");
  for (const PlannedClone& c : plan) {
    const cfg::RoutineInfo& info = original.routine(c.routine);
    std::vector<cfg::BlockDef> blocks;
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      const cfg::BlockInfo& block = original.block(info.entry + i);
      blocks.push_back({block.name, block.insns, block.kind});
    }
    const RoutineId clone = image_->add_routine(
        info.name + "@" + std::to_string(c.site), replicated,
        std::move(blocks), info.executor_op);
    clone_of_[site_key(c.site, c.routine)] = image_->routine(clone).entry;
  }
  image_->finalize();
  STC_CHECK(image_->num_blocks() >= original.num_blocks());

  // Provenance: identity for originals, then each clone's origin blocks in
  // plan order (add_routine appends blocks contiguously, so ids line up).
  origin_blocks_.reserve(image_->num_blocks());
  for (BlockId b = 0; b < original.num_blocks(); ++b) origin_blocks_.push_back(b);
  for (const PlannedClone& c : plan) {
    const cfg::RoutineInfo& info = original.routine(c.routine);
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      origin_blocks_.push_back(info.entry + i);
    }
  }
  STC_CHECK(origin_blocks_.size() == image_->num_blocks());
}

double Replicator::code_growth() const {
  return static_cast<double>(image_->image_bytes()) /
         static_cast<double>(original_.image_bytes());
}

trace::BlockTrace Replicator::transform(
    const trace::BlockTrace& original_trace) const {
  trace::BlockTrace out;

  // Activation stack. delta = clone_entry - original_entry for activations
  // entered through a cloned call site; 0 otherwise.
  struct Frame {
    RoutineId routine;
    std::int64_t delta;
  };
  std::vector<Frame> stack;
  BlockId prev = cfg::kInvalidBlock;

  original_trace.for_each([&](BlockId cur) {
    const cfg::BlockInfo& info = original_.block(cur);
    if (prev != cfg::kInvalidBlock) {
      const cfg::BlockInfo& prev_info = original_.block(prev);
      // A return transition pops exactly one activation (traces obey the
      // instrumentation discipline). Below the recorded stack base there is
      // nothing to pop.
      if (prev_info.kind == BlockKind::kReturn && !stack.empty() &&
          stack.back().routine == prev_info.routine) {
        stack.pop_back();
      }
      if (prev_info.kind == BlockKind::kCall &&
          original_.routine(info.routine).entry == cur) {
        // New activation; route it to a clone when the (site, callee) pair
        // was selected. The site key uses original block ids.
        std::int64_t delta = 0;
        const auto it = clone_of_.find(site_key(prev, info.routine));
        if (it != clone_of_.end()) {
          delta = static_cast<std::int64_t>(it->second) -
                  static_cast<std::int64_t>(cur);
        }
        stack.push_back({info.routine, delta});
      }
    }
    std::int64_t delta = 0;
    if (!stack.empty() && stack.back().routine == info.routine) {
      delta = stack.back().delta;
    }
    out.append(static_cast<BlockId>(static_cast<std::int64_t>(cur) + delta));
    prev = cur;
  });
  return out;
}

}  // namespace stc::core
