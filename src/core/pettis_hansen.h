// Pettis & Hansen profile-guided code positioning (PLDI'90), the paper's
// software baseline ("P&H layout").
//
// Two components, both driven by the dynamic profile:
//  1. Basic-block positioning inside each procedure: chains of blocks are
//     grown by merging along the heaviest intra-procedure edges; never-
//     executed blocks ("fluff") are split out of the procedure entirely and
//     moved to the end of the program.
//  2. Procedure positioning: an undirected weighted call graph is reduced by
//     repeatedly merging the two procedure chains joined by the heaviest
//     remaining edge, orienting the chains so the two endpoints end up as
//     close together as possible ("closest is best").
// The algorithm does not consider the target cache geometry.
#pragma once

#include "cfg/address_map.h"
#include "profile/profile.h"

namespace stc::core {

cfg::AddressMap pettis_hansen_layout(const profile::WeightedCFG& cfg);

}  // namespace stc::core
