// Seed selection for sequence building (Section 5.1 of the paper).
//
//  - auto_seeds: the entry points of *all* functions, in decreasing order of
//    popularity ("auto selection").
//  - ops_seeds:  the entry points of the Executor operations only
//    ("ops selection", the knowledge-based variant). Routines flagged
//    executor_op at registration are the candidates.
#pragma once

#include <vector>

#include "cfg/types.h"
#include "profile/profile.h"

namespace stc::core {

enum class SeedKind { kAuto, kOps };

inline const char* to_string(SeedKind kind) {
  return kind == SeedKind::kAuto ? "auto" : "ops";
}

// Entry blocks of candidate routines, most popular first. Routines whose
// entry never executed are excluded (they cannot start a sequence).
std::vector<cfg::BlockId> select_seeds(const profile::WeightedCFG& cfg,
                                       SeedKind kind);

}  // namespace stc::core
