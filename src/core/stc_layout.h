// The full Software Trace Cache layout pipeline (the paper's contribution).
//
// Combines seed selection (auto / ops), multi-pass greedy trace building with
// decaying thresholds, CFA-budget fitting of the first-pass Exec Threshold
// (the threshold-selection automation announced as future work in Section 8),
// and the Figure-4 mapping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cfg/address_map.h"
#include "core/mapping.h"
#include "core/seeds.h"
#include "core/trace_builder.h"

namespace stc::core {

struct StcParams {
  std::uint64_t cache_bytes = 64 * 1024;
  std::uint64_t cfa_bytes = 8 * 1024;

  // Branch Threshold for the first pass (paper's example value: 0.4).
  double branch_threshold = 0.4;
  // Branch Threshold for later passes (relaxed so remaining popular code
  // still forms sequences).
  double later_branch_threshold = 0.1;

  // Exec Threshold for the first pass. When unset it is fitted by binary
  // search so the first-pass sequences maximally fill the CFA budget.
  std::optional<std::uint64_t> exec_threshold_pass1;
  // Later passes decay the Exec Threshold by this factor until it reaches 1.
  double pass_decay = 4.0;

  bool avoid_splitting_sequences = false;
};

struct StcResult {
  cfg::AddressMap layout;
  std::uint64_t exec_threshold_pass1 = 0;  // fitted or explicit
  std::uint64_t pass1_bytes = 0;           // code mapped into the CFA
  std::size_t num_passes = 0;
  std::size_t num_sequences = 0;           // across all passes
};

// Builds the STC layout for the given seed-selection policy. When
// `provenance` is non-null it receives the per-block mapping-pass record
// (see MappingProvenance) for independent verification.
StcResult stc_layout(const profile::WeightedCFG& cfg, SeedKind seed_kind,
                     const StcParams& params,
                     MappingProvenance* provenance = nullptr);

// Tenant-partitioned STC layout (the multi-tenant defense): each tenant's
// first pass is built from its *own* profile and fitted to its CFA
// sub-window, so no tenant's hot loops can evict another's. Sub-windows are
// sized in proportion to each tenant's dynamic instruction weight
// (sum of block_count x insns, with a one-byte floor per tenant), so a
// light tenant cannot starve a heavy one out of the CFA; the prefix-sum
// boundaries are recorded in MappingProvenance::tenant_region_start and
// checked by map_sequences_partitioned. Blocks hot for several tenants are
// claimed by the lowest-numbered tenant (shared visited set); the decaying
// later passes and cold section are built from the merged profile exactly
// like stc_layout. Requires cfa_bytes >= tenant_cfgs.size() > 0.
StcResult stc_layout_partitioned(
    const std::vector<const profile::WeightedCFG*>& tenant_cfgs,
    SeedKind seed_kind, const StcParams& params,
    MappingProvenance* provenance = nullptr);

// Fits the largest first-pass Exec Threshold... precisely: the smallest
// threshold whose first-pass sequences still fit within `cfa_bytes`
// (lower thresholds admit more code). Exposed for tests and the threshold
// ablation bench.
std::uint64_t fit_exec_threshold(const profile::WeightedCFG& cfg,
                                 const std::vector<cfg::BlockId>& seeds,
                                 double branch_threshold,
                                 std::uint64_t cfa_bytes);

}  // namespace stc::core
