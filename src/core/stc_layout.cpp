#include "core/stc_layout.h"

#include <algorithm>

#include "support/check.h"

namespace stc::core {
namespace {

// Seeds used for later passes: the pass-1 seeds first (so secondary code of
// the chosen policy clusters near its own hot code), then every executed
// routine entry so no popular block is orphaned to the cold section merely
// because it is unreachable from the Executor-operation seeds.
std::vector<cfg::BlockId> later_pass_seeds(const profile::WeightedCFG& cfg,
                                           SeedKind kind) {
  std::vector<cfg::BlockId> seeds = select_seeds(cfg, kind);
  if (kind != SeedKind::kAuto) {
    std::vector<bool> present(cfg.block_count.size(), false);
    for (cfg::BlockId s : seeds) present[s] = true;
    for (cfg::BlockId s : select_seeds(cfg, SeedKind::kAuto)) {
      if (!present[s]) seeds.push_back(s);
    }
  }
  return seeds;
}

// Splits `sequences` at the CFA budget: the kept prefix (left in
// `sequences`, in build order — later sequences come from less popular
// seeds) fits within `budget_bytes`; the spilled remainder is returned for
// the later passes. A zero budget spills everything.
std::vector<Sequence> spill_to_budget(const cfg::ProgramImage& image,
                                      std::vector<Sequence>& sequences,
                                      std::uint64_t budget_bytes) {
  std::vector<Sequence> spilled;
  if (budget_bytes == 0) {
    spilled = std::move(sequences);
    sequences.clear();
    return spilled;
  }
  std::uint64_t used = 0;
  std::size_t keep = 0;
  for (; keep < sequences.size(); ++keep) {
    std::uint64_t bytes = 0;
    for (cfg::BlockId b : sequences[keep].blocks) {
      bytes += image.block(b).bytes();
    }
    if (used + bytes > budget_bytes) break;
    used += bytes;
  }
  spilled.assign(std::make_move_iterator(sequences.begin() +
                                         static_cast<std::ptrdiff_t>(keep)),
                 std::make_move_iterator(sequences.end()));
  sequences.resize(keep);
  return spilled;
}

// The decaying later passes: starting from the pass-1 threshold, each pass
// divides the Exec Threshold by pass_decay until it reaches 1 (the last
// pass also drops the Branch Threshold to 0 so every executed block lands
// in a sequence). `spilled` seeds the first later pass.
std::vector<std::vector<Sequence>> build_decaying_passes(
    const profile::WeightedCFG& cfg, SeedKind seed_kind,
    std::uint64_t threshold, const StcParams& params,
    std::vector<bool>& visited, std::vector<Sequence> spilled) {
  const std::vector<cfg::BlockId> seeds = later_pass_seeds(cfg, seed_kind);
  std::vector<std::vector<Sequence>> passes;
  std::vector<Sequence> current = std::move(spilled);
  while (true) {
    const std::uint64_t next_threshold = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(threshold) / params.pass_decay));
    const bool last_pass = next_threshold == 1 && threshold == 1;
    threshold = next_threshold;
    const double branch = last_pass ? 0.0 : params.later_branch_threshold;
    std::vector<Sequence> built = build_traces_complete(
        cfg, seeds, TraceBuildParams{threshold, branch}, &visited);
    current.insert(current.end(), std::make_move_iterator(built.begin()),
                   std::make_move_iterator(built.end()));
    passes.push_back(std::move(current));
    current.clear();
    if (last_pass) break;
  }
  return passes;
}

// Blocks no pass visited, in original image order.
std::vector<cfg::BlockId> cold_blocks_of(const cfg::ProgramImage& image,
                                         const std::vector<bool>& visited) {
  std::vector<cfg::BlockId> cold;
  for (cfg::RoutineId r : image.routines_in_order()) {
    const cfg::RoutineInfo& info = image.routine(r);
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      const cfg::BlockId b = info.entry + i;
      if (!visited[b]) cold.push_back(b);
    }
  }
  return cold;
}

}  // namespace

std::uint64_t fit_exec_threshold(const profile::WeightedCFG& cfg,
                                 const std::vector<cfg::BlockId>& seeds,
                                 double branch_threshold,
                                 std::uint64_t cfa_bytes) {
  STC_REQUIRE(cfg.image != nullptr);
  if (cfa_bytes == 0) return ~std::uint64_t{0};

  // Candidate thresholds are the distinct block counts: pass-1 footprint is a
  // step function whose steps occur exactly at those values.
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t c : cfg.block_count) {
    if (c > 0) candidates.push_back(c);
  }
  if (candidates.empty()) return 1;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto pass_bytes = [&](std::uint64_t threshold) {
    const TraceBuildParams params{threshold, branch_threshold};
    std::vector<bool> visited(cfg.block_count.size(), false);
    return sequences_bytes(*cfg.image,
                           build_traces_complete(cfg, seeds, params, &visited));
  };

  // Find the smallest threshold that still fits (footprint shrinks as the
  // threshold grows, so this is a standard predicate binary search).
  std::size_t lo = 0;
  std::size_t hi = candidates.size();  // one past the last candidate
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pass_bytes(candidates[mid]) <= cfa_bytes) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == candidates.size()) {
    // Even the strictest threshold overflows; the caller's sequence spill
    // handles the rest.
    return candidates.back() + 1;
  }
  return candidates[lo];
}

StcResult stc_layout(const profile::WeightedCFG& cfg, SeedKind seed_kind,
                     const StcParams& params, MappingProvenance* provenance) {
  STC_REQUIRE(cfg.image != nullptr);
  STC_REQUIRE(params.pass_decay > 1.0);
  const cfg::ProgramImage& image = *cfg.image;

  const std::vector<cfg::BlockId> pass1_seeds = select_seeds(cfg, seed_kind);
  std::uint64_t threshold =
      params.exec_threshold_pass1.has_value()
          ? *params.exec_threshold_pass1
          : fit_exec_threshold(cfg, pass1_seeds, params.branch_threshold,
                               params.cfa_bytes);
  const std::uint64_t fitted_threshold = threshold;

  std::vector<bool> visited(cfg.block_count.size(), false);
  std::vector<std::vector<Sequence>> passes;

  // ---- Pass 1: the CFA content ----------------------------------------
  std::vector<Sequence> pass1 = build_traces_complete(
      cfg, pass1_seeds, TraceBuildParams{threshold, params.branch_threshold},
      &visited);
  std::vector<Sequence> spilled =
      spill_to_budget(image, pass1, params.cfa_bytes);
  passes.push_back(std::move(pass1));

  // ---- Later passes: decaying thresholds -------------------------------
  std::vector<std::vector<Sequence>> later = build_decaying_passes(
      cfg, seed_kind, threshold, params, visited, std::move(spilled));
  passes.insert(passes.end(), std::make_move_iterator(later.begin()),
                std::make_move_iterator(later.end()));

  // ---- Remaining blocks: cold code in original order --------------------
  const std::vector<cfg::BlockId> cold = cold_blocks_of(image, visited);

  MappingParams mapping;
  mapping.cache_bytes = params.cache_bytes;
  mapping.cfa_bytes = params.cfa_bytes;
  mapping.avoid_splitting_sequences = params.avoid_splitting_sequences;

  StcResult result;
  result.exec_threshold_pass1 = fitted_threshold;
  result.pass1_bytes = sequences_bytes(image, passes.front());
  result.num_passes = passes.size();
  for (const auto& pass : passes) result.num_sequences += pass.size();
  std::string name = std::string("stc-") + to_string(seed_kind);
  result.layout =
      map_sequences(image, std::move(name), passes, cold, mapping, provenance);
  return result;
}

StcResult stc_layout_partitioned(
    const std::vector<const profile::WeightedCFG*>& tenant_cfgs,
    SeedKind seed_kind, const StcParams& params,
    MappingProvenance* provenance) {
  STC_REQUIRE(!tenant_cfgs.empty());
  STC_REQUIRE(params.pass_decay > 1.0);
  STC_REQUIRE_MSG(params.cfa_bytes >= tenant_cfgs.size(),
                  "partitioned layout needs at least one CFA byte per tenant");
  const std::uint32_t groups = static_cast<std::uint32_t>(tenant_cfgs.size());
  const profile::WeightedCFG merged = profile::WeightedCFG::merge(tenant_cfgs);
  STC_REQUIRE(merged.image != nullptr);
  const cfg::ProgramImage& image = *merged.image;

  // ---- Demand-weighted sub-windows ---------------------------------------
  // Each tenant's CFA share is proportional to its dynamic instruction
  // weight, with a 1-byte floor. Equal shares would starve the heavy
  // tenants: most hot code is shared across tenants of one binary, and
  // demoting the globally hottest traces out of the CFA costs far more than
  // the minority tenant's guaranteed share gains. Weighting keeps the big
  // tenants near their shared-CFA fit while still reserving a window for
  // every tenant's residual hot code.
  std::vector<std::uint64_t> weights(groups, 0);
  std::uint64_t total_weight = 0;
  for (std::uint32_t g = 0; g < groups; ++g) {
    const profile::WeightedCFG& tenant_cfg = *tenant_cfgs[g];
    for (std::size_t b = 0; b < tenant_cfg.block_count.size(); ++b) {
      weights[g] += tenant_cfg.block_count[b] *
                    image.block(static_cast<cfg::BlockId>(b)).insns;
    }
    total_weight += weights[g];
  }
  std::vector<std::uint64_t> budgets(groups, 1);
  std::uint64_t assigned = groups;
  const std::uint64_t distributable = params.cfa_bytes - groups;
  for (std::uint32_t g = 0; g < groups; ++g) {
    const std::uint64_t extra =
        total_weight == 0 ? distributable / groups
                          : distributable * weights[g] / total_weight;
    budgets[g] += extra;
    assigned += extra;
  }
  // Rounding leftover goes to the heaviest tenant (lowest index on ties).
  std::uint32_t heaviest = 0;
  for (std::uint32_t g = 1; g < groups; ++g) {
    if (weights[g] > weights[heaviest]) heaviest = g;
  }
  budgets[heaviest] += params.cfa_bytes - assigned;

  // ---- Pass 1, per tenant: each group's hot traces, fitted to its CFA
  // sub-window. The visited set is shared, so blocks hot for several
  // tenants are claimed by the lowest-numbered one and placed exactly once.
  std::vector<bool> visited(merged.block_count.size(), false);
  std::vector<std::vector<Sequence>> tenant_pass0;
  std::vector<Sequence> spilled;
  std::uint64_t max_threshold = 1;
  std::uint64_t pass1_bytes = 0;
  for (std::uint32_t g = 0; g < groups; ++g) {
    const profile::WeightedCFG& tenant_cfg = *tenant_cfgs[g];
    const std::uint64_t budget = budgets[g];
    const std::vector<cfg::BlockId> seeds = select_seeds(tenant_cfg, seed_kind);
    const std::uint64_t threshold =
        params.exec_threshold_pass1.has_value()
            ? *params.exec_threshold_pass1
            : fit_exec_threshold(tenant_cfg, seeds, params.branch_threshold,
                                 budget);
    max_threshold = std::max(max_threshold, threshold);
    std::vector<Sequence> pass1 = build_traces_complete(
        tenant_cfg, seeds, TraceBuildParams{threshold, params.branch_threshold},
        &visited);
    // The fit is estimated against a fresh visited set; the shared set can
    // shift what actually gets built, so enforce the sub-window budget by
    // spilling whole sequences into the shared later passes.
    std::vector<Sequence> overflow = spill_to_budget(image, pass1, budget);
    spilled.insert(spilled.end(), std::make_move_iterator(overflow.begin()),
                   std::make_move_iterator(overflow.end()));
    pass1_bytes += sequences_bytes(image, pass1);
    tenant_pass0.push_back(std::move(pass1));
  }

  // ---- Later passes: decaying thresholds over the merged profile -------
  std::vector<std::vector<Sequence>> later = build_decaying_passes(
      merged, seed_kind, max_threshold, params, visited, std::move(spilled));

  const std::vector<cfg::BlockId> cold = cold_blocks_of(image, visited);

  MappingParams mapping;
  mapping.cache_bytes = params.cache_bytes;
  mapping.cfa_bytes = params.cfa_bytes;
  mapping.avoid_splitting_sequences = params.avoid_splitting_sequences;

  StcResult result;
  result.exec_threshold_pass1 = max_threshold;
  result.pass1_bytes = pass1_bytes;
  result.num_passes = 1 + later.size();
  for (const auto& pass : tenant_pass0) result.num_sequences += pass.size();
  for (const auto& pass : later) result.num_sequences += pass.size();
  std::string name = std::string("stc-") + to_string(seed_kind) + "-part" +
                     std::to_string(groups);
  result.layout = map_sequences_partitioned(image, std::move(name),
                                            tenant_pass0, budgets, later, cold,
                                            mapping, provenance);
  return result;
}

}  // namespace stc::core
