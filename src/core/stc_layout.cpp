#include "core/stc_layout.h"

#include <algorithm>

#include "support/check.h"

namespace stc::core {
namespace {

// Seeds used for later passes: the pass-1 seeds first (so secondary code of
// the chosen policy clusters near its own hot code), then every executed
// routine entry so no popular block is orphaned to the cold section merely
// because it is unreachable from the Executor-operation seeds.
std::vector<cfg::BlockId> later_pass_seeds(const profile::WeightedCFG& cfg,
                                           SeedKind kind) {
  std::vector<cfg::BlockId> seeds = select_seeds(cfg, kind);
  if (kind != SeedKind::kAuto) {
    std::vector<bool> present(cfg.block_count.size(), false);
    for (cfg::BlockId s : seeds) present[s] = true;
    for (cfg::BlockId s : select_seeds(cfg, SeedKind::kAuto)) {
      if (!present[s]) seeds.push_back(s);
    }
  }
  return seeds;
}

}  // namespace

std::uint64_t fit_exec_threshold(const profile::WeightedCFG& cfg,
                                 const std::vector<cfg::BlockId>& seeds,
                                 double branch_threshold,
                                 std::uint64_t cfa_bytes) {
  STC_REQUIRE(cfg.image != nullptr);
  if (cfa_bytes == 0) return ~std::uint64_t{0};

  // Candidate thresholds are the distinct block counts: pass-1 footprint is a
  // step function whose steps occur exactly at those values.
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t c : cfg.block_count) {
    if (c > 0) candidates.push_back(c);
  }
  if (candidates.empty()) return 1;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto pass_bytes = [&](std::uint64_t threshold) {
    const TraceBuildParams params{threshold, branch_threshold};
    std::vector<bool> visited(cfg.block_count.size(), false);
    return sequences_bytes(*cfg.image,
                           build_traces_complete(cfg, seeds, params, &visited));
  };

  // Find the smallest threshold that still fits (footprint shrinks as the
  // threshold grows, so this is a standard predicate binary search).
  std::size_t lo = 0;
  std::size_t hi = candidates.size();  // one past the last candidate
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (pass_bytes(candidates[mid]) <= cfa_bytes) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == candidates.size()) {
    // Even the strictest threshold overflows; the caller's sequence spill
    // handles the rest.
    return candidates.back() + 1;
  }
  return candidates[lo];
}

StcResult stc_layout(const profile::WeightedCFG& cfg, SeedKind seed_kind,
                     const StcParams& params, MappingProvenance* provenance) {
  STC_REQUIRE(cfg.image != nullptr);
  STC_REQUIRE(params.pass_decay > 1.0);
  const cfg::ProgramImage& image = *cfg.image;

  const std::vector<cfg::BlockId> pass1_seeds = select_seeds(cfg, seed_kind);
  std::uint64_t threshold =
      params.exec_threshold_pass1.has_value()
          ? *params.exec_threshold_pass1
          : fit_exec_threshold(cfg, pass1_seeds, params.branch_threshold,
                               params.cfa_bytes);
  const std::uint64_t fitted_threshold = threshold;

  std::vector<bool> visited(cfg.block_count.size(), false);
  std::vector<std::vector<Sequence>> passes;

  // ---- Pass 1: the CFA content ----------------------------------------
  std::vector<Sequence> pass1 = build_traces_complete(
      cfg, pass1_seeds, TraceBuildParams{threshold, params.branch_threshold},
      &visited);
  // Spill sequences that no longer fit the CFA budget into pass 2 (kept in
  // build order: later sequences come from less popular seeds).
  std::vector<Sequence> spilled;
  if (params.cfa_bytes > 0) {
    std::uint64_t used = 0;
    std::size_t keep = 0;
    for (; keep < pass1.size(); ++keep) {
      std::uint64_t bytes = 0;
      for (cfg::BlockId b : pass1[keep].blocks) bytes += image.block(b).bytes();
      if (used + bytes > params.cfa_bytes) break;
      used += bytes;
    }
    spilled.assign(std::make_move_iterator(pass1.begin() + keep),
                   std::make_move_iterator(pass1.end()));
    pass1.resize(keep);
  } else {
    spilled = std::move(pass1);
    pass1.clear();
  }
  passes.push_back(std::move(pass1));

  // ---- Later passes: decaying thresholds -------------------------------
  const std::vector<cfg::BlockId> seeds = later_pass_seeds(cfg, seed_kind);
  std::vector<Sequence> current = std::move(spilled);
  while (true) {
    const std::uint64_t next_threshold = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(threshold) / params.pass_decay));
    const bool last_pass = next_threshold == 1 && threshold == 1;
    threshold = next_threshold;
    const double branch = last_pass ? 0.0 : params.later_branch_threshold;
    std::vector<Sequence> built = build_traces_complete(
        cfg, seeds, TraceBuildParams{threshold, branch}, &visited);
    current.insert(current.end(), std::make_move_iterator(built.begin()),
                   std::make_move_iterator(built.end()));
    passes.push_back(std::move(current));
    current.clear();
    if (last_pass) break;
  }

  // ---- Remaining blocks: cold code in original order --------------------
  std::vector<cfg::BlockId> cold;
  for (cfg::RoutineId r : image.routines_in_order()) {
    const cfg::RoutineInfo& info = image.routine(r);
    for (std::uint32_t i = 0; i < info.num_blocks; ++i) {
      const cfg::BlockId b = info.entry + i;
      if (!visited[b]) cold.push_back(b);
    }
  }

  MappingParams mapping;
  mapping.cache_bytes = params.cache_bytes;
  mapping.cfa_bytes = params.cfa_bytes;
  mapping.avoid_splitting_sequences = params.avoid_splitting_sequences;

  StcResult result;
  result.exec_threshold_pass1 = fitted_threshold;
  result.pass1_bytes = sequences_bytes(image, passes.front());
  result.num_passes = passes.size();
  for (const auto& pass : passes) result.num_sequences += pass.size();
  std::string name = std::string("stc-") + to_string(seed_kind);
  result.layout =
      map_sequences(image, std::move(name), passes, cold, mapping, provenance);
  return result;
}

}  // namespace stc::core
