#include "core/mapping.h"

#include <algorithm>

#include "support/check.h"

namespace stc::core {
namespace {

// Address-space cursor that can optionally skip the reserved CFA window
// (offsets [0, cfa) of every cache-sized region).
class Cursor {
 public:
  Cursor(std::uint64_t cache_bytes, std::uint64_t cfa_bytes)
      : cache_(cache_bytes), cfa_(cfa_bytes) {}

  std::uint64_t pos() const { return pos_; }
  void seek(std::uint64_t pos) { pos_ = pos; }

  // Moves past the CFA window if the cursor currently points inside one.
  void skip_reserved() {
    if (cfa_ == 0) return;
    const std::uint64_t offset = pos_ % cache_;
    if (offset < cfa_) pos_ += cfa_ - offset;
  }

  // Bytes remaining until the next reserved window begins.
  std::uint64_t window_remaining() const {
    if (cfa_ == 0) return ~std::uint64_t{0};
    const std::uint64_t offset = pos_ % cache_;
    STC_DCHECK(offset >= cfa_);
    return cache_ - offset;
  }

  std::uint64_t place(std::uint64_t bytes) {
    const std::uint64_t addr = pos_;
    pos_ += bytes;
    return addr;
  }

 private:
  std::uint64_t cache_;
  std::uint64_t cfa_;
  std::uint64_t pos_ = 0;
};

// Places one later pass's sequences at non-CFA offsets, keeping every
// region's CFA window free of code so first-pass traces never see
// interference. (With a zero CFA there is no reservation and placement
// simply continues.) Shared between the classic and tenant-partitioned
// mappings — `pass` is the pass number recorded in the provenance.
template <typename NotePass>
void place_later_pass(const cfg::ProgramImage& image, cfg::AddressMap& map,
                      Cursor& cursor, const std::vector<Sequence>& sequences,
                      std::uint32_t pass, const MappingParams& params,
                      const NotePass& note_pass) {
  for (const Sequence& seq : sequences) {
    std::uint64_t seq_bytes = 0;
    for (cfg::BlockId b : seq.blocks) seq_bytes += image.block(b).bytes();

    cursor.skip_reserved();
    if (params.avoid_splitting_sequences &&
        seq_bytes > cursor.window_remaining() &&
        seq_bytes <= params.cache_bytes - params.cfa_bytes) {
      // Start at the next inter-CFA window so the sequence stays contiguous.
      cursor.place(cursor.window_remaining());
      cursor.skip_reserved();
    }
    for (cfg::BlockId b : seq.blocks) {
      cursor.skip_reserved();
      const std::uint64_t bytes = image.block(b).bytes();
      // A block is atomic: if it cannot finish before the next region's
      // reserved window it starts at the next inter-CFA window instead of
      // straddling into the CFA. Blocks larger than a whole window still
      // cover later windows, but at least begin at a window boundary.
      const std::uint64_t window = params.cache_bytes - params.cfa_bytes;
      if (bytes > cursor.window_remaining() &&
          cursor.window_remaining() < window) {
        cursor.place(cursor.window_remaining());
        cursor.skip_reserved();
      }
      map.set(b, cursor.place(bytes));
      note_pass(b, pass);
    }
  }
}

// Remaining blocks fill the entire address space (no reservation): this
// rarely executed code is expected not to conflict with the CFA traces.
template <typename NotePass>
void place_cold(const cfg::ProgramImage& image, cfg::AddressMap& map,
                Cursor& cursor, const std::vector<cfg::BlockId>& cold_blocks,
                const NotePass& note_pass) {
  for (cfg::BlockId b : cold_blocks) {
    STC_CHECK_MSG(!map.assigned(b),
                  "cold block already placed by a sequence pass");
    map.set(b, cursor.place(image.block(b).bytes()));
    note_pass(b, MappingProvenance::kColdPass);
  }
}

}  // namespace

cfg::AddressMap map_sequences(const cfg::ProgramImage& image,
                              std::string layout_name,
                              const std::vector<std::vector<Sequence>>& passes,
                              const std::vector<cfg::BlockId>& cold_blocks,
                              const MappingParams& params,
                              MappingProvenance* provenance) {
  STC_REQUIRE(params.cache_bytes > 0);
  STC_REQUIRE(params.cfa_bytes < params.cache_bytes);
  cfg::AddressMap map(std::move(layout_name), image.num_blocks());
  if (provenance != nullptr) {
    provenance->cache_bytes = params.cache_bytes;
    provenance->cfa_bytes = params.cfa_bytes;
    provenance->pass_of.assign(image.num_blocks(), MappingProvenance::kColdPass);
    provenance->num_tenant_regions = 0;
    provenance->tenant_of.clear();
    provenance->tenant_region_start.clear();
  }
  const auto note_pass = [&](cfg::BlockId b, std::uint32_t pass) {
    if (provenance != nullptr) provenance->pass_of[b] = pass;
  };

  // Pass 1: the Conflict-Free Area, from address 0.
  Cursor cursor(params.cache_bytes, params.cfa_bytes);
  if (!passes.empty()) {
    for (const Sequence& seq : passes.front()) {
      for (cfg::BlockId b : seq.blocks) {
        map.set(b, cursor.place(image.block(b).bytes()));
        note_pass(b, 0);
      }
    }
    STC_CHECK_MSG(params.cfa_bytes == 0 || cursor.pos() <= params.cfa_bytes,
                  "first-pass sequences exceed the CFA budget");
  }

  cursor.seek(std::max<std::uint64_t>(params.cfa_bytes, cursor.pos()));
  for (std::size_t p = 1; p < passes.size(); ++p) {
    place_later_pass(image, map, cursor, passes[p],
                     static_cast<std::uint32_t>(p), params, note_pass);
  }

  place_cold(image, map, cursor, cold_blocks, note_pass);

  map.validate(image);
  return map;
}

cfg::AddressMap map_sequences_partitioned(
    const cfg::ProgramImage& image, std::string layout_name,
    const std::vector<std::vector<Sequence>>& tenant_pass0,
    const std::vector<std::uint64_t>& tenant_budgets,
    const std::vector<std::vector<Sequence>>& later_passes,
    const std::vector<cfg::BlockId>& cold_blocks, const MappingParams& params,
    MappingProvenance* provenance) {
  STC_REQUIRE(params.cache_bytes > 0);
  STC_REQUIRE(params.cfa_bytes < params.cache_bytes);
  STC_REQUIRE(!tenant_pass0.empty());
  STC_REQUIRE(tenant_budgets.size() == tenant_pass0.size());
  const std::uint32_t groups = static_cast<std::uint32_t>(tenant_pass0.size());
  // Window boundaries: prefix sums of the per-tenant budgets, which must
  // tile the CFA exactly.
  std::vector<std::uint64_t> starts(groups + 1, 0);
  for (std::uint32_t g = 0; g < groups; ++g) {
    starts[g + 1] = starts[g] + tenant_budgets[g];
  }
  STC_REQUIRE_MSG(starts[groups] == params.cfa_bytes,
                  "tenant budgets must sum to cfa_bytes");

  cfg::AddressMap map(std::move(layout_name), image.num_blocks());
  if (provenance != nullptr) {
    provenance->cache_bytes = params.cache_bytes;
    provenance->cfa_bytes = params.cfa_bytes;
    provenance->pass_of.assign(image.num_blocks(), MappingProvenance::kColdPass);
    provenance->num_tenant_regions = groups;
    provenance->tenant_of.assign(image.num_blocks(),
                                 MappingProvenance::kNoTenant);
    provenance->tenant_region_start = starts;
  }
  const auto note_pass = [&](cfg::BlockId b, std::uint32_t pass) {
    if (provenance != nullptr) provenance->pass_of[b] = pass;
  };

  // Pass 1, per tenant: group g's sequences fill its CFA sub-window
  // [starts[g], starts[g+1]).
  Cursor cursor(params.cache_bytes, params.cfa_bytes);
  std::uint64_t pass0_end = 0;
  for (std::uint32_t g = 0; g < groups; ++g) {
    cursor.seek(starts[g]);
    const std::uint64_t window_end = starts[g + 1];
    for (const Sequence& seq : tenant_pass0[g]) {
      for (cfg::BlockId b : seq.blocks) {
        map.set(b, cursor.place(image.block(b).bytes()));
        note_pass(b, 0);
        if (provenance != nullptr) provenance->tenant_of[b] = g;
      }
    }
    STC_CHECK_MSG(cursor.pos() <= window_end,
                  "tenant first-pass sequences exceed the CFA sub-window");
    pass0_end = std::max(pass0_end, cursor.pos());
  }

  cursor.seek(std::max<std::uint64_t>(params.cfa_bytes, pass0_end));
  for (std::size_t p = 0; p < later_passes.size(); ++p) {
    place_later_pass(image, map, cursor, later_passes[p],
                     static_cast<std::uint32_t>(p + 1), params, note_pass);
  }

  place_cold(image, map, cursor, cold_blocks, note_pass);

  map.validate(image);
  return map;
}

}  // namespace stc::core
