// Greedy basic-block sequence ("trace") building — Section 5.2 / Figure 3.
//
// Starting from each seed, the builder repeatedly follows the most frequently
// executed transition out of the current block: into a called subroutine, or
// along the highest-probability control transfer. Other acceptable
// transitions are noted and later grown into *secondary* traces for the same
// seed. Growth stops when every successor is already visited, fails the
// Exec Threshold (block execution count), or fails the Branch Threshold
// (transition probability).
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/types.h"
#include "profile/profile.h"

namespace stc::core {

struct TraceBuildParams {
  // Minimum dynamic execution count for a block to enter a sequence.
  std::uint64_t exec_threshold = 1;
  // Minimum probability (edge count / source block count) for a transition
  // to be followed or to start a secondary trace.
  double branch_threshold = 0.0;
};

struct Sequence {
  std::vector<cfg::BlockId> blocks;
  std::uint64_t weight = 0;     // execution count of the first block
  std::size_t seed_index = 0;   // which seed produced it
  bool main_trace = false;      // first sequence grown from its seed
};

// Builds sequences from `seeds` (in order) over the weighted CFG.
// `visited` marks blocks already placed by earlier passes; it is updated with
// every block the call consumes. Pass nullptr for a fresh single-pass build.
std::vector<Sequence> build_traces(const profile::WeightedCFG& cfg,
                                   const std::vector<cfg::BlockId>& seeds,
                                   const TraceBuildParams& params,
                                   std::vector<bool>* visited = nullptr);

// Like build_traces, but guarantees that *every* unvisited block whose
// execution count meets the Exec Threshold ends up in some sequence: after
// the seed-driven build, remaining qualifying blocks (in decreasing
// popularity order) seed additional sequences. Without this sweep, blocks
// whose only predecessors were consumed by an earlier pass under a stricter
// Branch Threshold would fall through to the cold section — the paper leaves
// orphan handling unspecified; this is the completion its multi-pass mapping
// needs.
std::vector<Sequence> build_traces_complete(
    const profile::WeightedCFG& cfg, const std::vector<cfg::BlockId>& seeds,
    const TraceBuildParams& params, std::vector<bool>* visited);

// Total code bytes of a set of sequences.
std::uint64_t sequences_bytes(const cfg::ProgramImage& image,
                              const std::vector<Sequence>& seqs);

}  // namespace stc::core
