// Umbrella header and layout factory used by benches, examples and tests.
#pragma once

#include <string>

#include "cfg/address_map.h"
#include "core/pettis_hansen.h"
#include "core/stc_layout.h"
#include "core/torrellas.h"
#include "profile/profile.h"

namespace stc::core {

enum class LayoutKind { kOrig, kPettisHansen, kTorrellas, kStcAuto, kStcOps };

inline const char* to_string(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::kOrig: return "orig";
    case LayoutKind::kPettisHansen: return "P&H";
    case LayoutKind::kTorrellas: return "Torr";
    case LayoutKind::kStcAuto: return "auto";
    case LayoutKind::kStcOps: return "ops";
  }
  return "?";
}

// Builds the requested layout. cache_bytes/cfa_bytes are ignored by layouts
// that do not use the cache geometry (orig, P&H). When `provenance` is
// non-null it receives the mapping-pass record for CFA-aware layouts and is
// cleared (no CFA contract) for the others.
cfg::AddressMap make_layout(LayoutKind kind, const profile::WeightedCFG& cfg,
                            std::uint64_t cache_bytes, std::uint64_t cfa_bytes,
                            MappingProvenance* provenance = nullptr);

}  // namespace stc::core
