#include "core/trace_builder.h"

#include <deque>

#include "support/check.h"

namespace stc::core {

std::vector<Sequence> build_traces(const profile::WeightedCFG& cfg,
                                   const std::vector<cfg::BlockId>& seeds,
                                   const TraceBuildParams& params,
                                   std::vector<bool>* visited) {
  STC_REQUIRE(cfg.image != nullptr);
  std::vector<bool> local_visited;
  if (visited == nullptr) {
    local_visited.assign(cfg.block_count.size(), false);
    visited = &local_visited;
  }
  STC_REQUIRE(visited->size() == cfg.block_count.size());

  std::vector<Sequence> result;
  for (std::size_t seed_index = 0; seed_index < seeds.size(); ++seed_index) {
    const cfg::BlockId seed = seeds[seed_index];
    if ((*visited)[seed]) continue;
    if (cfg.block_count[seed] < params.exec_threshold) continue;

    // Acceptable-but-not-followed transitions, in discovery order; each may
    // start a secondary trace for this seed.
    std::deque<cfg::BlockId> pending;
    pending.push_back(seed);
    bool first_sequence = true;

    while (!pending.empty()) {
      const cfg::BlockId start = pending.front();
      pending.pop_front();
      if ((*visited)[start]) continue;

      Sequence seq;
      seq.weight = cfg.block_count[start];
      seq.seed_index = seed_index;
      seq.main_trace = first_sequence;
      first_sequence = false;

      cfg::BlockId cur = start;
      while (true) {
        (*visited)[cur] = true;
        seq.blocks.push_back(cur);

        // Follow the most frequently executed acceptable transition; note the
        // other acceptable ones for secondary traces. Successors are already
        // sorted by decreasing count.
        cfg::BlockId next = cfg::kInvalidBlock;
        for (const auto& succ : cfg.succs[cur]) {
          if ((*visited)[succ.to]) continue;
          if (cfg.block_count[succ.to] < params.exec_threshold) continue;
          if (cfg.transition_prob(cur, succ) < params.branch_threshold) {
            continue;
          }
          if (next == cfg::kInvalidBlock) {
            next = succ.to;
          } else {
            pending.push_back(succ.to);
          }
        }
        if (next == cfg::kInvalidBlock) break;
        cur = next;
      }
      result.push_back(std::move(seq));
    }
  }
  return result;
}

std::vector<Sequence> build_traces_complete(
    const profile::WeightedCFG& cfg, const std::vector<cfg::BlockId>& seeds,
    const TraceBuildParams& params, std::vector<bool>* visited) {
  STC_REQUIRE(visited != nullptr);
  std::vector<Sequence> result = build_traces(cfg, seeds, params, visited);

  // Orphan sweep: every still-unvisited block that meets the Exec Threshold
  // seeds a sequence, most popular first.
  std::vector<cfg::BlockId> orphans;
  for (cfg::BlockId b = 0; b < cfg.block_count.size(); ++b) {
    if (!(*visited)[b] && cfg.block_count[b] >= params.exec_threshold &&
        cfg.block_count[b] > 0) {
      orphans.push_back(b);
    }
  }
  std::sort(orphans.begin(), orphans.end(),
            [&](cfg::BlockId a, cfg::BlockId b) {
              if (cfg.block_count[a] != cfg.block_count[b]) {
                return cfg.block_count[a] > cfg.block_count[b];
              }
              return a < b;
            });
  std::vector<Sequence> swept = build_traces(cfg, orphans, params, visited);
  result.insert(result.end(), std::make_move_iterator(swept.begin()),
                std::make_move_iterator(swept.end()));
  return result;
}

std::uint64_t sequences_bytes(const cfg::ProgramImage& image,
                              const std::vector<Sequence>& seqs) {
  std::uint64_t bytes = 0;
  for (const Sequence& seq : seqs) {
    for (cfg::BlockId b : seq.blocks) bytes += image.block(b).bytes();
  }
  return bytes;
}

}  // namespace stc::core
