// Speculative front end: branch prediction + fetch-directed instruction
// prefetching (FDIP) layered onto the paper's SEQ.3 and trace-cache
// simulators.
//
// The replay stays trace-driven: the recorded trace is always the actual
// path, so wrong-path fetch is modeled as bubble cycles rather than by
// executing wrong-path instructions (the standard trace-driven
// approximation). Per fetch cycle the front end
//   1. lets SEQ.3 (or the trace cache) supply the actual-path group,
//   2. resolves every control transfer in the group against the direction
//      predictor, the BTB and the return-address stack, charging
//      `mispredict_penalty` bubble cycles per wrong prediction,
//   3. runs a decoupled fetch-target queue ahead of the fetch unit along the
//      *predicted* path, issuing up to `prefetch_width` i-cache prefetches
//      per cycle for the next `ftq_depth` distinct cache lines. The scan
//      stops at the first branch whose prediction diverges from the trace
//      (the machine would be on the wrong path beyond it) and the queue is
//      flushed on every resolved misprediction.
// Prefetched lines carry the demand miss latency: a demand fetch that
// arrives before its prefetch completes stalls for the residual cycles
// (counted as a *late* prefetch), one that arrives after is a free hit
// (*useful*), and a prefetched line evicted before use is *evicted*.
//
// A block whose non-branch end falls through to a non-adjacent successor
// (the layout moved the successor) is treated as a layout-inserted direct
// unconditional jump: statically known, never predicted, never wrong.
//
// With BpredKind::kPerfect and prefetching off the front end is
// *transparent*: the runs delegate to the plain simulators and reproduce
// Table 3/4 results byte-identically (verified by tests and the oracle).
#pragma once

#include <cstdint>

#include "frontend/branch_predictor.h"
#include "frontend/btb.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "sim/trace_cache.h"
#include "support/stats.h"
#include "trace/block_trace.h"

namespace stc::frontend {

struct FrontEndParams {
  BpredKind kind = BpredKind::kPerfect;
  std::uint32_t table_bits = 12;          // 2^bits pattern counters
  std::uint32_t btb_entries = 512;
  std::uint32_t ras_depth = 16;
  std::uint32_t mispredict_penalty = 5;   // bubble cycles per misprediction
  bool prefetch = false;                  // FDIP run-ahead prefetching
  std::uint32_t ftq_depth = 8;            // fetch-target queue depth (lines)
  std::uint32_t prefetch_width = 2;       // prefetches issued per cycle

  // True when the front end cannot perturb the baseline simulators at all:
  // perfect prediction and no prefetching. Runs then delegate to run_seq3 /
  // run_trace_cache and stay byte-identical to the paper's configuration.
  bool transparent() const {
    return kind == BpredKind::kPerfect && !prefetch;
  }

  // Reads the bench knobs (validated by support/env):
  //   STC_BPRED     - perfect|always|bimodal|gshare|local (default perfect).
  //                   Realistic kinds enable FDIP prefetching.
  //   STC_FTQ_DEPTH - fetch-target queue depth in lines (default 8);
  //                   0 disables prefetching.
  // A malformed knob is a structured error (a typo must not silently
  // measure the baseline); from_environment() prints it and exits 2.
  static Result<FrontEndParams> try_from_environment();
  static FrontEndParams from_environment();
};

struct FrontEndStats {
  std::uint64_t bp_lookups = 0;       // resolved control transfers
  std::uint64_t bp_mispredicts = 0;   // wrong next-fetch-address predictions
  std::uint64_t bp_bubble_cycles = 0; // mispredicts x mispredict_penalty
  std::uint64_t btb_lookups = 0;      // predicted-taken non-return transfers
  std::uint64_t btb_misses = 0;       // no stored target (fell back to +4)
  std::uint64_t ras_pushes = 0;
  std::uint64_t ras_pops = 0;
  std::uint64_t prefetch_issued = 0;  // lines actually fetched ahead
  std::uint64_t prefetch_useful = 0;  // demand hit after the fill completed
  std::uint64_t prefetch_late = 0;    // demand hit while still in flight
  std::uint64_t prefetch_evicted = 0; // evicted (or re-missed) before use
  std::uint64_t prefetch_late_cycles = 0;  // residual stall from late fills

  double mispredicts_per_ki(std::uint64_t instructions) const {
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(bp_mispredicts) /
                     static_cast<double>(instructions);
  }

  // Registers the raw event counts for machine-readable reporting.
  void export_counters(CounterSet& out) const;
};

struct FrontEndResult {
  sim::FetchResult fetch;
  FrontEndStats frontend;
};

// SEQ.3 behind the speculative front end. `cache` may be null only with
// fetch_params.perfect_icache (which also disables prefetching).
FrontEndResult run_seq3_frontend(const trace::BlockTrace& trace,
                                 const cfg::ProgramImage& image,
                                 const cfg::AddressMap& layout,
                                 const sim::FetchParams& fetch_params,
                                 const FrontEndParams& fe_params,
                                 sim::ICache* cache);

// Batched/compiled replay from a pre-built plan (sim/replay.h); counters are
// bit-identical to the interpreter overload.
FrontEndResult run_seq3_frontend(const sim::ReplayPlan& plan,
                                 const sim::FetchParams& fetch_params,
                                 const FrontEndParams& fe_params,
                                 sim::ICache* cache);

// Trace cache + SEQ.3 behind the speculative front end. Next-trace
// selection is keyed by predicted branch outcomes: a stored trace whose
// path diverges from the current predictions is rejected (counted as a
// trace-cache miss) even though the actual path matches, because the
// machine would not have followed it.
FrontEndResult run_trace_cache_frontend(const trace::BlockTrace& trace,
                                        const cfg::ProgramImage& image,
                                        const cfg::AddressMap& layout,
                                        const sim::FetchParams& fetch_params,
                                        const sim::TraceCacheParams& tc_params,
                                        const FrontEndParams& fe_params,
                                        sim::ICache* cache);

// Batched/compiled replay from a pre-built plan (sim/replay.h); counters are
// bit-identical to the interpreter overload.
FrontEndResult run_trace_cache_frontend(const sim::ReplayPlan& plan,
                                        const sim::FetchParams& fetch_params,
                                        const sim::TraceCacheParams& tc_params,
                                        const FrontEndParams& fe_params,
                                        sim::ICache* cache);

}  // namespace stc::frontend
