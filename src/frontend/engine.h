// The speculative front-end engine shared by every pipelined driver: the
// SEQ.3 and trace-cache loops in front_end.cpp and the back-end pipeline in
// src/backend/pipeline.cpp all instantiate one Engine per run. It owns the
// committed predictor/BTB/RAS state, the in-flight prefetch book-keeping,
// and the decoupled fetch-target queue that scans the pipe ahead of fetch.
//
// Header-only because the drivers live in two libraries (stc_frontend and
// stc_backend) and the engine must evolve in lockstep for their counters to
// stay comparable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "frontend/front_end.h"
#include "sim/fetch_unit.h"
#include "sim/icache.h"
#include "support/check.h"

namespace stc::frontend {

class Engine {
 public:
  Engine(const sim::FetchParams& fetch, const FrontEndParams& fe,
         sim::ICache* cache, std::uint32_t line_bytes, FrontEndStats* stats)
      : fetch_(fetch),
        fe_(fe),
        cache_(cache),
        line_bytes_(line_bytes),
        stats_(stats),
        perfect_(fe.kind == BpredKind::kPerfect),
        pred_(make_predictor(fe.kind, fe.table_bits)),
        btb_(fe.btb_entries),
        ras_(fe.ras_depth),
        spec_ras_(fe.ras_depth) {}

  bool prefetching() const {
    return fe_.prefetch && !fetch_.perfect_icache && cache_ != nullptr &&
           fe_.ftq_depth > 0;
  }

  // Demand access for one fetch line. Returns true on hit; accumulates the
  // prefetch outcome for the line and, for a line whose prefetch is still
  // in flight, raises *wait to the residual latency.
  bool demand_access(std::uint64_t line_addr, std::uint64_t now,
                     std::uint64_t* wait) {
    const bool hit = cache_->access(line_addr);
    const auto it = inflight_.find(line_addr / line_bytes_);
    if (it != inflight_.end()) {
      if (hit) {
        if (now >= it->second) {
          ++stats_->prefetch_useful;
        } else {
          ++stats_->prefetch_late;
          *wait = std::max(*wait, it->second - now);
        }
      } else {
        ++stats_->prefetch_evicted;
      }
      inflight_.erase(it);
    }
    return hit;
  }

  // Resolves every control transfer of a retired fetch group against the
  // committed predictor state, training as it goes. Returns the bubble
  // cycles charged for mispredictions. Must be called after the group has
  // been consumed from the pipe and after advance(group size).
  std::uint64_t resolve(const std::vector<sim::FetchPipe::Insn>& group,
                        bool group_has_next, std::uint64_t group_next_addr) {
    if (perfect_) return 0;
    std::uint64_t bubbles = 0;
    for (std::size_t k = 0; k < group.size(); ++k) {
      const sim::FetchPipe::Insn& insn = group[k];
      if (!insn.is_branch) continue;  // layout-inserted jumps are free
      std::uint64_t actual_next = 0;
      if (k + 1 < group.size()) {
        actual_next = group[k + 1].addr;
      } else if (group_has_next) {
        actual_next = group_next_addr;
      } else {
        break;  // the trace ends at this transfer: nothing to resolve
      }
      const std::uint64_t fallthrough = insn.addr + cfg::kInsnBytes;

      // Predict the next fetch address: direction first, then the target
      // from the RAS (returns) or the BTB (everything else).
      ++stats_->bp_lookups;
      std::uint64_t ras_target = 0;
      if (insn.kind == cfg::BlockKind::kReturn) {
        ras_target = ras_.pop();
        ++stats_->ras_pops;
      }
      const bool pred_taken = pred_->predict(insn.addr);
      std::uint64_t pred_next = fallthrough;
      if (pred_taken) {
        if (insn.kind == cfg::BlockKind::kReturn) {
          pred_next = ras_target != 0 ? ras_target : fallthrough;
        } else {
          ++stats_->btb_lookups;
          std::uint64_t target = 0;
          if (btb_.lookup(insn.addr, &target)) {
            pred_next = target;
          } else {
            ++stats_->btb_misses;
          }
        }
      }

      // Train on the resolved outcome along the actual path.
      pred_->update(insn.addr, insn.taken);
      if (insn.kind == cfg::BlockKind::kCall) {
        ras_.push(fallthrough);
        ++stats_->ras_pushes;
      }
      if (insn.taken && insn.kind != cfg::BlockKind::kReturn) {
        btb_.update(insn.addr, actual_next);
      }

      if (pred_next != actual_next) {
        ++stats_->bp_mispredicts;
        stats_->bp_bubble_cycles += fe_.mispredict_penalty;
        bubbles += fe_.mispredict_penalty;
        flush_ftq();
      }
    }
    return bubbles;
  }

  // Next-trace selection: would the current predictions follow the stored
  // path of a trace-cache hit of `len` instructions? Pure check — no
  // counters, no training; resolution happens when the group retires.
  bool accepts_trace(sim::FetchPipe& pipe, std::uint32_t len) {
    if (perfect_) return true;
    ReturnAddressStack ras = ras_;
    sim::FetchPipe::Insn insn;
    sim::FetchPipe::Insn next;
    for (std::uint32_t k = 0; k < len; ++k) {
      if (!pipe.peek(k, insn)) return false;
      if (!insn.is_branch) continue;
      if (!pipe.peek(k + 1, next)) break;  // trace ends: nothing to diverge
      const std::uint64_t fallthrough = insn.addr + cfg::kInsnBytes;
      std::uint64_t ras_target = 0;
      if (insn.kind == cfg::BlockKind::kReturn) ras_target = ras.pop();
      std::uint64_t pred_next = fallthrough;
      if (pred_->predict(insn.addr)) {
        if (insn.kind == cfg::BlockKind::kReturn) {
          pred_next = ras_target != 0 ? ras_target : fallthrough;
        } else {
          std::uint64_t target = 0;
          if (btb_.lookup(insn.addr, &target)) pred_next = target;
        }
      }
      if (insn.kind == cfg::BlockKind::kCall) ras.push(fallthrough);
      if (pred_next != next.addr) return false;
    }
    return true;
  }

  // Slides the fetch-target queue window forward over `n` just-consumed
  // instructions.
  void advance(std::uint32_t n) {
    if (!prefetching()) return;
    std::uint32_t left = n;
    while (left > 0 && !ftq_.empty()) {
      FtqEntry& front = ftq_.front();
      const std::uint32_t eat = std::min(left, front.insns);
      front.insns -= eat;
      left -= eat;
      if (front.insns == 0) ftq_.pop_front();
    }
    scan_offset_ -= std::min(scan_offset_, n);
    if (blocked_) {
      blocked_offset_ -= static_cast<std::int64_t>(n);
      // The blocking branch has retired (and resolved); if it did not flush
      // us the prediction was right after all — resume scanning.
      if (blocked_offset_ < 0) blocked_ = false;
    }
  }

  // Extends the run-ahead window along the predicted path, then issues up
  // to prefetch_width line prefetches from the queue.
  void run_ahead(sim::FetchPipe& pipe, std::uint64_t now) {
    if (!prefetching()) return;
    fill_scan(pipe);
    issue(now);
  }

 private:
  struct FtqEntry {
    std::uint64_t line = 0;    // line index (addr / line_bytes)
    std::uint32_t insns = 0;   // window instructions mapped onto the entry
    bool issued = false;       // prefetch decision already made
  };

  void flush_ftq() {
    if (!prefetching()) return;
    ftq_.clear();
    scan_offset_ = 0;
    blocked_ = false;
    spec_ras_ = ras_;
  }

  void fill_scan(sim::FetchPipe& pipe) {
    sim::FetchPipe::Insn insn;
    sim::FetchPipe::Insn next;
    while (!blocked_) {
      if (!pipe.peek(scan_offset_, insn)) break;  // end of trace
      const std::uint64_t line = insn.addr / line_bytes_;
      if (ftq_.empty() || ftq_.back().line != line) {
        if (ftq_.size() >= fe_.ftq_depth) break;  // window full
        ftq_.push_back(FtqEntry{line, 0, false});
      }
      ++ftq_.back().insns;
      ++scan_offset_;
      if (!insn.is_branch || perfect_) continue;
      if (!pipe.peek(scan_offset_, next)) break;
      // Speculative prediction with frozen tables and a private RAS copy;
      // a divergence from the trace means the machine would fetch the wrong
      // path from here — stop until the branch resolves.
      const std::uint64_t fallthrough = insn.addr + cfg::kInsnBytes;
      std::uint64_t ras_target = 0;
      if (insn.kind == cfg::BlockKind::kReturn) ras_target = spec_ras_.pop();
      std::uint64_t pred_next = fallthrough;
      if (pred_->predict(insn.addr)) {
        if (insn.kind == cfg::BlockKind::kReturn) {
          pred_next = ras_target != 0 ? ras_target : fallthrough;
        } else {
          std::uint64_t target = 0;
          if (btb_.lookup(insn.addr, &target)) pred_next = target;
        }
      }
      if (insn.kind == cfg::BlockKind::kCall) spec_ras_.push(fallthrough);
      if (pred_next != next.addr) {
        blocked_ = true;
        blocked_offset_ = static_cast<std::int64_t>(scan_offset_) - 1;
      }
    }
  }

  void issue(std::uint64_t now) {
    std::uint32_t issued = 0;
    for (FtqEntry& entry : ftq_) {
      if (issued >= fe_.prefetch_width) break;
      if (entry.issued) continue;
      entry.issued = true;
      if (inflight_.count(entry.line) != 0) continue;  // already in flight
      if (cache_->prefetch_fill(entry.line * line_bytes_)) continue;
      inflight_[entry.line] = now + fetch_.miss_penalty;
      ++stats_->prefetch_issued;
      ++issued;
    }
  }

  const sim::FetchParams fetch_;
  const FrontEndParams fe_;
  sim::ICache* cache_;
  const std::uint32_t line_bytes_;
  FrontEndStats* stats_;

  const bool perfect_;
  std::unique_ptr<BranchPredictor> pred_;
  Btb btb_;
  ReturnAddressStack ras_;

  // Fetch-target queue state. `scan_offset_` is the window length in
  // instructions, relative to the pipe's current front; `spec_ras_` evolves
  // along the scanned (predicted) path and is resynced on every flush.
  std::deque<FtqEntry> ftq_;
  std::uint32_t scan_offset_ = 0;
  bool blocked_ = false;
  std::int64_t blocked_offset_ = 0;  // window offset of the blocking branch
  ReturnAddressStack spec_ras_;

  // line index -> completion cycle of the in-flight (or never-demanded)
  // prefetch; erased at the first demand access of the line.
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_;
};

// Charges the i-cache path of one fetch request: demand accesses for the
// one or two touched lines, the standard miss penalty, and any residual
// wait on late prefetches. Returns the stall cycles the fetch stage pays on
// top of its base cycle; miss counters land in *fetch, late-prefetch stall
// accounting in *frontend.
inline std::uint64_t charge_icache(Engine& eng, const sim::Seq3Cycle& cycle,
                                   const sim::FetchParams& params,
                                   std::uint32_t line_bytes, std::uint64_t now,
                                   sim::FetchResult* fetch,
                                   FrontEndStats* frontend) {
  std::uint64_t wait = 0;
  std::uint32_t missed = 0;
  std::uint64_t stall = 0;
  if (!eng.demand_access(cycle.line0, now, &wait)) ++missed;
  if (cycle.touched_line1 &&
      !eng.demand_access(cycle.line0 + line_bytes, now, &wait)) {
    ++missed;
  }
  if (missed > 0) {
    ++fetch->miss_requests;
    fetch->lines_missed += missed;
    stall += params.penalty_per_line
                 ? std::uint64_t{params.miss_penalty} * missed
                 : params.miss_penalty;
  }
  if (wait > 0) {
    stall += wait;
    frontend->prefetch_late_cycles += wait;
  }
  return stall;
}

// Copies the next `len` instructions of the pipe into *insns without
// consuming them, plus the address that follows the group (if any).
inline void snapshot_group(sim::FetchPipe& pipe, std::uint32_t len,
                           std::vector<sim::FetchPipe::Insn>* insns,
                           bool* has_next, std::uint64_t* next_addr) {
  insns->clear();
  sim::FetchPipe::Insn insn;
  for (std::uint32_t k = 0; k < len; ++k) {
    const bool ok = pipe.peek(k, insn);
    STC_DCHECK(ok);
    if (!ok) break;
    insns->push_back(insn);
  }
  *has_next = pipe.peek(len, insn);
  *next_addr = *has_next ? insn.addr : 0;
}

}  // namespace stc::frontend
