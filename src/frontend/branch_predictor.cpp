#include "frontend/branch_predictor.h"

#include <algorithm>
#include <vector>

#include "cfg/types.h"
#include "support/check.h"

namespace stc::frontend {

namespace {

// Two-bit saturating counter helpers: 0,1 predict not-taken; 2,3 taken.
// Counters start at weakly-taken (2) — DSS branch mixes are taken-biased.
constexpr std::uint8_t kWeaklyTaken = 2;

bool counter_taken(std::uint8_t c) { return c >= 2; }

std::uint8_t counter_update(std::uint8_t c, bool taken) {
  if (taken) return c == 3 ? 3 : c + 1;
  return c == 0 ? 0 : c - 1;
}

std::uint64_t pc_index(std::uint64_t addr) { return addr / cfg::kInsnBytes; }

class AlwaysTaken final : public BranchPredictor {
 public:
  bool predict(std::uint64_t) const override { return true; }
  void update(std::uint64_t, bool) override {}
  void reset() override {}
};

class Bimodal final : public BranchPredictor {
 public:
  explicit Bimodal(std::uint32_t table_bits)
      : mask_((std::uint64_t{1} << table_bits) - 1),
        counters_(std::size_t{1} << table_bits, kWeaklyTaken) {}

  bool predict(std::uint64_t addr) const override {
    return counter_taken(counters_[pc_index(addr) & mask_]);
  }
  void update(std::uint64_t addr, bool taken) override {
    std::uint8_t& c = counters_[pc_index(addr) & mask_];
    c = counter_update(c, taken);
  }
  void reset() override {
    std::fill(counters_.begin(), counters_.end(), kWeaklyTaken);
  }

 private:
  std::uint64_t mask_;
  std::vector<std::uint8_t> counters_;
};

class Gshare final : public BranchPredictor {
 public:
  explicit Gshare(std::uint32_t table_bits)
      : mask_((std::uint64_t{1} << table_bits) - 1),
        counters_(std::size_t{1} << table_bits, kWeaklyTaken) {}

  bool predict(std::uint64_t addr) const override {
    return counter_taken(counters_[(pc_index(addr) ^ history_) & mask_]);
  }
  void update(std::uint64_t addr, bool taken) override {
    std::uint8_t& c = counters_[(pc_index(addr) ^ history_) & mask_];
    c = counter_update(c, taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
  }
  void reset() override {
    std::fill(counters_.begin(), counters_.end(), kWeaklyTaken);
    history_ = 0;
  }

 private:
  std::uint64_t mask_;
  std::vector<std::uint8_t> counters_;
  std::uint64_t history_ = 0;
};

// Two-level local predictor: per-PC history registers select a shared
// pattern table of 2-bit counters (Yeh & Patt PAg organization).
class TwoLevelLocal final : public BranchPredictor {
 public:
  static constexpr std::uint32_t kHistoryEntries = 1024;

  explicit TwoLevelLocal(std::uint32_t table_bits)
      : mask_((std::uint64_t{1} << table_bits) - 1),
        histories_(kHistoryEntries, 0),
        counters_(std::size_t{1} << table_bits, kWeaklyTaken) {}

  bool predict(std::uint64_t addr) const override {
    const std::uint64_t hist = histories_[pc_index(addr) % kHistoryEntries];
    return counter_taken(counters_[hist & mask_]);
  }
  void update(std::uint64_t addr, bool taken) override {
    std::uint64_t& hist = histories_[pc_index(addr) % kHistoryEntries];
    std::uint8_t& c = counters_[hist & mask_];
    c = counter_update(c, taken);
    hist = ((hist << 1) | (taken ? 1 : 0)) & mask_;
  }
  void reset() override {
    std::fill(histories_.begin(), histories_.end(), 0);
    std::fill(counters_.begin(), counters_.end(), kWeaklyTaken);
  }

 private:
  std::uint64_t mask_;
  std::vector<std::uint64_t> histories_;
  std::vector<std::uint8_t> counters_;
};

}  // namespace

const char* to_string(BpredKind kind) {
  switch (kind) {
    case BpredKind::kPerfect: return "perfect";
    case BpredKind::kAlwaysTaken: return "always";
    case BpredKind::kBimodal: return "bimodal";
    case BpredKind::kGshare: return "gshare";
    case BpredKind::kLocal: return "local";
  }
  return "?";
}

bool parse_bpred(std::string_view name, BpredKind* out) {
  if (name == "perfect") *out = BpredKind::kPerfect;
  else if (name == "always") *out = BpredKind::kAlwaysTaken;
  else if (name == "bimodal") *out = BpredKind::kBimodal;
  else if (name == "gshare") *out = BpredKind::kGshare;
  else if (name == "local") *out = BpredKind::kLocal;
  else return false;
  return true;
}

std::unique_ptr<BranchPredictor> make_predictor(BpredKind kind,
                                                std::uint32_t table_bits) {
  STC_REQUIRE(table_bits >= 1 && table_bits <= 24);
  switch (kind) {
    case BpredKind::kPerfect: return nullptr;
    case BpredKind::kAlwaysTaken: return std::make_unique<AlwaysTaken>();
    case BpredKind::kBimodal: return std::make_unique<Bimodal>(table_bits);
    case BpredKind::kGshare: return std::make_unique<Gshare>(table_bits);
    case BpredKind::kLocal:
      return std::make_unique<TwoLevelLocal>(table_bits);
  }
  return nullptr;
}

}  // namespace stc::frontend
