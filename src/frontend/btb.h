// Branch target buffer and return-address stack for the speculative front
// end. Both are deliberately simple hardware models: the BTB is direct-
// mapped with full-address tags (no aliasing false hits, only capacity and
// conflict misses), the RAS is a fixed-depth circular stack whose overflow
// silently overwrites the oldest entry — the classic source of deep-call
// return mispredictions the fuzzer's call-chain shapes exercise.
#pragma once

#include <cstdint>
#include <vector>

namespace stc::frontend {

class Btb {
 public:
  // `entries` must be a power of two.
  explicit Btb(std::uint32_t entries);

  // True when `addr` has a stored target (written to *target).
  bool lookup(std::uint64_t addr, std::uint64_t* target) const;
  // Records the resolved target of a taken branch at `addr`.
  void update(std::uint64_t addr, std::uint64_t target);
  void reset();

 private:
  static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};
  struct Entry {
    std::uint64_t tag = kInvalidTag;
    std::uint64_t target = 0;
  };

  std::size_t index_of(std::uint64_t addr) const {
    return static_cast<std::size_t>((addr / 4) & (entries_.size() - 1));
  }

  std::vector<Entry> entries_;
};

// Bounded circular return-address stack. Copyable by value so run-ahead
// scans can speculate on a private copy without disturbing committed state.
class ReturnAddressStack {
 public:
  explicit ReturnAddressStack(std::uint32_t depth);

  // Pushes a return address; beyond `depth` the oldest entry is overwritten.
  void push(std::uint64_t addr);
  // Pops the youngest entry; returns 0 when the stack is empty (the front
  // end falls back to the fall-through address).
  std::uint64_t pop();
  void reset();

  std::uint32_t size() const { return size_; }
  std::uint32_t depth() const { return static_cast<std::uint32_t>(slots_.size()); }

 private:
  std::vector<std::uint64_t> slots_;
  std::uint32_t top_ = 0;   // index of the youngest valid entry
  std::uint32_t size_ = 0;  // valid entries, saturates at depth
};

}  // namespace stc::frontend
