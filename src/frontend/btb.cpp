#include "frontend/btb.h"

#include <algorithm>

#include "support/check.h"

namespace stc::frontend {

Btb::Btb(std::uint32_t entries) {
  STC_REQUIRE(entries > 0 && (entries & (entries - 1)) == 0);
  entries_.resize(entries);
}

bool Btb::lookup(std::uint64_t addr, std::uint64_t* target) const {
  const Entry& entry = entries_[index_of(addr)];
  if (entry.tag != addr) return false;
  *target = entry.target;
  return true;
}

void Btb::update(std::uint64_t addr, std::uint64_t target) {
  Entry& entry = entries_[index_of(addr)];
  entry.tag = addr;
  entry.target = target;
}

void Btb::reset() {
  std::fill(entries_.begin(), entries_.end(), Entry{});
}

ReturnAddressStack::ReturnAddressStack(std::uint32_t depth) {
  STC_REQUIRE(depth > 0);
  slots_.assign(depth, 0);
}

void ReturnAddressStack::push(std::uint64_t addr) {
  top_ = (top_ + 1) % slots_.size();
  slots_[top_] = addr;
  if (size_ < slots_.size()) ++size_;
}

std::uint64_t ReturnAddressStack::pop() {
  if (size_ == 0) return 0;
  const std::uint64_t addr = slots_[top_];
  top_ = (top_ + static_cast<std::uint32_t>(slots_.size()) - 1) %
         static_cast<std::uint32_t>(slots_.size());
  --size_;
  return addr;
}

void ReturnAddressStack::reset() {
  std::fill(slots_.begin(), slots_.end(), 0);
  top_ = 0;
  size_ = 0;
}

}  // namespace stc::frontend
