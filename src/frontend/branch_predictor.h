// Pluggable branch direction predictors for the speculative front end.
//
// The paper's fetch simulators (Table 4) assume perfect branch prediction;
// this module supplies the realistic alternatives so layout quality can be
// measured under real misprediction behaviour (see bench/ablate_bpred):
//   always  - static always-taken
//   bimodal - per-PC 2-bit saturating counters
//   gshare  - global history XOR PC into a shared 2-bit counter table
//   local   - 2-level: per-PC history registers indexing a pattern table
// "Direction" here follows the trace-replay convention (trace/fetch_stream):
// a branch is *taken* iff its dynamic successor is not address-adjacent
// under the active layout, so the same trace trains differently under
// different layouts — exactly the interaction this subsystem measures.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

namespace stc::frontend {

enum class BpredKind : std::uint8_t {
  kPerfect,      // oracle: never consulted, never wrong (Table 4 baseline)
  kAlwaysTaken,
  kBimodal,
  kGshare,
  kLocal,
};

const char* to_string(BpredKind kind);

// Parses "perfect" | "always" | "bimodal" | "gshare" | "local".
// Returns false (and leaves *out untouched) on any other string.
bool parse_bpred(std::string_view name, BpredKind* out);

// Direction predictor interface. predict() must not change any state (the
// front end consults it both at resolution and during speculative run-ahead
// scans); update() trains on one resolved branch.
class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;
  virtual bool predict(std::uint64_t addr) const = 0;
  virtual void update(std::uint64_t addr, bool taken) = 0;
  virtual void reset() = 0;
};

// Builds a predictor with 2^table_bits pattern counters (ignored by
// kAlwaysTaken). kPerfect has no predictor object and returns nullptr: the
// front end special-cases it and never consults the interface.
std::unique_ptr<BranchPredictor> make_predictor(BpredKind kind,
                                                std::uint32_t table_bits);

}  // namespace stc::frontend
