#include "frontend/front_end.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "frontend/engine.h"
#include "support/check.h"
#include "support/env.h"

namespace stc::frontend {

namespace {

using sim::FetchPipe;

// The SEQ.3 front-end loop, backend-agnostic: both run_seq3_frontend
// overloads feed it a FetchPipe (interpreter- or plan-backed) and get
// bit-identical counters.
FrontEndResult run_seq3_frontend_pipe(FetchPipe& pipe,
                                      const sim::FetchParams& fetch_params,
                                      const FrontEndParams& fe_params,
                                      sim::ICache* cache) {
  FrontEndResult result;
  STC_REQUIRE(fetch_params.perfect_icache || cache != nullptr);
  if (cache != nullptr) cache->reset();
  const std::uint32_t line_bytes =
      cache != nullptr ? cache->geometry().line_bytes : 64;

  Engine eng(fetch_params, fe_params, cache, line_bytes, &result.frontend);
  sim::Seq3Group group;
  while (!pipe.done()) {
    const std::uint64_t now = result.fetch.cycles;
    group.insns.clear();
    const sim::Seq3Cycle cycle =
        seq3_fetch_cycle(pipe, fetch_params, line_bytes, &group);
    result.fetch.instructions += cycle.supplied;
    ++result.fetch.fetch_requests;
    ++result.fetch.cycles;
    if (!fetch_params.perfect_icache) {
      result.fetch.cycles += charge_icache(eng, cycle, fetch_params,
                                           line_bytes, now, &result.fetch,
                                           &result.frontend);
    }
    eng.advance(cycle.supplied);
    result.fetch.cycles += eng.resolve(group.insns, group.has_next,
                                       group.next_addr);
    eng.run_ahead(pipe, result.fetch.cycles);
  }
  return result;
}

// Same for the trace-cache front end.
FrontEndResult run_trace_cache_frontend_pipe(
    FetchPipe& pipe, const sim::FetchParams& fetch_params,
    const sim::TraceCacheParams& tc_params, const FrontEndParams& fe_params,
    sim::ICache* cache) {
  FrontEndResult result;
  STC_REQUIRE(fetch_params.perfect_icache || cache != nullptr);
  if (cache != nullptr) cache->reset();
  const std::uint32_t line_bytes =
      cache != nullptr ? cache->geometry().line_bytes : 64;

  sim::TraceCache tc(tc_params);
  Engine eng(fetch_params, fe_params, cache, line_bytes, &result.frontend);
  std::vector<FetchPipe::Insn> supplied;
  sim::Seq3Group group;
  while (!pipe.done()) {
    const std::uint64_t now = result.fetch.cycles;
    const std::uint64_t fetch_addr = pipe.addr();
    std::uint32_t hit_len = tc.probe(fetch_addr, pipe);
    // Next-trace selection is keyed by the predicted outcomes: a stored
    // trace the predictor would not follow is rejected (a miss), even
    // though the actual path matches it.
    if (hit_len > 0 && !eng.accepts_trace(pipe, hit_len)) hit_len = 0;
    if (hit_len > 0) {
      ++result.fetch.tc_hits;
      ++result.fetch.fetch_requests;
      ++result.fetch.cycles;
      result.fetch.instructions += hit_len;
      bool has_next = false;
      std::uint64_t next_addr = 0;
      snapshot_group(pipe, hit_len, &supplied, &has_next, &next_addr);
      // The fill buffer observes the retired instruction stream regardless
      // of where the instructions came from.
      if (tc.fill_active()) {
        for (const FetchPipe::Insn& insn : supplied) tc.fill_push(insn);
      }
      pipe.consume(hit_len);
      eng.advance(hit_len);
      result.fetch.cycles += eng.resolve(supplied, has_next, next_addr);
    } else {
      ++result.fetch.tc_misses;
      if (!tc.fill_active()) tc.begin_fill(fetch_addr);
      group.insns.clear();
      const sim::Seq3Cycle cycle =
          seq3_fetch_cycle(pipe, fetch_params, line_bytes, &group);
      result.fetch.instructions += cycle.supplied;
      ++result.fetch.fetch_requests;
      ++result.fetch.cycles;
      if (!fetch_params.perfect_icache) {
        result.fetch.cycles += charge_icache(eng, cycle, fetch_params,
                                             line_bytes, now, &result.fetch,
                                             &result.frontend);
      }
      for (const FetchPipe::Insn& insn : group.insns) tc.fill_push(insn);
      eng.advance(cycle.supplied);
      result.fetch.cycles += eng.resolve(group.insns, group.has_next,
                                         group.next_addr);
    }
    eng.run_ahead(pipe, result.fetch.cycles);
  }
  result.fetch.tc_fills = tc.stored_traces();
  result.fetch.tc_probes = tc.probes();
  return result;
}

}  // namespace

Result<FrontEndParams> FrontEndParams::try_from_environment() {
  FrontEndParams params;
  Result<std::string> bpred = env::bpred();
  if (!bpred.is_ok()) return bpred.status();
  const bool ok = parse_bpred(bpred.value().c_str(), &params.kind);
  STC_CHECK_MSG(ok, "env::bpred() returned an unknown predictor name");
  params.prefetch = params.kind != BpredKind::kPerfect;
  Result<std::uint32_t> depth = env::ftq_depth();
  if (!depth.is_ok()) return depth.status();
  params.ftq_depth = depth.value();
  if (params.ftq_depth == 0) params.prefetch = false;
  return params;
}

FrontEndParams FrontEndParams::from_environment() {
  Result<FrontEndParams> params = try_from_environment();
  if (!params.is_ok()) {
    std::fprintf(stderr, "environment: %s\n",
                 params.status().to_string().c_str());
    std::exit(2);
  }
  return params.value();
}

void FrontEndStats::export_counters(CounterSet& out) const {
  out.add("bp_lookups", bp_lookups);
  out.add("bp_mispredicts", bp_mispredicts);
  out.add("bp_bubble_cycles", bp_bubble_cycles);
  out.add("btb_lookups", btb_lookups);
  out.add("btb_misses", btb_misses);
  out.add("ras_pushes", ras_pushes);
  out.add("ras_pops", ras_pops);
  out.add("prefetch_issued", prefetch_issued);
  out.add("prefetch_useful", prefetch_useful);
  out.add("prefetch_late", prefetch_late);
  out.add("prefetch_evicted", prefetch_evicted);
  out.add("prefetch_late_cycles", prefetch_late_cycles);
}

FrontEndResult run_seq3_frontend(const trace::BlockTrace& trace,
                                 const cfg::ProgramImage& image,
                                 const cfg::AddressMap& layout,
                                 const sim::FetchParams& fetch_params,
                                 const FrontEndParams& fe_params,
                                 sim::ICache* cache) {
  if (fe_params.transparent()) {
    FrontEndResult result;
    result.fetch = sim::run_seq3(trace, image, layout, fetch_params, cache);
    return result;
  }
  FetchPipe pipe(trace, image, layout);
  return run_seq3_frontend_pipe(pipe, fetch_params, fe_params, cache);
}

FrontEndResult run_seq3_frontend(const sim::ReplayPlan& plan,
                                 const sim::FetchParams& fetch_params,
                                 const FrontEndParams& fe_params,
                                 sim::ICache* cache) {
  if (fe_params.transparent()) {
    FrontEndResult result;
    result.fetch = sim::run_seq3(plan, fetch_params, cache);
    return result;
  }
  FetchPipe pipe(plan);
  return run_seq3_frontend_pipe(pipe, fetch_params, fe_params, cache);
}

FrontEndResult run_trace_cache_frontend(const trace::BlockTrace& trace,
                                        const cfg::ProgramImage& image,
                                        const cfg::AddressMap& layout,
                                        const sim::FetchParams& fetch_params,
                                        const sim::TraceCacheParams& tc_params,
                                        const FrontEndParams& fe_params,
                                        sim::ICache* cache) {
  if (fe_params.transparent()) {
    FrontEndResult result;
    result.fetch = sim::run_trace_cache(trace, image, layout, fetch_params,
                                        tc_params, cache);
    return result;
  }
  FetchPipe pipe(trace, image, layout);
  return run_trace_cache_frontend_pipe(pipe, fetch_params, tc_params,
                                       fe_params, cache);
}

FrontEndResult run_trace_cache_frontend(const sim::ReplayPlan& plan,
                                        const sim::FetchParams& fetch_params,
                                        const sim::TraceCacheParams& tc_params,
                                        const FrontEndParams& fe_params,
                                        sim::ICache* cache) {
  if (fe_params.transparent()) {
    FrontEndResult result;
    result.fetch = sim::run_trace_cache(plan, fetch_params, tc_params, cache);
    return result;
  }
  FetchPipe pipe(plan);
  return run_trace_cache_frontend_pipe(pipe, fetch_params, tc_params,
                                       fe_params, cache);
}

}  // namespace stc::frontend
