// Internal: per-module kernel routine registration functions.
//
// kernel.cpp calls these in a fixed order; that order (modules, then
// routines within a module in registration order) defines the original code
// layout, mimicking object files concatenated by a linker.
#pragma once

#include "cfg/program.h"

namespace stc::db {

void register_parser_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_planner_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_executor_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_expr_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_typeops_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_heap_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_btree_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_hashindex_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_buffer_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_storage_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_catalog_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_util_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_coldcode_routines(cfg::ProgramImage& im, cfg::ModuleId m);
void register_dbgen_routines(cfg::ProgramImage& im, cfg::ModuleId m);

}  // namespace stc::db
