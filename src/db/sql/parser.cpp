#include "db/sql/parser.h"

#include "db/registration.h"
#include "db/sql/lexer.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_parser_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  // One routine models the whole descent; per-token and per-node blocks give
  // the front end a realistic dynamic weight of a few blocks per token.
  im.add_routine("Sql_parse", m,
                 {{"entry", 8, kBr},
                  {"lex", 5, cfg::BlockKind::kCall},  // run the tokenizer
                  {"token", 6, kBr},      // one token consumed
                  {"node", 9, kBr},       // one AST node built
                  {"subquery", 7, kBr},   // descend into a nested query
                  {"ret", 4, kRet},
                  {"err_syntax", 22, kRet}});
  im.add_routine("Sql_tokenize", m,
                 {{"entry", 7, kBr},
                  {"scan", 12, kBr},      // one raw token scanned
                  {"ret", 4, kRet},
                  {"err_char", 18, kRet}});
}

namespace sql {
namespace {

// The parser emits blocks of the Sql_parse routine directly (the whole
// descent is one dynamic activation; helpers run within its scope).
class Parser {
 public:
  Parser(Kernel& kernel, const std::string& sql)
      : k_(kernel),
        sql_(sql),
        rt_(kernel_image().routine_id("Sql_parse")),
        bb_token_(kernel_image().block_id(rt_, "token")),
        bb_node_(kernel_image().block_id(rt_, "node")),
        bb_subquery_(kernel_image().block_id(rt_, "subquery")) {}

  std::unique_ptr<AstQuery> parse() {
    cfg::RoutineScope scope(k_.exec(), rt_);
    k_.exec().bb(kernel_image().block_id(rt_, "entry"));
    k_.exec().bb(kernel_image().block_id(rt_, "lex"));
    run_tokenizer();
    auto query = parse_select();
    expect(TokenKind::kEnd, "trailing tokens after statement");
    k_.exec().bb(kernel_image().block_id(rt_, "ret"));
    return query;
  }

 private:
  void run_tokenizer() {
    static const cfg::RoutineId rt = kernel_image().routine_id("Sql_tokenize");
    cfg::RoutineScope scope(k_.exec(), rt);
    static const cfg::BlockId entry = kernel_image().block_id(rt, "entry");
    static const cfg::BlockId scan = kernel_image().block_id(rt, "scan");
    static const cfg::BlockId ret = kernel_image().block_id(rt, "ret");
    k_.exec().bb(entry);
    tokens_ = tokenize(sql_);
    for (std::size_t i = 0; i < tokens_.size(); ++i) k_.exec().bb(scan);
    k_.exec().bb(ret);
  }

  // ---- token plumbing ----
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() {
    k_.exec().bb(bb_token_);
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool at_keyword(const char* kw) const {
    return peek().kind == TokenKind::kIdent && peek().text == kw;
  }
  bool accept_keyword(const char* kw) {
    if (!at_keyword(kw)) return false;
    advance();
    return true;
  }
  void expect_keyword(const char* kw) {
    STC_REQUIRE_MSG(accept_keyword(kw), "expected keyword");
  }
  bool accept(TokenKind kind) {
    if (peek().kind != kind) return false;
    advance();
    return true;
  }
  const Token& expect(TokenKind kind, const char* what) {
    STC_REQUIRE_MSG(peek().kind == kind, what);
    return advance();
  }

  std::unique_ptr<AstExpr> node(AstExprKind kind) {
    k_.exec().bb(bb_node_);
    auto e = std::make_unique<AstExpr>();
    e->kind = kind;
    return e;
  }

  // ---- grammar ----
  std::unique_ptr<AstQuery> parse_select() {
    expect_keyword("SELECT");
    auto query = std::make_unique<AstQuery>();
    do {
      SelectItem item;
      item.expr = parse_expr();
      if (accept_keyword("AS")) {
        item.alias = expect(TokenKind::kIdent, "alias expected").text;
      }
      query->select.push_back(std::move(item));
    } while (accept(TokenKind::kComma));

    expect_keyword("FROM");
    do {
      FromItem item;
      if (accept(TokenKind::kLParen)) {
        k_.exec().bb(bb_subquery_);
        item.subquery = parse_select();
        expect(TokenKind::kRParen, "')' after derived table");
        item.alias = expect(TokenKind::kIdent, "derived table alias").text;
      } else {
        item.table = expect(TokenKind::kIdent, "table name").text;
        item.alias = item.table;
        if (peek().kind == TokenKind::kIdent && !at_clause_boundary()) {
          item.alias = advance().text;
        }
      }
      query->from.push_back(std::move(item));
    } while (accept(TokenKind::kComma));

    if (accept_keyword("WHERE")) query->where = parse_expr();

    if (accept_keyword("GROUP")) {
      expect_keyword("BY");
      do {
        query->group_by.push_back(parse_expr());
      } while (accept(TokenKind::kComma));
    }

    if (accept_keyword("HAVING")) query->having = parse_expr();

    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      do {
        OrderItem item;
        if (peek().kind == TokenKind::kInt) {
          item.position = static_cast<int>(advance().int_value);
        } else {
          item.expr = parse_expr();
        }
        if (accept_keyword("DESC")) {
          item.descending = true;
        } else {
          accept_keyword("ASC");
        }
        query->order_by.push_back(std::move(item));
      } while (accept(TokenKind::kComma));
    }

    if (accept_keyword("LIMIT")) {
      query->limit = static_cast<std::uint64_t>(
          expect(TokenKind::kInt, "limit count").int_value);
    }
    return query;
  }

  bool at_clause_boundary() const {
    if (peek().kind != TokenKind::kIdent) return false;
    const std::string& t = peek().text;
    return t == "WHERE" || t == "GROUP" || t == "HAVING" || t == "ORDER" ||
           t == "LIMIT" || t == "ON" || t == "AS";
  }

  std::unique_ptr<AstExpr> parse_expr() { return parse_or(); }

  std::unique_ptr<AstExpr> parse_or() {
    auto lhs = parse_and();
    while (accept_keyword("OR")) {
      auto e = node(AstExprKind::kLogic);
      e->logic = LogicOp::kOr;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_and());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<AstExpr> parse_and() {
    auto lhs = parse_not();
    while (accept_keyword("AND")) {
      auto e = node(AstExprKind::kLogic);
      e->logic = LogicOp::kAnd;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_not());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<AstExpr> parse_not() {
    if (at_keyword("NOT") && !(peek(1).kind == TokenKind::kIdent &&
                               peek(1).text == "IN")) {
      advance();
      auto e = node(AstExprKind::kLogic);
      e->logic = LogicOp::kNot;
      e->children.push_back(parse_not());
      return e;
    }
    return parse_comparison();
  }

  std::unique_ptr<AstExpr> parse_comparison() {
    auto lhs = parse_additive();
    const TokenKind kind = peek().kind;
    if (kind == TokenKind::kEq || kind == TokenKind::kNe ||
        kind == TokenKind::kLt || kind == TokenKind::kLe ||
        kind == TokenKind::kGt || kind == TokenKind::kGe) {
      advance();
      auto e = node(AstExprKind::kCompare);
      switch (kind) {
        case TokenKind::kEq: e->cmp = CmpOp::kEq; break;
        case TokenKind::kNe: e->cmp = CmpOp::kNe; break;
        case TokenKind::kLt: e->cmp = CmpOp::kLt; break;
        case TokenKind::kLe: e->cmp = CmpOp::kLe; break;
        case TokenKind::kGt: e->cmp = CmpOp::kGt; break;
        default: e->cmp = CmpOp::kGe; break;
      }
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_additive());
      return e;
    }
    if (at_keyword("BETWEEN")) {
      advance();
      auto e = node(AstExprKind::kBetween);
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_additive());
      expect_keyword("AND");
      e->children.push_back(parse_additive());
      return e;
    }
    if (at_keyword("LIKE")) {
      advance();
      auto e = node(AstExprKind::kLike);
      e->pattern = expect(TokenKind::kString, "LIKE pattern").text;
      e->children.push_back(std::move(lhs));
      return e;
    }
    const bool negated = at_keyword("NOT") && peek(1).kind == TokenKind::kIdent &&
                         peek(1).text == "IN";
    if (negated) advance();
    if (at_keyword("IN")) {
      advance();
      expect(TokenKind::kLParen, "'(' after IN");
      if (at_keyword("SELECT")) {
        k_.exec().bb(bb_subquery_);
        auto e = node(AstExprKind::kInSubquery);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->subquery = parse_select();
        expect(TokenKind::kRParen, "')' after IN subquery");
        return e;
      }
      auto e = node(AstExprKind::kInList);
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      do {
        e->in_list.push_back(parse_literal());
      } while (accept(TokenKind::kComma));
      expect(TokenKind::kRParen, "')' after IN list");
      return e;
    }
    STC_REQUIRE_MSG(!negated, "NOT must be followed by IN here");
    return lhs;
  }

  std::unique_ptr<AstExpr> parse_additive() {
    auto lhs = parse_multiplicative();
    while (peek().kind == TokenKind::kPlus ||
           peek().kind == TokenKind::kMinus) {
      const bool plus = peek().kind == TokenKind::kPlus;
      advance();
      auto e = node(AstExprKind::kArith);
      e->arith = plus ? ArithOp::kAdd : ArithOp::kSub;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_multiplicative());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<AstExpr> parse_multiplicative() {
    auto lhs = parse_unary();
    while (peek().kind == TokenKind::kStar ||
           peek().kind == TokenKind::kSlash) {
      const bool mul = peek().kind == TokenKind::kStar;
      advance();
      auto e = node(AstExprKind::kArith);
      e->arith = mul ? ArithOp::kMul : ArithOp::kDiv;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_unary());
      lhs = std::move(e);
    }
    return lhs;
  }

  std::unique_ptr<AstExpr> parse_unary() {
    if (accept(TokenKind::kMinus)) {
      auto e = node(AstExprKind::kNegate);
      e->children.push_back(parse_unary());
      return e;
    }
    return parse_primary();
  }

  Value parse_literal() {
    if (at_keyword("DATE")) {
      advance();
      const Token& t = expect(TokenKind::kString, "date literal");
      return Value(parse_date(t.text));
    }
    const Token& t = advance();
    switch (t.kind) {
      case TokenKind::kInt: return Value(t.int_value);
      case TokenKind::kDouble: return Value(t.double_value);
      case TokenKind::kString: return Value(t.text);
      case TokenKind::kMinus: {
        const Token& u = advance();
        if (u.kind == TokenKind::kInt) return Value(-u.int_value);
        STC_REQUIRE_MSG(u.kind == TokenKind::kDouble, "literal expected");
        return Value(-u.double_value);
      }
      default:
        STC_REQUIRE_MSG(false, "literal expected");
        return Value();
    }
  }

  static bool is_agg_keyword(const std::string& t, AggOp& op) {
    if (t == "SUM") { op = AggOp::kSum; return true; }
    if (t == "COUNT") { op = AggOp::kCount; return true; }
    if (t == "AVG") { op = AggOp::kAvg; return true; }
    if (t == "MIN") { op = AggOp::kMin; return true; }
    if (t == "MAX") { op = AggOp::kMax; return true; }
    return false;
  }

  std::unique_ptr<AstExpr> parse_primary() {
    const Token& t = peek();
    if (t.kind == TokenKind::kInt || t.kind == TokenKind::kDouble ||
        t.kind == TokenKind::kString || at_keyword("DATE")) {
      auto e = node(AstExprKind::kConst);
      e->constant = parse_literal();
      return e;
    }
    if (accept(TokenKind::kLParen)) {
      if (at_keyword("SELECT")) {
        k_.exec().bb(bb_subquery_);
        auto e = node(AstExprKind::kScalarSubquery);
        e->subquery = parse_select();
        expect(TokenKind::kRParen, "')' after scalar subquery");
        return e;
      }
      auto e = parse_expr();
      expect(TokenKind::kRParen, "')' expected");
      return e;
    }
    STC_REQUIRE_MSG(t.kind == TokenKind::kIdent, "expression expected");

    AggOp agg_op = AggOp::kCount;
    if (is_agg_keyword(t.text, agg_op) && peek(1).kind == TokenKind::kLParen) {
      advance();  // aggregate name
      advance();  // (
      auto e = node(AstExprKind::kAggregate);
      e->agg = agg_op;
      if (accept(TokenKind::kStar)) {
        STC_REQUIRE_MSG(agg_op == AggOp::kCount, "only COUNT(*) allowed");
        e->agg_star = true;
      } else {
        e->children.push_back(parse_expr());
      }
      expect(TokenKind::kRParen, "')' after aggregate");
      return e;
    }
    if (t.text == "YEAR" && peek(1).kind == TokenKind::kLParen) {
      advance();
      advance();
      auto e = node(AstExprKind::kYear);
      e->children.push_back(parse_expr());
      expect(TokenKind::kRParen, "')' after YEAR");
      return e;
    }
    if (t.text == "CASEWHEN" && peek(1).kind == TokenKind::kLParen) {
      advance();
      advance();
      auto e = node(AstExprKind::kCaseWhen);
      e->children.push_back(parse_expr());
      expect(TokenKind::kComma, "',' in CASEWHEN");
      e->children.push_back(parse_expr());
      expect(TokenKind::kComma, "',' in CASEWHEN");
      e->children.push_back(parse_expr());
      expect(TokenKind::kRParen, "')' after CASEWHEN");
      return e;
    }

    // Column reference: ident or ident.ident.
    auto e = node(AstExprKind::kColumnRef);
    e->name = advance().text;
    if (accept(TokenKind::kDot)) {
      e->qualifier = std::move(e->name);
      e->name = expect(TokenKind::kIdent, "column name after '.'").text;
    }
    return e;
  }

  Kernel& k_;
  const std::string& sql_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  cfg::RoutineId rt_;
  cfg::BlockId bb_token_;
  cfg::BlockId bb_node_;
  cfg::BlockId bb_subquery_;
};

}  // namespace

std::unique_ptr<AstQuery> parse_query(Kernel& kernel, const std::string& sql) {
  Parser parser(kernel, sql);
  return parser.parse();
}

}  // namespace sql
}  // namespace stc::db
