// Recursive-descent parser for the SQL subset (db/sql/ast.h documents the
// grammar). Parsing is instrumented as part of the Parsing-Optimization
// kernel (paper Figure 1): it executes once per query and contributes the
// relatively cold front-end code of the engine.
#pragma once

#include <memory>
#include <string>

#include "db/kernel.h"
#include "db/sql/ast.h"

namespace stc::db::sql {

// Parses one SELECT statement; aborts with a message on syntax errors.
std::unique_ptr<AstQuery> parse_query(Kernel& kernel, const std::string& sql);

}  // namespace stc::db::sql
