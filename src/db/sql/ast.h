// Abstract syntax tree for the SQL subset.
//
// Supported grammar (informally):
//   SELECT item[, ...] FROM from_item[, ...] [WHERE expr]
//     [GROUP BY key[, ...]] [HAVING expr]
//     [ORDER BY key [ASC|DESC][, ...]] [LIMIT n]
//   from_item := table [alias] | ( query ) alias
//   item      := expr [AS alias]
//   expr      := OR/AND/NOT, comparisons, BETWEEN, LIKE, IN (list | query),
//                + - * /, unary -, YEAR(x), CASEWHEN(c, a, b),
//                SUM/COUNT/AVG/MIN/MAX aggregates, ( query ) scalar subquery,
//                DATE 'yyyy-mm-dd', numeric and string literals, col refs.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/plan.h"
#include "db/value.h"

namespace stc::db::sql {

struct AstQuery;

enum class AstExprKind : std::uint8_t {
  kConst,
  kColumnRef,   // [qualifier.]name
  kCompare,
  kLogic,
  kArith,
  kNegate,      // unary minus
  kYear,
  kCaseWhen,
  kLike,
  kBetween,     // child BETWEEN lo AND hi
  kInList,      // child IN (v1, v2, ...)
  kInSubquery,  // child [NOT] IN ( query )
  kScalarSubquery,
  kAggregate,   // SUM/COUNT/AVG/MIN/MAX(arg) or COUNT(*)
};

struct AstExpr {
  AstExprKind kind = AstExprKind::kConst;
  std::vector<std::unique_ptr<AstExpr>> children;

  Value constant;                       // kConst
  std::string qualifier;                // kColumnRef: table/alias or empty
  std::string name;                     // kColumnRef column name
  CmpOp cmp = CmpOp::kEq;               // kCompare
  LogicOp logic = LogicOp::kAnd;        // kLogic
  ArithOp arith = ArithOp::kAdd;        // kArith
  std::string pattern;                  // kLike
  std::vector<Value> in_list;           // kInList
  bool negated = false;                 // kInList / kInSubquery: NOT IN
  std::unique_ptr<AstQuery> subquery;   // kInSubquery / kScalarSubquery
  AggOp agg = AggOp::kCount;            // kAggregate
  bool agg_star = false;                // COUNT(*)

  ~AstExpr();  // out-of-line: AstQuery is incomplete here
  AstExpr() = default;
  AstExpr(AstExpr&&) = default;
  AstExpr& operator=(AstExpr&&) = default;
};

struct SelectItem {
  std::unique_ptr<AstExpr> expr;
  std::string alias;  // empty = derived from the expression
};

struct FromItem {
  std::string table;                   // base table name (upper-cased)
  std::string alias;                   // binding name (defaults to table)
  std::unique_ptr<AstQuery> subquery;  // derived table when non-null
};

struct OrderItem {
  // Either a 1-based output position (position > 0) or an expression that
  // must match an output column / alias.
  int position = 0;
  std::unique_ptr<AstExpr> expr;
  bool descending = false;
};

struct AstQuery {
  std::vector<SelectItem> select;
  std::vector<FromItem> from;
  std::unique_ptr<AstExpr> where;
  std::vector<std::unique_ptr<AstExpr>> group_by;  // columns, aliases or exprs
  std::unique_ptr<AstExpr> having;                 // over the aggregate output
  std::vector<OrderItem> order_by;
  std::optional<std::uint64_t> limit;
};

inline AstExpr::~AstExpr() = default;

}  // namespace stc::db::sql
