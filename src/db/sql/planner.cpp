#include "db/sql/planner.h"

#include <algorithm>
#include <cctype>

#include "db/exec.h"
#include "db/registration.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_planner_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("Plan_query", m,
                 {{"entry", 7, kBr},
                  {"lookup", 4, kCall},    // catalog table lookup
                  {"resolve", 6, kBr},     // one column-name resolution
                  {"pushdown", 8, kBr},    // classify one conjunct
                  {"scan", 10, kBr},       // build one scan (index selection)
                  {"join", 12, kBr},       // one greedy join step
                  {"fold", 4, kCall},      // execute an uncorrelated subquery
                  {"subplan", 4, kCall},   // recursively plan a nested query
                  {"build", 9, kBr},       // aggregate/project/sort assembly
                  {"ret", 4, kRet},
                  {"err_semantic", 20, kRet}});
  im.add_routine("Plan_estimate", m,
                 {{"entry", 5, kBr},
                  {"selectivity", 7, kBr},  // one predicate estimated
                  {"ret", 3, kRet}});
}

namespace sql {
namespace {

// ---- planner context --------------------------------------------------------

struct Ctx {
  Kernel& k;
  Catalog& catalog;
  const PlannerOptions& options;
  cfg::RoutineId rt;
  cfg::BlockId bb_lookup, bb_resolve, bb_pushdown, bb_scan, bb_join, bb_fold,
      bb_subplan, bb_build;

  Ctx(Kernel& kernel, Catalog& cat, const PlannerOptions& opts)
      : k(kernel), catalog(cat), options(opts) {
    const auto& im = kernel_image();
    rt = im.routine_id("Plan_query");
    bb_lookup = im.block_id(rt, "lookup");
    bb_resolve = im.block_id(rt, "resolve");
    bb_pushdown = im.block_id(rt, "pushdown");
    bb_scan = im.block_id(rt, "scan");
    bb_join = im.block_id(rt, "join");
    bb_fold = im.block_id(rt, "fold");
    bb_subplan = im.block_id(rt, "subplan");
    bb_build = im.block_id(rt, "build");
  }

  void bb(cfg::BlockId b) { k.exec().bb(b); }
};

std::unique_ptr<PlanNode> plan_impl(Ctx& ctx, const AstQuery& query);

// ---- name binding -----------------------------------------------------------

struct BoundCol {
  std::string qualifier;  // relation alias (upper-cased)
  std::string name;       // column name (upper-cased)
  ValueType type = ValueType::kInt;
};

struct Binder {
  std::vector<BoundCol> cols;

  // Resolves [qualifier.]name; aborts on ambiguity, returns -1 when absent.
  int resolve(Ctx& ctx, const std::string& qualifier,
              const std::string& name) const {
    ctx.bb(ctx.bb_resolve);
    int found = -1;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (cols[i].name != name) continue;
      if (!qualifier.empty() && cols[i].qualifier != qualifier) continue;
      STC_CHECK_MSG(found < 0, "ambiguous column reference");
      found = static_cast<int>(i);
    }
    return found;
  }

  int resolve_or_die(Ctx& ctx, const std::string& qualifier,
                     const std::string& name) const {
    const int pos = resolve(ctx, qualifier, name);
    STC_CHECK_MSG(pos >= 0, "unknown column reference");
    return pos;
  }
};

// ---- aggregate environment ---------------------------------------------------

struct AggEnv {
  const Binder* input = nullptr;        // pre-aggregation binder
  std::vector<int> group_cols;          // positions in the (pre-agg) input
  std::vector<AggSpec>* specs = nullptr;  // accumulated aggregate functions
  // Source AST of each group key (for structural matching of computed group
  // expressions like YEAR(d)) and its alias, when grouped via a select alias.
  std::vector<const AstExpr*> group_exprs;
  std::vector<std::string> group_names;
};

// Structural AST equality (subqueries compare by identity only).
bool ast_equal(const AstExpr& a, const AstExpr& b) {
  if (a.kind != b.kind || a.children.size() != b.children.size()) return false;
  switch (a.kind) {
    case AstExprKind::kConst:
      if (a.constant.type() != b.constant.type() ||
          a.constant.compare(b.constant) != 0) {
        return false;
      }
      break;
    case AstExprKind::kColumnRef:
      if (a.qualifier != b.qualifier || a.name != b.name) return false;
      break;
    case AstExprKind::kCompare:
      if (a.cmp != b.cmp) return false;
      break;
    case AstExprKind::kLogic:
      if (a.logic != b.logic) return false;
      break;
    case AstExprKind::kArith:
      if (a.arith != b.arith) return false;
      break;
    case AstExprKind::kLike:
      if (a.pattern != b.pattern) return false;
      break;
    case AstExprKind::kInList:
      if (a.negated != b.negated || a.in_list.size() != b.in_list.size()) {
        return false;
      }
      for (std::size_t i = 0; i < a.in_list.size(); ++i) {
        if (a.in_list[i].compare(b.in_list[i]) != 0) return false;
      }
      break;
    case AstExprKind::kInSubquery:
    case AstExprKind::kScalarSubquery:
      return &a == &b;
    case AstExprKind::kAggregate:
      if (a.agg != b.agg || a.agg_star != b.agg_star) return false;
      break;
    default:
      break;
  }
  for (std::size_t i = 0; i < a.children.size(); ++i) {
    if (!ast_equal(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

// ---- AST -> runtime expression conversion ------------------------------------

std::unique_ptr<Expr> convert(Ctx& ctx, const AstExpr& ast,
                              const Binder& binder, AggEnv* agg);

Value fold_scalar_subquery(Ctx& ctx, const AstQuery& query) {
  ctx.bb(ctx.bb_subplan);
  std::unique_ptr<PlanNode> plan = plan_impl(ctx, query);
  ctx.bb(ctx.bb_fold);
  const std::vector<Tuple> rows = run_plan(ctx.k, *plan);
  if (rows.empty()) return Value::null();
  STC_CHECK_MSG(!rows[0].empty(), "scalar subquery with no column");
  return rows[0][0];
}

std::shared_ptr<ValueSet> fold_in_subquery(Ctx& ctx, const AstQuery& query) {
  ctx.bb(ctx.bb_subplan);
  std::unique_ptr<PlanNode> plan = plan_impl(ctx, query);
  ctx.bb(ctx.bb_fold);
  const std::vector<Tuple> rows = run_plan(ctx.k, *plan);
  auto set = std::make_shared<ValueSet>();
  for (const Tuple& row : rows) {
    STC_CHECK_MSG(!row.empty(), "IN subquery with no column");
    if (!row[0].is_null()) set->insert(row[0]);
  }
  return set;
}

std::unique_ptr<Expr> convert(Ctx& ctx, const AstExpr& ast,
                              const Binder& binder, AggEnv* agg) {
  if (agg != nullptr && ast.kind != AstExprKind::kAggregate) {
    // A subtree that IS one of the group keys (structurally, or by select
    // alias) maps straight to that aggregate-output position.
    for (std::size_t g = 0; g < agg->group_exprs.size(); ++g) {
      if (agg->group_exprs[g] != nullptr &&
          ast_equal(ast, *agg->group_exprs[g])) {
        return Expr::make_column(static_cast<int>(g));
      }
      if (ast.kind == AstExprKind::kColumnRef && ast.qualifier.empty() &&
          g < agg->group_names.size() && !agg->group_names[g].empty() &&
          ast.name == agg->group_names[g]) {
        return Expr::make_column(static_cast<int>(g));
      }
    }
  }
  switch (ast.kind) {
    case AstExprKind::kConst:
      return Expr::make_const(ast.constant);
    case AstExprKind::kColumnRef: {
      if (agg != nullptr) {
        // Inside a grouped query, plain column references must be grouping
        // columns; they map to the aggregate output positions.
        const int in_pos =
            agg->input->resolve_or_die(ctx, ast.qualifier, ast.name);
        for (std::size_t g = 0; g < agg->group_cols.size(); ++g) {
          if (agg->group_cols[g] == in_pos) {
            return Expr::make_column(static_cast<int>(g));
          }
        }
        STC_CHECK_MSG(false, "column referenced outside GROUP BY");
      }
      return Expr::make_column(binder.resolve_or_die(ctx, ast.qualifier,
                                                     ast.name));
    }
    case AstExprKind::kCompare:
      return Expr::make_compare(ast.cmp,
                                convert(ctx, *ast.children[0], binder, agg),
                                convert(ctx, *ast.children[1], binder, agg));
    case AstExprKind::kLogic:
      if (ast.logic == LogicOp::kNot) {
        return Expr::make_logic(LogicOp::kNot,
                                convert(ctx, *ast.children[0], binder, agg));
      }
      return Expr::make_logic(ast.logic,
                              convert(ctx, *ast.children[0], binder, agg),
                              convert(ctx, *ast.children[1], binder, agg));
    case AstExprKind::kArith:
      return Expr::make_arith(ast.arith,
                              convert(ctx, *ast.children[0], binder, agg),
                              convert(ctx, *ast.children[1], binder, agg));
    case AstExprKind::kNegate:
      return Expr::make_arith(ArithOp::kSub,
                              Expr::make_const(Value(std::int64_t{0})),
                              convert(ctx, *ast.children[0], binder, agg));
    case AstExprKind::kYear:
      return Expr::make_year(convert(ctx, *ast.children[0], binder, agg));
    case AstExprKind::kCaseWhen:
      return Expr::make_case(convert(ctx, *ast.children[0], binder, agg),
                             convert(ctx, *ast.children[1], binder, agg),
                             convert(ctx, *ast.children[2], binder, agg));
    case AstExprKind::kLike:
      return Expr::make_like(convert(ctx, *ast.children[0], binder, agg),
                             ast.pattern);
    case AstExprKind::kBetween: {
      auto lo = Expr::make_compare(
          CmpOp::kGe, convert(ctx, *ast.children[0], binder, agg),
          convert(ctx, *ast.children[1], binder, agg));
      auto hi = Expr::make_compare(
          CmpOp::kLe, convert(ctx, *ast.children[0], binder, agg),
          convert(ctx, *ast.children[2], binder, agg));
      return Expr::make_logic(LogicOp::kAnd, std::move(lo), std::move(hi));
    }
    case AstExprKind::kInList: {
      auto set = std::make_shared<ValueSet>();
      for (const Value& v : ast.in_list) set->insert(v);
      return Expr::make_in_set(convert(ctx, *ast.children[0], binder, agg),
                               std::move(set), ast.negated);
    }
    case AstExprKind::kInSubquery:
      return Expr::make_in_set(convert(ctx, *ast.children[0], binder, agg),
                               fold_in_subquery(ctx, *ast.subquery),
                               ast.negated);
    case AstExprKind::kScalarSubquery:
      return Expr::make_const(fold_scalar_subquery(ctx, *ast.subquery));
    case AstExprKind::kAggregate: {
      STC_CHECK_MSG(agg != nullptr, "aggregate outside SELECT of a grouped query");
      AggSpec spec;
      spec.op = ast.agg;
      if (!ast.agg_star) {
        spec.arg = convert(ctx, *ast.children[0], *agg->input, nullptr);
      }
      agg->specs->push_back(std::move(spec));
      return Expr::make_column(static_cast<int>(agg->group_cols.size() +
                                                agg->specs->size() - 1));
    }
  }
  STC_CHECK_MSG(false, "unhandled AST expression kind");
  return nullptr;
}

// ---- relations ----------------------------------------------------------------

struct Rel {
  std::string alias;
  TableInfo* table = nullptr;            // base table (null for derived)
  std::unique_ptr<PlanNode> derived;     // planned derived-table subquery
  Binder binder;                         // columns this relation produces
  std::vector<const AstExpr*> local;     // pushed single-relation conjuncts
  double est = 1.0;
  bool joined = false;
};

// Walks an AST expression and records which relations its column references
// touch (by index into `rels`). Aborts on unresolvable names.
void collect_rels(Ctx& ctx, const AstExpr& ast, const std::vector<Rel>& rels,
                  std::vector<bool>& used) {
  if (ast.kind == AstExprKind::kColumnRef) {
    int found_rel = -1;
    for (std::size_t r = 0; r < rels.size(); ++r) {
      if (!ast.qualifier.empty() && rels[r].alias != ast.qualifier) continue;
      if (rels[r].binder.resolve(ctx, ast.qualifier.empty() ? "" : ast.qualifier,
                                 ast.name) >= 0) {
        STC_CHECK_MSG(found_rel < 0, "ambiguous column across relations");
        found_rel = static_cast<int>(r);
      }
    }
    STC_CHECK_MSG(found_rel >= 0, "column does not match any relation");
    used[static_cast<std::size_t>(found_rel)] = true;
    return;
  }
  for (const auto& child : ast.children) {
    collect_rels(ctx, *child, rels, used);
  }
  // Subqueries are uncorrelated by construction: they reference no outer
  // relations, so there is nothing to collect inside them.
}

void split_conjuncts(const AstExpr* ast, std::vector<const AstExpr*>& out) {
  if (ast == nullptr) return;
  if (ast->kind == AstExprKind::kLogic && ast->logic == LogicOp::kAnd) {
    split_conjuncts(ast->children[0].get(), out);
    split_conjuncts(ast->children[1].get(), out);
    return;
  }
  out.push_back(ast);
}

double conjunct_selectivity(const AstExpr& ast) {
  switch (ast.kind) {
    case AstExprKind::kCompare:
      return ast.cmp == CmpOp::kEq ? 0.05 : 0.33;
    case AstExprKind::kBetween:
      return 0.25;
    case AstExprKind::kLike:
      return 0.2;
    case AstExprKind::kInList:
    case AstExprKind::kInSubquery:
      return 0.2;
    default:
      return 0.5;
  }
}

// ---- scan building --------------------------------------------------------------

// Recognizes `col CMP literal` over a base relation; returns the column
// position, operator and value via out-params.
bool match_col_const(Ctx& ctx, const AstExpr& ast, const Rel& rel, int& col,
                     CmpOp& op, Value& value) {
  if (ast.kind != AstExprKind::kCompare) return false;
  const AstExpr* lhs = ast.children[0].get();
  const AstExpr* rhs = ast.children[1].get();
  CmpOp cmp = ast.cmp;
  if (lhs->kind != AstExprKind::kColumnRef ||
      rhs->kind != AstExprKind::kConst) {
    if (rhs->kind == AstExprKind::kColumnRef &&
        lhs->kind == AstExprKind::kConst) {
      std::swap(lhs, rhs);
      switch (ast.cmp) {  // mirror the comparison
        case CmpOp::kLt: cmp = CmpOp::kGt; break;
        case CmpOp::kLe: cmp = CmpOp::kGe; break;
        case CmpOp::kGt: cmp = CmpOp::kLt; break;
        case CmpOp::kGe: cmp = CmpOp::kLe; break;
        default: break;
      }
    } else {
      return false;
    }
  }
  const int pos = rel.binder.resolve(ctx, lhs->qualifier, lhs->name);
  if (pos < 0) return false;
  col = pos;
  op = cmp;
  value = rhs->constant;
  return true;
}

std::unique_ptr<PlanNode> build_scan(Ctx& ctx, Rel& rel) {
  ctx.bb(ctx.bb_scan);
  if (rel.table == nullptr) {
    // Derived table: materialize the subplan, filter by the local conjuncts.
    auto mat = std::make_unique<PlanNode>();
    mat->kind = PlanKind::kMaterialize;
    mat->children.push_back(std::move(rel.derived));
    std::unique_ptr<PlanNode> plan = std::move(mat);
    for (const AstExpr* conjunct : rel.local) {
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->qual = convert(ctx, *conjunct, rel.binder, nullptr);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
    return plan;
  }

  // Base table: look for an index-friendly predicate.
  struct Bound {
    std::optional<Value> eq, lo, hi;
    bool lo_incl = true, hi_incl = true;
  };
  std::vector<Bound> bounds(rel.binder.cols.size());
  std::vector<bool> consumed(rel.local.size(), false);

  if (ctx.options.use_indexes) {
    for (std::size_t c = 0; c < rel.local.size(); ++c) {
      int col = 0;
      CmpOp op = CmpOp::kEq;
      Value value;
      if (!match_col_const(ctx, *rel.local[c], rel, col, op, value)) continue;
      Bound& b = bounds[static_cast<std::size_t>(col)];
      switch (op) {
        case CmpOp::kEq:
          b.eq = value;
          consumed[c] = true;
          break;
        case CmpOp::kLt:
          if (!b.hi || value.compare(*b.hi) < 0) {
            b.hi = value;
            b.hi_incl = false;
          }
          consumed[c] = true;
          break;
        case CmpOp::kLe:
          if (!b.hi || value.compare(*b.hi) < 0) {
            b.hi = value;
            b.hi_incl = true;
          }
          consumed[c] = true;
          break;
        case CmpOp::kGt:
          if (!b.lo || value.compare(*b.lo) > 0) {
            b.lo = value;
            b.lo_incl = false;
          }
          consumed[c] = true;
          break;
        case CmpOp::kGe:
          if (!b.lo || value.compare(*b.lo) > 0) {
            b.lo = value;
            b.lo_incl = true;
          }
          consumed[c] = true;
          break;
        default:
          break;
      }
    }
  }

  // Prefer an equality probe (unique index first), then a btree range.
  const IndexInfo* chosen = nullptr;
  int chosen_col = -1;
  bool equality = false;
  for (std::size_t col = 0; col < bounds.size(); ++col) {
    if (!bounds[col].eq.has_value()) continue;
    const IndexInfo* index = rel.table->index_on(static_cast<int>(col));
    if (index == nullptr) continue;
    if (chosen == nullptr || (index->unique && !chosen->unique)) {
      chosen = index;
      chosen_col = static_cast<int>(col);
      equality = true;
    }
  }
  if (chosen == nullptr) {
    for (std::size_t col = 0; col < bounds.size(); ++col) {
      const Bound& b = bounds[col];
      if (!b.lo.has_value() && !b.hi.has_value()) continue;
      const IndexInfo* index = rel.table->index_on(static_cast<int>(col));
      if (index == nullptr || index->index->kind() != IndexKind::kBTree) {
        continue;
      }
      chosen = index;
      chosen_col = static_cast<int>(col);
      equality = false;
      break;
    }
  }

  // Residual qual: every local conjunct not fully captured by the chosen
  // index bounds (conjuncts on other columns are always kept).
  std::unique_ptr<Expr> qual;
  for (std::size_t c = 0; c < rel.local.size(); ++c) {
    bool keep = true;
    if (chosen != nullptr && consumed[c]) {
      int col = 0;
      CmpOp op = CmpOp::kEq;
      Value value;
      match_col_const(ctx, *rel.local[c], rel, col, op, value);
      keep = col != chosen_col;
    }
    if (!keep) continue;
    auto e = convert(ctx, *rel.local[c], rel.binder, nullptr);
    qual = qual == nullptr
               ? std::move(e)
               : Expr::make_logic(LogicOp::kAnd, std::move(qual), std::move(e));
  }

  if (chosen == nullptr) {
    return make_seq_scan(rel.table, std::move(qual));
  }
  const Bound& b = bounds[static_cast<std::size_t>(chosen_col)];
  if (equality) {
    return make_index_scan(rel.table, chosen, b.eq, true, b.eq, true,
                           std::move(qual));
  }
  return make_index_scan(rel.table, chosen, b.lo, b.lo_incl, b.hi, b.hi_incl,
                         std::move(qual));
}

// ---- the planner ------------------------------------------------------------------

struct JoinEdge {
  std::size_t a, b;              // relation indices
  const AstExpr* a_col;          // column ref on relation a
  const AstExpr* b_col;          // column ref on relation b
};

std::unique_ptr<PlanNode> plan_impl(Ctx& ctx, const AstQuery& query) {
  cfg::RoutineScope scope(ctx.k.exec(), ctx.rt);
  const auto& im = kernel_image();
  ctx.bb(im.block_id(ctx.rt, "entry"));

  // ---- FROM: bind the relations ----------------------------------------
  std::vector<Rel> rels;
  rels.reserve(query.from.size());
  for (const FromItem& item : query.from) {
    Rel rel;
    rel.alias = item.alias;
    if (item.subquery != nullptr) {
      ctx.bb(ctx.bb_subplan);
      rel.derived = plan_impl(ctx, *item.subquery);
      for (const Column& col : rel.derived->out_schema.columns()) {
        rel.binder.cols.push_back({rel.alias, col.name, col.type});
      }
      rel.est = 1000.0;  // derived-table default estimate
    } else {
      ctx.bb(ctx.bb_lookup);
      rel.table = ctx.catalog.lookup(item.table);
      STC_CHECK_MSG(rel.table != nullptr, "unknown table in FROM");
      for (const Column& col : rel.table->schema.columns()) {
        std::string upper = col.name;
        for (char& c : upper) {
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        }
        rel.binder.cols.push_back({rel.alias, upper, col.type});
      }
      rel.est = static_cast<double>(rel.table->heap->tuple_count());
    }
    rels.push_back(std::move(rel));
  }

  // ---- WHERE: classify the conjuncts -----------------------------------
  std::vector<const AstExpr*> conjuncts;
  split_conjuncts(query.where.get(), conjuncts);

  std::vector<JoinEdge> edges;
  std::vector<const AstExpr*> residual;
  for (const AstExpr* conjunct : conjuncts) {
    ctx.bb(ctx.bb_pushdown);
    std::vector<bool> used(rels.size(), false);
    collect_rels(ctx, *conjunct, rels, used);
    const std::size_t count =
        static_cast<std::size_t>(std::count(used.begin(), used.end(), true));
    if (count <= 1) {
      std::size_t r = 0;
      while (r < used.size() && !used[r]) ++r;
      if (r == used.size()) r = 0;  // constant predicate: park it anywhere
      rels[r].local.push_back(conjunct);
      rels[r].est = std::max(1.0, rels[r].est * conjunct_selectivity(*conjunct));
      continue;
    }
    if (count == 2 && conjunct->kind == AstExprKind::kCompare &&
        conjunct->cmp == CmpOp::kEq &&
        conjunct->children[0]->kind == AstExprKind::kColumnRef &&
        conjunct->children[1]->kind == AstExprKind::kColumnRef) {
      std::size_t a = 0;
      while (!used[a]) ++a;
      std::size_t b = a + 1;
      while (!used[b]) ++b;
      // Assign each side of the equality to its relation.
      const AstExpr* lhs = conjunct->children[0].get();
      const AstExpr* rhs = conjunct->children[1].get();
      std::vector<bool> lhs_used(rels.size(), false);
      collect_rels(ctx, *lhs, rels, lhs_used);
      if (!lhs_used[a]) std::swap(lhs, rhs);
      edges.push_back({a, b, lhs, rhs});
      continue;
    }
    residual.push_back(conjunct);
  }

  // ---- scans -------------------------------------------------------------
  std::vector<std::unique_ptr<PlanNode>> scans(rels.size());
  for (std::size_t r = 0; r < rels.size(); ++r) {
    scans[r] = build_scan(ctx, rels[r]);
  }

  // ---- greedy join order --------------------------------------------------
  // Start from the smallest relation; repeatedly add the smallest relation
  // connected to the joined set (falling back to a cross product if the
  // join graph is disconnected).
  std::size_t first = 0;
  for (std::size_t r = 1; r < rels.size(); ++r) {
    if (rels[r].est < rels[first].est) first = r;
  }
  rels[first].joined = true;

  std::unique_ptr<PlanNode> plan = std::move(scans[first]);
  Binder out_binder = rels[first].binder;
  std::vector<int> rel_offset(rels.size(), -1);
  rel_offset[first] = 0;
  double est = rels[first].est;
  std::size_t joined = 1;

  const auto edge_connects = [&](const JoinEdge& e) -> int {
    const bool a_in = rels[e.a].joined;
    const bool b_in = rels[e.b].joined;
    if (a_in == b_in) return -1;
    return static_cast<int>(a_in ? e.b : e.a);
  };

  while (joined < rels.size()) {
    ctx.bb(ctx.bb_join);
    // Pick the connected relation with the smallest estimate.
    int next = -1;
    for (const JoinEdge& e : edges) {
      const int cand = edge_connects(e);
      if (cand < 0) continue;
      if (next < 0 || rels[static_cast<std::size_t>(cand)].est <
                          rels[static_cast<std::size_t>(next)].est) {
        next = cand;
      }
    }
    bool cross = false;
    if (next < 0) {
      cross = true;
      for (std::size_t r = 0; r < rels.size(); ++r) {
        if (rels[r].joined) continue;
        if (next < 0 || rels[r].est < rels[static_cast<std::size_t>(next)].est) {
          next = static_cast<int>(r);
        }
      }
    }
    Rel& inner = rels[static_cast<std::size_t>(next)];

    // Gather every edge between the joined set and `inner`; the first drives
    // the join method, the rest become residual equalities.
    std::vector<const JoinEdge*> my_edges;
    for (const JoinEdge& e : edges) {
      if (edge_connects(e) == next) my_edges.push_back(&e);
    }

    const int outer_width = static_cast<int>(out_binder.cols.size());
    auto join = std::make_unique<PlanNode>();
    std::unique_ptr<PlanNode> inner_scan = std::move(scans[static_cast<std::size_t>(next)]);

    // Key expressions over the outer (joined set) and inner tuples.
    std::unique_ptr<Expr> outer_key, inner_key;
    if (!cross) {
      const JoinEdge& e = *my_edges.front();
      const AstExpr* outer_col = rels[e.a].joined ? e.a_col : e.b_col;
      const AstExpr* inner_col = rels[e.a].joined ? e.b_col : e.a_col;
      outer_key = convert(ctx, *outer_col, out_binder, nullptr);
      inner_key = convert(ctx, *inner_col, inner.binder, nullptr);
    }

    // Join method selection.
    const bool inner_indexable =
        ctx.options.use_indexes && inner.table != nullptr &&
        inner_key != nullptr && inner_key->kind == ExprKind::kColumn &&
        inner.table->index_on(inner_key->column) != nullptr;
    PlannerOptions::JoinStrategy strategy = ctx.options.join_strategy;
    if (cross) strategy = PlannerOptions::JoinStrategy::kNestedLoop;
    switch (strategy) {
      case PlannerOptions::JoinStrategy::kAuto:
        join->kind = inner_indexable && est <= inner.est * 2.0
                         ? PlanKind::kIndexNLJoin
                         : PlanKind::kHashJoin;
        break;
      case PlannerOptions::JoinStrategy::kHash:
        join->kind = PlanKind::kHashJoin;
        break;
      case PlannerOptions::JoinStrategy::kMerge:
        join->kind = cross ? PlanKind::kNLJoin : PlanKind::kMergeJoin;
        break;
      case PlannerOptions::JoinStrategy::kNestedLoop:
        join->kind = PlanKind::kNLJoin;
        break;
    }

    // Residual predicate pieces over the concatenated tuple: extra join
    // edges, plus (for index NL) the inner relation's local conjuncts.
    Binder concat = out_binder;
    for (const BoundCol& col : inner.binder.cols) concat.cols.push_back(col);
    std::unique_ptr<Expr> res;
    const auto add_residual = [&](std::unique_ptr<Expr> e) {
      res = res == nullptr ? std::move(e)
                           : Expr::make_logic(LogicOp::kAnd, std::move(res),
                                              std::move(e));
    };
    for (std::size_t i = cross ? 0 : 1; i < my_edges.size(); ++i) {
      const JoinEdge& e = *my_edges[i];
      add_residual(Expr::make_compare(CmpOp::kEq,
                                      convert(ctx, *e.a_col, concat, nullptr),
                                      convert(ctx, *e.b_col, concat, nullptr)));
    }

    if (join->kind == PlanKind::kIndexNLJoin) {
      // The inner scan is replaced by direct index probes; re-apply its
      // pushed-down conjuncts over the concatenated tuple.
      join->table = inner.table;
      join->index = inner.table->index_on(inner_key->column);
      join->left_key = std::move(outer_key);
      for (const AstExpr* conjunct : inner.local) {
        add_residual(convert(ctx, *conjunct, concat, nullptr));
      }
      join->children.push_back(std::move(plan));
    } else if (join->kind == PlanKind::kHashJoin) {
      join->left_key = std::move(outer_key);
      join->right_key = std::move(inner_key);
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(inner_scan));
    } else if (join->kind == PlanKind::kMergeJoin) {
      // Sort both inputs on the key columns. Keys must be plain columns.
      STC_CHECK_MSG(outer_key->kind == ExprKind::kColumn &&
                        inner_key->kind == ExprKind::kColumn,
                    "merge join requires column keys");
      auto sort_left = std::make_unique<PlanNode>();
      sort_left->kind = PlanKind::kSort;
      sort_left->sort_keys.push_back({outer_key->column, false});
      sort_left->children.push_back(std::move(plan));
      auto sort_right = std::make_unique<PlanNode>();
      sort_right->kind = PlanKind::kSort;
      sort_right->sort_keys.push_back({inner_key->column, false});
      sort_right->children.push_back(std::move(inner_scan));
      join->left_key = std::move(outer_key);
      join->right_key = std::move(inner_key);
      join->children.push_back(std::move(sort_left));
      join->children.push_back(std::move(sort_right));
    } else {
      // Naive nested loops: rewindable inner via materialization.
      auto mat = std::make_unique<PlanNode>();
      mat->kind = PlanKind::kMaterialize;
      mat->children.push_back(std::move(inner_scan));
      if (!cross) {
        // The equality itself becomes a residual predicate.
        std::unique_ptr<Expr> inner_shifted = std::move(inner_key);
        std::vector<int> mapping(inner.binder.cols.size());
        for (std::size_t i = 0; i < mapping.size(); ++i) {
          mapping[i] = outer_width + static_cast<int>(i);
        }
        inner_shifted->remap_columns(mapping);
        add_residual(Expr::make_compare(CmpOp::kEq, std::move(outer_key),
                                        std::move(inner_shifted)));
      }
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(mat));
    }

    join->residual = std::move(res);
    plan = std::move(join);
    rel_offset[static_cast<std::size_t>(next)] = outer_width;
    out_binder = std::move(concat);
    inner.joined = true;
    ++joined;
    est = std::max(1.0, est * std::max(1.0, inner.est) * 0.1);
  }

  // ---- residual predicates over the full join output ----------------------
  for (const AstExpr* conjunct : residual) {
    ctx.bb(ctx.bb_build);
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->qual = convert(ctx, *conjunct, out_binder, nullptr);
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }

  // ---- aggregation + projection -------------------------------------------
  const auto has_aggregate = [](const AstExpr& e) {
    struct Walker {
      static bool walk(const AstExpr& node) {
        if (node.kind == AstExprKind::kAggregate) return true;
        for (const auto& child : node.children) {
          if (walk(*child)) return true;
        }
        return false;
      }
    };
    return Walker::walk(e);
  };
  bool grouped = !query.group_by.empty() || query.having != nullptr;
  for (const SelectItem& item : query.select) {
    if (has_aggregate(*item.expr)) grouped = true;
  }

  auto project = std::make_unique<PlanNode>();
  project->kind = PlanKind::kProject;

  if (grouped) {
    ctx.bb(ctx.bb_build);
    auto agg_node = std::make_unique<PlanNode>();
    agg_node->kind = PlanKind::kAggregate;
    AggEnv env;
    env.specs = &agg_node->aggs;

    // Classify group keys: plain input columns vs computed expressions
    // (either written out, or referenced through a select alias).
    struct GroupKey {
      const AstExpr* expr = nullptr;
      std::string name;     // alias, when grouped via one
      int input_pos = -1;   // >= 0 for plain columns
    };
    std::vector<GroupKey> keys;
    for (const auto& gexpr : query.group_by) {
      GroupKey key;
      key.expr = gexpr.get();
      if (gexpr->kind == AstExprKind::kColumnRef) {
        key.input_pos = out_binder.resolve(ctx, gexpr->qualifier, gexpr->name);
        if (key.input_pos < 0) {
          // GROUP BY <select alias>.
          for (const SelectItem& item : query.select) {
            if (!item.alias.empty() && gexpr->qualifier.empty() &&
                item.alias == gexpr->name) {
              key.expr = item.expr.get();
              key.name = item.alias;
              break;
            }
          }
          STC_CHECK_MSG(key.expr != gexpr.get(),
                        "GROUP BY column does not resolve");
        }
      }
      keys.push_back(key);
    }

    const bool any_computed = std::any_of(
        keys.begin(), keys.end(),
        [](const GroupKey& key) { return key.input_pos < 0; });
    Binder extended = out_binder;
    if (any_computed) {
      // Pre-projection: pass every input column through and append the
      // computed group keys, so the Aggregate still groups on positions.
      auto pre = std::make_unique<PlanNode>();
      pre->kind = PlanKind::kProject;
      const int width = static_cast<int>(out_binder.cols.size());
      for (int i = 0; i < width; ++i) {
        pre->exprs.push_back(Expr::make_column(i));
      }
      int appended = 0;
      for (GroupKey& key : keys) {
        if (key.input_pos >= 0) continue;
        pre->exprs.push_back(convert(ctx, *key.expr, out_binder, nullptr));
        key.input_pos = width + appended;
        extended.cols.push_back(
            {"", key.name.empty() ? "$G" + std::to_string(appended) : key.name,
             ValueType::kInt});
        ++appended;
      }
      pre->children.push_back(std::move(plan));
      plan = std::move(pre);
    }

    env.input = &extended;
    for (const GroupKey& key : keys) {
      env.group_cols.push_back(key.input_pos);
      env.group_exprs.push_back(key.expr);
      env.group_names.push_back(key.name);
    }
    agg_node->group_cols = env.group_cols;
    // Convert select expressions against the aggregate output; this also
    // populates agg_node->aggs through the environment.
    for (const SelectItem& item : query.select) {
      project->exprs.push_back(convert(ctx, *item.expr, extended, &env));
    }
    // HAVING filters the aggregate output (it may introduce further
    // aggregate functions, which simply extend the spec list).
    std::unique_ptr<Expr> having;
    if (query.having != nullptr) {
      having = convert(ctx, *query.having, extended, &env);
    }
    agg_node->children.push_back(std::move(plan));
    plan = std::move(agg_node);
    if (having != nullptr) {
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->qual = std::move(having);
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  } else {
    ctx.bb(ctx.bb_build);
    for (const SelectItem& item : query.select) {
      project->exprs.push_back(convert(ctx, *item.expr, out_binder, nullptr));
    }
  }

  // Output schema: aliases (or bare column names) of the select items.
  for (std::size_t i = 0; i < query.select.size(); ++i) {
    const SelectItem& item = query.select[i];
    std::string name = item.alias;
    if (name.empty() && item.expr->kind == AstExprKind::kColumnRef) {
      name = item.expr->name;
    }
    if (name.empty()) name = "COL" + std::to_string(i + 1);
    project->out_schema.add(std::move(name), ValueType::kInt);
  }
  project->children.push_back(std::move(plan));
  Schema out_schema = project->out_schema;
  plan = std::move(project);

  // ---- ORDER BY -------------------------------------------------------------
  if (!query.order_by.empty()) {
    ctx.bb(ctx.bb_build);
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    for (const OrderItem& item : query.order_by) {
      SortKey key;
      key.descending = item.descending;
      if (item.position > 0) {
        STC_CHECK_MSG(item.position <= static_cast<int>(out_schema.size()),
                      "ORDER BY position out of range");
        key.column = item.position - 1;
      } else {
        STC_CHECK_MSG(item.expr->kind == AstExprKind::kColumnRef,
                      "ORDER BY supports output columns and positions");
        const int pos = out_schema.index_of(item.expr->name);
        STC_CHECK_MSG(pos >= 0, "ORDER BY column not in the select list");
        key.column = pos;
      }
      sort->sort_keys.push_back(key);
    }
    sort->out_schema = out_schema;
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
  }

  // ---- LIMIT -----------------------------------------------------------------
  if (query.limit.has_value()) {
    auto limit = std::make_unique<PlanNode>();
    limit->kind = PlanKind::kLimit;
    limit->limit = *query.limit;
    limit->out_schema = out_schema;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }
  plan->out_schema = out_schema;

  ctx.bb(im.block_id(ctx.rt, "ret"));
  return plan;
}

}  // namespace

std::unique_ptr<PlanNode> plan_query(Kernel& kernel, Catalog& catalog,
                                     const AstQuery& query,
                                     const PlannerOptions& options) {
  Ctx ctx(kernel, catalog, options);
  return plan_impl(ctx, query);
}

}  // namespace sql
}  // namespace stc::db
