// Heuristic query planner (the Parsing-Optimization kernel's second half).
//
// Produces a physical PlanNode tree from a parsed query:
//  - predicate pushdown to the scans, with index selection (equality on any
//    index, ranges on btrees only),
//  - greedy join ordering over the equi-join graph by estimated cardinality,
//  - join method selection (index nested loops / hash / merge / naive NL),
//  - subquery folding: uncorrelated scalar subqueries and IN (SELECT ...)
//    predicates are executed at plan time and replaced by constants / value
//    sets; derived tables become materialized subplans,
//  - aggregation, projection, ordering, limit.
#pragma once

#include <memory>

#include "db/catalog.h"
#include "db/kernel.h"
#include "db/plan.h"
#include "db/sql/ast.h"

namespace stc::db::sql {

struct PlannerOptions {
  enum class JoinStrategy : std::uint8_t { kAuto, kHash, kMerge, kNestedLoop };
  JoinStrategy join_strategy = JoinStrategy::kAuto;
  // Allows disabling index scans / index nested loops (forces the Scan
  // operation mix toward sequential scans, like the paper's non-indexed
  // access paths).
  bool use_indexes = true;
};

std::unique_ptr<PlanNode> plan_query(Kernel& kernel, Catalog& catalog,
                                     const AstQuery& query,
                                     const PlannerOptions& options = {});

}  // namespace stc::db::sql
