#include "db/sql/lexer.h"

#include <cctype>

#include "support/check.h"

namespace stc::db::sql {

std::vector<Token> tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) != 0 ||
                       sql[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdent;
      token.text = sql.substr(i, j - i);
      for (char& ch : token.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) != 0 ||
                       sql[j] == '.')) {
        if (sql[j] == '.') is_double = true;
        ++j;
      }
      const std::string num = sql.substr(i, j - i);
      if (is_double) {
        token.kind = TokenKind::kDouble;
        token.double_value = std::stod(num);
      } else {
        token.kind = TokenKind::kInt;
        token.int_value = std::stoll(num);
      }
      i = j;
    } else if (c == '\'') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && sql[j] != '\'') text += sql[j++];
      STC_REQUIRE_MSG(j < n, "unterminated string literal");
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      i = j + 1;
    } else {
      switch (c) {
        case ',': token.kind = TokenKind::kComma; ++i; break;
        case '.': token.kind = TokenKind::kDot; ++i; break;
        case '(': token.kind = TokenKind::kLParen; ++i; break;
        case ')': token.kind = TokenKind::kRParen; ++i; break;
        case '*': token.kind = TokenKind::kStar; ++i; break;
        case '+': token.kind = TokenKind::kPlus; ++i; break;
        case '-': token.kind = TokenKind::kMinus; ++i; break;
        case '/': token.kind = TokenKind::kSlash; ++i; break;
        case '=': token.kind = TokenKind::kEq; ++i; break;
        case '!':
          STC_REQUIRE_MSG(i + 1 < n && sql[i + 1] == '=', "lone '!'");
          token.kind = TokenKind::kNe;
          i += 2;
          break;
        case '<':
          if (i + 1 < n && sql[i + 1] == '>') {
            token.kind = TokenKind::kNe;
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '=') {
            token.kind = TokenKind::kLe;
            i += 2;
          } else {
            token.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.kind = TokenKind::kGe;
            i += 2;
          } else {
            token.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          STC_REQUIRE_MSG(false, "unexpected character in SQL input");
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace stc::db::sql
