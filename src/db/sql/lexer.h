// SQL lexer for the engine's query language subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stc::db::sql {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdent,     // bare identifier (keywords are classified by the parser)
  kInt,
  kDouble,
  kString,    // 'quoted'
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kEq,        // =
  kNe,        // <> or !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier (upper-cased) or string literal (raw)
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t offset = 0;  // position in the input, for error messages
};

// Tokenizes the whole statement. Aborts with a message on malformed input
// (query texts in this repository are authored, not user-supplied).
std::vector<Token> tokenize(const std::string& sql);

}  // namespace stc::db::sql
