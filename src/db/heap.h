// Heap files: tuples in slotted pages, accessed through the buffer manager.
// Part of the Access Methods module (paper Figure 1): provides tuples to the
// Executor from the blocks managed by the Buffer Manager.
#pragma once

#include <cstdint>
#include <vector>

#include "db/buffer.h"
#include "db/kernel.h"
#include "db/value.h"

namespace stc::db {

// Record identifier: page number within the heap file + slot within page.
struct RID {
  std::uint32_t page = 0;
  std::uint16_t slot = 0;

  bool operator==(const RID& other) const {
    return page == other.page && slot == other.slot;
  }
  bool operator<(const RID& other) const {
    if (page != other.page) return page < other.page;
    return slot < other.slot;
  }
  std::uint64_t key() const { return (std::uint64_t{page} << 16) | slot; }
};

// Self-describing tuple serialization (type tag per value). Instrumented:
// these routines are part of the per-tuple hot path.
void tuple_encode(Kernel& kernel, const Tuple& tuple,
                  std::vector<std::uint8_t>& out);
void tuple_decode(Kernel& kernel, const std::uint8_t* data,
                  std::uint16_t length, Tuple& out);

class HeapFile {
 public:
  HeapFile(Kernel& kernel, BufferManager& buffer, StorageManager& storage,
           std::uint32_t file_id);

  std::uint32_t file_id() const { return file_id_; }
  std::uint64_t tuple_count() const { return tuple_count_; }
  std::uint32_t page_count() const;

  RID insert(const Tuple& tuple);
  void get(RID rid, Tuple& out);

  // Forward scanner over every tuple in the file.
  class Scanner {
   public:
    explicit Scanner(HeapFile& heap);
    // Fetches the next tuple; returns false at end of file.
    bool next(Tuple& out, RID& rid);

   private:
    HeapFile& heap_;
    std::uint32_t page_ = 0;
    std::uint16_t slot_ = 0;
  };

 private:
  Kernel& kernel_;
  BufferManager& buffer_;
  StorageManager& storage_;
  std::uint32_t file_id_;
  std::uint64_t tuple_count_ = 0;
  std::vector<std::uint8_t> scratch_;  // encode buffer reuse
};

}  // namespace stc::db
