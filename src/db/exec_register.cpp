// Registration of every Executor-module routine. Routines flagged with
// executor_op = true are the entry points of the Executor operations — the
// seed candidates for the paper's knowledge-based "ops" selection
// (Section 5.1).
#include "db/registration.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_executor_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  // --- ExecProcNode-style dispatchers -----------------------------------
  im.add_routine("Exec_open_node", m,
                 {{"entry", 4, kFall}, {"dispatch", 4, kCall}, {"ret", 2, kRet}});
  im.add_routine("Exec_proc_node", m,
                 {{"entry", 4, kFall}, {"dispatch", 4, kCall}, {"ret", 2, kRet}});
  im.add_routine("Exec_close_node", m,
                 {{"entry", 4, kFall}, {"dispatch", 4, kCall}, {"ret", 2, kRet}});
  im.add_routine("Exec_rewind_node", m,
                 {{"entry", 4, kFall}, {"dispatch", 4, kCall}, {"ret", 2, kRet}});
  im.add_routine("Exec_run_query", m,
                 {{"entry", 6, kCall},    // open the plan
                  {"pull", 4, kCall},     // one next() round
                  {"collect", 6, kBr},    // append / end-of-stream test
                  {"shutdown", 4, kCall},
                  {"ret", 3, kRet}});

  // --- scans --------------------------------------------------------------
  im.add_routine("Exec_seqscan_next", m,
                 {{"entry", 5, kBr},
                  {"fetch", 4, kCall},
                  {"qual", 4, kCall},
                  {"emit", 5, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_idxscan_open", m,
                 {{"entry", 6, kBr},
                  {"seek_btree", 5, kCall},
                  {"seek_hash", 5, kCall},
                  {"ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_idxscan_next", m,
                 {{"entry", 5, kBr},
                  {"cursor", 4, kCall},
                  {"fetch", 4, kCall},
                  {"qual", 4, kCall},
                  {"emit", 5, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);

  // --- qualify / project / limit / materialize ----------------------------
  im.add_routine("Exec_qual_next", m,
                 {{"entry", 5, kBr},
                  {"child", 4, kCall},
                  {"qual", 4, kCall},
                  {"emit", 4, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_project_next", m,
                 {{"entry", 5, kCall},   // pull from child
                  {"col_loop", 3, kBr},  // per output column
                  {"eval", 4, kCall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_limit_next", m,
                 {{"entry", 5, kBr},
                  {"child", 4, kCall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_material_open", m,
                 {{"entry", 5, kCall},       // open the child
                  {"fetch", 4, kCall},
                  {"store", 6, kBr},
                  {"close_child", 4, kCall},
                  {"ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_material_next", m,
                 {{"entry", 5, kBr},
                  {"emit", 5, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);

  // --- joins ---------------------------------------------------------------
  im.add_routine("Exec_nljoin_next", m,
                 {{"entry", 6, kBr},
                  {"outer", 4, kCall},
                  {"rescan", 4, kCall},
                  {"inner", 4, kCall},
                  {"concat", 8, kBr},
                  {"residual", 4, kCall},
                  {"emit", 4, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_idxnljoin_next", m,
                 {{"entry", 6, kBr},
                  {"outer", 4, kCall},
                  {"key", 4, kCall},
                  {"seek", 4, kCall},
                  {"probe", 4, kCall},
                  {"fetch", 4, kCall},
                  {"concat", 8, kBr},
                  {"residual", 4, kCall},
                  {"emit", 4, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_join_open", m,
                 {{"entry", 4, kCall},   // open the outer child
                  {"right", 4, kCall},   // open the inner child
                  {"ret", 2, kRet}});
  im.add_routine("Exec_join_close", m,
                 {{"entry", 4, kCall},
                  {"right", 4, kCall},
                  {"ret", 2, kRet}});
  im.add_routine("Exec_hashjoin_open", m,
                 {{"entry", 5, kCall},      // open the probe child
                  {"open_build", 4, kCall}, // open the build child
                  {"build_fetch", 4, kCall},
                  {"build_key", 4, kCall},
                  {"build_insert", 9, kCall},  // hash the build key
                  {"ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_hashjoin_next", m,
                 {{"entry", 6, kBr},
                  {"probe_fetch", 4, kCall},
                  {"probe_key", 4, kCall},
                  {"bucket", 7, kCall},   // hash the probe key
                  {"candidate", 6, kBr},
                  {"concat", 8, kBr},
                  {"residual", 4, kCall},
                  {"emit", 4, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_mergejoin_next", m,
                 {{"entry", 6, kBr},
                  {"advance_left", 4, kCall},
                  {"advance_right", 4, kCall},
                  {"left_key", 4, kCall},
                  {"right_key", 4, kCall},
                  {"compare", 5, kCall},  // per-type comparison
                  {"steer", 5, kBr},
                  {"fill_group", 6, kBr},
                  {"concat", 8, kBr},
                  {"residual", 4, kCall},
                  {"emit", 4, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);

  // --- sort / aggregate ----------------------------------------------------
  im.add_routine("Exec_sort_open", m,
                 {{"entry", 5, kCall},   // open the child
                  {"fetch", 4, kCall},
                  {"collect", 5, kBr},
                  {"cmp", 6, kCall},  // one comparator invocation
                  {"done", 4, kFall},
                  {"ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_sort_next", m,
                 {{"entry", 5, kBr},
                  {"emit", 5, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Exec_agg_open", m,
                 {{"entry", 5, kCall},   // open the child
                  {"fetch", 4, kCall},
                  {"group_key", 8, kBr},
                  {"probe", 7, kBr},
                  {"new_group", 8, kBr},
                  {"accum", 4, kCall},    // evaluate one aggregate argument
                  {"fold", 4, kCall},     // per-aggregate fold dispatch
                  {"ret", 3, kRet}},
                 /*executor_op=*/true);
  im.add_routine("Agg_fold", m,
                 {{"entry", 4, kBr},      // dispatch on aggregate kind
                  {"count", 3, kRet},
                  {"sum", 7, kRet},
                  {"minmax_cmp", 4, kCall},  // per-type comparison
                  {"minmax_ret", 4, kRet}});
  im.add_routine("Exec_agg_next", m,
                 {{"entry", 5, kBr},
                  {"finalize", 7, kBr},   // per aggregate (AVG divide etc.)
                  {"emit", 5, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 3, kRet}},
                 /*executor_op=*/true);
}

}  // namespace stc::db
