// Utility and maintenance code of the engine: error reporting, formatting,
// configuration, vacuum/analyze-style maintenance, integrity checking.
//
// All of it is real, tested code — but almost none of it executes during
// Decision-Support query runs. It models the large cold fraction of a DBMS
// binary the paper measures in Table 1 (only ~12% of PostgreSQL's static
// instructions were touched by the Training set).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/catalog.h"
#include "db/database.h"
#include "db/kernel.h"
#include "db/value.h"

namespace stc::db::util {

// ---- error reporting --------------------------------------------------------

enum class ErrorCode : std::uint8_t {
  kNone,
  kSyntax,
  kSemantic,
  kOutOfRange,
  kCorruptPage,
  kBufferExhausted,
  kInternal,
};

// Builds a formatted diagnostic message ("ERROR 42: ..."), the way a real
// backend prepares elog() output.
std::string format_error(Kernel& kernel, ErrorCode code,
                         const std::string& detail);

// ---- value / tuple formatting -----------------------------------------------

// Renders a tuple as a '|'-separated row (psql-style output).
std::string format_row(Kernel& kernel, const Tuple& tuple);

// Fixed-point money formatting with thousands separators.
std::string format_money(Kernel& kernel, double amount);

// ---- configuration ------------------------------------------------------------

// Parses "key = value" configuration text (comments with '#'); unknown keys
// are kept verbatim. Returns the map, aborts on malformed lines.
std::unordered_map<std::string, std::string> parse_config(
    Kernel& kernel, const std::string& text);

// ---- checksums ----------------------------------------------------------------

// CRC-32 (IEEE polynomial, bitwise implementation) used by page checksum
// maintenance paths.
std::uint32_t crc32(Kernel& kernel, const std::uint8_t* data, std::size_t n);

// ---- maintenance ----------------------------------------------------------------

struct VacuumStats {
  std::uint64_t pages_visited = 0;
  std::uint64_t tuples_seen = 0;
};

// Scans every page of a table validating slot directories (a read-only
// VACUUM). Cold during DSS runs; exercised by maintenance tests.
VacuumStats vacuum_table(Database& db, const std::string& table);

struct AnalyzeStats {
  std::uint64_t rows = 0;
  std::vector<Value> min_values;  // per column
  std::vector<Value> max_values;
};

// ANALYZE-style statistics collection over a table.
AnalyzeStats analyze_table(Database& db, const std::string& table);

// Cross-checks every index of a table against its heap: each heap tuple must
// be reachable through each index. Returns the number of entries verified.
std::uint64_t check_table_integrity(Database& db, const std::string& table);

}  // namespace stc::db::util
