// Sort and Aggregate/Group operators. Both stop the pipelined execution and
// buffer their input (the paper notes this makes them "somehow unique" among
// the Executor operations: they store temporary results without going
// through the Access Methods).
#include <algorithm>
#include <unordered_map>

#include "db/exec_internal.h"
#include "db/typeops.h"
#include "support/check.h"

namespace stc::db {
namespace detail {
namespace {

// ---- Sort -------------------------------------------------------------------

class SortOp final : public Operator {
 public:
  SortOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> child)
      : k_(k), plan_(plan), child_(std::move(child)) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_sort_open");
    DB_BB(k_, "entry");
    exec_open(k_, *child_);
    rows_.clear();
    Tuple tuple;
    while (true) {
      DB_BB(k_, "fetch");
      if (!exec_next(k_, *child_, tuple)) break;
      DB_BB(k_, "collect");
      rows_.push_back(tuple);
    }
    const auto& keys = plan_.sort_keys;
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const Tuple& a, const Tuple& b) {
                       for (const SortKey& key : keys) {
                         DB_BB(k_, "cmp");
                         const int c = cmp_dispatch(
                             k_, a[static_cast<std::size_t>(key.column)],
                             b[static_cast<std::size_t>(key.column)]);
                         if (c != 0) return key.descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
    DB_BB(k_, "done");
    pos_ = 0;
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_sort_next");
    DB_BB(k_, "entry");
    if (pos_ >= rows_.size()) {
      DB_BB(k_, "eof_ret");
      return false;
    }
    DB_BB(k_, "emit");
    out = rows_[pos_++];
    DB_BB(k_, "ret");
    return true;
  }

  void close() override {
    rows_.clear();
    exec_close(k_, *child_);
  }

  void rewind() override { pos_ = 0; }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> child_;
  std::vector<Tuple> rows_;
  std::size_t pos_ = 0;
};

// ---- Aggregate / Group --------------------------------------------------------

struct GroupKey {
  Tuple values;

  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i].compare(other.values[i]) != 0) return false;
    }
    return true;
  }
};

struct GroupKeyHasher {
  std::size_t operator()(const GroupKey& key) const {
    std::uint64_t h = 14695981039346656037ULL;
    for (const Value& v : key.values) {
      h ^= v.hash();
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

struct AggState {
  std::uint64_t count = 0;
  bool all_int = true;
  std::int64_t isum = 0;
  double dsum = 0.0;
  Value minmax;  // running MIN or MAX

  void fold(Kernel& k, AggOp op, const Value& v) {
    DB_ROUTINE(k, "Agg_fold");
    DB_BB(k, "entry");
    if (v.is_null()) {
      DB_BB(k, "count");
      return;
    }
    ++count;
    switch (op) {
      case AggOp::kCount:
        DB_BB(k, "count");
        break;
      case AggOp::kSum:
      case AggOp::kAvg:
        if (v.type() == ValueType::kInt) {
          isum += v.as_int();
        } else {
          all_int = false;
        }
        dsum += v.as_double();
        DB_BB(k, "sum");
        break;
      case AggOp::kMin:
      case AggOp::kMax: {
        if (minmax.is_null()) {
          minmax = v;
          DB_BB(k, "minmax_ret");
          break;
        }
        DB_BB(k, "minmax_cmp");
        const int c = cmp_dispatch(k, v, minmax);
        if (op == AggOp::kMin ? c < 0 : c > 0) minmax = v;
        DB_BB(k, "minmax_ret");
        break;
      }
    }
  }

  Value finalize(AggOp op) const {
    switch (op) {
      case AggOp::kCount:
        return Value(static_cast<std::int64_t>(count));
      case AggOp::kSum:
        if (count == 0) return Value::null();
        return all_int ? Value(isum) : Value(dsum);
      case AggOp::kAvg:
        if (count == 0) return Value::null();
        return Value(dsum / static_cast<double>(count));
      case AggOp::kMin:
      case AggOp::kMax:
        return minmax;
    }
    return Value::null();
  }
};

class AggregateOp final : public Operator {
 public:
  AggregateOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> child)
      : k_(k), plan_(plan), child_(std::move(child)) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_agg_open");
    DB_BB(k_, "entry");
    exec_open(k_, *child_);
    groups_.clear();
    order_.clear();
    Tuple tuple;
    while (true) {
      DB_BB(k_, "fetch");
      if (!exec_next(k_, *child_, tuple)) break;
      DB_BB(k_, "group_key");
      GroupKey key;
      key.values.reserve(plan_.group_cols.size());
      for (int col : plan_.group_cols) {
        key.values.push_back(tuple[static_cast<std::size_t>(col)]);
      }
      DB_BB(k_, "probe");
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        DB_BB(k_, "new_group");
        it = groups_.emplace(std::move(key),
                             std::vector<AggState>(plan_.aggs.size()))
                 .first;
        order_.push_back(&*it);
      }
      for (std::size_t a = 0; a < plan_.aggs.size(); ++a) {
        DB_BB(k_, "accum");
        const AggSpec& spec = plan_.aggs[a];
        const Value v = spec.arg != nullptr
                            ? eval_expr(k_, *spec.arg, tuple)
                            : Value(std::int64_t{1});
        DB_BB(k_, "fold");
        it->second[a].fold(k_, spec.op, v);
      }
    }
    // A grand aggregate (no GROUP BY) over empty input still yields one row.
    if (order_.empty() && plan_.group_cols.empty()) {
      auto it = groups_.emplace(GroupKey{},
                                std::vector<AggState>(plan_.aggs.size()))
                    .first;
      order_.push_back(&*it);
    }
    pos_ = 0;
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_agg_next");
    DB_BB(k_, "entry");
    if (pos_ >= order_.size()) {
      DB_BB(k_, "eof_ret");
      return false;
    }
    const auto& [key, states] = *order_[pos_++];
    out.clear();
    out.reserve(key.values.size() + states.size());
    out.insert(out.end(), key.values.begin(), key.values.end());
    for (std::size_t a = 0; a < states.size(); ++a) {
      DB_BB(k_, "finalize");
      out.push_back(states[a].finalize(plan_.aggs[a].op));
    }
    DB_BB(k_, "emit");
    DB_BB(k_, "ret");
    return true;
  }

  void close() override {
    groups_.clear();
    order_.clear();
    exec_close(k_, *child_);
  }

 private:
  using GroupMap =
      std::unordered_map<GroupKey, std::vector<AggState>, GroupKeyHasher>;

  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> child_;
  GroupMap groups_;
  std::vector<GroupMap::value_type*> order_;  // insertion order for output
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<Operator> make_sort_op(Kernel& k, const PlanNode& plan) {
  return std::make_unique<SortOp>(k, plan, make_operator(k, *plan.children[0]));
}

std::unique_ptr<Operator> make_aggregate_op(Kernel& k, const PlanNode& plan) {
  return std::make_unique<AggregateOp>(k, plan,
                                       make_operator(k, *plan.children[0]));
}

}  // namespace detail
}  // namespace stc::db
