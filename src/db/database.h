// Database: one backend instance wiring the whole module stack together
// (storage -> buffer -> access -> executor, plus the SQL front end).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "db/buffer.h"
#include "db/catalog.h"
#include "db/exec.h"
#include "db/sql/planner.h"
#include "db/storage.h"

namespace stc::db {

struct QueryResult {
  std::vector<Tuple> rows;
  Schema schema;
  std::string plan_text;  // EXPLAIN rendering of the executed plan
};

class Database {
 public:
  // `buffer_frames` sizes the buffer pool (frames of kPageBytes each).
  explicit Database(std::size_t buffer_frames = 256);

  Kernel& kernel() { return kernel_; }
  Catalog& catalog() { return catalog_; }
  BufferManager& buffer() { return buffer_; }
  StorageManager& storage() { return storage_; }

  // Schema definition. Column names are stored upper-cased so SQL
  // identifiers resolve case-insensitively.
  TableInfo& create_table(const std::string& name, Schema schema);
  void create_index(const std::string& table, const std::string& column,
                    IndexKind kind, bool unique);

  // Inserts a row, maintaining every index on the table.
  void insert(TableInfo& table, const Tuple& tuple);

  // Parses, plans and executes one SELECT statement.
  QueryResult run_query(const std::string& sql,
                        const sql::PlannerOptions& options = {});

  // Plans without executing (EXPLAIN).
  std::unique_ptr<PlanNode> plan(const std::string& sql,
                                 const sql::PlannerOptions& options = {});

 private:
  Kernel kernel_;
  StorageManager storage_;
  BufferManager buffer_;
  Catalog catalog_;
};

}  // namespace stc::db
