// Scalar expressions and their instrumented evaluator (the engine's
// "Qualify" path — the paper singles Qualify and Scan out as the operations
// that dominate the Training set).
//
// Subqueries never appear here at runtime: the planner folds uncorrelated
// scalar subqueries into constants, folds IN (SELECT ...) into materialized
// value sets, and decorrelates the rest through derived tables, so the
// evaluator stays allocation-free per tuple.
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "db/kernel.h"
#include "db/value.h"

namespace stc::db {

enum class ExprKind : std::uint8_t {
  kConst,
  kColumn,   // input tuple position
  kCompare,
  kLogic,
  kArith,
  kYear,     // YEAR(date)
  kLike,     // string pattern match
  kInSet,    // value in a materialized set (negatable)
  kCaseWhen, // CASEWHEN(cond, then, else)
};

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp : std::uint8_t { kAnd, kOr, kNot };
enum class ArithOp : std::uint8_t { kAdd, kSub, kMul, kDiv };

struct ValueHasher {
  std::size_t operator()(const Value& v) const {
    return static_cast<std::size_t>(v.hash());
  }
};
using ValueSet = std::unordered_set<Value, ValueHasher>;

struct Expr {
  ExprKind kind = ExprKind::kConst;
  std::vector<std::unique_ptr<Expr>> children;

  Value constant;                 // kConst
  int column = -1;                // kColumn
  CmpOp cmp = CmpOp::kEq;         // kCompare
  LogicOp logic = LogicOp::kAnd;  // kLogic
  ArithOp arith = ArithOp::kAdd;  // kArith
  std::string pattern;            // kLike (SQL % / _ pattern)
  std::shared_ptr<ValueSet> set;  // kInSet
  bool negated = false;           // kInSet: NOT IN

  // ---- constructors ----
  static std::unique_ptr<Expr> make_const(Value v);
  static std::unique_ptr<Expr> make_column(int position);
  static std::unique_ptr<Expr> make_compare(CmpOp op, std::unique_ptr<Expr> l,
                                            std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> make_logic(LogicOp op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r = nullptr);
  static std::unique_ptr<Expr> make_arith(ArithOp op, std::unique_ptr<Expr> l,
                                          std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> make_year(std::unique_ptr<Expr> child);
  static std::unique_ptr<Expr> make_like(std::unique_ptr<Expr> child,
                                         std::string pattern);
  static std::unique_ptr<Expr> make_in_set(std::unique_ptr<Expr> child,
                                           std::shared_ptr<ValueSet> set,
                                           bool negated);
  static std::unique_ptr<Expr> make_case(std::unique_ptr<Expr> cond,
                                         std::unique_ptr<Expr> then_value,
                                         std::unique_ptr<Expr> else_value);

  std::unique_ptr<Expr> clone() const;

  // Remaps every column reference through `mapping` (old position -> new);
  // used when predicates are pushed through joins/projections.
  void remap_columns(const std::vector<int>& mapping);

  // Highest column index referenced, or -1.
  int max_column() const;
};

// Evaluates `expr` against `tuple`. Booleans are Int 0/1; NULL propagates
// through arithmetic and comparisons evaluate NULL as false (sufficient for
// the TPC-D workload, which has no NULL columns).
Value eval_expr(Kernel& kernel, const Expr& expr, const Tuple& tuple);

// Convenience: evaluates as a predicate (non-null, non-zero).
bool eval_predicate(Kernel& kernel, const Expr& expr, const Tuple& tuple);

// SQL LIKE pattern matching (% = any run, _ = any single char). Exposed for
// tests; the evaluator fast-paths pure prefix/suffix/contains patterns.
bool like_match(const std::string& text, const std::string& pattern);

}  // namespace stc::db
