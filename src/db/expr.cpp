#include "db/expr.h"

#include <algorithm>

#include "db/registration.h"
#include "db/typeops.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_expr_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("Expr_eval", m,
                 {{"entry", 4, kBr},          // dispatch on node kind
                  {"leaf_const", 3, kRet},
                  {"leaf_column", 5, kRet},
                  {"dis_cmp", 3, kCall},
                  {"dis_logic", 3, kCall},
                  {"dis_arith", 3, kCall},
                  {"dis_year", 3, kCall},
                  {"dis_like", 3, kCall},
                  {"dis_inset", 3, kCall},
                  {"dis_case", 3, kCall},
                  {"ret", 2, kRet}});
  im.add_routine("Expr_eval_cmp", m,
                 {{"entry", 3, kCall},   // evaluate left operand
                  {"rhs", 3, kCall},     // evaluate right operand
                  {"compare", 5, kCall}, // per-type comparison dispatch
                  {"decide", 6, kBr},
                  {"ret", 3, kRet}});
  im.add_routine("Expr_eval_logic", m,
                 {{"entry", 4, kBr},
                  {"lhs", 3, kCall},
                  {"shortcut", 4, kBr},  // AND false / OR true short circuit
                  {"rhs", 3, kCall},
                  {"not_child", 3, kCall},
                  {"combine", 5, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("Expr_eval_arith", m,
                 {{"entry", 3, kCall},
                  {"rhs", 3, kCall},
                  {"null_check", 4, kBr},
                  {"op_int", 7, kBr},
                  {"op_double", 7, kBr},
                  {"ret", 3, kRet},
                  {"null_ret", 3, kRet},
                  {"err_div0", 12, kRet}});
  im.add_routine("Expr_eval_year", m,
                 {{"entry", 3, kCall},
                  {"convert", 11, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("Expr_eval_like", m,
                 {{"entry", 3, kCall},       // evaluate the string operand
                  {"fast_prefix", 8, kBr},
                  {"fast_suffix", 8, kBr},
                  {"fast_contains", 10, kBr},
                  {"general", 5, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("Expr_like_general", m,
                 {{"entry", 5, kBr},
                  {"step", 9, kBr},       // one pattern position
                  {"star_retry", 8, kBr}, // backtrack to the last %
                  {"ret", 3, kRet}});
  im.add_routine("Expr_eval_inset", m,
                 {{"entry", 3, kCall},
                  {"probe", 8, kCall},   // hash the probe value
                  {"ret", 3, kRet}});
  im.add_routine("Expr_eval_case", m,
                 {{"entry", 3, kCall},   // evaluate the condition
                  {"pick", 4, kBr},
                  {"then_arm", 3, kCall},
                  {"else_arm", 3, kCall},
                  {"ret", 3, kRet}});
}

// ---- constructors ----------------------------------------------------------

std::unique_ptr<Expr> Expr::make_const(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kConst;
  e->constant = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::make_column(int position) {
  STC_REQUIRE(position >= 0);
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->column = position;
  return e;
}

std::unique_ptr<Expr> Expr::make_compare(CmpOp op, std::unique_ptr<Expr> l,
                                         std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCompare;
  e->cmp = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

std::unique_ptr<Expr> Expr::make_logic(LogicOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLogic;
  e->logic = op;
  e->children.push_back(std::move(l));
  if (op != LogicOp::kNot) {
    STC_REQUIRE(r != nullptr);
    e->children.push_back(std::move(r));
  }
  return e;
}

std::unique_ptr<Expr> Expr::make_arith(ArithOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArith;
  e->arith = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

std::unique_ptr<Expr> Expr::make_year(std::unique_ptr<Expr> child) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kYear;
  e->children.push_back(std::move(child));
  return e;
}

std::unique_ptr<Expr> Expr::make_like(std::unique_ptr<Expr> child,
                                      std::string pattern) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLike;
  e->pattern = std::move(pattern);
  e->children.push_back(std::move(child));
  return e;
}

std::unique_ptr<Expr> Expr::make_in_set(std::unique_ptr<Expr> child,
                                        std::shared_ptr<ValueSet> set,
                                        bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kInSet;
  e->set = std::move(set);
  e->negated = negated;
  e->children.push_back(std::move(child));
  return e;
}

std::unique_ptr<Expr> Expr::make_case(std::unique_ptr<Expr> cond,
                                      std::unique_ptr<Expr> then_value,
                                      std::unique_ptr<Expr> else_value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCaseWhen;
  e->children.push_back(std::move(cond));
  e->children.push_back(std::move(then_value));
  e->children.push_back(std::move(else_value));
  return e;
}

std::unique_ptr<Expr> Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->constant = constant;
  e->column = column;
  e->cmp = cmp;
  e->logic = logic;
  e->arith = arith;
  e->pattern = pattern;
  e->set = set;
  e->negated = negated;
  e->children.reserve(children.size());
  for (const auto& child : children) e->children.push_back(child->clone());
  return e;
}

void Expr::remap_columns(const std::vector<int>& mapping) {
  if (kind == ExprKind::kColumn) {
    STC_REQUIRE(column >= 0 &&
                static_cast<std::size_t>(column) < mapping.size());
    STC_REQUIRE_MSG(mapping[column] >= 0, "column not available after remap");
    column = mapping[column];
  }
  for (auto& child : children) child->remap_columns(mapping);
}

int Expr::max_column() const {
  int result = kind == ExprKind::kColumn ? column : -1;
  for (const auto& child : children) {
    result = std::max(result, child->max_column());
  }
  return result;
}

// ---- evaluation ------------------------------------------------------------

namespace {

Value eval_cmp(Kernel& k, const Expr& e, const Tuple& t);
Value eval_logic(Kernel& k, const Expr& e, const Tuple& t);
Value eval_arith(Kernel& k, const Expr& e, const Tuple& t);
Value eval_year(Kernel& k, const Expr& e, const Tuple& t);
Value eval_like(Kernel& k, const Expr& e, const Tuple& t);
Value eval_inset(Kernel& k, const Expr& e, const Tuple& t);
Value eval_case(Kernel& k, const Expr& e, const Tuple& t);

bool truthy(const Value& v) {
  if (v.is_null()) return false;
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  if (v.type() == ValueType::kDouble) return v.as_double() != 0.0;
  return !v.as_string().empty();
}

bool like_general(Kernel& k, const std::string& text,
                  const std::string& pattern) {
  DB_ROUTINE(k, "Expr_like_general");
  DB_BB(k, "entry");
  // Iterative glob matcher with single-star backtracking.
  std::size_t ti = 0;
  std::size_t pi = 0;
  std::size_t star_p = std::string::npos;
  std::size_t star_t = 0;
  while (ti < text.size()) {
    DB_BB(k, "step");
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++pi;
      ++ti;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string::npos) {
      DB_BB(k, "star_retry");
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      DB_BB(k, "ret");
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  const bool matched = pi == pattern.size();
  DB_BB(k, "ret");
  return matched;
}

Value eval_cmp(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_cmp");
  DB_BB(k, "entry");
  const Value lhs = eval_expr(k, *e.children[0], t);
  DB_BB(k, "rhs");
  const Value rhs = eval_expr(k, *e.children[1], t);
  bool result = false;
  if (!lhs.is_null() && !rhs.is_null()) {
    DB_BB(k, "compare");
    const int c = cmp_dispatch(k, lhs, rhs);
    DB_BB(k, "decide");
    switch (e.cmp) {
      case CmpOp::kEq: result = c == 0; break;
      case CmpOp::kNe: result = c != 0; break;
      case CmpOp::kLt: result = c < 0; break;
      case CmpOp::kLe: result = c <= 0; break;
      case CmpOp::kGt: result = c > 0; break;
      case CmpOp::kGe: result = c >= 0; break;
    }
  }
  DB_BB(k, "ret");
  return Value(static_cast<std::int64_t>(result));
}

Value eval_logic(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_logic");
  DB_BB(k, "entry");
  if (e.logic == LogicOp::kNot) {
    DB_BB(k, "not_child");
    const Value v = eval_expr(k, *e.children[0], t);
    DB_BB(k, "combine");
    const bool result = !truthy(v);
    DB_BB(k, "ret");
    return Value(static_cast<std::int64_t>(result));
  }
  DB_BB(k, "lhs");
  const Value lhs = eval_expr(k, *e.children[0], t);
  DB_BB(k, "shortcut");
  const bool lhs_true = truthy(lhs);
  if (e.logic == LogicOp::kAnd && !lhs_true) {
    DB_BB(k, "ret");
    return Value(std::int64_t{0});
  }
  if (e.logic == LogicOp::kOr && lhs_true) {
    DB_BB(k, "ret");
    return Value(std::int64_t{1});
  }
  DB_BB(k, "rhs");
  const Value rhs = eval_expr(k, *e.children[1], t);
  DB_BB(k, "combine");
  const bool result = truthy(rhs);
  DB_BB(k, "ret");
  return Value(static_cast<std::int64_t>(result));
}

Value eval_arith(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_arith");
  DB_BB(k, "entry");
  const Value lhs = eval_expr(k, *e.children[0], t);
  DB_BB(k, "rhs");
  const Value rhs = eval_expr(k, *e.children[1], t);
  DB_BB(k, "null_check");
  if (lhs.is_null() || rhs.is_null()) {
    DB_BB(k, "null_ret");
    return Value::null();
  }
  if (lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt &&
      e.arith != ArithOp::kDiv) {
    DB_BB(k, "op_int");
    const std::int64_t a = lhs.as_int();
    const std::int64_t b = rhs.as_int();
    std::int64_t r = 0;
    switch (e.arith) {
      case ArithOp::kAdd: r = a + b; break;
      case ArithOp::kSub: r = a - b; break;
      case ArithOp::kMul: r = a * b; break;
      case ArithOp::kDiv: break;  // handled on the double path
    }
    DB_BB(k, "ret");
    return Value(r);
  }
  DB_BB(k, "op_double");
  const double a = lhs.as_double();
  const double b = rhs.as_double();
  double r = 0.0;
  switch (e.arith) {
    case ArithOp::kAdd: r = a + b; break;
    case ArithOp::kSub: r = a - b; break;
    case ArithOp::kMul: r = a * b; break;
    case ArithOp::kDiv:
      if (b == 0.0) {
        DB_BB(k, "err_div0");
        STC_CHECK_MSG(false, "division by zero");
      }
      r = a / b;
      break;
  }
  DB_BB(k, "ret");
  return Value(r);
}

Value eval_year(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_year");
  DB_BB(k, "entry");
  const Value v = eval_expr(k, *e.children[0], t);
  DB_BB(k, "convert");
  const int year = v.is_null() ? 0 : year_of(v.as_int());
  DB_BB(k, "ret");
  return Value(static_cast<std::int64_t>(year));
}

Value eval_like(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_like");
  DB_BB(k, "entry");
  const Value v = eval_expr(k, *e.children[0], t);
  if (v.is_null()) {
    DB_BB(k, "ret");
    return Value(std::int64_t{0});
  }
  const std::string& s = v.as_string();
  const std::string& p = e.pattern;
  bool result = false;

  // Fast paths for the shapes TPC-D uses.
  const std::size_t first = p.find('%');
  const bool has_underscore = p.find('_') != std::string::npos;
  if (!has_underscore && first != std::string::npos &&
      p.find('%', first + 1) == std::string::npos) {
    if (first == p.size() - 1) {
      DB_BB(k, "fast_prefix");  // "abc%"
      result = s.size() >= p.size() - 1 &&
               s.compare(0, p.size() - 1, p, 0, p.size() - 1) == 0;
    } else if (first == 0) {
      DB_BB(k, "fast_suffix");  // "%abc"
      result = s.size() >= p.size() - 1 &&
               s.compare(s.size() - (p.size() - 1), p.size() - 1, p, 1,
                         p.size() - 1) == 0;
    } else {
      DB_BB(k, "general");
      result = like_general(k, s, p);
    }
  } else if (!has_underscore && first == 0 && p.size() >= 2 &&
             p.back() == '%' && p.find('%', 1) == p.size() - 1) {
    DB_BB(k, "fast_contains");  // "%abc%"
    result = s.find(p.substr(1, p.size() - 2)) != std::string::npos;
  } else {
    DB_BB(k, "general");
    result = like_general(k, s, p);
  }
  DB_BB(k, "ret");
  return Value(static_cast<std::int64_t>(result));
}

Value eval_inset(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_inset");
  DB_BB(k, "entry");
  const Value v = eval_expr(k, *e.children[0], t);
  DB_BB(k, "probe");
  if (!v.is_null()) hash_dispatch(k, v);
  const bool found = !v.is_null() && e.set->count(v) > 0;
  const bool result = e.negated ? !found : found;
  DB_BB(k, "ret");
  return Value(static_cast<std::int64_t>(result));
}

Value eval_case(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval_case");
  DB_BB(k, "entry");
  const Value cond = eval_expr(k, *e.children[0], t);
  DB_BB(k, "pick");
  Value result;
  if (truthy(cond)) {
    DB_BB(k, "then_arm");
    result = eval_expr(k, *e.children[1], t);
  } else {
    DB_BB(k, "else_arm");
    result = eval_expr(k, *e.children[2], t);
  }
  DB_BB(k, "ret");
  return result;
}

}  // namespace

Value eval_expr(Kernel& k, const Expr& e, const Tuple& t) {
  DB_ROUTINE(k, "Expr_eval");
  DB_BB(k, "entry");
  Value result;
  switch (e.kind) {
    case ExprKind::kConst:
      DB_BB(k, "leaf_const");
      return e.constant;
    case ExprKind::kColumn:
      DB_BB(k, "leaf_column");
      STC_DCHECK(static_cast<std::size_t>(e.column) < t.size());
      return t[static_cast<std::size_t>(e.column)];
    case ExprKind::kCompare:
      DB_BB(k, "dis_cmp");
      result = eval_cmp(k, e, t);
      break;
    case ExprKind::kLogic:
      DB_BB(k, "dis_logic");
      result = eval_logic(k, e, t);
      break;
    case ExprKind::kArith:
      DB_BB(k, "dis_arith");
      result = eval_arith(k, e, t);
      break;
    case ExprKind::kYear:
      DB_BB(k, "dis_year");
      result = eval_year(k, e, t);
      break;
    case ExprKind::kLike:
      DB_BB(k, "dis_like");
      result = eval_like(k, e, t);
      break;
    case ExprKind::kInSet:
      DB_BB(k, "dis_inset");
      result = eval_inset(k, e, t);
      break;
    case ExprKind::kCaseWhen:
      DB_BB(k, "dis_case");
      result = eval_case(k, e, t);
      break;
  }
  DB_BB(k, "ret");
  return result;
}

bool eval_predicate(Kernel& k, const Expr& e, const Tuple& t) {
  const Value v = eval_expr(k, e, t);
  return !v.is_null() && (v.type() != ValueType::kInt || v.as_int() != 0) &&
         (v.type() != ValueType::kDouble || v.as_double() != 0.0);
}

bool like_match(const std::string& text, const std::string& pattern) {
  // Pure (uninstrumented) reference implementation for tests.
  std::size_t ti = 0;
  std::size_t pi = 0;
  std::size_t star_p = std::string::npos;
  std::size_t star_t = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++pi;
      ++ti;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

}  // namespace stc::db
