// Join operators: naive nested loops, index nested loops, hash join,
// merge join.
#include <unordered_map>

#include "db/exec_internal.h"
#include "db/typeops.h"
#include "support/check.h"

namespace stc::db {
namespace detail {
namespace {

Tuple concat_tuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

// ---- naive nested loops -----------------------------------------------------

class NLJoinOp final : public Operator {
 public:
  NLJoinOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> outer,
           std::unique_ptr<Operator> inner)
      : k_(k), plan_(plan), outer_(std::move(outer)), inner_(std::move(inner)) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_join_open");
    DB_BB(k_, "entry");
    exec_open(k_, *outer_);
    DB_BB(k_, "right");
    exec_open(k_, *inner_);
    outer_valid_ = false;
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_nljoin_next");
    DB_BB(k_, "entry");
    while (true) {
      if (!outer_valid_) {
        DB_BB(k_, "outer");
        if (!exec_next(k_, *outer_, outer_row_)) {
          DB_BB(k_, "eof_ret");
          return false;
        }
        outer_valid_ = true;
        DB_BB(k_, "rescan");
        exec_rewind(k_, *inner_);
      }
      DB_BB(k_, "inner");
      Tuple inner_row;
      if (!exec_next(k_, *inner_, inner_row)) {
        outer_valid_ = false;
        continue;
      }
      DB_BB(k_, "concat");
      out = concat_tuples(outer_row_, inner_row);
      if (plan_.residual != nullptr) {
        DB_BB(k_, "residual");
        if (!eval_predicate(k_, *plan_.residual, out)) continue;
      }
      DB_BB(k_, "emit");
      DB_BB(k_, "ret");
      return true;
    }
  }

  void close() override {
    DB_ROUTINE(k_, "Exec_join_close");
    DB_BB(k_, "entry");
    exec_close(k_, *outer_);
    DB_BB(k_, "right");
    exec_close(k_, *inner_);
    DB_BB(k_, "ret");
  }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  Tuple outer_row_;
  bool outer_valid_ = false;
};

// ---- index nested loops -----------------------------------------------------

class IndexNLJoinOp final : public Operator {
 public:
  IndexNLJoinOp(Kernel& k, const PlanNode& plan,
                std::unique_ptr<Operator> outer)
      : k_(k), plan_(plan), outer_(std::move(outer)) {}

  void open() override {
    exec_open(k_, *outer_);
    outer_valid_ = false;
    cursor_.reset();
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_idxnljoin_next");
    DB_BB(k_, "entry");
    while (true) {
      if (!outer_valid_) {
        DB_BB(k_, "outer");
        if (!exec_next(k_, *outer_, outer_row_)) {
          DB_BB(k_, "eof_ret");
          return false;
        }
        outer_valid_ = true;
        DB_BB(k_, "key");
        const Value key = eval_expr(k_, *plan_.left_key, outer_row_);
        DB_BB(k_, "seek");
        cursor_ = plan_.index->index->seek_equal(key);
      }
      DB_BB(k_, "probe");
      RID rid;
      if (!cursor_->next(rid)) {
        outer_valid_ = false;
        continue;
      }
      DB_BB(k_, "fetch");
      Tuple inner_row;
      plan_.table->heap->get(rid, inner_row);
      DB_BB(k_, "concat");
      out = concat_tuples(outer_row_, inner_row);
      if (plan_.residual != nullptr) {
        DB_BB(k_, "residual");
        if (!eval_predicate(k_, *plan_.residual, out)) continue;
      }
      DB_BB(k_, "emit");
      DB_BB(k_, "ret");
      return true;
    }
  }

  void close() override { exec_close(k_, *outer_); }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<IndexCursor> cursor_;
  Tuple outer_row_;
  bool outer_valid_ = false;
};

// ---- hash join ---------------------------------------------------------------

class HashJoinOp final : public Operator {
 public:
  HashJoinOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> probe,
             std::unique_ptr<Operator> build)
      : k_(k), plan_(plan), probe_(std::move(probe)), build_(std::move(build)) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_hashjoin_open");
    DB_BB(k_, "entry");
    exec_open(k_, *probe_);
    DB_BB(k_, "open_build");
    exec_open(k_, *build_);
    table_.clear();
    Tuple row;
    while (true) {
      DB_BB(k_, "build_fetch");
      if (!exec_next(k_, *build_, row)) break;
      DB_BB(k_, "build_key");
      Value key = eval_expr(k_, *plan_.right_key, row);
      DB_BB(k_, "build_insert");
      hash_dispatch(k_, key);
      table_[std::move(key)].push_back(row);
    }
    matches_ = nullptr;
    match_idx_ = 0;
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_hashjoin_next");
    DB_BB(k_, "entry");
    while (true) {
      if (matches_ != nullptr && match_idx_ < matches_->size()) {
        DB_BB(k_, "candidate");
        const Tuple& build_row = (*matches_)[match_idx_++];
        DB_BB(k_, "concat");
        out = concat_tuples(probe_row_, build_row);
        if (plan_.residual != nullptr) {
          DB_BB(k_, "residual");
          if (!eval_predicate(k_, *plan_.residual, out)) continue;
        }
        DB_BB(k_, "emit");
        DB_BB(k_, "ret");
        return true;
      }
      DB_BB(k_, "probe_fetch");
      if (!exec_next(k_, *probe_, probe_row_)) {
        DB_BB(k_, "eof_ret");
        return false;
      }
      DB_BB(k_, "probe_key");
      const Value key = eval_expr(k_, *plan_.left_key, probe_row_);
      DB_BB(k_, "bucket");
      hash_dispatch(k_, key);
      const auto it = table_.find(key);
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_idx_ = 0;
    }
  }

  void close() override {
    DB_ROUTINE(k_, "Exec_join_close");
    DB_BB(k_, "entry");
    exec_close(k_, *probe_);
    DB_BB(k_, "right");
    exec_close(k_, *build_);
    table_.clear();
    DB_BB(k_, "ret");
  }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> probe_;
  std::unique_ptr<Operator> build_;
  std::unordered_map<Value, std::vector<Tuple>, ValueHasher> table_;
  const std::vector<Tuple>* matches_ = nullptr;
  std::size_t match_idx_ = 0;
  Tuple probe_row_;
};

// ---- merge join ----------------------------------------------------------------

class MergeJoinOp final : public Operator {
 public:
  MergeJoinOp(Kernel& k, const PlanNode& plan, std::unique_ptr<Operator> left,
              std::unique_ptr<Operator> right)
      : k_(k), plan_(plan), left_(std::move(left)), right_(std::move(right)) {}

  void open() override {
    DB_ROUTINE(k_, "Exec_join_open");
    DB_BB(k_, "entry");
    exec_open(k_, *left_);
    DB_BB(k_, "right");
    exec_open(k_, *right_);
    left_valid_ = false;
    right_valid_ = false;
    right_eof_ = false;
    group_.clear();
    group_idx_ = 0;
    group_valid_ = false;
    DB_BB(k_, "ret");
  }

  bool next(Tuple& out) override {
    DB_ROUTINE(k_, "Exec_mergejoin_next");
    DB_BB(k_, "entry");
    // Lambdas so the instrumented blocks stay inside this routine's scope.
    const auto advance_left = [&]() -> bool {
      DB_BB(k_, "advance_left");
      if (!exec_next(k_, *left_, left_row_)) {
        left_valid_ = false;
        return false;
      }
      left_valid_ = true;
      DB_BB(k_, "left_key");
      left_key_ = eval_expr(k_, *plan_.left_key, left_row_);
      return true;
    };
    const auto advance_right = [&]() -> bool {
      DB_BB(k_, "advance_right");
      if (!exec_next(k_, *right_, right_row_)) {
        right_valid_ = false;
        return false;
      }
      right_valid_ = true;
      DB_BB(k_, "right_key");
      right_key_ = eval_expr(k_, *plan_.right_key, right_row_);
      return true;
    };
    while (true) {
      // Emit pending (left, group) combinations.
      if (group_valid_ && left_valid_ && left_key_.compare(group_key_) == 0) {
        if (group_idx_ < group_.size()) {
          DB_BB(k_, "concat");
          out = concat_tuples(left_row_, group_[group_idx_++]);
          if (plan_.residual != nullptr) {
            DB_BB(k_, "residual");
            if (!eval_predicate(k_, *plan_.residual, out)) continue;
          }
          DB_BB(k_, "emit");
          DB_BB(k_, "ret");
          return true;
        }
        // This left tuple exhausted the group; advance the left side and
        // replay the group if the key repeats.
        if (!advance_left()) {
          DB_BB(k_, "eof_ret");
          return false;
        }
        group_idx_ = 0;
        continue;
      }

      if (!left_valid_) {
        if (!advance_left()) {
          DB_BB(k_, "eof_ret");
          return false;
        }
      }
      // Align the right side: build the group of right tuples whose key
      // equals the current left key.
      if (!right_valid_ && !right_eof_) {
        if (!advance_right()) right_eof_ = true;
      }
      if (!right_valid_ && right_eof_) {
        if (group_valid_ && left_valid_ &&
            left_key_.compare(group_key_) == 0) {
          continue;  // still emitting against the last group
        }
        DB_BB(k_, "eof_ret");
        return false;
      }
      DB_BB(k_, "compare");
      const int c = cmp_dispatch(k_, left_key_, right_key_);
      DB_BB(k_, "steer");
      if (c < 0) {
        // Left key too small: skip this left tuple.
        left_valid_ = false;
        group_valid_ = false;
        continue;
      }
      if (c > 0) {
        // Right key too small: discard it.
        right_valid_ = false;
        continue;
      }
      // Keys match: collect every right tuple with this key.
      group_.clear();
      group_key_ = right_key_;
      while (right_valid_ && right_key_.compare(group_key_) == 0) {
        DB_BB(k_, "fill_group");
        group_.push_back(right_row_);
        if (!advance_right()) {
          right_valid_ = false;
          right_eof_ = true;
        }
      }
      group_idx_ = 0;
      group_valid_ = true;
    }
  }

  void close() override {
    DB_ROUTINE(k_, "Exec_join_close");
    DB_BB(k_, "entry");
    exec_close(k_, *left_);
    DB_BB(k_, "right");
    exec_close(k_, *right_);
    DB_BB(k_, "ret");
  }

 private:
  Kernel& k_;
  const PlanNode& plan_;
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  Tuple left_row_, right_row_;
  Value left_key_, right_key_;
  bool left_valid_ = false, right_valid_ = false, right_eof_ = false;
  std::vector<Tuple> group_;
  Value group_key_;
  std::size_t group_idx_ = 0;
  bool group_valid_ = false;
};

}  // namespace

std::unique_ptr<Operator> make_join_op(Kernel& k, const PlanNode& plan) {
  switch (plan.kind) {
    case PlanKind::kNLJoin:
      return std::make_unique<NLJoinOp>(k, plan,
                                        make_operator(k, *plan.children[0]),
                                        make_operator(k, *plan.children[1]));
    case PlanKind::kIndexNLJoin:
      return std::make_unique<IndexNLJoinOp>(
          k, plan, make_operator(k, *plan.children[0]));
    case PlanKind::kHashJoin:
      return std::make_unique<HashJoinOp>(k, plan,
                                          make_operator(k, *plan.children[0]),
                                          make_operator(k, *plan.children[1]));
    case PlanKind::kMergeJoin:
      return std::make_unique<MergeJoinOp>(k, plan,
                                           make_operator(k, *plan.children[0]),
                                           make_operator(k, *plan.children[1]));
    default:
      STC_CHECK_MSG(false, "not a join plan");
      return nullptr;
  }
}

}  // namespace detail
}  // namespace stc::db
