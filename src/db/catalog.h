// System catalog: table schemas, heap files and index metadata.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/heap.h"
#include "db/index.h"
#include "db/kernel.h"

namespace stc::db {

struct Column {
  std::string name;
  ValueType type = ValueType::kInt;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  std::size_t size() const { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_.at(i); }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of a column by name; -1 if absent.
  int index_of(const std::string& name) const;

  void add(std::string name, ValueType type) {
    columns_.push_back({std::move(name), type});
  }

 private:
  std::vector<Column> columns_;
};

struct IndexInfo {
  std::string name;
  int column = 0;       // indexed column position in the table schema
  bool unique = false;  // primary-key indices are unique (paper Section 3)
  std::unique_ptr<Index> index;
};

struct TableInfo {
  std::string name;
  Schema schema;
  std::unique_ptr<HeapFile> heap;
  std::vector<IndexInfo> indexes;

  // First index on `column`, or nullptr.
  const IndexInfo* index_on(int column) const;
};

// Instrumented column-name resolution against a schema; returns -1 when the
// name does not resolve. Used by the planner.
int resolve_column(Kernel& kernel, const Schema& schema,
                   const std::string& name);

class Catalog {
 public:
  explicit Catalog(Kernel& kernel) : kernel_(kernel) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  TableInfo& create_table(std::string name, Schema schema,
                          std::unique_ptr<HeapFile> heap);

  // Looks a table up by name (instrumented: catalog lookups are part of the
  // per-query kernel path). Returns nullptr when absent.
  TableInfo* lookup(const std::string& name);
  const TableInfo* lookup(const std::string& name) const;

  std::size_t table_count() const { return tables_.size(); }
  TableInfo& table_at(std::size_t i) { return *tables_.at(i); }

 private:
  Kernel& kernel_;
  std::vector<std::unique_ptr<TableInfo>> tables_;
};

}  // namespace stc::db
