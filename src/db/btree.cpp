#include "db/btree.h"

#include <algorithm>

#include "db/registration.h"
#include "db/typeops.h"
#include "support/check.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_btree_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("BT_lower_bound", m,
                 {{"entry", 5, kFall},
                  {"halve", 7, kCall},  // one binary-search iteration
                  {"ret", 3, kRet}});
  im.add_routine("BT_upper_bound", m,
                 {{"entry", 5, kFall},
                  {"halve", 7, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("BT_descend", m,
                 {{"entry", 5, kBr},
                  {"level", 6, kCall},   // separator search in one node
                  {"step", 5, kBr},      // move to the chosen child
                  {"leaf_pos", 6, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("BT_insert", m,
                 {{"entry", 6, kBr},
                  {"grow_root", 8, kCall},
                  {"level", 6, kCall},     // separator search in one node
                  {"split_check", 4, kBr},
                  {"split", 5, kCall},
                  {"resteer", 5, kBr},     // re-aim after a split
                  {"step", 4, kBr},
                  {"leaf_pos", 6, kCall},
                  {"leaf_insert", 12, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("BT_split_child", m,
                 {{"entry", 7, kBr},
                  {"alloc", 9, kFall},
                  {"move_leaf", 14, kBr},
                  {"move_internal", 16, kBr},
                  {"hookup", 10, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("BT_scan_next", m,
                 {{"entry", 5, kBr},
                  {"advance_leaf", 6, kBr},
                  {"bound_check", 8, kCall},
                  {"emit", 6, kFall},
                  {"ret", 3, kRet},
                  {"eof_ret", 4, kRet}});
}

struct BTreeIndex::Node {
  bool leaf = true;
  std::vector<Value> keys;
  std::vector<RID> rids;                         // leaf only
  std::vector<std::unique_ptr<Node>> children;   // internal only
  Node* next = nullptr;                          // leaf chain
};

class BTreeIndex::RangeCursor final : public IndexCursor {
 public:
  RangeCursor(Kernel& kernel, Node* leaf, std::size_t idx,
              std::optional<Value> hi, bool hi_inclusive)
      : kernel_(kernel),
        leaf_(leaf),
        idx_(idx),
        hi_(std::move(hi)),
        hi_inclusive_(hi_inclusive) {}

  bool next(RID& rid) override {
    DB_ROUTINE(kernel_, "BT_scan_next");
    DB_BB(kernel_, "entry");
    while (leaf_ != nullptr && idx_ >= leaf_->keys.size()) {
      DB_BB(kernel_, "advance_leaf");
      leaf_ = leaf_->next;
      idx_ = 0;
    }
    if (leaf_ == nullptr) {
      DB_BB(kernel_, "eof_ret");
      return false;
    }
    if (hi_.has_value()) {
      DB_BB(kernel_, "bound_check");
      const int cmp = cmp_dispatch(kernel_, leaf_->keys[idx_], *hi_);
      if (cmp > 0 || (cmp == 0 && !hi_inclusive_)) {
        DB_BB(kernel_, "eof_ret");
        return false;
      }
    }
    DB_BB(kernel_, "emit");
    rid = leaf_->rids[idx_];
    ++idx_;
    DB_BB(kernel_, "ret");
    return true;
  }

 private:
  Kernel& kernel_;
  Node* leaf_;
  std::size_t idx_;
  std::optional<Value> hi_;
  bool hi_inclusive_;
};

BTreeIndex::BTreeIndex(Kernel& kernel)
    : kernel_(kernel), root_(std::make_unique<Node>()) {}

BTreeIndex::~BTreeIndex() = default;

std::size_t BTreeIndex::node_lower_bound(const Node* node,
                                         const Value& key) const {
  DB_ROUTINE(kernel_, "BT_lower_bound");
  DB_BB(kernel_, "entry");
  std::size_t lo = 0;
  std::size_t hi = node->keys.size();
  while (lo < hi) {
    DB_BB(kernel_, "halve");
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cmp_dispatch(kernel_, node->keys[mid], key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  DB_BB(kernel_, "ret");
  return lo;
}

std::size_t BTreeIndex::node_upper_bound(const Node* node,
                                         const Value& key) const {
  DB_ROUTINE(kernel_, "BT_upper_bound");
  DB_BB(kernel_, "entry");
  std::size_t lo = 0;
  std::size_t hi = node->keys.size();
  while (lo < hi) {
    DB_BB(kernel_, "halve");
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cmp_dispatch(kernel_, node->keys[mid], key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  DB_BB(kernel_, "ret");
  return lo;
}

void BTreeIndex::split_child(Node* parent, std::size_t child_idx) {
  DB_ROUTINE(kernel_, "BT_split_child");
  DB_BB(kernel_, "entry");
  Node* child = parent->children[child_idx].get();
  DB_BB(kernel_, "alloc");
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;

  Value separator;
  if (child->leaf) {
    DB_BB(kernel_, "move_leaf");
    const std::size_t mid = child->keys.size() / 2;
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->rids.assign(child->rids.begin() + mid, child->rids.end());
    child->keys.resize(mid);
    child->rids.resize(mid);
    separator = right->keys.front();
    right->next = child->next;
    child->next = right.get();
  } else {
    DB_BB(kernel_, "move_internal");
    const std::size_t mid = child->keys.size() / 2;
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    right->children.reserve(child->children.size() - mid - 1);
    for (std::size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }

  DB_BB(kernel_, "hookup");
  parent->keys.insert(parent->keys.begin() + child_idx, std::move(separator));
  parent->children.insert(parent->children.begin() + child_idx + 1,
                          std::move(right));
  DB_BB(kernel_, "ret");
}

void BTreeIndex::insert(const Value& key, RID rid) {
  DB_ROUTINE(kernel_, "BT_insert");
  DB_BB(kernel_, "entry");
  const bool root_full = root_->leaf
                             ? root_->keys.size() >= kMaxEntries
                             : root_->children.size() >= kMaxEntries;
  if (root_full) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    DB_BB(kernel_, "grow_root");
    split_child(root_.get(), 0);
  }

  Node* node = root_.get();
  while (!node->leaf) {
    DB_BB(kernel_, "level");
    std::size_t i = node_upper_bound(node, key);
    Node* child = node->children[i].get();
    const bool full = child->leaf ? child->keys.size() >= kMaxEntries
                                  : child->children.size() >= kMaxEntries;
    DB_BB(kernel_, "split_check");
    if (full) {
      DB_BB(kernel_, "split");
      split_child(node, i);
      DB_BB(kernel_, "resteer");
      if (node->keys[i].compare(key) <= 0) ++i;
      child = node->children[i].get();
    }
    DB_BB(kernel_, "step");
    node = child;
  }

  DB_BB(kernel_, "leaf_pos");
  const std::size_t pos = node_upper_bound(node, key);
  DB_BB(kernel_, "leaf_insert");
  node->keys.insert(node->keys.begin() + pos, key);
  node->rids.insert(node->rids.begin() + pos, rid);
  ++entries_;
  DB_BB(kernel_, "ret");
}

void BTreeIndex::descend_lower(const Value& key, Node*& leaf,
                               std::size_t& idx) {
  DB_ROUTINE(kernel_, "BT_descend");
  DB_BB(kernel_, "entry");
  Node* node = root_.get();
  while (!node->leaf) {
    DB_BB(kernel_, "level");
    const std::size_t i = node_lower_bound(node, key);
    DB_BB(kernel_, "step");
    node = node->children[i].get();
  }
  DB_BB(kernel_, "leaf_pos");
  idx = node_lower_bound(node, key);
  leaf = node;
  DB_BB(kernel_, "ret");
}

std::unique_ptr<IndexCursor> BTreeIndex::seek_equal(const Value& key) {
  return seek_range(key, true, key, true);
}

std::unique_ptr<IndexCursor> BTreeIndex::seek_range(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive) {
  Node* leaf = root_.get();
  std::size_t idx = 0;
  if (lo.has_value()) {
    descend_lower(*lo, leaf, idx);
    if (!lo_inclusive) {
      // Skip keys equal to the exclusive lower bound.
      while (leaf != nullptr) {
        if (idx >= leaf->keys.size()) {
          leaf = leaf->next;
          idx = 0;
          continue;
        }
        if (leaf->keys[idx].compare(*lo) != 0) break;
        ++idx;
      }
    }
  } else {
    // Leftmost leaf.
    while (!leaf->leaf) leaf = leaf->children.front().get();
  }
  return std::make_unique<RangeCursor>(kernel_, leaf, idx, hi, hi_inclusive);
}

std::uint32_t BTreeIndex::height() const {
  std::uint32_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

void BTreeIndex::check_invariants() const {
  struct Walker {
    std::uint64_t entries = 0;
    int leaf_depth = -1;
    const Node* prev_leaf = nullptr;

    void walk(const Node* node, int depth, const Value* lo, const Value* hi) {
      STC_CHECK(std::is_sorted(
          node->keys.begin(), node->keys.end(),
          [](const Value& a, const Value& b) { return a.compare(b) < 0; }));
      for (const Value& k : node->keys) {
        if (lo != nullptr) STC_CHECK(lo->compare(k) <= 0);
        if (hi != nullptr) STC_CHECK(k.compare(*hi) <= 0);
      }
      if (node->leaf) {
        STC_CHECK(node->keys.size() == node->rids.size());
        if (leaf_depth < 0) leaf_depth = depth;
        STC_CHECK_MSG(leaf_depth == depth, "unbalanced btree");
        if (prev_leaf != nullptr) {
          STC_CHECK_MSG(prev_leaf->next == node, "broken leaf chain");
        }
        prev_leaf = node;
        entries += node->keys.size();
        return;
      }
      STC_CHECK(node->children.size() == node->keys.size() + 1);
      for (std::size_t i = 0; i < node->children.size(); ++i) {
        const Value* child_lo = i == 0 ? lo : &node->keys[i - 1];
        const Value* child_hi = i == node->keys.size() ? hi : &node->keys[i];
        walk(node->children[i].get(), depth + 1, child_lo, child_hi);
      }
    }
  };
  Walker walker;
  walker.walk(root_.get(), 0, nullptr, nullptr);
  STC_CHECK_MSG(walker.entries == entries_, "btree entry count mismatch");
  if (walker.prev_leaf != nullptr) {
    STC_CHECK_MSG(walker.prev_leaf->next == nullptr, "leaf chain has a tail");
  }
}

}  // namespace stc::db
