// Buffer Manager: manages in-memory page frames the way an OS virtual memory
// manager does (paper Section 2.1), providing pinned pages to the Access
// Methods. LRU replacement over unpinned frames, write-back of dirty pages.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "db/kernel.h"
#include "db/storage.h"

namespace stc::db {

struct BufferStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;

  double hit_ratio() const {
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class BufferManager {
 public:
  BufferManager(Kernel& kernel, StorageManager& storage, std::size_t frames);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  // Pins the page into a frame (fetching it from storage on a miss) and
  // returns it. The caller must unpin() with the same id when done.
  Page& pin(PageId id);

  // Releases one pin; `dirty` marks the frame for write-back on eviction.
  void unpin(PageId id, bool dirty);

  // Writes every dirty frame back to storage (end-of-statement hygiene;
  // cold during read-only DSS execution except at load time).
  void flush_all();

  std::size_t frame_count() const { return frames_.size(); }
  const BufferStats& stats() const { return stats_; }

 private:
  struct Frame {
    PageId id;
    Page page;
    std::uint32_t pin_count = 0;
    bool dirty = false;
    bool valid = false;
    std::uint64_t last_use = 0;
  };

  static constexpr std::size_t kNoFrame = ~std::size_t{0};

  // Instrumented frame-table probe; returns kNoFrame on miss.
  std::size_t hash_lookup(PageId id);

  // Chooses the least-recently-used unpinned frame; aborts if all pinned.
  std::size_t choose_victim();

  Kernel& kernel_;
  StorageManager& storage_;
  std::vector<Frame> frames_;
  std::unordered_map<std::uint64_t, std::size_t> frame_of_;
  std::uint64_t clock_ = 0;
  BufferStats stats_;
};

}  // namespace stc::db
