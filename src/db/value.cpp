#include "db/value.h"

#include <cstdio>

namespace stc::db {

int Value::compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    // NULL == NULL, NULL < anything else.
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  if (type_ == ValueType::kString || other.type_ == ValueType::kString) {
    STC_DCHECK(type_ == other.type_);
    return s_.compare(other.s_);
  }
  // Numeric comparison (int/int fast path avoids rounding).
  if (type_ == ValueType::kInt && other.type_ == ValueType::kInt) {
    if (i_ < other.i_) return -1;
    return i_ > other.i_ ? 1 : 0;
  }
  const double a = as_double();
  const double b = other.as_double();
  if (a < b) return -1;
  return a > b ? 1 : 0;
}

std::uint64_t Value::hash() const {
  // FNV-1a over a type-tagged byte representation; doubles equal to an
  // integer hash differently, so mixed-type hash joins normalize first
  // (the planner only builds equi-joins over same-typed columns).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const std::uint8_t tag = static_cast<std::uint8_t>(type_);
  mix(&tag, 1);
  switch (type_) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      mix(&i_, sizeof i_);
      break;
    case ValueType::kDouble: {
      const double d = d_;
      mix(&d, sizeof d);
      break;
    }
    case ValueType::kString:
      mix(s_.data(), s_.size());
      break;
  }
  return h;
}

std::string Value::to_string() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(i_);
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.4f", d_);
      return buf;
    }
    case ValueType::kString:
      return s_;
  }
  return "?";
}

// Howard Hinnant's civil-days algorithm.
std::int64_t date_from_ymd(int year, int month, int day) {
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153 * (static_cast<unsigned>(month) + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<std::int64_t>(doe) - 719468;
}

void ymd_from_date(std::int64_t days, int& year, int& month, int& day) {
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  year = static_cast<int>(y + (month <= 2));
}

std::int64_t parse_date(const std::string& text) {
  int y = 0;
  int m = 0;
  int d = 0;
  STC_REQUIRE_MSG(std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) == 3,
                  "malformed date literal");
  STC_REQUIRE(m >= 1 && m <= 12 && d >= 1 && d <= 31);
  return date_from_ymd(y, m, d);
}

std::string format_date(std::int64_t days) {
  int y = 0;
  int m = 0;
  int d = 0;
  ymd_from_date(days, y, m, d);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", y, m, d);
  return buf;
}

int year_of(std::int64_t days) {
  int y = 0;
  int m = 0;
  int d = 0;
  ymd_from_date(days, y, m, d);
  return y;
}

}  // namespace stc::db
