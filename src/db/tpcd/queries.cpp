#include "db/tpcd/queries.h"

#include "support/check.h"

namespace stc::db::tpcd {
namespace {

// Q1 — Pricing Summary Report.
constexpr const char* kQ1 = R"(
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       AVG(l_quantity) AS avg_qty,
       AVG(l_extendedprice) AS avg_price,
       AVG(l_discount) AS avg_disc,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY 1, 2)";

// Q2 — Minimum Cost Supplier. Adaptation: the correlated MIN subquery is
// decorrelated into a grouped derived table (global minimum per part rather
// than the region-restricted minimum).
constexpr const char* kQ2 = R"(
SELECT s.s_acctbal, s.s_name, n.n_name, p.p_partkey, p.p_mfgr, s.s_address,
       s.s_phone
FROM part p, supplier s, partsupp ps, nation n, region r,
     (SELECT ps_partkey AS mpk, MIN(ps_supplycost) AS mincost
      FROM partsupp GROUP BY ps_partkey) m
WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
  AND p.p_size = 15 AND p.p_type LIKE '%BRASS'
  AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
  AND r.r_name = 'EUROPE'
  AND m.mpk = p.p_partkey AND ps.ps_supplycost = m.mincost
ORDER BY 1 DESC, 3, 2, 4
LIMIT 100)";

// Q3 — Shipping Priority.
constexpr const char* kQ3 = R"(
SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10)";

// Q4 — Order Priority Checking. Adaptation: EXISTS becomes IN.
constexpr const char* kQ4 = R"(
SELECT o_orderpriority, COUNT(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01'
  AND o_orderkey IN (SELECT l_orderkey FROM lineitem
                     WHERE l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority)";

// Q5 — Local Supplier Volume.
constexpr const char* kQ5 = R"(
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
  AND r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'
GROUP BY n_name
ORDER BY revenue DESC)";

// Q6 — Forecasting Revenue Change.
constexpr const char* kQ6 = R"(
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24)";

// Q7 — Volume Shipping.
constexpr const char* kQ7 = R"(
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
             YEAR(l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM supplier, lineitem, orders, customer, nation n1, nation n2
      WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey
        AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey
        AND c_nationkey = n2.n_nationkey
        AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') OR
             (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY 1, 2, 3)";

// Q8 — National Market Share.
constexpr const char* kQ8 = R"(
SELECT o_year,
       SUM(CASEWHEN(nation = 'BRAZIL', volume, 0.0)) / SUM(volume) AS mkt_share
FROM (SELECT YEAR(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2.n_name AS nation
      FROM part, supplier, lineitem, orders, customer, nation n1, nation n2,
           region
      WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey
        AND l_orderkey = o_orderkey AND o_custkey = c_custkey
        AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey
        AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey
        AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND p_type = 'ECONOMY ANODIZED STEEL') all_nations
GROUP BY o_year
ORDER BY o_year)";

// Q9 — Product Type Profit Measure.
constexpr const char* kQ9 = R"(
SELECT nation, o_year, SUM(amount) AS sum_profit
FROM (SELECT n_name AS nation, YEAR(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) -
             ps_supplycost * l_quantity AS amount
      FROM part, supplier, lineitem, partsupp, orders, nation
      WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey
        AND ps_partkey = l_partkey AND p_partkey = l_partkey
        AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey
        AND p_name LIKE '%green%') profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC)";

// Q10 — Returned Item Reporting.
constexpr const char* kQ10 = R"(
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R' AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address
ORDER BY revenue DESC
LIMIT 20)";

// Q11 — Important Stock Identification, in its native HAVING form (the
// threshold subquery is uncorrelated and folds at plan time). The official
// fraction 0.0001 is raised to 0.001 for small scale factors.
constexpr const char* kQ11 = R"(
SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS stock_value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
  AND n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING SUM(ps_supplycost * ps_availqty) >
       (SELECT SUM(ps_supplycost * ps_availqty) * 0.001
        FROM partsupp, supplier, nation
        WHERE ps_suppkey = s_suppkey AND s_nationkey = n_nationkey
          AND n_name = 'GERMANY')
ORDER BY stock_value DESC)";

// Q12 — Shipping Modes and Order Priority.
constexpr const char* kQ12 = R"(
SELECT l_shipmode,
       SUM(CASEWHEN(o_orderpriority = '1-URGENT' OR
                    o_orderpriority = '2-HIGH', 1, 0)) AS high_line_count,
       SUM(CASEWHEN(o_orderpriority <> '1-URGENT' AND
                    o_orderpriority <> '2-HIGH', 1, 0)) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode)";

// Q13 — Customer Distribution. Adaptation: inner join instead of the outer
// join (customers without orders are not counted).
constexpr const char* kQ13 = R"(
SELECT c_count, COUNT(*) AS custdist
FROM (SELECT o_custkey AS ck, COUNT(*) AS c_count
      FROM orders GROUP BY o_custkey) c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC)";

// Q14 — Promotion Effect.
constexpr const char* kQ14 = R"(
SELECT SUM(CASEWHEN(p_type LIKE 'PROMO%',
                    l_extendedprice * (1 - l_discount), 0.0)) /
       SUM(l_extendedprice * (1 - l_discount)) * 100.0 AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01')";

// Q15 — Top Supplier. Decorrelated: the revenue view is a derived table and
// the MAX comparison an uncorrelated scalar subquery.
constexpr const char* kQ15 = R"(
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier,
     (SELECT l_suppkey AS supplier_no,
             SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01'
      GROUP BY l_suppkey) revenue
WHERE s_suppkey = supplier_no
  AND total_revenue = (SELECT MAX(total_revenue)
                       FROM (SELECT l_suppkey AS sno,
                                    SUM(l_extendedprice * (1 - l_discount))
                                      AS total_revenue
                             FROM lineitem
                             WHERE l_shipdate >= DATE '1996-01-01'
                               AND l_shipdate < DATE '1996-04-01'
                             GROUP BY l_suppkey) r2)
ORDER BY s_suppkey)";

// Q16 — Parts/Supplier Relationship. Adaptation: COUNT instead of
// COUNT(DISTINCT ...).
constexpr const char* kQ16 = R"(
SELECT p_brand, p_type, p_size, COUNT(ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey AND p_brand <> 'Brand#45'
  AND NOT p_type LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size)";

// Q17 — Small-Quantity-Order Revenue. Decorrelated: per-part average
// quantity as a grouped derived table.
constexpr const char* kQ17 = R"(
SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part,
     (SELECT l_partkey AS apk, AVG(l_quantity) AS avg_qty
      FROM lineitem GROUP BY l_partkey) a
WHERE p_partkey = l_partkey AND p_brand = 'Brand#23'
  AND p_container = 'MED BOX' AND apk = l_partkey
  AND l_quantity < 0.2 * avg_qty)";

const std::vector<QueryDef>& all_queries() {
  static const std::vector<QueryDef> list = {
      {1, "Pricing Summary Report", kQ1},
      {2, "Minimum Cost Supplier", kQ2},
      {3, "Shipping Priority", kQ3},
      {4, "Order Priority Checking", kQ4},
      {5, "Local Supplier Volume", kQ5},
      {6, "Forecasting Revenue Change", kQ6},
      {7, "Volume Shipping", kQ7},
      {8, "National Market Share", kQ8},
      {9, "Product Type Profit Measure", kQ9},
      {10, "Returned Item Reporting", kQ10},
      {11, "Important Stock Identification", kQ11},
      {12, "Shipping Modes and Order Priority", kQ12},
      {13, "Customer Distribution", kQ13},
      {14, "Promotion Effect", kQ14},
      {15, "Top Supplier", kQ15},
      {16, "Parts/Supplier Relationship", kQ16},
      {17, "Small-Quantity-Order Revenue", kQ17},
  };
  return list;
}

}  // namespace

const std::vector<QueryDef>& queries() { return all_queries(); }

const QueryDef& query(int id) {
  STC_REQUIRE(id >= 1 && id <= 17);
  return all_queries()[static_cast<std::size_t>(id - 1)];
}

std::vector<int> training_set() { return {3, 4, 5, 6, 9}; }

std::vector<int> test_set() { return {2, 3, 4, 6, 11, 12, 13, 14, 15, 17}; }

}  // namespace stc::db::tpcd
