// Deterministic TPC-D data generator.
//
// Produces the 8 tables at a configurable Scale Factor (SF = 1 corresponds to
// the benchmark's 1GB database; the paper used SF = 0.1). Value domains
// follow the TPC-D specification closely enough that every predicate in the
// 17 queries selects a realistic, non-empty subset.
#pragma once

#include <cstdint>

#include "db/database.h"

namespace stc::db::tpcd {

struct GenConfig {
  double scale_factor = 0.01;
  std::uint64_t seed = 19990401;  // ICPP'99

  std::uint64_t suppliers() const { return scaled(10000, 2); }
  std::uint64_t parts() const { return scaled(200000, 4); }
  std::uint64_t customers() const { return scaled(150000, 3); }
  std::uint64_t orders() const { return customers() * 10; }
  // partsupp = 4 per part; lineitem = 1..7 per order (generated).

 private:
  std::uint64_t scaled(std::uint64_t base, std::uint64_t min_rows) const {
    const double n = static_cast<double>(base) * scale_factor;
    return n < static_cast<double>(min_rows) ? min_rows
                                             : static_cast<std::uint64_t>(n);
  }
};

// Populates the (already created) tables of `db`. Indexes present on the
// tables are maintained during the load.
void populate(Database& db, const GenConfig& config);

// Convenience: create tables, load data, then build the index set (loading
// before indexing is faster and matches a bulk build).
void build_database(Database& db, const GenConfig& config, IndexKind kind);

}  // namespace stc::db::tpcd
