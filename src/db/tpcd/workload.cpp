#include "db/tpcd/workload.h"

#include "support/check.h"

namespace stc::db::tpcd {

std::unique_ptr<Database> make_database(const WorkloadConfig& config,
                                        IndexKind kind) {
  auto db = std::make_unique<Database>(config.buffer_frames);
  GenConfig gen;
  gen.scale_factor = config.scale_factor;
  gen.seed = config.seed;
  build_database(*db, gen, kind);
  return db;
}

void run_queries(Database& db, const std::vector<int>& ids,
                 cfg::TraceSink* sink) {
  cfg::TraceSink* previous = db.kernel().exec().sink();
  db.kernel().set_sink(sink);
  for (int id : ids) {
    const QueryDef& def = query(id);
    const QueryResult result = db.run_query(def.sql);
    STC_CHECK_MSG(!result.schema.columns().empty(), "query produced no schema");
  }
  db.kernel().set_sink(previous);
}

void run_training_workload(Database& btree_db, cfg::TraceSink* sink) {
  run_queries(btree_db, training_set(), sink);
}

void run_test_workload(Database& btree_db, Database& hash_db,
                       cfg::TraceSink* sink) {
  run_queries(btree_db, test_set(), sink);
  run_queries(hash_db, test_set(), sink);
}

}  // namespace stc::db::tpcd
