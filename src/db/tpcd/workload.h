// Workload driver: builds the Btree / Hash TPC-D databases and runs query
// sets while a TraceSink observes the kernel's dynamic basic-block stream.
// This is the experiment front door used by the benches and examples.
#pragma once

#include <memory>

#include "cfg/exec.h"
#include "db/database.h"
#include "db/tpcd/dbgen.h"
#include "db/tpcd/queries.h"

namespace stc::db::tpcd {

struct WorkloadConfig {
  double scale_factor = 0.01;
  std::uint64_t seed = 19990401;
  std::size_t buffer_frames = 128;
};

// Builds a fully loaded and indexed database (tracing disabled during the
// load, like the paper's profiling of query execution only).
std::unique_ptr<Database> make_database(const WorkloadConfig& config,
                                        IndexKind kind);

// Runs the given query ids against `db` with `sink` attached for the
// duration (previous sink is restored afterwards). Queries run to
// completion; results are discarded.
void run_queries(Database& db, const std::vector<int>& ids,
                 cfg::TraceSink* sink);

// Paper workloads:
//  - Training: queries 3,4,5,6,9 on the Btree database only (Section 4).
//  - Test: queries 2,3,4,6,11,12,13,14,15,17 on both databases (Section 7).
void run_training_workload(Database& btree_db, cfg::TraceSink* sink);
void run_test_workload(Database& btree_db, Database& hash_db,
                       cfg::TraceSink* sink);

}  // namespace stc::db::tpcd
