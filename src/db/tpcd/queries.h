// The 17 read-only TPC-D queries, expressed in the engine's SQL subset.
//
// Adaptations from the official text (documented per query in queries.cpp):
//  - correlated subqueries are decorrelated through derived tables (the
//    rewrite every modern optimizer performs); uncorrelated HAVING/scalar
//    subqueries run in their native form and fold at plan time,
//  - EXISTS becomes IN, COUNT(DISTINCT ...) becomes COUNT(...),
//  - queries needing outer joins are approximated with inner joins.
// The paper's Training set is {Q3, Q4, Q5, Q6, Q9} on the Btree database;
// the Test set is {Q2, Q3, Q4, Q6, Q11, Q12, Q13, Q14, Q15, Q17} on both the
// Btree and the Hash databases (Sections 4 and 7).
#pragma once

#include <string>
#include <vector>

namespace stc::db::tpcd {

struct QueryDef {
  int id = 0;                // 1..17
  const char* name = "";     // TPC-D title
  const char* sql = "";      // text in the engine's SQL subset
};

// All 17 queries, ordered by id.
const std::vector<QueryDef>& queries();

// The query with the given id (1-based); aborts if out of range.
const QueryDef& query(int id);

// The paper's query sets.
std::vector<int> training_set();  // {3, 4, 5, 6, 9}
std::vector<int> test_set();      // {2, 3, 4, 6, 11, 12, 13, 14, 15, 17}

}  // namespace stc::db::tpcd
