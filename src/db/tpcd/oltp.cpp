#include "db/tpcd/oltp.h"

#include "support/check.h"
#include "support/rng.h"

namespace stc::db::tpcd {
namespace {

std::string order_status_sql(std::int64_t custkey) {
  return "SELECT c_name, c_acctbal, o_orderkey, o_orderdate, o_orderpriority "
         "FROM customer, orders "
         "WHERE c_custkey = " + std::to_string(custkey) +
         " AND o_custkey = c_custkey "
         "ORDER BY o_orderdate DESC LIMIT 5";
}

std::string order_lines_sql(std::int64_t orderkey) {
  return "SELECT l_linenumber, l_quantity, l_extendedprice, l_shipdate "
         "FROM lineitem WHERE l_orderkey = " + std::to_string(orderkey) +
         " ORDER BY l_linenumber";
}

std::string stock_check_sql(std::int64_t partkey) {
  return "SELECT p_name, ps_suppkey, ps_availqty, ps_supplycost, s_name "
         "FROM part, partsupp, supplier "
         "WHERE p_partkey = " + std::to_string(partkey) +
         " AND ps_partkey = p_partkey AND s_suppkey = ps_suppkey "
         "ORDER BY ps_supplycost";
}

}  // namespace

OltpStats run_oltp_workload(Database& db, const OltpConfig& config,
                            cfg::TraceSink* sink) {
  TableInfo* orders = db.catalog().lookup("ORDERS");
  TableInfo* lineitem = db.catalog().lookup("LINEITEM");
  TableInfo* customer = db.catalog().lookup("CUSTOMER");
  TableInfo* part = db.catalog().lookup("PART");
  STC_REQUIRE(orders != nullptr && lineitem != nullptr &&
              customer != nullptr && part != nullptr);
  const auto customers = static_cast<std::int64_t>(customer->heap->tuple_count());
  const auto parts = static_cast<std::int64_t>(part->heap->tuple_count());
  const auto order_count = static_cast<std::int64_t>(orders->heap->tuple_count());
  STC_REQUIRE(customers > 0 && parts > 0 && order_count > 0);

  Rng rng(config.seed);
  OltpStats stats;
  cfg::TraceSink* previous = db.kernel().exec().sink();
  db.kernel().set_sink(sink);

  std::int64_t next_orderkey = 1000000000;  // clear of generated keys
  for (std::uint64_t txn = 0; txn < config.transactions; ++txn) {
    const double pick = rng.uniform_double();
    if (pick < config.order_status_fraction) {
      // Order status: customer header, recent orders, lines of the newest.
      const auto custkey =
          static_cast<std::int64_t>(rng.zipf(customers, config.zipf_theta));
      const QueryResult header = db.run_query(order_status_sql(custkey));
      stats.rows_read += header.rows.size();
      if (!header.rows.empty()) {
        const std::int64_t orderkey = header.rows.front()[2].as_int();
        const QueryResult lines = db.run_query(order_lines_sql(orderkey));
        stats.rows_read += lines.rows.size();
      }
      ++stats.order_status;
    } else if (pick < config.order_status_fraction +
                          config.stock_check_fraction) {
      const auto partkey =
          static_cast<std::int64_t>(rng.zipf(parts, config.zipf_theta));
      const QueryResult result = db.run_query(stock_check_sql(partkey));
      stats.rows_read += result.rows.size();
      ++stats.stock_checks;
    } else {
      // New order: insert the order row and 1..7 line items through the
      // full index-maintenance path.
      const std::int64_t orderkey = next_orderkey++;
      const auto custkey =
          static_cast<std::int64_t>(rng.zipf(customers, config.zipf_theta));
      const std::int64_t today = date_from_ymd(1998, 8, 2);
      db.insert(*orders,
                {Value(orderkey), Value(custkey), Value(std::string("O")),
                 Value(0.0), Value(today),
                 Value(std::string("1-URGENT")), Value(std::string("Clerk#1")),
                 Value(std::int64_t{0}), Value(std::string("oltp"))});
      ++stats.rows_inserted;
      const int lines = 1 + static_cast<int>(rng.uniform(7));
      for (int l = 1; l <= lines; ++l) {
        const double qty = 1.0 + static_cast<double>(rng.uniform(10));
        db.insert(
            *lineitem,
            {Value(orderkey),
             Value(static_cast<std::int64_t>(rng.zipf(parts, config.zipf_theta))),
             Value(std::int64_t{1}), Value(static_cast<std::int64_t>(l)),
             Value(qty), Value(qty * 100.0), Value(0.0), Value(0.0),
             Value(std::string("N")), Value(std::string("O")), Value(today),
             Value(today), Value(today),
             Value(std::string("NONE")), Value(std::string("AIR")),
             Value(std::string("oltp"))});
        ++stats.rows_inserted;
      }
      ++stats.new_orders;
    }
  }
  db.kernel().set_sink(previous);
  return stats;
}

}  // namespace stc::db::tpcd
