// OLTP-style workload over the TPC-D database — the paper's Section 8
// future work ("we will examine the effect of our technique ... for a wider
// range of applications like OLTP workloads").
//
// Short index-driven transactions instead of scan-heavy analytics:
//   - order status:  customer point lookup + their orders + line items,
//   - stock check:   part point lookup + its partsupp entries + suppliers,
//   - new order:     insert one order and its line items (index maintenance).
// The mix is read-mostly (45/45/10), Zipf-skewed over customers and parts.
#pragma once

#include <cstdint>

#include "cfg/exec.h"
#include "db/database.h"

namespace stc::db::tpcd {

struct OltpConfig {
  std::uint64_t transactions = 500;
  std::uint64_t seed = 7;
  // Transaction mix (fractions; the remainder becomes new-order inserts).
  double order_status_fraction = 0.45;
  double stock_check_fraction = 0.45;
  // Popularity skew of the customers/parts being probed.
  double zipf_theta = 0.8;
};

struct OltpStats {
  std::uint64_t order_status = 0;
  std::uint64_t stock_checks = 0;
  std::uint64_t new_orders = 0;
  std::uint64_t rows_read = 0;
  std::uint64_t rows_inserted = 0;
};

// Runs the transaction mix against `db` with `sink` attached for the
// duration (restores the previous sink afterwards). The database must be a
// loaded TPC-D instance. New-order inserts use order keys above 1e9 so they
// never collide with generated keys.
OltpStats run_oltp_workload(Database& db, const OltpConfig& config,
                            cfg::TraceSink* sink);

}  // namespace stc::db::tpcd
