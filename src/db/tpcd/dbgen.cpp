#include "db/tpcd/dbgen.h"

#include <array>

#include "db/registration.h"
#include "db/tpcd/schema.h"
#include "support/rng.h"

namespace stc::db {

void register_dbgen_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  using cfg::BlockKind;
  constexpr BlockKind kBr = BlockKind::kBranch;
  constexpr BlockKind kCall = BlockKind::kCall;
  constexpr BlockKind kRet = BlockKind::kReturn;
  // One loader routine per table; "row" is emitted once per generated row and
  // ends in the Db_insert call.
  for (const char* name :
       {"Gen_region", "Gen_nation", "Gen_supplier", "Gen_customer", "Gen_part",
        "Gen_partsupp", "Gen_orders", "Gen_lineitem"}) {
    im.add_routine(name, m,
                   {{"entry", 8, kBr},
                    {"make_row", 14, kBr},  // synthesize the column values
                    {"row", 4, kCall},      // insert (maintains indexes)
                    {"ret", 4, kRet}});
  }
}

namespace tpcd {
namespace {

struct NationDef {
  const char* name;
  int region;
};

constexpr std::array<const char*, 5> kRegions = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

constexpr std::array<NationDef, 25> kNations = {{
    {"ALGERIA", 0},   {"ARGENTINA", 1}, {"BRAZIL", 1},    {"CANADA", 1},
    {"EGYPT", 4},     {"ETHIOPIA", 0},  {"FRANCE", 3},    {"GERMANY", 3},
    {"INDIA", 2},     {"INDONESIA", 2}, {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},     {"JORDAN", 4},    {"KENYA", 0},     {"MOROCCO", 0},
    {"MOZAMBIQUE", 0},{"PERU", 1},      {"CHINA", 2},     {"ROMANIA", 3},
    {"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
    {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}};

constexpr std::array<const char*, 6> kTypes1 = {"STANDARD", "SMALL", "MEDIUM",
                                                "LARGE", "ECONOMY", "PROMO"};
constexpr std::array<const char*, 5> kTypes2 = {"ANODIZED", "BURNISHED",
                                                "PLATED", "POLISHED",
                                                "BRUSHED"};
constexpr std::array<const char*, 5> kTypes3 = {"TIN", "NICKEL", "BRASS",
                                                "STEEL", "COPPER"};
constexpr std::array<const char*, 5> kContainers1 = {"SM", "MED", "LG",
                                                     "JUMBO", "WRAP"};
constexpr std::array<const char*, 8> kContainers2 = {
    "CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"};
constexpr std::array<const char*, 5> kSegments = {
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"};
constexpr std::array<const char*, 5> kPriorities = {
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"};
constexpr std::array<const char*, 7> kShipModes = {
    "REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
constexpr std::array<const char*, 4> kShipInstruct = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
constexpr std::array<const char*, 17> kColors = {
    "almond", "antique", "aquamarine", "azure",  "beige",  "bisque",
    "black",  "blue",    "blush",      "brown",  "green",  "honeydew",
    "ivory",  "lemon",   "magenta",    "maroon", "orange"};

const char* pick(Rng& rng, const char* const* data, std::size_t n) {
  return data[rng.uniform(n)];
}

std::string part_name(Rng& rng) {
  std::string name = pick(rng, kColors.data(), kColors.size());
  name += ' ';
  name += pick(rng, kColors.data(), kColors.size());
  return name;
}

std::string comment(Rng& rng, std::size_t words) {
  std::string text;
  for (std::size_t i = 0; i < words; ++i) {
    if (i != 0) text += ' ';
    text += rng.random_string(3 + rng.uniform(6));
  }
  return text;
}

std::string phone(Rng& rng, std::int64_t nationkey) {
  std::string p = std::to_string(10 + nationkey);
  p += '-';
  for (int g = 0; g < 3; ++g) {
    p += std::to_string(100 + rng.uniform(900));
    if (g != 2) p += '-';
  }
  return p;
}

// Instrumented per-table loaders. Each opens its Gen_* routine, emits one
// "row" block per inserted tuple, and inserts through Database::insert so
// that index maintenance executes its real code path.
class Loader {
 public:
  Loader(Database& db, const GenConfig& config)
      : db_(db), rng_(config.seed), config_(config) {}

  void load_region() {
    Kernel& k = db_.kernel();
    TableInfo* t = db_.catalog().lookup("REGION");
    DB_ROUTINE(k, "Gen_region");
    DB_BB(k, "entry");
    for (std::size_t i = 0; i < kRegions.size(); ++i) {
      DB_BB(k, "make_row");
      Tuple row{Value(static_cast<std::int64_t>(i)),
                Value(std::string(kRegions[i])), Value(comment(rng_, 4))};
      DB_BB(k, "row");
      db_.insert(*t, row);
    }
    DB_BB(k, "ret");
  }

  void load_nation() {
    Kernel& k = db_.kernel();
    TableInfo* t = db_.catalog().lookup("NATION");
    DB_ROUTINE(k, "Gen_nation");
    DB_BB(k, "entry");
    for (std::size_t i = 0; i < kNations.size(); ++i) {
      DB_BB(k, "make_row");
      Tuple row{Value(static_cast<std::int64_t>(i)),
                Value(std::string(kNations[i].name)),
                Value(static_cast<std::int64_t>(kNations[i].region)),
                Value(comment(rng_, 5))};
      DB_BB(k, "row");
      db_.insert(*t, row);
    }
    DB_BB(k, "ret");
  }

  void load_supplier() {
    Kernel& k = db_.kernel();
    TableInfo* t = db_.catalog().lookup("SUPPLIER");
    DB_ROUTINE(k, "Gen_supplier");
    DB_BB(k, "entry");
    for (std::uint64_t i = 1; i <= config_.suppliers(); ++i) {
      DB_BB(k, "make_row");
      const std::int64_t nation =
          static_cast<std::int64_t>(rng_.uniform(kNations.size()));
      std::string s_comment = comment(rng_, 6);
      // ~5% of suppliers carry the Q16 complaint marker.
      if (rng_.chance(0.05)) s_comment = "Customer stuff Complaints " + s_comment;
      Tuple row{Value(static_cast<std::int64_t>(i)),
                Value("Supplier#" + std::to_string(i)),
                Value(rng_.random_string(12)),
                Value(nation),
                Value(phone(rng_, nation)),
                Value(-999.99 + rng_.uniform_double() * 10998.98),
                Value(std::move(s_comment))};
      DB_BB(k, "row");
      db_.insert(*t, row);
    }
    DB_BB(k, "ret");
  }

  void load_customer() {
    Kernel& k = db_.kernel();
    TableInfo* t = db_.catalog().lookup("CUSTOMER");
    DB_ROUTINE(k, "Gen_customer");
    DB_BB(k, "entry");
    for (std::uint64_t i = 1; i <= config_.customers(); ++i) {
      DB_BB(k, "make_row");
      const std::int64_t nation =
          static_cast<std::int64_t>(rng_.uniform(kNations.size()));
      Tuple row{Value(static_cast<std::int64_t>(i)),
                Value("Customer#" + std::to_string(i)),
                Value(rng_.random_string(14)),
                Value(nation),
                Value(phone(rng_, nation)),
                Value(-999.99 + rng_.uniform_double() * 10998.98),
                Value(std::string(pick(rng_, kSegments.data(), kSegments.size()))),
                Value(comment(rng_, 8))};
      DB_BB(k, "row");
      db_.insert(*t, row);
    }
    DB_BB(k, "ret");
  }

  void load_part() {
    Kernel& k = db_.kernel();
    TableInfo* t = db_.catalog().lookup("PART");
    DB_ROUTINE(k, "Gen_part");
    DB_BB(k, "entry");
    for (std::uint64_t i = 1; i <= config_.parts(); ++i) {
      DB_BB(k, "make_row");
      std::string type = pick(rng_, kTypes1.data(), kTypes1.size());
      type += ' ';
      type += pick(rng_, kTypes2.data(), kTypes2.size());
      type += ' ';
      type += pick(rng_, kTypes3.data(), kTypes3.size());
      std::string container = pick(rng_, kContainers1.data(), kContainers1.size());
      container += ' ';
      container += pick(rng_, kContainers2.data(), kContainers2.size());
      const std::int64_t brand_m = 1 + static_cast<std::int64_t>(rng_.uniform(5));
      const std::int64_t brand_n = 1 + static_cast<std::int64_t>(rng_.uniform(5));
      Tuple row{Value(static_cast<std::int64_t>(i)),
                Value(part_name(rng_)),
                Value("Manufacturer#" + std::to_string(brand_m)),
                Value("Brand#" + std::to_string(brand_m * 10 + brand_n)),
                Value(std::move(type)),
                Value(1 + static_cast<std::int64_t>(rng_.uniform(50))),
                Value(std::move(container)),
                Value(900.0 + static_cast<double>(i % 1000) / 10.0),
                Value(comment(rng_, 3))};
      DB_BB(k, "row");
      db_.insert(*t, row);
    }
    DB_BB(k, "ret");
  }

  void load_partsupp() {
    Kernel& k = db_.kernel();
    TableInfo* t = db_.catalog().lookup("PARTSUPP");
    DB_ROUTINE(k, "Gen_partsupp");
    DB_BB(k, "entry");
    const std::uint64_t suppliers = config_.suppliers();
    for (std::uint64_t p = 1; p <= config_.parts(); ++p) {
      for (int s = 0; s < 4; ++s) {
        DB_BB(k, "make_row");
        const std::uint64_t supp = (p + static_cast<std::uint64_t>(s) *
                                            (suppliers / 4 + 1)) % suppliers + 1;
        Tuple row{Value(static_cast<std::int64_t>(p)),
                  Value(static_cast<std::int64_t>(supp)),
                  Value(1 + static_cast<std::int64_t>(rng_.uniform(9999))),
                  Value(1.0 + rng_.uniform_double() * 999.0),
                  Value(comment(rng_, 6))};
        DB_BB(k, "row");
        db_.insert(*t, row);
      }
    }
    DB_BB(k, "ret");
  }

  void load_orders_and_lineitem() {
    Kernel& k = db_.kernel();
    TableInfo* orders = db_.catalog().lookup("ORDERS");
    TableInfo* lineitem = db_.catalog().lookup("LINEITEM");
    const std::int64_t start = date_from_ymd(1992, 1, 1);
    const std::int64_t end = date_from_ymd(1998, 8, 2);
    const std::uint64_t customers = config_.customers();
    const std::uint64_t parts = config_.parts();
    const std::uint64_t suppliers = config_.suppliers();

    for (std::uint64_t o = 1; o <= config_.orders(); ++o) {
      std::int64_t orderdate = 0;
      int lines = 0;
      double total = 0.0;
      {
        DB_ROUTINE(k, "Gen_orders");
        DB_BB(k, "entry");
        DB_BB(k, "make_row");
        orderdate = start + rng_.uniform_range(0, end - start - 151);
        lines = 1 + static_cast<int>(rng_.uniform(7));
        // Zipf-skewed customer popularity, like real order streams.
        const std::int64_t cust =
            static_cast<std::int64_t>(rng_.zipf(customers, 0.5));
        Tuple row{Value(static_cast<std::int64_t>(o)),
                  Value(cust),
                  Value(std::string(rng_.chance(0.5) ? "F" : "O")),
                  Value(0.0),  // filled conceptually by the lines below
                  Value(orderdate),
                  Value(std::string(pick(rng_, kPriorities.data(), kPriorities.size()))),
                  Value("Clerk#" + std::to_string(1 + rng_.uniform(1000))),
                  Value(std::int64_t{0}),
                  Value(comment(rng_, 6))};
        DB_BB(k, "row");
        db_.insert(*orders, row);
        DB_BB(k, "ret");
      }
      {
        DB_ROUTINE(k, "Gen_lineitem");
        DB_BB(k, "entry");
        for (int l = 1; l <= lines; ++l) {
          DB_BB(k, "make_row");
          const double qty = 1.0 + static_cast<double>(rng_.uniform(50));
          const double price = qty * (900.0 + static_cast<double>(
                                                  rng_.uniform(10000)) / 10.0);
          total += price;
          const std::int64_t ship = orderdate + 1 + rng_.uniform_range(0, 120);
          const std::int64_t commit = orderdate + 30 + rng_.uniform_range(0, 60);
          const std::int64_t receipt = ship + 1 + rng_.uniform_range(0, 29);
          const char* flag = receipt <= date_from_ymd(1995, 6, 17)
                                 ? (rng_.chance(0.5) ? "R" : "A")
                                 : "N";
          Tuple row{Value(static_cast<std::int64_t>(o)),
                    Value(static_cast<std::int64_t>(rng_.zipf(parts, 0.4))),
                    Value(static_cast<std::int64_t>(1 + rng_.uniform(suppliers))),
                    Value(static_cast<std::int64_t>(l)),
                    Value(qty),
                    Value(price),
                    Value(static_cast<double>(rng_.uniform(11)) / 100.0),
                    Value(static_cast<double>(rng_.uniform(9)) / 100.0),
                    Value(std::string(flag)),
                    Value(std::string(ship > date_from_ymd(1995, 6, 17) ? "O" : "F")),
                    Value(ship),
                    Value(commit),
                    Value(receipt),
                    Value(std::string(pick(rng_, kShipInstruct.data(), kShipInstruct.size()))),
                    Value(std::string(pick(rng_, kShipModes.data(), kShipModes.size()))),
                    Value(comment(rng_, 4))};
          DB_BB(k, "row");
          db_.insert(*lineitem, row);
        }
        DB_BB(k, "ret");
      }
      (void)total;
    }
  }

 private:
  Database& db_;
  Rng rng_;
  GenConfig config_;
};

}  // namespace

void populate(Database& db, const GenConfig& config) {
  Loader loader(db, config);
  loader.load_region();
  loader.load_nation();
  loader.load_supplier();
  loader.load_customer();
  loader.load_part();
  loader.load_partsupp();
  loader.load_orders_and_lineitem();
}

void build_database(Database& db, const GenConfig& config, IndexKind kind) {
  create_tables(db);
  populate(db, config);
  create_indexes(db, kind);
}

}  // namespace tpcd
}  // namespace stc::db
