// TPC-D schema: the 8 tables, with the index configuration the paper's
// Section 3 describes — unique indices on all primary keys and multiple-
// entry indices on the foreign keys, built either as Btree or Hash variants.
#pragma once

#include "db/database.h"

namespace stc::db::tpcd {

// Creates the 8 empty tables in `db`.
void create_tables(Database& db);

// Builds the index set using the given index kind everywhere.
void create_indexes(Database& db, IndexKind kind);

}  // namespace stc::db::tpcd
