#include "db/tpcd/schema.h"

namespace stc::db::tpcd {
namespace {

constexpr ValueType kInt = ValueType::kInt;
constexpr ValueType kDouble = ValueType::kDouble;
constexpr ValueType kString = ValueType::kString;

}  // namespace

void create_tables(Database& db) {
  db.create_table("region", Schema({{"r_regionkey", kInt},
                                    {"r_name", kString},
                                    {"r_comment", kString}}));
  db.create_table("nation", Schema({{"n_nationkey", kInt},
                                    {"n_name", kString},
                                    {"n_regionkey", kInt},
                                    {"n_comment", kString}}));
  db.create_table("supplier", Schema({{"s_suppkey", kInt},
                                      {"s_name", kString},
                                      {"s_address", kString},
                                      {"s_nationkey", kInt},
                                      {"s_phone", kString},
                                      {"s_acctbal", kDouble},
                                      {"s_comment", kString}}));
  db.create_table("customer", Schema({{"c_custkey", kInt},
                                      {"c_name", kString},
                                      {"c_address", kString},
                                      {"c_nationkey", kInt},
                                      {"c_phone", kString},
                                      {"c_acctbal", kDouble},
                                      {"c_mktsegment", kString},
                                      {"c_comment", kString}}));
  db.create_table("part", Schema({{"p_partkey", kInt},
                                  {"p_name", kString},
                                  {"p_mfgr", kString},
                                  {"p_brand", kString},
                                  {"p_type", kString},
                                  {"p_size", kInt},
                                  {"p_container", kString},
                                  {"p_retailprice", kDouble},
                                  {"p_comment", kString}}));
  db.create_table("partsupp", Schema({{"ps_partkey", kInt},
                                      {"ps_suppkey", kInt},
                                      {"ps_availqty", kInt},
                                      {"ps_supplycost", kDouble},
                                      {"ps_comment", kString}}));
  db.create_table("orders", Schema({{"o_orderkey", kInt},
                                    {"o_custkey", kInt},
                                    {"o_orderstatus", kString},
                                    {"o_totalprice", kDouble},
                                    {"o_orderdate", kInt},
                                    {"o_orderpriority", kString},
                                    {"o_clerk", kString},
                                    {"o_shippriority", kInt},
                                    {"o_comment", kString}}));
  db.create_table("lineitem", Schema({{"l_orderkey", kInt},
                                      {"l_partkey", kInt},
                                      {"l_suppkey", kInt},
                                      {"l_linenumber", kInt},
                                      {"l_quantity", kDouble},
                                      {"l_extendedprice", kDouble},
                                      {"l_discount", kDouble},
                                      {"l_tax", kDouble},
                                      {"l_returnflag", kString},
                                      {"l_linestatus", kString},
                                      {"l_shipdate", kInt},
                                      {"l_commitdate", kInt},
                                      {"l_receiptdate", kInt},
                                      {"l_shipinstruct", kString},
                                      {"l_shipmode", kString},
                                      {"l_comment", kString}}));
}

void create_indexes(Database& db, IndexKind kind) {
  // Unique indices on the primary keys.
  db.create_index("region", "r_regionkey", kind, /*unique=*/true);
  db.create_index("nation", "n_nationkey", kind, true);
  db.create_index("supplier", "s_suppkey", kind, true);
  db.create_index("customer", "c_custkey", kind, true);
  db.create_index("part", "p_partkey", kind, true);
  db.create_index("orders", "o_orderkey", kind, true);
  // Multiple-entry indices on the foreign keys.
  db.create_index("nation", "n_regionkey", kind, false);
  db.create_index("supplier", "s_nationkey", kind, false);
  db.create_index("customer", "c_nationkey", kind, false);
  db.create_index("partsupp", "ps_partkey", kind, false);
  db.create_index("partsupp", "ps_suppkey", kind, false);
  db.create_index("orders", "o_custkey", kind, false);
  db.create_index("lineitem", "l_orderkey", kind, false);
  db.create_index("lineitem", "l_partkey", kind, false);
  db.create_index("lineitem", "l_suppkey", kind, false);
}

}  // namespace stc::db::tpcd
