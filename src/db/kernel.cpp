#include "db/kernel.h"

#include "db/registration.h"

namespace stc::db {

const cfg::ProgramImage& kernel_image() {
  static const cfg::ProgramImage image = [] {
    cfg::ProgramImage im;
    // Module order defines the original ("orig") code layout. It follows the
    // paper's Figure 1 stack: the parsing/optimization kernel first, then the
    // query-execution kernel (Executor, Access Methods, Buffer Manager,
    // Storage Manager), then support code.
    const cfg::ModuleId parser = im.add_module("parser");
    const cfg::ModuleId planner = im.add_module("planner");
    const cfg::ModuleId executor = im.add_module("executor");
    const cfg::ModuleId expr = im.add_module("expr");
    const cfg::ModuleId access = im.add_module("access");
    const cfg::ModuleId buffer = im.add_module("buffer");
    const cfg::ModuleId storage = im.add_module("storage");
    const cfg::ModuleId catalog = im.add_module("catalog");
    const cfg::ModuleId util = im.add_module("util");

    register_parser_routines(im, parser);
    register_planner_routines(im, planner);
    register_executor_routines(im, executor);
    register_expr_routines(im, expr);
    register_typeops_routines(im, access);
    register_heap_routines(im, access);
    register_btree_routines(im, access);
    register_hashindex_routines(im, access);
    register_buffer_routines(im, buffer);
    register_storage_routines(im, storage);
    register_catalog_routines(im, catalog);
    register_util_routines(im, util);

    im.finalize();
    return im;
  }();
  return image;
}

}  // namespace stc::db
