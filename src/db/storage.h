// Storage Manager: the lowest module of the engine (paper Figure 1).
//
// Tables are stored as files of fixed-size pages following a slotted-page
// logic structure. The "disk" is simulated: file contents live in memory,
// and every read/write goes through instrumented kernel routines so the
// storage manager contributes its real share of the instruction stream.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "db/kernel.h"
#include "support/check.h"

namespace stc::db {

inline constexpr std::uint32_t kPageBytes = 8192;

struct PageId {
  std::uint32_t file = 0;
  std::uint32_t page = 0;

  std::uint64_t key() const { return (std::uint64_t{file} << 32) | page; }
  bool operator==(const PageId& other) const {
    return file == other.file && page == other.page;
  }
};

// A raw page with a slotted-record directory:
//   header: [u16 slot_count][u16 free_offset]
//   slots:  per record [u16 offset][u16 length], growing from the header
//   data:   records packed from the end of the page, growing backwards
class Page {
 public:
  Page() : bytes_(kPageBytes, 0) { set_free_offset(kPageBytes); }

  std::uint16_t slot_count() const { return read_u16(0); }
  std::uint16_t free_offset() const { return read_u16(2); }

  // Free contiguous space available for one more record (+ its slot entry).
  std::uint32_t free_space() const;

  // Appends a record; returns the slot number. Requires it to fit.
  std::uint16_t insert_record(const std::uint8_t* data, std::uint16_t length);

  // Record payload for a slot (valid until the page is mutated).
  const std::uint8_t* record(std::uint16_t slot, std::uint16_t& length) const;

  const std::uint8_t* raw() const { return bytes_.data(); }
  std::uint8_t* raw() { return bytes_.data(); }

 private:
  static constexpr std::uint32_t kHeaderBytes = 4;
  static constexpr std::uint32_t kSlotBytes = 4;

  std::uint16_t read_u16(std::uint32_t offset) const {
    return static_cast<std::uint16_t>(bytes_[offset] |
                                      (bytes_[offset + 1] << 8));
  }
  void write_u16(std::uint32_t offset, std::uint16_t value) {
    bytes_[offset] = static_cast<std::uint8_t>(value & 0xff);
    bytes_[offset + 1] = static_cast<std::uint8_t>(value >> 8);
  }
  void set_slot_count(std::uint16_t n) { write_u16(0, n); }
  void set_free_offset(std::uint16_t off) { write_u16(2, off); }

  std::vector<std::uint8_t> bytes_;
};

struct StorageStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_writes = 0;
  std::uint64_t pages_allocated = 0;
};

class StorageManager {
 public:
  explicit StorageManager(Kernel& kernel) : kernel_(kernel) {}

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  std::uint32_t create_file();
  std::uint32_t file_page_count(std::uint32_t file) const;

  // Extends `file` by one zeroed page; returns its page number.
  std::uint32_t allocate_page(std::uint32_t file);

  // Copies a page from the simulated disk into `out`.
  void read_page(PageId id, Page& out);

  // Copies `page` back to the simulated disk.
  void write_page(PageId id, const Page& page);

  // Maintenance operations; cold during DSS query execution.
  void sync_file(std::uint32_t file);      // simulated durability barrier
  void truncate_file(std::uint32_t file);  // drops all pages of the file

  const StorageStats& stats() const { return stats_; }

 private:
  Kernel& kernel_;
  std::vector<std::vector<Page>> files_;
  StorageStats stats_;
};

}  // namespace stc::db
