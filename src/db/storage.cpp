#include "db/storage.h"

#include <cstring>

#include "db/registration.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kFall = BlockKind::kFallThrough;
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_storage_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("SM_create_file", m,
                 {{"entry", 6, kFall}, {"init", 8, kFall}, {"ret", 3, kRet}});
  im.add_routine("SM_allocate_page", m,
                 {{"entry", 7, kBr},
                  {"grow", 12, kFall},
                  {"zero", 9, kFall},
                  {"ret", 3, kRet}});
  im.add_routine("SM_read_page", m,
                 {{"entry", 8, kBr},
                  {"seek", 6, kFall},
                  {"copy", 18, kFall},
                  {"ret", 3, kRet},
                  {"err_bounds", 14, kRet}});
  im.add_routine("SM_write_page", m,
                 {{"entry", 8, kBr},
                  {"seek", 6, kFall},
                  {"copy", 18, kFall},
                  {"ret", 3, kRet},
                  {"err_bounds", 14, kRet}});
  // Maintenance paths: implemented, exercised by tests, cold in DSS runs.
  im.add_routine("SM_file_sync", m,
                 {{"entry", 6, kBr},
                  {"walk", 9, kBr},
                  {"flush_one", 16, kBr},
                  {"ret", 4, kRet}});
  im.add_routine("SM_truncate_file", m,
                 {{"entry", 7, kBr},
                  {"release", 11, kBr},
                  {"ret", 4, kRet},
                  {"err_nofile", 12, kRet}});
}

std::uint32_t Page::free_space() const {
  const std::uint32_t used_front =
      kHeaderBytes + std::uint32_t{slot_count()} * kSlotBytes;
  const std::uint32_t free_off = free_offset();
  STC_DCHECK(free_off >= used_front);
  const std::uint32_t gap = free_off - used_front;
  return gap > kSlotBytes ? gap - kSlotBytes : 0;
}

std::uint16_t Page::insert_record(const std::uint8_t* data,
                                  std::uint16_t length) {
  STC_REQUIRE_MSG(length <= free_space(), "record does not fit in page");
  const std::uint16_t slot = slot_count();
  const std::uint16_t new_off =
      static_cast<std::uint16_t>(free_offset() - length);
  std::memcpy(bytes_.data() + new_off, data, length);
  write_u16(kHeaderBytes + std::uint32_t{slot} * kSlotBytes, new_off);
  write_u16(kHeaderBytes + std::uint32_t{slot} * kSlotBytes + 2, length);
  set_slot_count(static_cast<std::uint16_t>(slot + 1));
  set_free_offset(new_off);
  return slot;
}

const std::uint8_t* Page::record(std::uint16_t slot,
                                 std::uint16_t& length) const {
  STC_REQUIRE_MSG(slot < slot_count(), "slot out of range");
  const std::uint16_t off =
      read_u16(kHeaderBytes + std::uint32_t{slot} * kSlotBytes);
  length = read_u16(kHeaderBytes + std::uint32_t{slot} * kSlotBytes + 2);
  return bytes_.data() + off;
}

std::uint32_t StorageManager::create_file() {
  DB_ROUTINE(kernel_, "SM_create_file");
  DB_BB(kernel_, "entry");
  DB_BB(kernel_, "init");
  files_.emplace_back();
  DB_BB(kernel_, "ret");
  return static_cast<std::uint32_t>(files_.size() - 1);
}

std::uint32_t StorageManager::file_page_count(std::uint32_t file) const {
  STC_REQUIRE(file < files_.size());
  return static_cast<std::uint32_t>(files_[file].size());
}

std::uint32_t StorageManager::allocate_page(std::uint32_t file) {
  DB_ROUTINE(kernel_, "SM_allocate_page");
  DB_BB(kernel_, "entry");
  STC_REQUIRE(file < files_.size());
  DB_BB(kernel_, "grow");
  files_[file].emplace_back();
  DB_BB(kernel_, "zero");
  ++stats_.pages_allocated;
  DB_BB(kernel_, "ret");
  return static_cast<std::uint32_t>(files_[file].size() - 1);
}

void StorageManager::read_page(PageId id, Page& out) {
  DB_ROUTINE(kernel_, "SM_read_page");
  DB_BB(kernel_, "entry");
  if (id.file >= files_.size() || id.page >= files_[id.file].size()) {
    DB_BB(kernel_, "err_bounds");
    STC_CHECK_MSG(false, "page read out of bounds");
  }
  DB_BB(kernel_, "seek");
  ++stats_.page_reads;
  DB_BB(kernel_, "copy");
  out = files_[id.file][id.page];
  DB_BB(kernel_, "ret");
}

void StorageManager::write_page(PageId id, const Page& page) {
  DB_ROUTINE(kernel_, "SM_write_page");
  DB_BB(kernel_, "entry");
  if (id.file >= files_.size() || id.page >= files_[id.file].size()) {
    DB_BB(kernel_, "err_bounds");
    STC_CHECK_MSG(false, "page write out of bounds");
  }
  DB_BB(kernel_, "seek");
  ++stats_.page_writes;
  DB_BB(kernel_, "copy");
  files_[id.file][id.page] = page;
  DB_BB(kernel_, "ret");
}

void StorageManager::sync_file(std::uint32_t file) {
  DB_ROUTINE(kernel_, "SM_file_sync");
  DB_BB(kernel_, "entry");
  STC_REQUIRE(file < files_.size());
  for (Page& page : files_[file]) {
    DB_BB(kernel_, "walk");
    DB_BB(kernel_, "flush_one");
    // The simulated disk is memory; the barrier just touches the page header
    // the way a real checksum-on-write would.
    (void)page.slot_count();
    ++stats_.page_writes;
  }
  DB_BB(kernel_, "ret");
}

void StorageManager::truncate_file(std::uint32_t file) {
  DB_ROUTINE(kernel_, "SM_truncate_file");
  DB_BB(kernel_, "entry");
  if (file >= files_.size()) {
    DB_BB(kernel_, "err_nofile");
    STC_CHECK_MSG(false, "truncate of unknown file");
  }
  DB_BB(kernel_, "release");
  files_[file].clear();
  DB_BB(kernel_, "ret");
}

}  // namespace stc::db
