// Runtime values and tuples of the database engine.
//
// The engine supports the types TPC-D needs: 64-bit integers (also used for
// keys and identifiers), doubles (prices, discounts), strings, and dates
// (stored as days since 1970-01-01 in an integer). NULL exists for outer
// contexts (absent aggregates).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace stc::db {

enum class ValueType : std::uint8_t { kNull, kInt, kDouble, kString };

class Value {
 public:
  Value() : type_(ValueType::kNull), i_(0) {}
  explicit Value(std::int64_t v) : type_(ValueType::kInt), i_(v) {}
  explicit Value(double v) : type_(ValueType::kDouble), d_(v) {}
  explicit Value(std::string v)
      : type_(ValueType::kString), i_(0), s_(std::move(v)) {}

  static Value null() { return Value(); }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  std::int64_t as_int() const {
    STC_DCHECK(type_ == ValueType::kInt);
    return i_;
  }
  double as_double() const {
    STC_DCHECK(type_ == ValueType::kDouble || type_ == ValueType::kInt);
    return type_ == ValueType::kInt ? static_cast<double>(i_) : d_;
  }
  const std::string& as_string() const {
    STC_DCHECK(type_ == ValueType::kString);
    return s_;
  }

  // Total order across same-type values (ints and doubles compare
  // numerically with each other; NULL sorts first). Returns <0, 0, >0.
  int compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == 0; }
  bool operator<(const Value& other) const { return compare(other) < 0; }

  std::uint64_t hash() const;

  std::string to_string() const;

 private:
  ValueType type_;
  union {
    std::int64_t i_;
    double d_;
  };
  std::string s_;
};

using Tuple = std::vector<Value>;

// ---- date helpers (dates are Value(int) = days since 1970-01-01) ----------

// Days since epoch for a civil date (proleptic Gregorian).
std::int64_t date_from_ymd(int year, int month, int day);

// Inverse of date_from_ymd.
void ymd_from_date(std::int64_t days, int& year, int& month, int& day);

// Parses "YYYY-MM-DD"; aborts on malformed input (caller validates syntax).
std::int64_t parse_date(const std::string& text);

std::string format_date(std::int64_t days);

// Year of a date value (the SQL subset's YEAR(x) function).
int year_of(std::int64_t days);

}  // namespace stc::db
