// Physical query plans. The planner (db/sql/planner) produces a PlanNode
// tree; make_operator() instantiates the Volcano-style executor for it.
// Execution is pipelined: every operator passes result tuples to its parent
// as soon as they are produced (Section 2.2 of the paper explains that this
// is why DBMS kernels execute few loops and long code sequences).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/catalog.h"
#include "db/expr.h"

namespace stc::db {

enum class PlanKind : std::uint8_t {
  kSeqScan,
  kIndexScan,    // range (btree) or equality (btree/hash) over one index
  kFilter,
  kProject,
  kNLJoin,       // naive nested loops with rewindable inner
  kIndexNLJoin,  // index nested loops: probe inner index per outer tuple
  kHashJoin,     // build on right child, probe from left
  kMergeJoin,    // both inputs sorted on the key columns
  kSort,
  kAggregate,    // hash grouping + aggregate functions
  kLimit,
  kMaterialize,  // buffers child output; rewindable
};

const char* to_string(PlanKind kind);

enum class AggOp : std::uint8_t { kSum, kCount, kAvg, kMin, kMax };

const char* to_string(AggOp op);

struct AggSpec {
  AggOp op = AggOp::kCount;
  std::unique_ptr<Expr> arg;  // null for COUNT(*)
  std::string name;           // output column name
};

struct SortKey {
  int column = 0;  // position in the input tuple
  bool descending = false;
};

struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  // Output schema of this node (filled by the planner / plan builders).
  Schema out_schema;

  // --- scans ---
  TableInfo* table = nullptr;   // kSeqScan, kIndexScan, kIndexNLJoin inner
  const IndexInfo* index = nullptr;  // kIndexScan, kIndexNLJoin
  std::optional<Value> lo, hi;  // kIndexScan bounds (equal => equality probe)
  bool lo_inclusive = true, hi_inclusive = true;
  std::unique_ptr<Expr> qual;   // kSeqScan/kIndexScan residual, kFilter pred

  // --- project ---
  std::vector<std::unique_ptr<Expr>> exprs;

  // --- joins ---
  std::unique_ptr<Expr> left_key;   // over left child tuple
  std::unique_ptr<Expr> right_key;  // over right child tuple (kHashJoin,
                                    // kMergeJoin); for kIndexNLJoin the key
                                    // probes `index` of `table`
  std::unique_ptr<Expr> residual;   // over the concatenated tuple

  // --- sort ---
  std::vector<SortKey> sort_keys;

  // --- aggregate ---
  std::vector<int> group_cols;
  std::vector<AggSpec> aggs;

  // --- limit ---
  std::uint64_t limit = 0;

  // EXPLAIN-style rendering (one node per line, indented).
  std::string explain() const;
};

// Helper constructors used by tests, examples and the planner.
std::unique_ptr<PlanNode> make_seq_scan(TableInfo* table,
                                        std::unique_ptr<Expr> qual = nullptr);
std::unique_ptr<PlanNode> make_index_scan(TableInfo* table,
                                          const IndexInfo* index,
                                          std::optional<Value> lo,
                                          bool lo_inclusive,
                                          std::optional<Value> hi,
                                          bool hi_inclusive,
                                          std::unique_ptr<Expr> qual = nullptr);

}  // namespace stc::db
