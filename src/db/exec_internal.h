// Internal executor interfaces shared by the operator implementation files.
#pragma once

#include <memory>

#include "db/exec.h"
#include "db/kernel.h"
#include "db/plan.h"

namespace stc::db {

// All inter-operator calls go through these instrumented dispatchers (the
// engine's ExecProcNode analogue), so every transition into an operator
// routine comes from a call block.
void exec_open(Kernel& kernel, Operator& op);
bool exec_next(Kernel& kernel, Operator& op, Tuple& out);
void exec_close(Kernel& kernel, Operator& op);
void exec_rewind(Kernel& kernel, Operator& op);

namespace detail {

std::unique_ptr<Operator> make_scan_op(Kernel& kernel, const PlanNode& plan);
std::unique_ptr<Operator> make_filter_op(Kernel& kernel, const PlanNode& plan);
std::unique_ptr<Operator> make_project_op(Kernel& kernel, const PlanNode& plan);
std::unique_ptr<Operator> make_limit_op(Kernel& kernel, const PlanNode& plan);
std::unique_ptr<Operator> make_materialize_op(Kernel& kernel,
                                              const PlanNode& plan);
std::unique_ptr<Operator> make_join_op(Kernel& kernel, const PlanNode& plan);
std::unique_ptr<Operator> make_sort_op(Kernel& kernel, const PlanNode& plan);
std::unique_ptr<Operator> make_aggregate_op(Kernel& kernel,
                                            const PlanNode& plan);

}  // namespace detail
}  // namespace stc::db
