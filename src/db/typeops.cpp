#include "db/typeops.h"

#include "db/registration.h"

namespace stc::db {

using cfg::BlockKind;
namespace {
constexpr BlockKind kBr = BlockKind::kBranch;
constexpr BlockKind kCall = BlockKind::kCall;
constexpr BlockKind kRet = BlockKind::kReturn;
}  // namespace

void register_typeops_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  im.add_routine("Cmp_dispatch", m,
                 {{"entry", 4, kBr},    // type tags -> routine table
                  {"null_path", 4, kRet},
                  {"int_call", 3, kCall},
                  {"double_call", 3, kCall},
                  {"str_call", 3, kCall},
                  {"ret", 2, kRet}});
  im.add_routine("Cmp_int", m,
                 {{"entry", 5, kBr}, {"ret", 2, kRet}});
  im.add_routine("Cmp_double", m,
                 {{"entry", 6, kBr}, {"ret", 2, kRet}});
  im.add_routine("Cmp_str", m,
                 {{"entry", 4, kBr},
                  {"loop", 6, kBr},   // one comparison chunk
                  {"ret", 2, kRet}});
  im.add_routine("Hash_dispatch", m,
                 {{"entry", 4, kBr},
                  {"int_mix", 8, kBr},
                  {"double_mix", 8, kBr},
                  {"str_mix", 6, kBr},   // one FNV chunk
                  {"finalize", 5, kRet}});
}

namespace {
int cmp_int(Kernel& k, const Value& a, const Value& b);
int cmp_double(Kernel& k, const Value& a, const Value& b);
int cmp_str(Kernel& k, const Value& a, const Value& b);
}  // namespace

int cmp_dispatch(Kernel& k, const Value& a, const Value& b) {
  DB_ROUTINE(k, "Cmp_dispatch");
  DB_BB(k, "entry");
  if (a.is_null() || b.is_null()) {
    DB_BB(k, "null_path");
    return a.compare(b);
  }
  int result = 0;
  if (a.type() == ValueType::kString || b.type() == ValueType::kString) {
    DB_BB(k, "str_call");
    result = cmp_str(k, a, b);
  } else if (a.type() == ValueType::kDouble ||
             b.type() == ValueType::kDouble) {
    DB_BB(k, "double_call");
    result = cmp_double(k, a, b);
  } else {
    DB_BB(k, "int_call");
    result = cmp_int(k, a, b);
  }
  DB_BB(k, "ret");
  return result;
}

namespace {

int cmp_int(Kernel& k, const Value& a, const Value& b) {
  DB_ROUTINE(k, "Cmp_int");
  DB_BB(k, "entry");
  const int result = a.compare(b);
  DB_BB(k, "ret");
  return result;
}

int cmp_double(Kernel& k, const Value& a, const Value& b) {
  DB_ROUTINE(k, "Cmp_double");
  DB_BB(k, "entry");
  const int result = a.compare(b);
  DB_BB(k, "ret");
  return result;
}

int cmp_str(Kernel& k, const Value& a, const Value& b) {
  DB_ROUTINE(k, "Cmp_str");
  DB_BB(k, "entry");
  // One block event per 8-byte comparison chunk, modeling the strcmp loop.
  const std::size_t len =
      std::min(a.as_string().size(), b.as_string().size());
  for (std::size_t i = 0; i <= len; i += 8) {
    DB_BB(k, "loop");
  }
  const int result = a.compare(b);
  DB_BB(k, "ret");
  return result;
}

}  // namespace

std::uint64_t hash_dispatch(Kernel& k, const Value& v) {
  DB_ROUTINE(k, "Hash_dispatch");
  DB_BB(k, "entry");
  switch (v.type()) {
    case ValueType::kInt:
      DB_BB(k, "int_mix");
      break;
    case ValueType::kDouble:
      DB_BB(k, "double_mix");
      break;
    case ValueType::kString: {
      const std::size_t n = v.as_string().size();
      for (std::size_t i = 0; i <= n; i += 8) {
        DB_BB(k, "str_mix");
      }
      break;
    }
    case ValueType::kNull:
      break;
  }
  const std::uint64_t h = v.hash();
  DB_BB(k, "finalize");
  return h;
}

}  // namespace stc::db
