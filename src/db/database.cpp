#include "db/database.h"

#include <cctype>

#include "db/btree.h"
#include "db/hash_index.h"
#include "db/registration.h"
#include "db/sql/parser.h"
#include "support/check.h"

namespace stc::db {
namespace {

std::string upper(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return s;
}

}  // namespace

Database::Database(std::size_t buffer_frames)
    : storage_(kernel_), buffer_(kernel_, storage_, buffer_frames),
      catalog_(kernel_) {}

TableInfo& Database::create_table(const std::string& name, Schema schema) {
  Schema upper_schema;
  for (const Column& col : schema.columns()) {
    upper_schema.add(upper(col.name), col.type);
  }
  const std::uint32_t file = storage_.create_file();
  auto heap = std::make_unique<HeapFile>(kernel_, buffer_, storage_, file);
  return catalog_.create_table(upper(name), std::move(upper_schema),
                               std::move(heap));
}

void Database::create_index(const std::string& table_name,
                            const std::string& column, IndexKind kind,
                            bool unique) {
  TableInfo* table = catalog_.lookup(upper(table_name));
  STC_REQUIRE_MSG(table != nullptr, "create_index: unknown table");
  const int col = table->schema.index_of(upper(column));
  STC_REQUIRE_MSG(col >= 0, "create_index: unknown column");

  IndexInfo info;
  info.name = upper(table_name) + "_" + upper(column) + "_" +
              (kind == IndexKind::kBTree ? "BT" : "HX");
  info.column = col;
  info.unique = unique;
  if (kind == IndexKind::kBTree) {
    info.index = std::make_unique<BTreeIndex>(kernel_);
  } else {
    info.index = std::make_unique<HashIndex>(kernel_);
  }

  // Backfill from existing rows.
  HeapFile::Scanner scanner(*table->heap);
  Tuple tuple;
  RID rid;
  while (scanner.next(tuple, rid)) {
    info.index->insert(tuple[static_cast<std::size_t>(col)], rid);
  }
  table->indexes.push_back(std::move(info));
}

void Database::insert(TableInfo& table, const Tuple& tuple) {
  DB_ROUTINE(kernel_, "Db_insert");
  DB_BB(kernel_, "entry");
  STC_REQUIRE(tuple.size() == table.schema.size());
  const RID rid = table.heap->insert(tuple);
  for (IndexInfo& index : table.indexes) {
    DB_BB(kernel_, "index_loop");
    DB_BB(kernel_, "index_insert");
    index.index->insert(tuple[static_cast<std::size_t>(index.column)], rid);
  }
  DB_BB(kernel_, "ret");
}

std::unique_ptr<PlanNode> Database::plan(const std::string& sql_text,
                                         const sql::PlannerOptions& options) {
  DB_ROUTINE(kernel_, "Db_prepare");
  DB_BB(kernel_, "entry");
  auto ast = sql::parse_query(kernel_, sql_text);
  DB_BB(kernel_, "plan");
  auto plan = sql::plan_query(kernel_, catalog_, *ast, options);
  DB_BB(kernel_, "ret");
  return plan;
}

QueryResult Database::run_query(const std::string& sql_text,
                                const sql::PlannerOptions& options) {
  QueryResult result;
  DB_ROUTINE(kernel_, "Db_run_query");
  DB_BB(kernel_, "entry");
  const std::unique_ptr<PlanNode> root = plan(sql_text, options);
  result.schema = root->out_schema;
  result.plan_text = root->explain();
  DB_BB(kernel_, "execute");
  result.rows = run_plan(kernel_, *root);
  DB_BB(kernel_, "ret");
  return result;
}

void register_util_routines(cfg::ProgramImage& im, cfg::ModuleId m) {
  using cfg::BlockKind;
  constexpr BlockKind kBr = BlockKind::kBranch;
  constexpr BlockKind kCall = BlockKind::kCall;
  constexpr BlockKind kRet = BlockKind::kReturn;

  im.add_routine("Db_insert", m,
                 {{"entry", 6, kCall},         // heap insert
                  {"index_loop", 4, kBr},
                  {"index_insert", 4, kCall},
                  {"ret", 3, kRet}});
  im.add_routine("Db_prepare", m,
                 {{"entry", 6, kCall},   // parse
                  {"plan", 5, kCall},    // plan
                  {"ret", 3, kRet}});
  im.add_routine("Db_run_query", m,
                 {{"entry", 6, kCall},    // prepare
                  {"execute", 5, kCall},  // run the plan
                  {"ret", 3, kRet}});

  register_dbgen_routines(im, m);
  register_coldcode_routines(im, m);
}

}  // namespace stc::db
