// B+tree index: sorted (key, RID) pairs in linked leaves under a balanced
// tree of separator keys. Supports equality and range scans; duplicates are
// allowed (foreign-key indices are multiple-entry, Section 3 of the paper).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "db/index.h"
#include "db/kernel.h"

namespace stc::db {

class BTreeIndex final : public Index {
 public:
  // Fan-out: maximum entries per node. 2*t entries, CLRS-style.
  static constexpr std::size_t kMaxEntries = 32;

  explicit BTreeIndex(Kernel& kernel);
  ~BTreeIndex() override;

  IndexKind kind() const override { return IndexKind::kBTree; }
  std::uint64_t entry_count() const override { return entries_; }

  void insert(const Value& key, RID rid) override;
  std::unique_ptr<IndexCursor> seek_equal(const Value& key) override;

  // Range scan over keys in [lo, hi] with per-bound inclusivity; an empty
  // optional means unbounded on that side.
  std::unique_ptr<IndexCursor> seek_range(const std::optional<Value>& lo,
                                          bool lo_inclusive,
                                          const std::optional<Value>& hi,
                                          bool hi_inclusive);

  // Structural invariant checker used by tests: sorted keys, balanced depth,
  // node occupancy, leaf chain consistency. Aborts on violation.
  void check_invariants() const;

  std::uint32_t height() const;

 private:
  struct Node;
  class RangeCursor;

  // Finds the first leaf position with key >= `key` (lower bound).
  void descend_lower(const Value& key, Node*& leaf, std::size_t& idx);
  void split_child(Node* parent, std::size_t child_idx);
  std::size_t node_lower_bound(const Node* node, const Value& key) const;
  std::size_t node_upper_bound(const Node* node, const Value& key) const;

  Kernel& kernel_;
  std::unique_ptr<Node> root_;
  std::uint64_t entries_ = 0;
};

}  // namespace stc::db
