#include "db/plan.h"

#include "support/check.h"

namespace stc::db {

const char* to_string(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan: return "SeqScan";
    case PlanKind::kIndexScan: return "IndexScan";
    case PlanKind::kFilter: return "Filter";
    case PlanKind::kProject: return "Project";
    case PlanKind::kNLJoin: return "NestLoopJoin";
    case PlanKind::kIndexNLJoin: return "IndexNLJoin";
    case PlanKind::kHashJoin: return "HashJoin";
    case PlanKind::kMergeJoin: return "MergeJoin";
    case PlanKind::kSort: return "Sort";
    case PlanKind::kAggregate: return "Aggregate";
    case PlanKind::kLimit: return "Limit";
    case PlanKind::kMaterialize: return "Materialize";
  }
  return "?";
}

const char* to_string(AggOp op) {
  switch (op) {
    case AggOp::kSum: return "SUM";
    case AggOp::kCount: return "COUNT";
    case AggOp::kAvg: return "AVG";
    case AggOp::kMin: return "MIN";
    case AggOp::kMax: return "MAX";
  }
  return "?";
}

namespace {

void explain_into(const PlanNode& node, int depth, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += to_string(node.kind);
  if (node.table != nullptr) {
    out += " ";
    out += node.table->name;
  }
  if (node.index != nullptr) {
    out += " using ";
    out += node.index->name;
  }
  if (node.kind == PlanKind::kIndexScan && node.lo.has_value() &&
      node.hi.has_value() && node.lo->compare(*node.hi) == 0) {
    out += " (key = " + node.lo->to_string() + ")";
  }
  if (node.kind == PlanKind::kAggregate) {
    out += " groups=" + std::to_string(node.group_cols.size()) +
           " aggs=" + std::to_string(node.aggs.size());
  }
  if (node.kind == PlanKind::kLimit) {
    out += " " + std::to_string(node.limit);
  }
  out += "\n";
  for (const auto& child : node.children) {
    explain_into(*child, depth + 1, out);
  }
}

}  // namespace

std::string PlanNode::explain() const {
  std::string out;
  explain_into(*this, 0, out);
  return out;
}

std::unique_ptr<PlanNode> make_seq_scan(TableInfo* table,
                                        std::unique_ptr<Expr> qual) {
  STC_REQUIRE(table != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kSeqScan;
  node->table = table;
  node->qual = std::move(qual);
  node->out_schema = table->schema;
  return node;
}

std::unique_ptr<PlanNode> make_index_scan(TableInfo* table,
                                          const IndexInfo* index,
                                          std::optional<Value> lo,
                                          bool lo_inclusive,
                                          std::optional<Value> hi,
                                          bool hi_inclusive,
                                          std::unique_ptr<Expr> qual) {
  STC_REQUIRE(table != nullptr && index != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanKind::kIndexScan;
  node->table = table;
  node->index = index;
  node->lo = std::move(lo);
  node->hi = std::move(hi);
  node->lo_inclusive = lo_inclusive;
  node->hi_inclusive = hi_inclusive;
  node->qual = std::move(qual);
  node->out_schema = table->schema;
  return node;
}

}  // namespace stc::db
