// Volcano-style executor: one Operator per plan node, pull-based next().
#pragma once

#include <memory>

#include "db/plan.h"

namespace stc::db {

class Operator {
 public:
  virtual ~Operator() = default;

  // Prepares the operator (builds hash tables, sorts inputs, ...).
  virtual void open() = 0;

  // Produces the next tuple; returns false when exhausted.
  virtual bool next(Tuple& out) = 0;

  // Releases resources. Operators may be re-opened after close().
  virtual void close() = 0;

  // Resets to the first tuple without rebuilding state where possible.
  // Only rewindable operators (scans, materialize) support this; others
  // abort — the planner never puts a non-rewindable operator under a naive
  // nested-loops inner.
  virtual void rewind();
};

// Instantiates the executor tree for `plan`. The plan must outlive the
// returned operator.
std::unique_ptr<Operator> make_operator(Kernel& kernel, const PlanNode& plan);

// Convenience: open/drain/close, returning all produced tuples.
std::vector<Tuple> run_plan(Kernel& kernel, const PlanNode& plan);

}  // namespace stc::db
